//! Functional demonstration that CPU offloading does not change model outputs.
//!
//! This example uses the *functional* path of the reproduction: a tiny LLaMa-style
//! transformer with real weights running real attention kernels over the paged KV cache.
//! It generates a short continuation three ways — KV on the "GPU" pool, KV on the "CPU"
//! pool, and KV swapped between pools mid-generation — and shows the generated tokens are
//! identical, which is the accuracy-preservation property NEO relies on.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p neo-bench --example functional_offload
//! ```

use neo_kvcache::Device;
use neo_model::{argmax, Model, PagedKvCache};
use neo_sim::ModelDesc;

/// Greedily generates `steps` tokens after `prompt`, optionally swapping the sequence to
/// the other pool halfway through.
fn generate(
    model: &Model,
    prompt: &[u32],
    steps: usize,
    start_device: Device,
    swap_halfway: bool,
) -> Vec<u32> {
    let desc = model.desc().clone();
    let mut cache = PagedKvCache::new(&desc, 16, 4096, 8192);
    let mut logits =
        model.prefill(1, prompt, &mut cache, start_device).expect("prompt fits in the cache");
    let mut output = Vec::new();
    for step in 0..steps {
        if swap_halfway && step == steps / 2 {
            let target = cache.device_of(1).expect("sequence exists").other();
            cache.swap(1, target).expect("swap fits");
        }
        let token = argmax(&logits);
        output.push(token);
        logits = model.decode(1, token, &mut cache).expect("decode succeeds");
    }
    output
}

fn main() {
    let desc = ModelDesc::small();
    let model = Model::random(&desc, 2025);
    let prompt: Vec<u32> = vec![11, 42, 7, 199, 23, 5];
    let steps = 12;

    println!("functional model: {desc}");
    println!("prompt tokens: {prompt:?}\n");

    let on_gpu = generate(&model, &prompt, steps, Device::Gpu, false);
    let on_cpu = generate(&model, &prompt, steps, Device::Cpu, false);
    let swapped = generate(&model, &prompt, steps, Device::Gpu, true);

    println!("generated (KV on GPU pool):        {on_gpu:?}");
    println!("generated (KV on CPU pool):        {on_cpu:?}");
    println!("generated (swapped mid-decode):    {swapped:?}");

    assert_eq!(on_gpu, on_cpu, "CPU-resident attention must match GPU-resident attention");
    assert_eq!(on_gpu, swapped, "swapping the KV cache mid-generation must not change output");
    println!("\nall three runs produced identical tokens: offloading preserves accuracy.");
}
