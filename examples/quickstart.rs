//! Quickstart: serve a small batch of requests with NEO on an A10G-class testbed and
//! compare against the GPU-only baseline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p neo-bench --example quickstart
//! ```

use neo_baselines::GpuOnlyScheduler;
use neo_core::{Engine, EngineConfig, NeoScheduler, Request, Scheduler};
use neo_sim::{CostModel, ModelDesc, Testbed};

fn run(label: &str, scheduler: Box<dyn Scheduler>) -> (f64, f64) {
    // A g5.4xlarge (one A10G GPU, 8-core EPYC host) serving LLaMa-3.1-8B.
    let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
    let mut engine = Engine::new(cost, EngineConfig::default(), scheduler);

    // 64 chat-style requests: 600-token prompts, 120 output tokens, all arriving at once.
    for id in 0..64 {
        engine.submit(Request::new(id, 0.0, 600, 120)).unwrap();
    }
    engine.run_to_completion(1_000_000);

    let makespan = engine.now();
    let tokens: u64 = engine.total_decode_tokens() + engine.total_prefill_tokens();
    let throughput = tokens as f64 / makespan;
    let mean_latency: f64 =
        engine.completed().iter().filter_map(|r| r.per_token_latency()).sum::<f64>()
            / engine.completed().len() as f64;
    println!(
        "{label:>10}: {:>7.0} tokens/s, mean per-token latency {:.3}s, makespan {:.1}s",
        throughput, mean_latency, makespan
    );
    (throughput, mean_latency)
}

fn main() {
    println!("NEO quickstart — A10G + LLaMa-3.1-8B, 64 requests (600 in / 120 out)\n");
    let (gpu_only, _) = run("GPU-only", Box::new(GpuOnlyScheduler::swiftllm_like()));
    let (neo, _) = run("NEO", Box::new(NeoScheduler::new()));
    println!("\nNEO / GPU-only throughput: {:.2}x", neo / gpu_only);
}
