//! Online serving of a coding-assistant workload (the scenario the paper's introduction
//! motivates): long prompts, Poisson arrivals, latency-sensitive users.
//!
//! Uses the event-driven serving loop directly, the way a real client front-end would:
//! every request is *submitted* individually, the first one *streams* its tokens through
//! a callback, and one impatient user *cancels* mid-decode — freeing the request's KV
//! blocks immediately. NEO and the vLLM-like baseline are compared on an A10G serving
//! LLaMa-3.1-8B, reporting per-token latency plus the streaming metrics (TTFT, ITL).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p neo-bench --example code_assistant_serving
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use neo_bench::{Policy, Scenario};
use neo_serve::{RequestStatus, Server, TokenEvent};
use neo_workload::{azure_code_like, ArrivalProcess};

fn main() {
    let scenario = Scenario::a10g_8b();
    let rate = 1.2; // requests per second
    let trace = azure_code_like(120, ArrivalProcess::Poisson { rate }, 2024);
    let stats = trace.stats();
    println!(
        "workload: {} coding requests, mean prompt {:.0} tokens, mean output {:.0} tokens, \
         {rate} req/s Poisson arrivals\n",
        stats.count, stats.mean_prompt, stats.mean_output
    );

    for policy in [Policy::VllmLike, Policy::Neo] {
        let mut server = Server::new(scenario.engine(policy)).with_max_iterations(20_000_000);

        // Submit the trace as individual arrival events. The first request streams its
        // tokens; everyone else is submitted plainly.
        let first_tokens: Rc<RefCell<Vec<TokenEvent>>> = Rc::new(RefCell::new(Vec::new()));
        let mut handles = Vec::new();
        for event in trace.events() {
            let handle = if event.index == 0 {
                let sink = Rc::clone(&first_tokens);
                server.submit_with_callback(
                    event.time,
                    event.prompt_len,
                    event.output_len,
                    move |token| sink.borrow_mut().push(*token),
                )
            } else {
                server.submit(event.time, event.prompt_len, event.output_len)
            };
            handles.push(handle.expect("trace requests fit the A10G pools"));
        }

        // One impatient user: request #5 is abandoned two seconds after it arrives.
        let impatient = handles[5];
        let abandoned_at = trace.requests()[5].arrival + 2.0;
        server.cancel(impatient, abandoned_at);

        let report = server.run_until_idle();

        let completed = server.engine().completed();
        let per_token: Vec<f64> = completed.iter().filter_map(|r| r.per_token_latency()).collect();
        let mean_tok = per_token.iter().sum::<f64>() / per_token.len().max(1) as f64;
        let ttft = report.ttft.expect("requests produced tokens");
        let itl = report.itl.expect("multi-token outputs");
        let streamed = first_tokens.borrow();

        println!("{:>12}:", policy.label());
        println!(
            "    {} completed, {} cancelled | mean tok latency {mean_tok:.3}s | \
             TTFT p50 {:.2}s p99 {:.2}s | ITL p50 {:.3}s p99 {:.3}s",
            report.completed, report.cancelled, ttft.p50, ttft.p99, itl.p50, itl.p99
        );
        println!(
            "    first request streamed {} tokens, first at t={:.2}s, last at t={:.2}s",
            streamed.len(),
            streamed.first().map(|t| t.time).unwrap_or(f64::NAN),
            streamed.last().map(|t| t.time).unwrap_or(f64::NAN),
        );
        let cancelled_after = match server.status(impatient) {
            RequestStatus::Cancelled { generated } => generated,
            other => panic!("request #5 should have been cancelled, got {other:?}"),
        };
        println!(
            "    request #5 abandoned at t={abandoned_at:.2}s after streaming \
             {cancelled_after} tokens; its KV blocks were freed mid-decode\n"
        );

        assert_eq!(report.completed + report.cancelled, trace.len());
        assert!(streamed.iter().enumerate().all(|(i, t)| t.index == i));
    }
    println!("NEO keeps latency comparable to the GPU-only engine while offloading part of");
    println!("the decode attention to the host CPU, which is what lets it absorb higher rates");
    println!("(see `cargo run -p neo-bench --bin fig6_load_latency` for the full curve).");
}
