//! Online serving of a coding-assistant workload (the scenario the paper's introduction
//! motivates): long prompts, Poisson arrivals, latency-sensitive users.
//!
//! Compares NEO and the vLLM-like baseline on an A10G serving LLaMa-3.1-8B at a moderate
//! request rate, reporting per-token latency percentiles and sustained throughput.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p neo-bench --example code_assistant_serving
//! ```

use neo_bench::{Policy, Scenario};
use neo_serve::run_online;
use neo_workload::{azure_code_like, ArrivalProcess};

fn main() {
    let scenario = Scenario::a10g_8b();
    let rate = 1.2; // requests per second
    let trace = azure_code_like(120, ArrivalProcess::Poisson { rate }, 2024);
    let stats = trace.stats();
    println!(
        "workload: {} coding requests, mean prompt {:.0} tokens, mean output {:.0} tokens, \
         {rate} req/s Poisson arrivals\n",
        stats.count, stats.mean_prompt, stats.mean_output
    );

    for policy in [Policy::VllmLike, Policy::Neo] {
        let result = run_online(scenario.engine(policy), &trace, rate, 20_000_000);
        println!(
            "{:>12}: mean tok latency {:.3}s | p50 {:.3}s | p99 {:.3}s | TTFT {:.2}s | \
             {:.0} output tok/s | offloaded {:.0}% of iterations",
            policy.label(),
            result.avg_per_token_latency,
            result.per_token_latency.p50,
            result.per_token_latency.p99,
            result.mean_ttft,
            result.decode_throughput,
            result.offload_fraction * 100.0,
        );
    }
    println!("\nNEO keeps latency comparable to the GPU-only engine while offloading part of");
    println!("the decode attention to the host CPU, which is what lets it absorb higher rates");
    println!("(see `cargo run -p neo-bench --bin fig6_load_latency` for the full curve).");
}
