//! Serving a summarisation workload on a memory-starved T4 GPU — the setting where the
//! paper reports its largest gains (up to 7.5× over GPU-only serving).
//!
//! A 16 GB T4 holding the 13 GB of LLaMa-2-7B weights has almost no room for KV cache, so
//! the GPU-only engine is stuck at tiny batch sizes (and preempts constantly); NEO parks
//! most requests' KV in host DRAM and runs their attention on the CPU.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p neo-bench --example summarization_t4
//! ```

use neo_bench::{Policy, Scenario};
use neo_serve::run_offline;
use neo_workload::{osc_like, ArrivalProcess};

fn main() {
    let scenario = Scenario::t4_7b();
    let cost = scenario.cost_model();
    println!("testbed: {}", scenario.testbed);
    println!(
        "GPU KV capacity: {} tokens | CPU KV capacity: {} tokens\n",
        cost.gpu_kv_capacity_tokens(),
        cost.cpu_kv_capacity_tokens()
    );

    let trace = osc_like(150, ArrivalProcess::AllAtOnce, 99).as_offline();
    let stats = trace.stats();
    println!(
        "workload: {} summarisation requests, mean prompt {:.0} tokens, mean output {:.0} tokens\n",
        stats.count, stats.mean_prompt, stats.mean_output
    );

    let mut results = Vec::new();
    for policy in [Policy::SwiftLlmLike, Policy::FastDecodePlus, Policy::Neo] {
        let result = run_offline(scenario.engine(policy), &trace, 20_000_000);
        println!(
            "{:>12}: {:>6.0} tokens/s (makespan {:.1}s, offloaded {:.0}% of iterations)",
            policy.label(),
            result.token_throughput,
            result.makespan,
            result.offload_fraction * 100.0
        );
        results.push((policy, result.token_throughput));
    }

    let baseline = results.iter().find(|(p, _)| *p == Policy::SwiftLlmLike).unwrap().1;
    let neo = results.iter().find(|(p, _)| *p == Policy::Neo).unwrap().1;
    println!("\nNEO / GPU-only throughput on the T4: {:.1}x", neo / baseline);
}
