//! Cross-crate integration tests: workload generation → scheduling → simulated execution
//! → metrics, for NEO and every baseline on every testbed.

use neo_bench::{Policy, Scenario};
use neo_serve::{run_offline, run_online};
use neo_workload::{azure_code_like, osc_like, synthetic, ArrivalProcess};

const MAX_ITERS: u64 = 20_000_000;

#[test]
fn every_policy_drains_an_offline_workload_on_every_testbed() {
    let policies = [
        Policy::Neo,
        Policy::VllmLike,
        Policy::SwiftLlmLike,
        Policy::FastDecodePlus,
        Policy::SimpleOffload,
        Policy::SymmetricPipeline,
    ];
    for scenario in [Scenario::a10g_8b(), Scenario::t4_7b(), Scenario::h100_70b()] {
        let trace = synthetic(30, 300, 40, ArrivalProcess::AllAtOnce, 1);
        for &policy in &policies {
            let result = run_offline(scenario.engine(policy), &trace, MAX_ITERS);
            assert_eq!(result.completed, 30, "{} on {}", policy.label(), scenario.name);
            assert!(result.token_throughput > 0.0);
        }
    }
}

#[test]
fn neo_latency_tracks_vllm_at_low_load() {
    // §5.2: at low request rates NEO behaves like the GPU-only engine.
    let scenario = Scenario::a10g_8b();
    let trace = azure_code_like(40, ArrivalProcess::Poisson { rate: 0.3 }, 2);
    let neo = run_online(scenario.engine(Policy::Neo), &trace, 0.3, MAX_ITERS);
    let vllm = run_online(scenario.engine(Policy::VllmLike), &trace, 0.3, MAX_ITERS);
    let ratio = neo.avg_per_token_latency / vllm.avg_per_token_latency;
    assert!(
        ratio < 1.5,
        "NEO low-load latency should track vLLM: NEO {:.3}s vs vLLM {:.3}s",
        neo.avg_per_token_latency,
        vllm.avg_per_token_latency
    );
}

#[test]
fn neo_sustains_more_load_than_vllm_on_the_t4() {
    // The Figure 6c story: on the memory-starved T4 the GPU-only engine saturates at a
    // much lower request rate than NEO. The rate must sit past the GPU-only knee, which
    // depends on the exact RNG stream behind the trace; with the vendored rand shim the
    // curves separate decisively at 2 req/s (see fig6_load_latency).
    let scenario = Scenario::t4_7b();
    let rate = 2.0;
    let trace = osc_like(60, ArrivalProcess::Poisson { rate }, 3);
    let neo = run_online(scenario.engine(Policy::Neo), &trace, rate, MAX_ITERS);
    let vllm = run_online(scenario.engine(Policy::VllmLike), &trace, rate, MAX_ITERS);
    assert!(
        neo.avg_per_token_latency < vllm.avg_per_token_latency,
        "at {rate} req/s the T4 GPU-only engine should already be saturating: NEO {:.3}s vs vLLM {:.3}s",
        neo.avg_per_token_latency,
        vllm.avg_per_token_latency
    );
}

#[test]
fn neo_beats_the_baseline_where_the_paper_says_it_should() {
    // Offline relative throughput on a mid-length synthetic workload (the Figure 9 peak
    // region): NEO > GPU-only on both the A10G and (dramatically) the T4.
    for (scenario, min_gain) in [(Scenario::a10g_8b(), 1.02), (Scenario::t4_7b(), 1.3)] {
        let trace =
            synthetic(80, 1000.min(scenario.model.hidden * 4), 150, ArrivalProcess::AllAtOnce, 4);
        let baseline = run_offline(scenario.engine(Policy::SwiftLlmLike), &trace, MAX_ITERS);
        let neo = run_offline(scenario.engine(Policy::Neo), &trace, MAX_ITERS);
        let gain = neo.token_throughput / baseline.token_throughput;
        assert!(
            gain >= min_gain,
            "{}: expected NEO gain ≥ {min_gain}, got {gain:.3}",
            scenario.name
        );
    }
}

#[test]
fn fastdecode_plus_collapses_at_long_outputs_but_neo_does_not() {
    // Figure 8b: with long outputs, full offload becomes CPU-bound and loses to the
    // GPU-only baseline, while NEO's greedy fallback keeps it at or above the baseline.
    let scenario = Scenario::h100_70b();
    let trace = synthetic(60, 2000, 300, ArrivalProcess::AllAtOnce, 5);
    let baseline = run_offline(scenario.engine(Policy::SwiftLlmLike), &trace, MAX_ITERS);
    let fastdecode = run_offline(scenario.engine(Policy::FastDecodePlus), &trace, MAX_ITERS);
    let neo = run_offline(scenario.engine(Policy::Neo), &trace, MAX_ITERS);
    let fd_rel = fastdecode.token_throughput / baseline.token_throughput;
    let neo_rel = neo.token_throughput / baseline.token_throughput;
    assert!(
        fd_rel < 1.0,
        "FastDecode+ should fall below baseline at 300-token outputs: {fd_rel:.3}"
    );
    assert!(neo_rel > fd_rel, "NEO ({neo_rel:.3}) must beat FastDecode+ ({fd_rel:.3})");
    assert!(neo_rel > 0.9, "NEO must stay close to or above the baseline: {neo_rel:.3}");
}

#[test]
fn online_latency_is_monotone_in_request_rate_for_neo() {
    let scenario = Scenario::a10g_8b();
    let mut last = 0.0;
    for &rate in &[0.3, 1.0, 2.5] {
        let trace = azure_code_like(50, ArrivalProcess::Poisson { rate }, 6);
        let result = run_online(scenario.engine(Policy::Neo), &trace, rate, MAX_ITERS);
        assert!(
            result.avg_per_token_latency + 1e-6 >= last * 0.8,
            "latency should not drop sharply as load rises"
        );
        last = result.avg_per_token_latency;
    }
}

#[test]
fn cpu_sensitivity_gain_increases_with_bandwidth() {
    // Figure 10a: the g5.16xlarge (highest host bandwidth) must show at least as much
    // peak gain as the g5.2xlarge (lowest), on the same workload.
    let trace = synthetic(60, 1000, 250, ArrivalProcess::AllAtOnce, 7);
    let gain = |n: usize| {
        let scenario = Scenario::a10g_8b_on(n);
        let baseline = run_offline(scenario.engine(Policy::SwiftLlmLike), &trace, MAX_ITERS);
        let neo = run_offline(scenario.engine(Policy::Neo), &trace, MAX_ITERS);
        neo.token_throughput / baseline.token_throughput
    };
    let small = gain(2);
    let large = gain(16);
    assert!(
        large >= small - 0.02,
        "g5.16xlarge gain ({large:.3}) should be at least the g5.2xlarge gain ({small:.3})"
    );
}
