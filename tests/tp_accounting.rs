//! Tensor-parallel cost-accounting contract.
//!
//! The TP re-pricing PR changed every PCIe term in `neo-sim` to per-rank accounting
//! (each rank moves `1/tp` of the bytes over its own link) and added collective terms
//! (LM-head all-gather). These tests pin the two sides of that change:
//!
//! * **tp = 1 is bit-identical to the pre-PR cost model.** The literals below were
//!   captured from the repository *before* the re-pricing; dividing by `tp = 1` and
//!   charging zero-valued collectives must not move a single bit on the single-GPU
//!   testbeds, so every previously published A10G / T4 figure still regenerates exactly.
//! * **tp = 2 re-prices the h100_70b scenario the way §3.2 predicts.** Swap terms halve
//!   (minus the fixed link latency), the QKVO round trip halves, and the scheduler's
//!   decisions on the 2×H100 testbed follow a pinned trace.

use neo_bench::{Policy, Scenario};
use neo_core::request::Request;
use neo_sim::{CostModel, ModelDesc, Testbed};

fn a10g() -> CostModel {
    CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1)
}

fn t4() -> CostModel {
    CostModel::new(ModelDesc::llama2_7b(), Testbed::g4dn_4xlarge(), 1)
}

fn h100_tp1() -> CostModel {
    CostModel::new(ModelDesc::llama3_70b(), Testbed::hgx_h100(1), 1)
}

fn h100_tp2() -> CostModel {
    CostModel::new(ModelDesc::llama3_70b(), Testbed::hgx_h100(2), 2)
}

/// Captured from the pre-PR cost model (commit c8ccd31) with `{:?}` round-trip
/// precision: (label, pre-PR value, current value). `assert_eq!` on f64 — bit identity,
/// not approximate equality — is the contract.
#[test]
fn tp1_times_are_bit_identical_to_pre_pr_values() {
    let cases: [(&str, f64, f64); 24] = [
        // A10G + LLaMa-3.1-8B (g5.4xlarge).
        ("a10g linear_time_gpu(1)", 0.0009251242666666665, a10g().linear_time_gpu(1)),
        ("a10g linear_time_gpu(64)", 0.0009477034666666666, a10g().linear_time_gpu(64)),
        ("a10g linear_time_gpu(512)", 0.003589412790272, a10g().linear_time_gpu(512)),
        ("a10g linear_time_gpu(4096)", 0.028603302322176002, a10g().linear_time_gpu(4096)),
        (
            "a10g pre_projection_time_gpu(512)",
            0.00042031686041599996,
            a10g().pre_projection_time_gpu(512),
        ),
        (
            "a10g post_projection_time_gpu(512)",
            0.003169095929856,
            a10g().post_projection_time_gpu(512),
        ),
        (
            "a10g gpu_attn prefill(512,1024)",
            0.000111079215104,
            a10g().gpu_attn_time(&[(512, 1024)], 0, 0),
        ),
        (
            "a10g gpu_decode_attn_time(50000,100)",
            0.00043466666666666664,
            a10g().gpu_decode_attn_time(50_000, 100),
        ),
        (
            "a10g cpu_decode_attn_time(50000,100)",
            0.0062205714285714295,
            a10g().cpu_decode_attn_time(50_000, 100),
        ),
        (
            "a10g swap_out_time_per_layer(1000)",
            0.00018066666666666668,
            a10g().swap_out_time_per_layer(1000),
        ),
        (
            "a10g swap_in_time_per_layer(1000)",
            0.00018066666666666668,
            a10g().swap_in_time_per_layer(1000),
        ),
        ("a10g swap_out_time_total(1000)", 0.005781333333333334, a10g().swap_out_time_total(1000)),
        (
            "a10g pre_post_layer_time(256,64)",
            0.002260471466666667,
            a10g().pre_post_layer_time(256, 64),
        ),
        ("a10g pre_post_layer_time(1,1)", 0.002237219466666667, a10g().pre_post_layer_time(1, 1)),
        // T4 + LLaMa-2-7B (g4dn.4xlarge).
        ("t4 linear_time_gpu(512)", 0.007100860582290598, t4().linear_time_gpu(512)),
        (
            "t4 cpu_decode_attn_time(50000,100)",
            0.029570209523809524,
            t4().cpu_decode_attn_time(50_000, 100),
        ),
        (
            "t4 swap_out_time_per_layer(1000)",
            0.0013753333333333334,
            t4().swap_out_time_per_layer(1000),
        ),
        ("t4 swap_in_time_total(1000)", 0.04401066666666667, t4().swap_in_time_total(1000)),
        (
            "t4 pre_post_layer_time(256,64)",
            0.0012416051199999997,
            t4().pre_post_layer_time(256, 64),
        ),
        // Single H100 at tp = 1 (the 70B weights do not fit — capacity pins below).
        ("h100tp1 linear_time_gpu(512)", 0.0016211337527713497, h100_tp1().linear_time_gpu(512)),
        (
            "h100tp1 cpu_decode_attn_time(50000,100)",
            0.0021995959183673465,
            h100_tp1().cpu_decode_attn_time(50_000, 100),
        ),
        (
            "h100tp1 swap_out_time_per_layer(1000)",
            9.333333333333334e-5,
            h100_tp1().swap_out_time_per_layer(1000),
        ),
        (
            "h100tp1 swap_in_time_total(1000)",
            0.0074666666666666675,
            h100_tp1().swap_in_time_total(1000),
        ),
        (
            "h100tp1 pre_post_layer_time(256,64)",
            0.0008508494805970151,
            h100_tp1().pre_post_layer_time(256, 64),
        ),
    ];
    for (label, expected, actual) in cases {
        assert_eq!(expected, actual, "{label} drifted from the pre-PR value");
    }
}

/// Capacity accounting at tp = 1 is equally pinned (same pre-PR capture).
#[test]
fn tp1_capacities_are_bit_identical_to_pre_pr_values() {
    assert_eq!(a10g().weight_bytes_per_gpu(), 16059990016);
    assert_eq!(a10g().kv_bytes_per_token_per_gpu(), 131072);
    assert_eq!(a10g().gpu_kv_capacity_tokens(), 43667);
    assert_eq!(a10g().cpu_kv_capacity_tokens(), 314572);
    assert_eq!(t4().weight_bytes_per_gpu(), 13476298752);
    assert_eq!(t4().gpu_kv_capacity_tokens(), 1131);
    assert_eq!(t4().cpu_kv_capacity_tokens(), 78643);
    assert_eq!(h100_tp1().weight_bytes_per_gpu(), 141104775168);
    assert_eq!(h100_tp1().gpu_kv_capacity_tokens(), 0, "70B weights cannot fit one 80 GB card");
}

/// The tp = 2 re-pricing of the h100_70b scenario: PCIe terms carry half the bytes.
///
/// Pre-PR, `swap_out_time_per_layer(1000)` on the 2×H100 testbed was the *whole* 4 MiB
/// layer shard over one Gen5 link: `9.333e-5 s`. Per-rank accounting moves 2 MiB per
/// link: `5.067e-5 s`. The fixed link latency (8 µs) is unchanged, so the time does not
/// exactly halve — the *bandwidth component* does.
#[test]
fn tp2_swap_terms_carry_half_the_bytes() {
    let tp1 = h100_tp1();
    let tp2 = h100_tp2();
    let lat = tp2.testbed().pcie.latency;
    for n in [100usize, 1000, 25_000] {
        let out1 = tp1.swap_out_time_per_layer(n) - lat;
        let out2 = tp2.swap_out_time_per_layer(n) - lat;
        assert!((out2 - out1 / 2.0).abs() < 1e-15, "swap-out({n}) must halve: {out2} vs {out1}");
        let in1 = tp1.swap_in_time_per_layer(n) - lat;
        let in2 = tp2.swap_in_time_per_layer(n) - lat;
        assert!((in2 - in1 / 2.0).abs() < 1e-15, "swap-in({n}) must halve: {in2} vs {in1}");
    }
    // The QKVO round trip of CPU decode attention halves too (the CPU compute part is
    // deliberately tp-independent: the host runs all heads either way, §4).
    let cpu1 = tp1.cpu_decode_attn_time(50_000, 100);
    let cpu2 = tp2.cpu_decode_attn_time(50_000, 100);
    assert!(cpu2 < cpu1, "per-rank QKVO transfer must shrink the CPU attention term");
}

/// The per-rank terms must flow through the estimate layer: a pure swap-bound
/// iteration estimate on the 2×H100 testbed prices (close to) half the transfer time of
/// the mispriced whole-shard accounting.
#[test]
fn estimates_inherit_per_rank_swap_accounting() {
    use neo_core::batch::{ScheduleDecision, SubBatch};
    use neo_core::pipeline::estimate_gpu_only;
    use neo_core::ExecutionMode;

    let tp2 = h100_tp2();
    let batch0 = SubBatch {
        prefills: vec![],
        gpu_decodes: (0..32).map(|i| (i, 1000)).collect(),
        cpu_decodes: vec![],
    };
    let decision = ScheduleDecision {
        mode: ExecutionMode::GpuOnly,
        batch0,
        batch1: SubBatch::new(),
        swap_out: vec![],
        swap_in: vec![],
        preempt: vec![],
        demote_disk: vec![],
        promote_disk: vec![],
    };
    // 20k whole-sequence swap-in tokens, deferred (not layer-overlapped): the exposed
    // swap time is exactly L × per-layer swap-in time, i.e. per-rank wall-clock.
    let est = estimate_gpu_only(&tp2, &decision.batch0, 0, 20_000, false);
    let expected = tp2.swap_in_time_total(20_000);
    assert!(
        (est.exposed_swap_time - expected).abs() < 1e-12,
        "exposed swap {} vs per-rank total {}",
        est.exposed_swap_time,
        expected
    );
    // And the per-rank total is ~half the group-level bytes over one link.
    let tp1 = h100_tp1();
    assert!(est.exposed_swap_time < tp1.swap_in_time_total(20_000) * 0.6);
}

/// Pinned scheduling trace of the re-priced h100_70b scenario.
///
/// 24 requests × 2000 prompt tokens against a ~32.8k-token GPU KV pool forces the
/// scheduler through admission, memory pressure and offload decisions. The signature of
/// each of the first 12 iterations — (mode, batch size, prefill tokens, decode tokens,
/// CPU-offloaded decodes, swap-outs, swap-ins) — is pinned so any future change to the
/// TP cost terms that shifts 2×H100 scheduling shows up as a diff here, next to the
/// figure JSON it would also re-price.
#[test]
fn h100_70b_decision_trace_is_pinned() {
    let scenario = Scenario::h100_70b();
    let mut engine = scenario.engine(Policy::Neo);
    for id in 0..24u64 {
        engine.submit(Request::new(id, 0.0, 2000, 60)).unwrap();
    }
    let mut trace = Vec::new();
    while !engine.is_idle() && engine.iterations() < 1000 {
        let r = engine.step();
        trace.push((
            format!("{}", r.mode),
            r.batch_size,
            r.prefill_tokens,
            r.decode_tokens,
            r.cpu_offloaded,
            r.swapped_out,
            r.swapped_in,
        ));
    }
    // The run's overall shape: the workload drains in exactly 128 iterations, the KV
    // pressure of 24 × 2000-token contexts forces 4 whole-sequence swap-outs, 2 of the
    // victims are pulled back once decodes retire, and 2 iterations run the asymmetric
    // two-sub-batch pipeline with CPU-offloaded decodes.
    assert_eq!(engine.completed().len(), 24);
    assert_eq!(trace.len(), 128);
    assert_eq!(trace.iter().map(|t| t.5).sum::<usize>(), 4, "total swap-outs");
    assert_eq!(trace.iter().map(|t| t.6).sum::<usize>(), 2, "total swap-ins");
    assert_eq!(trace.iter().filter(|t| t.0 == "asymmetric").count(), 2);
    // The window around the memory-pressure peak, pinned iteration by iteration:
    // admission has drained, decodes have grown every context past the pool budget, and
    // the scheduler swaps out + offloads exactly as priced by the per-rank terms.
    let expected: Vec<(&str, usize, usize, usize, usize, usize, usize)> = vec![
        ("gpu-only", 18, 0, 17, 0, 0, 0),
        ("asymmetric", 24, 2031, 20, 3, 1, 0),
        ("asymmetric", 24, 1932, 21, 4, 1, 0),
        ("gpu-only", 17, 0, 17, 0, 0, 0),
        ("gpu-only", 17, 0, 17, 0, 0, 0),
        ("gpu-only", 17, 0, 17, 0, 0, 0),
        ("gpu-only", 17, 0, 17, 0, 0, 0),
        ("gpu-only", 18, 1440, 17, 0, 0, 2),
        ("gpu-only", 18, 481, 18, 0, 0, 0),
    ];
    let window: Vec<(&str, usize, usize, usize, usize, usize, usize)> = trace[60..69]
        .iter()
        .map(|(m, a, b, c, d, e, f)| (m.as_str(), *a, *b, *c, *d, *e, *f))
        .collect();
    assert_eq!(window, expected, "iterations 60..69 of the pinned h100_70b trace");
}
