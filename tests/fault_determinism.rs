//! Fault-injection determinism contracts.
//!
//! Faults are the easiest place for nondeterminism to sneak back into the cluster:
//! an engine death races against deliveries, completions, and retries all landing at
//! the same instant. The fault machinery is built on the same settled-order core as
//! everything else, and this suite pins that contract:
//!
//! * identical [`FaultPlan`]s produce bit-identical [`ClusterReport`]s — drops,
//!   retries, and routing trace included — across ≥ 32 fuzzed tie-break seeds and
//!   every discipline (proptest), and across the `NEO_EVENT_FUZZ_SEED` CI matrix;
//! * one mid-decode engine failure is pinned with exact literals: which requests
//!   died, where they failed over, and that the survivor completed them;
//! * conservation: every request ends in exactly one terminal state, a shed or
//!   retried request's partial output is counted exactly once (never double), and
//!   retries respect the per-request budget.

use neo_bench::{Policy, Scenario};
use neo_cluster::{Cluster, ClusterConfig, ClusterReport, Discipline, FaultPlan, RouteRecord};
use neo_core::Engine;
use neo_workload::{synthetic, ArrivalProcess, Trace};
use proptest::prelude::*;

/// Same T4 + A10G pair as `cluster_determinism`: heterogeneous enough that failing
/// either engine reshapes the routing, small enough for 32+ proptest cases.
fn hetero_pair() -> Vec<(String, Engine)> {
    vec![
        ("t4".to_string(), Scenario::t4_7b().engine(Policy::Neo)),
        ("a10g".to_string(), Scenario::a10g_8b().engine(Policy::Neo)),
    ]
}

fn pinned_trace() -> Trace {
    synthetic(10, 200, 8, ArrivalProcess::Uniform { rate: 5.0 }, 13)
}

/// A plan that exercises every fault kind against the pinned trace: the T4 dies
/// mid-decode and recovers, the A10G's link degrades for a stretch, and one request
/// is given an explicit deadline.
fn pinned_plan() -> FaultPlan {
    FaultPlan::new()
        .engine_fail(0.9, 0)
        .link_degrade(1.0, 1, 0.25, 0.01)
        .engine_recover(2.5, 0)
        .link_restore(3.0, 1)
        .deadline_expire(1.5, 9)
}

fn run_faulted(discipline: Discipline, plan: FaultPlan, tie_break_seed: u64) -> ClusterReport {
    let config =
        ClusterConfig { discipline, fault_plan: plan, tie_break_seed, ..ClusterConfig::default() };
    Cluster::new(hetero_pair(), &pinned_trace(), config).run()
}

/// Golden fault trace: the T4 fail-stops at t=0.9 holding live work, and every
/// orphan fails over to the A10G and completes. Pinned with `{:?}` round-trip
/// literals so any change to fault ordering, the backoff, or the failover path
/// shows up as a reviewable diff.
#[test]
fn mid_decode_failure_trace_is_pinned() {
    let report = run_faulted(Discipline::RoundRobin, FaultPlan::new().engine_fail(0.9, 0), 0);
    let expected = vec![
        RouteRecord { id: 0, time: 0.2, engine: 0 },
        RouteRecord { id: 1, time: 0.4, engine: 1 },
        RouteRecord { id: 2, time: 0.6, engine: 0 },
        RouteRecord { id: 3, time: 0.8, engine: 1 },
        RouteRecord { id: 2, time: 0.9500000000000001, engine: 1 },
        RouteRecord { id: 4, time: 1.0, engine: 1 },
        RouteRecord { id: 5, time: 1.2, engine: 1 },
        RouteRecord { id: 6, time: 1.4, engine: 1 },
        RouteRecord { id: 7, time: 1.6, engine: 1 },
        RouteRecord { id: 8, time: 1.8, engine: 1 },
        RouteRecord { id: 9, time: 2.0, engine: 1 },
    ];
    assert_eq!(report.routes, expected);
    assert_eq!(report.completed, 10, "the survivor must complete every orphan");
    assert_eq!(report.dropped, 0);
    assert_eq!(
        report.retries, 1,
        "request 2 was mid-decode on the T4 when it died (0 had already finished there)"
    );
    assert!(report.drops.is_empty());
    assert_eq!(report.engines[0].completed, 1, "request 0 finished on the T4 before t=0.9");
    assert_eq!(report.engines[1].completed, 9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ≥ 32 fuzzed tie-break seeds × every discipline, under a plan exercising every
    /// fault kind: the full cluster report — drops, retries, routes, latencies with
    /// f64 round-trip precision — is bit-identical to the deterministic order.
    #[test]
    fn identical_fault_plans_replay_bit_identically(
        seed in 1u64..u64::MAX,
        discipline_index in 0usize..4,
    ) {
        let discipline = Discipline::ALL[discipline_index];
        let reference = format!("{:?}", run_faulted(discipline, pinned_plan(), 0));
        let fuzzed = format!("{:?}", run_faulted(discipline, pinned_plan(), seed));
        prop_assert_eq!(&reference, &fuzzed);
    }

    /// Conservation under seeded outages: every request reaches exactly one terminal
    /// state, retries stay within the per-request budget, a faulted run never streams
    /// more than the clean run (discarded partial output is not double-counted), and
    /// exactly the completed requests have a first token.
    #[test]
    fn every_request_reaches_exactly_one_terminal_state(
        plan_seed in 0u64..1_000_000u64,
        discipline_index in 0usize..4,
    ) {
        let discipline = Discipline::ALL[discipline_index];
        let clean = run_faulted(discipline, FaultPlan::new(), 0);
        let plan = FaultPlan::seeded_outages(2, 2.5, 2, 0.6, plan_seed);
        let report = run_faulted(discipline, plan, 0);
        prop_assert_eq!(report.completed + report.dropped, report.requests);
        prop_assert_eq!(report.drops.len(), report.dropped);
        let config = ClusterConfig::default();
        prop_assert!(report.retries <= report.requests as u64 * config.retry_budget as u64);
        prop_assert!(report.streamed_tokens <= clean.streamed_tokens);
        let per_engine: u64 = report.engines.iter().map(|e| e.streamed_tokens).sum();
        prop_assert!(report.streamed_tokens <= per_engine,
            "frontend-visible tokens exclude discarded partial output, {} vs {}",
            report.streamed_tokens, per_engine);
        if let Some(ttft) = &report.ttft {
            prop_assert_eq!(ttft.count, report.completed);
        } else {
            prop_assert_eq!(report.completed, 0);
        }
    }
}

/// The CI seed-matrix entry point: `NEO_EVENT_FUZZ_SEED` (0 = deterministic order)
/// must reproduce the seed-0 faulted report bit-identically for every discipline.
/// The `cluster` CI job runs this test binary once per seed.
#[test]
fn ci_fuzz_seed_matches_the_deterministic_fault_order() {
    let seed: u64 =
        std::env::var("NEO_EVENT_FUZZ_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE);
    for discipline in Discipline::ALL {
        let reference = format!("{:?}", run_faulted(discipline, pinned_plan(), 0));
        let fuzzed = format!("{:?}", run_faulted(discipline, pinned_plan(), seed));
        assert_eq!(reference, fuzzed, "{} diverged under seed {seed}", discipline.label());
    }
}
