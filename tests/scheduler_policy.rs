//! Integration tests of the `SchedulerPolicy` seam: the blanket-driver equivalence
//! contract, cross-policy decision invariants on randomised scheduling contexts, and
//! pinned decision traces for the pipelined-offloading baselines on a small
//! deterministic workload.

use std::collections::BTreeMap;

use neo_baselines::{
    FastDecodePlusScheduler, GpuOnlyScheduler, PipoScheduler, SimpleOffloadScheduler,
    SpecOffloadScheduler, SymmetricPipelineScheduler,
};
use neo_bench::{Policy, Scenario};
use neo_core::batch::ScheduleDecision;
use neo_core::config::EngineConfig;
use neo_core::policy::{IterationPlan, SchedulerPolicy};
use neo_core::request::Request;
use neo_core::scheduler::{NeoScheduler, ScheduleContext, Scheduler};
use neo_kvcache::Device;
use neo_sim::{CostModel, ModelDesc, Testbed};
use proptest::prelude::*;

/// A deterministic, hand-built scheduling context.
struct Fixture {
    requests: BTreeMap<u64, Request>,
    waiting: Vec<u64>,
    gpu_run: Vec<u64>,
    cpu_run: Vec<u64>,
    prefill_device: BTreeMap<u64, Device>,
    gpu_free: usize,
    cpu_free: usize,
    config: EngineConfig,
}

impl Fixture {
    fn new(gpu_free: usize, cpu_free: usize) -> Self {
        Self {
            requests: BTreeMap::new(),
            waiting: vec![],
            gpu_run: vec![],
            cpu_run: vec![],
            prefill_device: BTreeMap::new(),
            gpu_free,
            cpu_free,
            config: EngineConfig::default(),
        }
    }

    fn add_waiting(&mut self, id: u64, prompt: usize) {
        self.requests.insert(id, Request::new(id, 0.0, prompt, 32));
        self.waiting.push(id);
    }

    fn add_running(&mut self, id: u64, ctx_len: usize, device: Device) {
        let mut r = Request::new(id, 0.0, ctx_len.max(1), 32);
        r.advance_prefill(r.prompt_len);
        self.requests.insert(id, r);
        match device {
            Device::Gpu => self.gpu_run.push(id),
            Device::Cpu => self.cpu_run.push(id),
            Device::Disk => unreachable!("tests place requests on GPU or CPU"),
        }
    }

    fn ctx<'a>(&'a self, cost: &'a CostModel) -> ScheduleContext<'a> {
        ScheduleContext {
            cost,
            config: &self.config,
            requests: &self.requests,
            waiting: &self.waiting,
            gpu_run: &self.gpu_run,
            cpu_run: &self.cpu_run,
            disk_run: &[],
            gpu_free_tokens: self.gpu_free,
            cpu_free_tokens: self.cpu_free,
            disk_free_tokens: 0,
            gpu_capacity_tokens: self.gpu_free,
            prefill_device: &self.prefill_device,
            admission_backlog: 0,
        }
    }
}

fn a10g_cost() -> CostModel {
    CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1)
}

/// Drives a policy's phases by hand, exactly as the blanket `Scheduler` impl does.
fn manual_schedule<P: SchedulerPolicy>(
    policy: &mut P,
    ctx: &ScheduleContext<'_>,
) -> ScheduleDecision {
    let mut plan = IterationPlan::new(ctx);
    policy.form_batches(ctx, &mut plan);
    policy.admit(ctx, &mut plan);
    policy.split_offload(ctx, &mut plan);
    let decision = policy.select_mode(ctx, plan);
    if decision.is_idle() {
        ScheduleDecision::idle()
    } else {
        decision
    }
}

/// The blanket `Scheduler` impl must be exactly the documented phase pipeline — running
/// the phases by hand on a fresh policy instance yields an identical decision.
#[test]
fn blanket_driver_is_equivalent_to_manual_phases() {
    let mut fx = Fixture::new(2_000, 200_000);
    for id in 0..3 {
        fx.add_waiting(id, 700);
    }
    for id in 10..30 {
        fx.add_running(id, 600, Device::Gpu);
    }
    for id in 50..70 {
        fx.add_running(id, 800, Device::Cpu);
    }
    let cost = a10g_cost();
    let ctx = fx.ctx(&cost);

    fn check<P: SchedulerPolicy + Clone>(policy: &P, ctx: &ScheduleContext<'_>) {
        let via_trait = policy.clone().schedule(ctx);
        let via_phases = manual_schedule(&mut policy.clone(), ctx);
        assert_eq!(via_trait, via_phases, "{} diverged from its phases", policy.policy_name());
    }

    check(&NeoScheduler::new(), &ctx);
    check(&GpuOnlyScheduler::vllm_like(), &ctx);
    check(&GpuOnlyScheduler::swiftllm_like(), &ctx);
    check(&FastDecodePlusScheduler::new(), &ctx);
    check(&SimpleOffloadScheduler::new(), &ctx);
    check(&SymmetricPipelineScheduler::new(), &ctx);
    check(&PipoScheduler::new(), &ctx);
    check(&SpecOffloadScheduler::new(), &ctx);
}

/// Structural invariants every policy's decisions must uphold, whatever the context.
fn check_decision_invariants(
    name: &str,
    fx: &Fixture,
    d: &ScheduleDecision,
) -> Result<(), TestCaseError> {
    // Every scheduled id refers to a live request, and no id is scheduled twice.
    let ids = d.scheduled_ids();
    for window in ids.windows(2) {
        prop_assert!(window[0] != window[1], "{name}: id {} scheduled twice", window[0]);
    }
    for id in &ids {
        prop_assert!(fx.requests.contains_key(id), "{name}: unknown id {id}");
    }
    // Swap lists are disjoint, and preempted requests never also execute.
    for id in &d.swap_out {
        prop_assert!(!d.swap_in.contains(id), "{name}: {id} swapped both ways");
    }
    for id in &d.preempt {
        prop_assert!(!ids.contains(id), "{name}: preempted {id} still scheduled");
    }
    // Prefills only ever sit in batch-0, within the per-iteration token budget.
    prop_assert!(d.batch1.prefills.is_empty(), "{name}: prefills in batch-1");
    let prefill_tokens: usize = d.batch0.prefills.iter().map(|p| p.new_tokens).sum();
    prop_assert!(
        prefill_tokens <= fx.config.max_batch_tokens,
        "{name}: prefill tokens {prefill_tokens} exceed the budget"
    );
    // Prefill chunks only come from the waitqueue.
    for p in &d.batch0.prefills {
        prop_assert!(fx.waiting.contains(&p.req), "{name}: prefilled {} not waiting", p.req);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All registered policies produce structurally sound decisions on randomised
    /// scheduling contexts (varying queue mix and memory pressure).
    #[test]
    fn prop_all_policies_emit_sound_decisions(
        n_waiting in 0usize..6,
        n_gpu in 0usize..40,
        n_cpu in 0usize..40,
        ctx_len in 50usize..1500,
        gpu_free in 0usize..30_000,
    ) {
        let mut fx = Fixture::new(gpu_free, 500_000);
        for id in 0..n_waiting as u64 {
            fx.add_waiting(id, ctx_len);
        }
        for id in 100..100 + n_gpu as u64 {
            fx.add_running(id, ctx_len, Device::Gpu);
        }
        for id in 200..200 + n_cpu as u64 {
            fx.add_running(id, ctx_len, Device::Cpu);
        }
        let cost = a10g_cost();
        let ctx = fx.ctx(&cost);
        for policy in Policy::ALL {
            let mut sched = policy.scheduler();
            let d = sched.schedule(&ctx);
            check_decision_invariants(sched.name(), &fx, &d)?;
        }
    }

    /// Every registered policy drains random workloads through the engine, conserving
    /// tokens and releasing all KV.
    #[test]
    fn prop_all_policies_drain_workloads(
        specs in proptest::collection::vec((50usize..600, 1usize..24), 1..10)
    ) {
        let scenario = Scenario::a10g_8b();
        for policy in Policy::ALL {
            let mut engine = scenario.engine(policy);
            for (i, &(prompt, output)) in specs.iter().enumerate() {
                engine.submit(Request::new(i as u64, 0.0, prompt, output)).unwrap();
            }
            let mut iterations = 0u64;
            while !engine.is_idle() && iterations < 400_000 {
                engine.step();
                iterations += 1;
            }
            prop_assert!(engine.is_idle(), "{} did not drain", engine.scheduler_name());
            prop_assert_eq!(engine.completed().len(), specs.len());
            let expected_decode: u64 = specs.iter().map(|&(_, o)| o as u64).sum();
            prop_assert_eq!(engine.total_decode_tokens(), expected_decode);
            prop_assert_eq!(engine.kv().num_sequences(), 0);
        }
    }
}

/// Compact signature of one executed iteration, for decision-trace pinning.
fn signature(e: &mut neo_core::Engine) -> (String, usize, usize, usize, usize) {
    let r = e.step();
    (r.mode.to_string(), r.prefill_tokens, r.decode_tokens, r.cpu_offloaded, r.swapped_out)
}

/// PIPO's schedule on a small deterministic trace, pinned iteration by iteration: one
/// 512-token chunked prefill per request (KV to the host), then streamed decode batches
/// covering all four requests until they retire together.
#[test]
fn pipo_decision_trace_is_pinned() {
    let scenario = Scenario::t4_7b();
    let mut e = scenario.engine(Policy::Pipo);
    for id in 0..4 {
        e.submit(Request::new(id, 0.0, 600, 4)).unwrap();
    }
    // Prefill: 600-token prompts in 512/88-token chunks, all four requests interleaved
    // under the 2048-token budget; the completing chunk emits the first output token.
    assert_eq!(signature(&mut e), ("streamed".into(), 2048, 0, 0, 0));
    assert_eq!(signature(&mut e), ("streamed".into(), 352, 4, 0, 0));
    // Decode: all four stream every iteration until their 4 tokens are out.
    assert_eq!(signature(&mut e), ("streamed".into(), 0, 4, 4, 0));
    assert_eq!(signature(&mut e), ("streamed".into(), 0, 4, 4, 0));
    assert_eq!(signature(&mut e), ("streamed".into(), 0, 4, 4, 0));
    assert!(e.is_idle(), "all requests retired after the pinned trace");
    assert_eq!(e.completed().len(), 4);
}

/// SpecOffload's schedule on a deterministic memory-pressure trace: GPU-first prefill,
/// swap-outs once the T4's KV pool fills, then speculative CPU decodes alongside the GPU
/// batch.
#[test]
fn specoffload_decision_trace_is_pinned() {
    let scenario = Scenario::t4_7b();
    let mut e = scenario.engine(Policy::SpecOffload);
    for id in 0..24 {
        e.submit(Request::new(id, 0.0, 400, 16)).unwrap();
    }
    let mut saw_swap_out = false;
    let mut saw_speculative_mix = false;
    let mut iterations = 0;
    while !e.is_idle() && iterations < 100_000 {
        let r = e.step();
        if r.swapped_out > 0 {
            saw_swap_out = true;
        }
        // A speculative iteration runs GPU decodes and claimed CPU decodes together.
        if r.cpu_offloaded > 0 && r.decode_tokens > r.cpu_offloaded {
            saw_speculative_mix = true;
        }
        iterations += 1;
    }
    assert_eq!(e.completed().len(), 24);
    assert!(saw_swap_out, "T4 memory pressure must force swap-outs");
    assert!(saw_speculative_mix, "speculation must mix CPU claims into GPU iterations");
}

/// The engine-facing name of each registered policy is stable — figure JSON and
/// BENCH_scheduler.json reference these strings.
#[test]
fn policy_engine_names_are_pinned() {
    let expected = [
        (Policy::Neo, "neo"),
        (Policy::VllmLike, "vllm-like"),
        (Policy::SwiftLlmLike, "swiftllm-like"),
        (Policy::FastDecodePlus, "fastdecode+"),
        (Policy::SimpleOffload, "simple-offload"),
        (Policy::SymmetricPipeline, "symmetric-pipeline"),
        (Policy::Pipo, "pipo"),
        (Policy::SpecOffload, "specoffload"),
    ];
    for (policy, name) in expected {
        assert_eq!(policy.scheduler().name(), name);
    }
}
