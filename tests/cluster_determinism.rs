//! Cluster-level determinism contracts.
//!
//! The cluster layer is where same-tick dispatch order is most tempting to leak into
//! outputs: a router reading engine queue depths at tick *t* would see different
//! depths depending on which same-tick component the event heap dispatched first.
//! `neo_cluster` is built so that cannot happen (every component tick settles the
//! whole cluster in one fixed global order), and this suite pins the contract:
//!
//! * the full [`neo_cluster::ClusterReport`] — routing trace included — is
//!   bit-identical across ≥ 32 fuzzed tie-break seeds (proptest) and across the
//!   `NEO_EVENT_FUZZ_SEED` CI matrix;
//! * one routing trace is pinned with exact literals, so any change to the settle
//!   order, the link model, or a discipline shows up as a reviewable diff;
//! * total tokens served are conserved: every discipline streams exactly the trace's
//!   output tokens, no matter how differently it spreads them over engines.

use neo_bench::{Policy, Scenario};
use neo_cluster::{Cluster, ClusterConfig, ClusterReport, Discipline, RouteRecord};
use neo_core::Engine;
use neo_workload::{synthetic, ArrivalProcess, Trace};
use proptest::prelude::*;

/// T4 + A10G: the smallest fleet where capacity-aware and capacity-blind disciplines
/// genuinely disagree, small enough for 32+ proptest cases.
fn hetero_pair() -> Vec<(String, Engine)> {
    vec![
        ("t4".to_string(), Scenario::t4_7b().engine(Policy::Neo)),
        ("a10g".to_string(), Scenario::a10g_8b().engine(Policy::Neo)),
    ]
}

fn pinned_trace() -> Trace {
    synthetic(10, 200, 8, ArrivalProcess::Uniform { rate: 5.0 }, 13)
}

fn run_cluster(discipline: Discipline, tie_break_seed: u64) -> ClusterReport {
    let config = ClusterConfig { discipline, tie_break_seed, ..ClusterConfig::default() };
    Cluster::new(hetero_pair(), &pinned_trace(), config).run()
}

/// Golden routing trace: least-KV over the T4+A10G pair, pinned with `{:?}` round-trip
/// literals. The A10G (larger KV cache) must absorb the majority of the stream; any
/// change to the settle order, link serialization, or the KV-pressure score moves at
/// least one of these records.
#[test]
fn least_kv_routing_trace_is_pinned() {
    let report = run_cluster(Discipline::LeastKv, 0);
    let expected = vec![
        RouteRecord { id: 0, time: 0.2, engine: 0 },
        RouteRecord { id: 1, time: 0.4, engine: 1 },
        RouteRecord { id: 2, time: 0.6, engine: 1 },
        RouteRecord { id: 3, time: 0.8, engine: 0 },
        RouteRecord { id: 4, time: 1.0, engine: 1 },
        RouteRecord { id: 5, time: 1.2, engine: 1 },
        RouteRecord { id: 6, time: 1.4, engine: 0 },
        RouteRecord { id: 7, time: 1.6, engine: 1 },
        RouteRecord { id: 8, time: 1.8, engine: 1 },
        RouteRecord { id: 9, time: 2.0, engine: 0 },
    ];
    assert_eq!(report.routes, expected);
    assert_eq!(report.completed, 10);
    assert_eq!(report.streamed_tokens, 84);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ≥ 32 fuzzed tie-break seeds × every discipline: the full cluster report —
    /// routes, per-engine summaries, TTFT/ITL with f64 round-trip precision — is
    /// bit-identical to the deterministic (seed 0) dispatch order.
    #[test]
    fn fuzzed_dispatch_order_never_changes_the_cluster_report(
        seed in 1u64..u64::MAX,
        discipline_index in 0usize..4,
    ) {
        let discipline = Discipline::ALL[discipline_index];
        let reference = format!("{:?}", run_cluster(discipline, 0));
        let fuzzed = format!("{:?}", run_cluster(discipline, seed));
        prop_assert_eq!(&reference, &fuzzed);
    }

    /// Token conservation across router disciplines: whatever the routing, the fleet
    /// streams exactly the trace's output tokens and completes every request.
    #[test]
    fn total_tokens_served_are_conserved_across_disciplines(
        trace_seed in 1u64..1_000_000u64,
    ) {
        let trace = synthetic(8, 180, 6, ArrivalProcess::Uniform { rate: 4.0 }, trace_seed);
        let expected_tokens: u64 =
            trace.requests().iter().map(|r| r.output_len as u64).sum();
        for discipline in Discipline::ALL {
            let config = ClusterConfig { discipline, ..ClusterConfig::default() };
            let report = Cluster::new(hetero_pair(), &trace, config).run();
            prop_assert_eq!(report.completed, trace.len());
            prop_assert_eq!(report.streamed_tokens, expected_tokens);
            let per_engine: u64 = report.engines.iter().map(|e| e.streamed_tokens).sum();
            prop_assert_eq!(per_engine, expected_tokens);
            prop_assert_eq!(report.routes.len(), trace.len());
        }
    }
}

/// The CI seed-matrix entry point: `NEO_EVENT_FUZZ_SEED` (0 = deterministic order)
/// must reproduce the seed-0 cluster report bit-identically for every discipline.
/// The `cluster` CI job runs this test binary once per seed.
#[test]
fn ci_fuzz_seed_matches_the_deterministic_cluster_order() {
    let seed: u64 =
        std::env::var("NEO_EVENT_FUZZ_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE);
    for discipline in Discipline::ALL {
        let reference = format!("{:?}", run_cluster(discipline, 0));
        let fuzzed = format!("{:?}", run_cluster(discipline, seed));
        assert_eq!(reference, fuzzed, "{} diverged under seed {seed}", discipline.label());
    }
}
