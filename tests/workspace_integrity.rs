//! Workspace-integrity smoke test: asserts that every public re-export the
//! top-level integration tests and examples rely on actually resolves, so the
//! manifest/dependency graph cannot silently drift.
//!
//! Each `use` below mirrors an import in `tests/*.rs` or `examples/*.rs`; if
//! a crate stops re-exporting one of these names (or a manifest loses a
//! dependency edge), this test fails to compile — which is the point.

#![allow(unused_imports)]

use neo_bench::{Policy, Scenario};
use neo_core::config::EngineConfig;
use neo_core::engine::Engine;
use neo_core::request::Request;
use neo_core::scheduler::{NeoScheduler, Scheduler};
use neo_core::ExecutionMode;
use neo_kvcache::Device;
use neo_model::{argmax, Model, PagedKvCache};
use neo_serve::{
    run_offline, run_online, RequestHandle, RequestStatus, Server, ServerReport, TokenEvent,
};
use neo_sim::{CostModel, ModelDesc, Testbed};
use neo_workload::{azure_code_like, osc_like, synthetic, ArrivalEvent, ArrivalProcess, Trace};

/// The imports above are the real assertions; this test exists so the file
/// reports a green check instead of compiling silently.
#[test]
fn public_surface_resolves() {
    // A few spot-checks that the re-exported names refer to usable items.
    let _config = EngineConfig::default();
    let _mode = ExecutionMode::GpuOnly;
    let _device = Device::Gpu;
}

/// The determinism-hygiene gate must stay wired into CI: a `lint` job that
/// runs `neo-lint` in deny mode. Removing or renaming the job (say, in a CI
/// refactor) would silently drop the static half of the determinism contract.
#[test]
fn ci_runs_the_lint_job() {
    let ci = concat!(env!("CARGO_MANIFEST_DIR"), "/../../.github/workflows/ci.yml");
    let yaml = std::fs::read_to_string(ci).expect("read .github/workflows/ci.yml");
    assert!(yaml.contains("\n  lint:"), "ci.yml must define a `lint` job");
    assert!(
        yaml.contains("cargo run -p neo-lint -- --deny"),
        "the lint job must run neo-lint in deny mode"
    );
}
