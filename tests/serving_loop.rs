//! Integration tests of the event-driven serving loop: streaming order, mid-decode
//! cancellation (KV occupancy asserted through `neo-kvcache`), and admission
//! backpressure, across NEO and baseline policies on paper testbeds.

use std::cell::RefCell;
use std::rc::Rc;

use neo_bench::{Policy, Scenario};
use neo_core::EngineConfig;
use neo_kvcache::Device;
use neo_serve::{run_online, RequestStatus, Server, TokenEvent};
use neo_workload::{azure_code_like, osc_like, ArrivalProcess};

#[test]
fn streaming_callbacks_fire_once_per_token_in_arrival_order() {
    let scenario = Scenario::a10g_8b();
    let trace = azure_code_like(30, ArrivalProcess::Poisson { rate: 1.0 }, 11);
    for policy in [Policy::Neo, Policy::VllmLike] {
        let mut server = Server::new(scenario.engine(policy)).with_max_iterations(20_000_000);
        let log: Rc<RefCell<Vec<TokenEvent>>> = Rc::new(RefCell::new(Vec::new()));
        for event in trace.events() {
            let sink = Rc::clone(&log);
            server
                .submit_with_callback(event.time, event.prompt_len, event.output_len, move |t| {
                    sink.borrow_mut().push(*t)
                })
                .unwrap();
        }
        let report = server.run_until_idle();
        assert_eq!(report.completed, trace.len());

        let log = log.borrow();
        let expected_tokens: usize = trace.requests().iter().map(|r| r.output_len).sum();
        assert_eq!(log.len(), expected_tokens, "{}", policy.label());
        assert_eq!(report.streamed_tokens as usize, expected_tokens);
        // Emission times never go backwards, and each request sees its own tokens
        // exactly once, in index order, ending with is_last.
        assert!(log.windows(2).all(|w| w[0].time <= w[1].time));
        for (id, request) in trace.requests().iter().enumerate() {
            let mine: Vec<&TokenEvent> = log.iter().filter(|t| t.request_id == id as u64).collect();
            assert_eq!(mine.len(), request.output_len);
            assert!(mine.iter().enumerate().all(|(i, t)| t.index == i));
            assert!(mine.last().unwrap().is_last);
            assert!(mine[..mine.len() - 1].iter().all(|t| !t.is_last));
        }
    }
}

#[test]
fn cancellation_mid_decode_frees_kv_blocks_on_the_t4() {
    // The memory-starved T4: cancelled KV must come back to the pools immediately,
    // otherwise abandoned requests would keep strangling the GPU cache.
    let scenario = Scenario::t4_7b();
    let mut server = Server::new(scenario.engine(Policy::Neo)).with_max_iterations(20_000_000);
    let victims: Vec<_> = (0..8).map(|_| server.submit(0.0, 300, 4_000).unwrap()).collect();
    let survivor = server.submit(0.0, 300, 60).unwrap();

    // Run until every request occupies KV and has streamed at least one token.
    while server.engine().completed().is_empty()
        && !victims.iter().all(
            |&v| matches!(server.status(v), RequestStatus::Running { generated } if generated > 0),
        )
    {
        assert!(server.tick(), "work remains");
    }
    let kv = server.engine().kv();
    assert_eq!(kv.num_sequences(), 9);
    let free_before = kv.free_tokens(Device::Gpu) + kv.free_tokens(Device::Cpu);

    for &v in &victims {
        server.cancel_now(v);
    }
    assert!(server.tick());
    let kv = server.engine().kv();
    assert_eq!(kv.num_sequences(), 1, "all cancelled sequences must be released");
    assert!(
        kv.free_tokens(Device::Gpu) + kv.free_tokens(Device::Cpu) > free_before,
        "cancellation must return KV tokens to the pools"
    );

    let report = server.run_until_idle();
    assert_eq!(report.completed, 1);
    assert_eq!(report.cancelled, 8);
    assert!(matches!(server.status(survivor), RequestStatus::Finished { .. }));
    assert_eq!(server.engine().kv().num_sequences(), 0);
}

#[test]
fn admission_backpressure_delays_but_never_drops_requests() {
    // A tiny waitqueue forces the server-side backlog to absorb an arrival burst.
    let scenario = Scenario::a10g_8b();
    let config = EngineConfig { max_waiting_requests: 3, ..EngineConfig::default() };
    let trace = osc_like(50, ArrivalProcess::Poisson { rate: 50.0 }, 13);
    let mut server = Server::new(scenario.engine_with_config(Policy::Neo, config))
        .with_max_iterations(20_000_000);
    let handles: Vec<_> = trace
        .events()
        .map(|e| server.submit(e.time, e.prompt_len, e.output_len).unwrap())
        .collect();
    let report = server.run_until_idle();
    assert!(report.max_backlog > 0, "the burst must exercise the backlog");
    assert_eq!(report.completed, trace.len(), "backpressure delays, never drops");
    assert_eq!(report.cancelled, 0);
    assert_eq!(server.backlog_len(), 0);
    for handle in handles {
        assert!(matches!(server.status(handle), RequestStatus::Finished { .. }));
    }
}

#[test]
fn run_online_matches_a_manual_event_loop_replay() {
    // The trace-replay wrapper and a hand-driven server must agree exactly: same
    // completions, same makespan, same latency metrics.
    let scenario = Scenario::a10g_8b();
    let trace = azure_code_like(40, ArrivalProcess::Poisson { rate: 1.5 }, 17);
    let result = run_online(scenario.engine(Policy::Neo), &trace, 1.5, 20_000_000);

    let mut server = Server::new(scenario.engine(Policy::Neo)).with_max_iterations(20_000_000);
    for event in trace.events() {
        server.submit(event.time, event.prompt_len, event.output_len).unwrap();
    }
    let report = server.run_until_idle();

    assert_eq!(result.completed, report.completed);
    assert_eq!(result.makespan, report.makespan);
    assert_eq!(result.ttft.mean, report.ttft.unwrap().mean);
    assert_eq!(result.itl.unwrap().p99, report.itl.unwrap().p99);
    assert_eq!(result.offload_fraction, report.offload_fraction);
}

#[test]
fn ttft_and_itl_degrade_gracefully_under_load() {
    // Sanity: the streaming metrics respond to load the way queueing theory says they
    // should — higher offered rate, no lower TTFT.
    let scenario = Scenario::a10g_8b();
    let run = |rate: f64| {
        let trace = azure_code_like(40, ArrivalProcess::Poisson { rate }, 19);
        run_online(scenario.engine(Policy::VllmLike), &trace, rate, 20_000_000)
    };
    let low = run(0.3);
    let high = run(8.0);
    assert!(
        high.ttft.mean >= low.ttft.mean * 0.8,
        "TTFT should not improve under heavy load: low {:.3}s vs high {:.3}s",
        low.ttft.mean,
        high.ttft.mean
    );
    assert!(low.itl.is_some() && high.itl.is_some());
}
