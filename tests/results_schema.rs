//! Regeneration contract for the checked-in `results/` figure JSON.
//!
//! The fig8-family files are emitted by `cargo run --release -p neo-bench --bin
//! fig8_fastdecode`, the TP sweep by `--bin fig_tp_sweep` and the hardware table by
//! `--bin table1_hardware`; these tests pin the schema those files must keep (so plots
//! built on them do not silently rot) and check that every policy label appearing in
//! them maps back to a registered `SchedulerPolicy` via `neo_bench::Policy::from_label`.
//! The `results-fresh` CI job regenerates every checked-in file and fails on diff, so
//! the JSON can never rot against the cost model that priced it.

use std::path::PathBuf;

use neo_bench::Policy;
use serde::Deserialize;

#[derive(Debug, Deserialize)]
struct OnlinePoint {
    policy: String,
    rate: f64,
    avg_per_token_latency: f64,
    mean_ttft: f64,
}

#[derive(Debug, Deserialize)]
struct OfflinePoint {
    policy: String,
    output_len: usize,
    relative_throughput: f64,
}

fn results_file(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn assert_registered(policies: impl IntoIterator<Item = String>, file: &str) {
    for label in policies {
        let policy = Policy::from_label(&label)
            .unwrap_or_else(|| panic!("{file}: policy {label:?} is not registered"));
        // The registry entry must construct a live scheduler whose engine-facing name is
        // non-empty — i.e. the label maps to a real SchedulerPolicy, not a stale string.
        assert!(!policy.scheduler().name().is_empty());
    }
}

#[derive(Debug, Deserialize)]
struct TpSweepPoint {
    tp: usize,
    feasible: bool,
    weight_gb_per_rank: f64,
    kv_shard_kib_per_token: f64,
    rank_kv_capacity_tokens: usize,
    swap_out_s_per_layer_1k: f64,
    swap_in_s_per_layer_1k: f64,
    cpu_attn_s_50k: f64,
    allreduce_s_512: f64,
    lm_head_allgather_s_64: f64,
    neo_token_throughput: f64,
    gpu_only_token_throughput: f64,
    neo_relative_throughput: f64,
}

#[derive(Debug, Deserialize)]
struct Table1Row {
    name: String,
    gpu: String,
    gpus: usize,
    cpu: String,
    cpu_mem_gb: u64,
    gpu_mem_bw_gbs: f64,
    cpu_mem_bw_gbs: f64,
    tp: usize,
    weight_gb_per_rank: f64,
    kv_shard_kib_per_token: f64,
    gpu_kv_capacity_tokens: usize,
    cpu_kv_capacity_tokens: usize,
}

#[test]
fn fig_tp_sweep_deserializes_and_respects_the_tp_contract() {
    let points: Vec<TpSweepPoint> =
        serde_json::from_str(&results_file("fig_tp_sweep.json")).expect("valid fig_tp_sweep JSON");
    // The sweep must cover tp ∈ {1, 2, 4, 8} in order.
    assert_eq!(points.iter().map(|p| p.tp).collect::<Vec<_>>(), vec![1, 2, 4, 8]);
    for p in &points {
        assert!(p.weight_gb_per_rank > 0.0);
        assert!(p.kv_shard_kib_per_token > 0.0);
        assert!(p.swap_out_s_per_layer_1k > 0.0 && p.swap_in_s_per_layer_1k > 0.0);
        assert!(p.cpu_attn_s_50k > 0.0);
        if p.tp == 1 {
            assert_eq!(p.allreduce_s_512, 0.0, "no collectives at tp = 1");
            assert_eq!(p.lm_head_allgather_s_64, 0.0);
            assert!(!p.feasible, "70B weights cannot fit a single 80 GB H100");
            assert_eq!(p.rank_kv_capacity_tokens, 0);
        } else {
            assert!(p.allreduce_s_512 > 0.0, "tp > 1 must price the all-reduce");
            assert!(p.lm_head_allgather_s_64 > 0.0, "tp > 1 must price the LM-head all-gather");
            assert!(p.feasible && p.rank_kv_capacity_tokens > 0);
            assert!(p.neo_token_throughput > 0.0 && p.gpu_only_token_throughput > 0.0);
            assert!(p.neo_relative_throughput.is_finite() && p.neo_relative_throughput > 0.0);
        }
    }
    // Per-rank PCIe terms are monotonically non-increasing in tp; weight shards shrink.
    for w in points.windows(2) {
        assert!(w[1].swap_out_s_per_layer_1k <= w[0].swap_out_s_per_layer_1k);
        assert!(w[1].swap_in_s_per_layer_1k <= w[0].swap_in_s_per_layer_1k);
        assert!(w[1].cpu_attn_s_50k <= w[0].cpu_attn_s_50k);
        assert!(w[1].weight_gb_per_rank < w[0].weight_gb_per_rank);
    }
}

#[test]
fn table1_hardware_deserializes_with_per_rank_columns() {
    let rows: Vec<Table1Row> =
        serde_json::from_str(&results_file("table1_hardware.json")).expect("valid table1 JSON");
    assert!(!rows.is_empty());
    for r in &rows {
        assert!(!r.name.is_empty() && !r.gpu.is_empty() && !r.cpu.is_empty());
        assert!(r.gpus >= 1 && r.tp >= 1 && r.tp <= r.gpus);
        assert!(r.cpu_mem_gb > 0 && r.gpu_mem_bw_gbs > 0.0 && r.cpu_mem_bw_gbs > 0.0);
        assert!(r.weight_gb_per_rank > 0.0);
        assert!(r.kv_shard_kib_per_token > 0.0);
        assert!(r.cpu_kv_capacity_tokens > r.gpu_kv_capacity_tokens, "CPU cache must be larger");
    }
    // The 2×H100 row is the scenario this PR re-priced: tp = 2, halved shards.
    let hgx = rows.iter().find(|r| r.name == "hgx-2xH100").expect("hgx row present");
    assert_eq!(hgx.tp, 2);
    assert!(hgx.weight_gb_per_rank < 80.0, "the 70B shard must fit an 80 GB card at tp = 2");
}

#[test]
fn fig8a_online_deserializes_and_policies_are_registered() {
    let points: Vec<OnlinePoint> =
        serde_json::from_str(&results_file("fig8a_online.json")).expect("valid fig8a JSON");
    assert!(!points.is_empty());
    for p in &points {
        assert!(p.rate > 0.0);
        assert!(p.avg_per_token_latency.is_finite() && p.avg_per_token_latency > 0.0);
        assert!(p.mean_ttft.is_finite() && p.mean_ttft > 0.0);
    }
    assert_registered(points.into_iter().map(|p| p.policy), "fig8a_online.json");
}

#[test]
fn fig8b_offline_deserializes_and_policies_are_registered() {
    let points: Vec<OfflinePoint> =
        serde_json::from_str(&results_file("fig8b_offline.json")).expect("valid fig8b JSON");
    assert!(!points.is_empty());
    for p in &points {
        assert!(p.output_len > 0);
        assert!(p.relative_throughput.is_finite() && p.relative_throughput > 0.0);
    }
    assert_registered(points.into_iter().map(|p| p.policy), "fig8b_offline.json");
}

#[test]
fn fig8c_offload_family_deserializes_and_covers_the_new_policies() {
    let points: Vec<OfflinePoint> =
        serde_json::from_str(&results_file("fig8c_offload_family.json")).expect("valid fig8c JSON");
    assert!(!points.is_empty());
    for p in &points {
        assert!(p.output_len > 0);
        assert!(p.relative_throughput.is_finite() && p.relative_throughput > 0.0);
    }
    // The offload-family comparison must cover the pipelined-offloading baselines next to
    // NEO and FastDecode+, at every swept output length.
    for required in ["NEO", "FastDecode+", "PIPO", "SpecOffload"] {
        let count = points.iter().filter(|p| p.policy == required).count();
        assert!(count >= 6, "fig8c must sweep {required} over ≥6 output lengths, got {count}");
    }
    assert_registered(points.into_iter().map(|p| p.policy), "fig8c_offload_family.json");
}

#[derive(Debug, Deserialize)]
struct Fig9Point {
    setting: String,
    input_len: usize,
    output_len: usize,
    relative_throughput: f64,
    offload_fraction: f64,
}

#[test]
fn fig9_synthetic_sweep_deserializes_and_covers_the_three_settings() {
    let points: Vec<Fig9Point> =
        serde_json::from_str(&results_file("fig9_synthetic_sweep.json")).expect("valid fig9 JSON");
    assert!(!points.is_empty());
    for p in &points {
        assert!(p.input_len > 0 && p.output_len > 0);
        assert!(p.relative_throughput.is_finite() && p.relative_throughput > 0.0);
        assert!((0.0..=1.0).contains(&p.offload_fraction));
    }
    // Each hardware/model setting sweeps a full input × output grid (§5.4).
    for (setting, grid) in
        [("2xH100 + LLaMa-3.1-70B", 18), ("A10G + LLaMa-3.1-8B", 18), ("T4 + LLaMa-2-7B", 12)]
    {
        let count = points.iter().filter(|p| p.setting == setting).count();
        assert_eq!(count, grid, "fig9 must sweep the full grid for {setting}");
    }
}

#[derive(Debug, Deserialize)]
struct Fig10bPoint {
    setting: String,
    system: String,
    token_throughput: f64,
}

#[test]
fn fig10b_swiftllm_vllm_deserializes_and_covers_both_settings() {
    let points: Vec<Fig10bPoint> = serde_json::from_str(&results_file("fig10b_swiftllm_vllm.json"))
        .expect("valid fig10b JSON");
    assert_eq!(points.len(), 4, "two settings × two systems");
    for setting in ["A10G + LLaMa-3.1-8B", "2xH100 + LLaMa-3.1-70B"] {
        let get = |sys: &str| {
            points
                .iter()
                .find(|p| p.setting == setting && p.system == sys)
                .unwrap_or_else(|| panic!("fig10b: missing {sys} on {setting}"))
                .token_throughput
        };
        let (swift, vllm) = (get("SwiftLLM"), get("vLLM"));
        assert!(swift > 0.0 && vllm > 0.0);
        // The two GPU-only baselines are the same order of magnitude (§5.5 finds them
        // comparable); the exact ratio is a modelling choice the figure records, not a
        // shape this test pins.
        let ratio = swift / vllm;
        assert!((0.5..=2.0).contains(&ratio), "fig10b: {setting} ratio {ratio} out of range");
    }
}

#[derive(Debug, Deserialize)]
struct ClusterSweepPoint {
    fleet: String,
    discipline: String,
    rate: f64,
    requests: usize,
    completed: usize,
    mean_ttft: f64,
    p99_ttft: f64,
    mean_itl: f64,
    p99_itl: f64,
    streamed_tokens: u64,
    makespan: f64,
}

#[test]
fn fig_cluster_sweep_deserializes_and_disciplines_are_registered() {
    let points: Vec<ClusterSweepPoint> =
        serde_json::from_str(&results_file("fig_cluster_sweep.json"))
            .expect("valid fig_cluster_sweep JSON");
    assert!(!points.is_empty());
    for p in &points {
        neo_cluster::Discipline::from_label(&p.discipline).unwrap_or_else(|| {
            panic!("fig_cluster_sweep.json: discipline {:?} is not registered", p.discipline)
        });
        assert!(p.rate > 0.0);
        assert_eq!(p.completed, p.requests, "every swept point must drain its trace");
        assert!(p.mean_ttft.is_finite() && p.mean_ttft > 0.0);
        assert!(p.p99_ttft >= p.mean_ttft * 0.5);
        assert!(p.mean_itl.is_finite() && p.mean_itl > 0.0);
        assert!(p.p99_itl >= p.mean_itl);
        assert!(p.streamed_tokens > 0 && p.makespan > 0.0);
    }
    // Both fleets sweep every discipline over the same rate grid.
    let fleets: Vec<&str> = {
        let mut f: Vec<&str> = points.iter().map(|p| p.fleet.as_str()).collect();
        f.dedup();
        f
    };
    assert_eq!(fleets.len(), 2, "a homogeneous and a heterogeneous fleet");
    let homogeneous = fleets[0];
    let heterogeneous = fleets[1];
    assert!(homogeneous.contains("homogeneous") && heterogeneous.contains("heterogeneous"));
    for fleet in [homogeneous, heterogeneous] {
        for d in neo_cluster::Discipline::ALL {
            let series: Vec<&ClusterSweepPoint> =
                points.iter().filter(|p| p.fleet == fleet && p.discipline == d.label()).collect();
            assert!(series.len() >= 4, "{fleet}/{}: needs ≥4 swept rates", d.label());
            assert!(series.windows(2).all(|w| w[1].rate > w[0].rate), "rates ascend");
            // Token totals are conserved across disciplines and rates: the same trace
            // serves every point of a fleet.
            assert!(series.windows(2).all(|w| w[0].streamed_tokens == w[1].streamed_tokens));
        }
    }
    // On the homogeneous fleet queueing dominates: mean latency columns are monotone
    // in offered load for every discipline (the sweep compresses one fixed arrival
    // sequence, so more load can only mean more queueing). The heterogeneous fleet is
    // deliberately not pinned this way: preemption-recompute churn on the overloaded
    // T4 makes capacity-blind curves nonlinear — that instability is the finding.
    for d in neo_cluster::Discipline::ALL {
        let series: Vec<&ClusterSweepPoint> =
            points.iter().filter(|p| p.fleet == homogeneous && p.discipline == d.label()).collect();
        assert!(
            series.windows(2).all(|w| w[1].mean_ttft > w[0].mean_ttft),
            "{}: homogeneous mean TTFT must rise with load",
            d.label()
        );
        assert!(
            series.windows(2).all(|w| w[1].mean_itl > w[0].mean_itl),
            "{}: homogeneous mean ITL must rise with load",
            d.label()
        );
    }
    // On the heterogeneous fleet the capacity-aware discipline must beat every
    // capacity-blind one at the two highest loads, and the four curves must be
    // pairwise distinct.
    let hetero_ttft = |d: neo_cluster::Discipline, rate: f64| {
        points
            .iter()
            .find(|p| p.fleet == heterogeneous && p.discipline == d.label() && p.rate == rate)
            .unwrap_or_else(|| panic!("missing {} at rate {rate}", d.label()))
            .mean_ttft
    };
    let rates: Vec<f64> = points
        .iter()
        .filter(|p| p.fleet == heterogeneous && p.discipline == "least-kv")
        .map(|p| p.rate)
        .collect();
    for &rate in &rates[rates.len() - 2..] {
        let kv = hetero_ttft(neo_cluster::Discipline::LeastKv, rate);
        for blind in [
            neo_cluster::Discipline::RoundRobin,
            neo_cluster::Discipline::CFcfs,
            neo_cluster::Discipline::DFcfs,
        ] {
            assert!(
                kv < hetero_ttft(blind, rate),
                "least-kv must beat {} on the heterogeneous fleet at rate {rate}",
                blind.label()
            );
        }
    }
    for (i, a) in neo_cluster::Discipline::ALL.iter().enumerate() {
        for b in &neo_cluster::Discipline::ALL[i + 1..] {
            let curve = |d: &neo_cluster::Discipline| {
                rates.iter().map(|&r| hetero_ttft(*d, r)).collect::<Vec<f64>>()
            };
            assert_ne!(
                curve(a),
                curve(b),
                "disciplines {} and {} must produce distinct heterogeneous curves",
                a.label(),
                b.label()
            );
        }
    }
}

#[derive(Debug, Deserialize)]
struct FaultSweepPoint {
    discipline: String,
    failover: bool,
    outages: usize,
    retry_budget: u32,
    requests: usize,
    completed: usize,
    dropped: usize,
    retries: u64,
    p99_ttft: f64,
    streamed_tokens: u64,
}

#[test]
fn fig_fault_sweep_deserializes_and_failover_pays_for_itself() {
    let points: Vec<FaultSweepPoint> = serde_json::from_str(&results_file("fig_fault_sweep.json"))
        .expect("valid fig_fault_sweep JSON");
    assert!(!points.is_empty());
    for p in &points {
        neo_cluster::Discipline::from_label(&p.discipline).unwrap_or_else(|| {
            panic!("fig_fault_sweep.json: discipline {:?} is not registered", p.discipline)
        });
        // Conservation: goodput never exceeds offered load and every request ends
        // terminal; the shed column is exactly the shortfall.
        assert!(p.completed <= p.requests, "goodput cannot exceed offered load");
        assert_eq!(p.completed + p.dropped, p.requests, "every request must end terminal");
        // Retries are bounded by the per-request budget, and only exist with failover.
        assert!(p.retries <= p.requests as u64 * p.retry_budget as u64);
        if !p.failover {
            assert_eq!(p.retries, 0, "no failover, no re-dispatch");
        }
        if p.completed > 0 {
            assert!(p.p99_ttft.is_finite() && p.p99_ttft > 0.0);
            assert!(p.streamed_tokens > 0);
        }
        // A faultless fleet under the generous sweep SLO sheds nothing.
        if p.outages == 0 {
            assert_eq!(p.dropped, 0);
            assert_eq!(p.retries, 0);
        }
    }
    // Every (outage count, discipline) cell is swept with failover both on and off.
    let outage_counts: Vec<usize> = {
        let mut o: Vec<usize> = points.iter().map(|p| p.outages).collect();
        o.dedup();
        o
    };
    assert!(outage_counts.len() >= 4, "needs ≥4 swept fault rates");
    assert!(outage_counts.windows(2).all(|w| w[1] > w[0]), "fault rates ascend");
    let cell = |outages: usize, d: &str, failover: bool| {
        points
            .iter()
            .find(|p| p.outages == outages && p.discipline == d && p.failover == failover)
            .unwrap_or_else(|| panic!("missing cell ({outages}, {d}, failover={failover})"))
    };
    // At the two highest fault rates, failover must dominate no-failover on goodput
    // for every discipline — the whole point of the retry path.
    for &outages in &outage_counts[outage_counts.len() - 2..] {
        for d in neo_cluster::Discipline::ALL {
            let with = cell(outages, d.label(), true);
            let without = cell(outages, d.label(), false);
            assert!(
                with.completed > without.completed,
                "{}/{outages} outages: failover ({}) must beat no-failover ({})",
                d.label(),
                with.completed,
                without.completed
            );
            assert!(with.retries > 0, "surviving a real outage requires re-dispatch");
        }
    }
}

#[derive(Debug, Deserialize)]
struct AblationRow {
    ablation: String,
    value: String,
    relative_throughput: f64,
}

#[test]
fn ablation_knobs_deserializes_and_keeps_the_reference_row_first() {
    let rows: Vec<AblationRow> =
        serde_json::from_str(&results_file("ablation_knobs.json")).expect("valid ablation JSON");
    assert_eq!(rows[0].ablation, "reference");
    assert_eq!(rows[0].value, "defaults");
    for r in &rows {
        assert!(!r.value.is_empty());
        assert!(r.relative_throughput.is_finite() && r.relative_throughput > 0.0);
    }
    // Every documented knob must be swept.
    for knob in ["layerwise swap overlap", "profiling noise", "balance slack", "swap-in watermark"]
    {
        assert!(rows.iter().any(|r| r.ablation == knob), "ablation_knobs must sweep {knob:?}");
    }
}

#[derive(Debug, Deserialize)]
struct PrefixCachePoint {
    policy: String,
    cache: String,
    shared_system_prob: f64,
    request_rate: f64,
    hit_rate: f64,
    prefix_hit_tokens: usize,
    prompt_tokens: usize,
    cow_splits: usize,
    mean_ttft: f64,
    completed: usize,
}

#[test]
fn fig_prefix_cache_deserializes_and_ttft_improves_with_hit_rate() {
    let points: Vec<PrefixCachePoint> =
        serde_json::from_str(&results_file("fig_prefix_cache.json"))
            .expect("valid fig_prefix_cache JSON");
    assert_eq!(points.len(), 10, "5 share levels x cache on/off");
    assert_registered(points.iter().map(|p| p.policy.clone()), "fig_prefix_cache.json");
    for p in &points {
        assert!((0.0..=1.0).contains(&p.shared_system_prob));
        assert_eq!(p.request_rate, points[0].request_rate, "fixed offered load");
        // Token conservation: hits never exceed the prompts that could produce them.
        assert!(p.prefix_hit_tokens <= p.prompt_tokens);
        assert!(p.hit_rate >= 0.0 && p.hit_rate < 1.0);
        assert!(p.completed > 0 && p.mean_ttft > 0.0);
        // The share decision is drawn independently of the swept probability, so the
        // flattened workload — hence the submitted prompt-token total — is identical
        // at every point of the sweep.
        assert_eq!(p.prompt_tokens, points[0].prompt_tokens, "controlled workload");
    }
    let on: Vec<&PrefixCachePoint> = points.iter().filter(|p| p.cache == "on").collect();
    let off: Vec<&PrefixCachePoint> = points.iter().filter(|p| p.cache == "off").collect();
    assert_eq!(on.len(), 5);
    assert_eq!(off.len(), 5);
    // Cache off: no hits, no splits, and every row is one and the same run.
    for p in &off {
        assert_eq!(p.hit_rate, 0.0);
        assert_eq!(p.prefix_hit_tokens, 0);
        assert_eq!(p.cow_splits, 0);
        assert_eq!(p.mean_ttft, off[0].mean_ttft, "cache-off rows are identical runs");
        assert_eq!(p.completed, off[0].completed);
    }
    // Cache on: the hit rate grows with the share level (multi-turn reuse gives a
    // floor even at share 0), and TTFT at the fixed load improves with the hit rate
    // while always beating the cache-off baseline — the figure's headline.
    for w in on.windows(2) {
        assert!(w[1].shared_system_prob > w[0].shared_system_prob, "shares ascend");
        assert!(w[1].hit_rate > w[0].hit_rate, "hit rate grows with sharing");
        assert!(w[1].mean_ttft < w[0].mean_ttft, "TTFT improves with the hit rate");
    }
    for (p_on, p_off) in on.iter().zip(&off) {
        assert!(p_on.hit_rate > 0.0, "multi-turn history always reuses something");
        assert!(p_on.mean_ttft < p_off.mean_ttft, "caching must beat the baseline");
    }
}
