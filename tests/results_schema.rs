//! Regeneration contract for the checked-in `results/` figure JSON.
//!
//! The fig8-family files are emitted by `cargo run --release -p neo-bench --bin
//! fig8_fastdecode`; these tests pin the schema those files must keep (so plots built on
//! them do not silently rot) and check that every policy label appearing in them maps
//! back to a registered `SchedulerPolicy` via `neo_bench::Policy::from_label`.

use std::path::PathBuf;

use neo_bench::Policy;
use serde::Deserialize;

#[derive(Debug, Deserialize)]
struct OnlinePoint {
    policy: String,
    rate: f64,
    avg_per_token_latency: f64,
    mean_ttft: f64,
}

#[derive(Debug, Deserialize)]
struct OfflinePoint {
    policy: String,
    output_len: usize,
    relative_throughput: f64,
}

fn results_file(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn assert_registered(policies: impl IntoIterator<Item = String>, file: &str) {
    for label in policies {
        let policy = Policy::from_label(&label)
            .unwrap_or_else(|| panic!("{file}: policy {label:?} is not registered"));
        // The registry entry must construct a live scheduler whose engine-facing name is
        // non-empty — i.e. the label maps to a real SchedulerPolicy, not a stale string.
        assert!(!policy.scheduler().name().is_empty());
    }
}

#[test]
fn fig8a_online_deserializes_and_policies_are_registered() {
    let points: Vec<OnlinePoint> =
        serde_json::from_str(&results_file("fig8a_online.json")).expect("valid fig8a JSON");
    assert!(!points.is_empty());
    for p in &points {
        assert!(p.rate > 0.0);
        assert!(p.avg_per_token_latency.is_finite() && p.avg_per_token_latency > 0.0);
        assert!(p.mean_ttft.is_finite() && p.mean_ttft > 0.0);
    }
    assert_registered(points.into_iter().map(|p| p.policy), "fig8a_online.json");
}

#[test]
fn fig8b_offline_deserializes_and_policies_are_registered() {
    let points: Vec<OfflinePoint> =
        serde_json::from_str(&results_file("fig8b_offline.json")).expect("valid fig8b JSON");
    assert!(!points.is_empty());
    for p in &points {
        assert!(p.output_len > 0);
        assert!(p.relative_throughput.is_finite() && p.relative_throughput > 0.0);
    }
    assert_registered(points.into_iter().map(|p| p.policy), "fig8b_offline.json");
}

#[test]
fn fig8c_offload_family_deserializes_and_covers_the_new_policies() {
    let points: Vec<OfflinePoint> =
        serde_json::from_str(&results_file("fig8c_offload_family.json")).expect("valid fig8c JSON");
    assert!(!points.is_empty());
    for p in &points {
        assert!(p.output_len > 0);
        assert!(p.relative_throughput.is_finite() && p.relative_throughput > 0.0);
    }
    // The offload-family comparison must cover the pipelined-offloading baselines next to
    // NEO and FastDecode+, at every swept output length.
    for required in ["NEO", "FastDecode+", "PIPO", "SpecOffload"] {
        let count = points.iter().filter(|p| p.policy == required).count();
        assert!(count >= 6, "fig8c must sweep {required} over ≥6 output lengths, got {count}");
    }
    assert_registered(points.into_iter().map(|p| p.policy), "fig8c_offload_family.json");
}
