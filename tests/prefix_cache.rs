//! KV-hierarchy test suite: the shared-prefix radix tree, the multi-tier manager, and
//! the engine-level guarantees the `fig_prefix_cache` experiment rests on.
//!
//! Three layers of checks:
//!
//! * **Radix tree vs. a naive oracle** — random interleaved insert/lookup/evict
//!   sequences against a `BTreeMap`-of-prefixes model that re-derives the tree's
//!   documented semantics from scratch (paths as keys, parents as length-truncated
//!   prefixes). Every operation's result and the whole indexed block set must agree.
//! * **Manager conservation** — random adopt/prefill/decode/swap/free interleavings on a
//!   tiny three-tier [`KvCacheManager`]: pools never leak a block, every indexed block
//!   stays referenced, and after releasing all sequences the full GPU capacity is
//!   allocatable again (transparent eviction reclaims every index-only block).
//! * **Engine bit-identity and a pinned cache-hit schedule** — with zero shared
//!   prefixes the enabled hierarchy must not move a single bit of the fig8b-style
//!   iteration trace (the pay-for-what-you-use property behind regenerating all
//!   pre-existing figures unchanged), while a two-session multi-turn chat on a
//!   host-cache-starved T4 follows a pinned decision trace with prefix-hit prefill
//!   skips, copy-on-write splits, and disk demotions.

use std::collections::BTreeMap;

use neo_bench::{Policy, Scenario};
use neo_core::request::Request;
use neo_core::{Engine, EngineConfig, NeoScheduler};
use neo_kvcache::{expand, Device, KvCacheConfig, KvCacheManager, PrefixIndex, Token, TokenRun};
use neo_sim::{CostModel, ModelDesc, Testbed};
use proptest::prelude::*;

const BS: usize = 4;

// ---------------------------------------------------------------------------
// Part 1: PrefixIndex vs. a naive HashMap-of-prefixes oracle.
// ---------------------------------------------------------------------------

/// Naive model of the radix tree: every node is its full token path from the root, so
/// the map key *is* the node identity. A node's parent is the longest strictly shorter
/// prefix of its key that ends on a block boundary; partial nodes (path length not a
/// multiple of the block size) can never be parents, hence are always leaves.
#[derive(Debug, Clone, Default)]
struct OracleIndex {
    nodes: BTreeMap<Vec<Token>, (usize, u64)>, // path -> (block, last_touch)
    clock: u64,
}

impl OracleIndex {
    fn parent_path(key: &[Token]) -> &[Token] {
        &key[..(key.len() - 1) / BS * BS]
    }

    fn children(&self, path: &[Token]) -> Vec<Vec<Token>> {
        self.nodes
            .keys()
            .filter(|k| k.len() > path.len() && Self::parent_path(k) == path)
            .cloned()
            .collect()
    }

    fn is_leaf(&self, key: &[Token]) -> bool {
        !self.nodes.keys().any(|k| k.as_slice() != key && Self::parent_path(k) == key)
    }

    fn sorted_blocks(&self) -> Vec<usize> {
        let mut blocks: Vec<usize> = self.nodes.values().map(|&(b, _)| b).collect();
        blocks.sort_unstable();
        blocks
    }

    fn lookup(&mut self, tokens: &[Token]) -> (Vec<usize>, Option<(usize, usize)>) {
        self.clock += 1;
        let now = self.clock;
        let mut path: Vec<Token> = Vec::new();
        let mut blocks = Vec::new();
        let mut start = 0usize;
        loop {
            if start >= tokens.len() {
                return (blocks, None);
            }
            let remaining = &tokens[start..];
            if remaining.len() >= BS {
                let mut key = path.clone();
                key.extend_from_slice(&remaining[..BS]);
                if let Some(entry) = self.nodes.get_mut(&key) {
                    entry.1 = now;
                    blocks.push(entry.0);
                    path = key;
                    start += BS;
                    continue;
                }
            }
            // No full-block step: best partially matching child, ties to smallest block.
            let mut best: Option<(usize, usize, Vec<Token>)> = None; // (cpl, block, key)
            for key in self.children(&path) {
                let content = &key[path.len()..];
                let cpl = content.iter().zip(remaining.iter()).take_while(|(a, b)| a == b).count();
                let block = self.nodes[&key].0;
                if cpl >= 1 {
                    let better = match &best {
                        None => true,
                        Some((bcpl, bblock, _)) => cpl > *bcpl || (cpl == *bcpl && block < *bblock),
                    };
                    if better {
                        best = Some((cpl, block, key));
                    }
                }
            }
            return match best {
                Some((cpl, block, key)) => {
                    self.nodes.get_mut(&key).expect("live node").1 = now;
                    (blocks, Some((block, cpl)))
                }
                None => (blocks, None),
            };
        }
    }

    fn insert(&mut self, tokens: &[Token], blocks: &[usize]) -> (Vec<usize>, Vec<usize>) {
        self.clock += 1;
        let now = self.clock;
        let mut retained = Vec::new();
        let mut released = Vec::new();
        let mut path: Vec<Token> = Vec::new();
        let mut i = 0usize;
        while i * BS < tokens.len() {
            let end = ((i + 1) * BS).min(tokens.len());
            let chunk = &tokens[i * BS..end];
            let mut key = path.clone();
            key.extend_from_slice(chunk);
            if chunk.len() == BS {
                if let Some(entry) = self.nodes.get_mut(&key) {
                    entry.1 = now;
                    path = key;
                    i += 1;
                    continue;
                }
                for child in self.children(&path) {
                    let content = &child[path.len()..];
                    if content.len() < BS && chunk.starts_with(content) {
                        released.push(self.nodes.remove(&child).expect("live node").0);
                    }
                }
                self.nodes.insert(key.clone(), (blocks[i], now));
                retained.push(blocks[i]);
                path = key;
                i += 1;
            } else {
                let covered = self.children(&path).iter().any(|child| {
                    let content = &child[path.len()..];
                    content.len() >= chunk.len() && content[..chunk.len()] == *chunk
                });
                if !covered {
                    for child in self.children(&path) {
                        let content = &child[path.len()..];
                        if content.len() < chunk.len() && chunk.starts_with(content) {
                            released.push(self.nodes.remove(&child).expect("live node").0);
                        }
                    }
                    self.nodes.insert(key, (blocks[i], now));
                    retained.push(blocks[i]);
                }
                break;
            }
        }
        (retained, released)
    }

    fn evict_lru(&mut self, evictable: impl Fn(usize) -> bool) -> Option<usize> {
        let victim = self
            .nodes
            .iter()
            .filter(|(key, &(block, _))| self.is_leaf(key) && evictable(block))
            .min_by_key(|(_, &(block, touch))| (touch, block))
            .map(|(key, _)| key.clone())?;
        Some(self.nodes.remove(&victim).expect("live node").0)
    }
}

/// Decodes one generated op tuple into prompt tokens from a tiny run alphabet, so
/// random sequences constantly produce shared prefixes, diverging suffixes, and
/// partial tails.
fn op_tokens(run: u64, len: usize, extra: usize) -> Vec<Token> {
    expand(&[
        TokenRun { id: run + 1, len },
        TokenRun { id: (run + extra as u64) % 3 + 1, len: 1 + extra },
    ])
}

fn check_index_against_oracle(ops: &[(usize, u64, usize, usize)]) -> Result<(), TestCaseError> {
    let mut idx = PrefixIndex::new(BS);
    let mut oracle = OracleIndex::default();
    let mut next_block = 100usize;
    for &(sel, run, len, extra) in ops {
        match sel {
            // Insert (weighted heaviest: it is the only tree-growing op).
            0..=2 => {
                let tokens = op_tokens(run, len, extra);
                let blocks: Vec<usize> =
                    (0..tokens.len().div_ceil(BS)).map(|i| next_block + i).collect();
                next_block += blocks.len();
                let real = idx.insert(&tokens, &blocks);
                let (retained, released) = oracle.insert(&tokens, &blocks);
                let mut real_retained = real.retained.clone();
                let mut real_released = real.released.clone();
                real_retained.sort_unstable();
                real_released.sort_unstable();
                let mut want_retained = retained;
                let mut want_released = released;
                want_retained.sort_unstable();
                want_released.sort_unstable();
                prop_assert_eq!(real_retained, want_retained, "insert retained set");
                prop_assert_eq!(real_released, want_released, "insert released set");
            }
            3 | 4 => {
                let tokens = op_tokens(run, len, extra);
                let real = idx.lookup(&tokens);
                let (blocks, partial) = oracle.lookup(&tokens);
                prop_assert_eq!(&real.blocks, &blocks, "lookup full chain");
                prop_assert_eq!(real.partial, partial, "lookup partial tail");
            }
            _ => {
                let pred: Box<dyn Fn(usize) -> bool> = match extra % 3 {
                    0 => Box::new(|_| true),
                    1 => Box::new(|b| b % 2 == 0),
                    _ => Box::new(|b| b % 3 != 0),
                };
                let real = idx.evict_lru(&pred);
                let want = oracle.evict_lru(&pred);
                prop_assert_eq!(real, want, "evict_lru victim");
            }
        }
        prop_assert_eq!(idx.len(), oracle.nodes.len(), "node count diverged");
        let mut real_blocks = idx.blocks();
        real_blocks.sort_unstable();
        prop_assert_eq!(real_blocks, oracle.sorted_blocks(), "indexed block set diverged");
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Part 2: KvCacheManager block conservation under random interleavings.
// ---------------------------------------------------------------------------

const GPU_TOKENS: usize = 64;
const CPU_TOKENS: usize = 32;
const DISK_TOKENS: usize = 32;

fn tiny_manager() -> KvCacheManager {
    KvCacheManager::with_features(
        KvCacheConfig {
            block_size: BS,
            gpu_capacity_tokens: GPU_TOKENS,
            cpu_capacity_tokens: CPU_TOKENS,
            kv_bytes_per_token: 1024,
        },
        true,
        DISK_TOKENS,
    )
}

fn check_manager_invariants(m: &KvCacheManager) -> Result<(), TestCaseError> {
    for dev in [Device::Gpu, Device::Cpu, Device::Disk] {
        let p = m.pool(dev);
        prop_assert_eq!(
            p.used_tokens() + p.free_tokens(),
            p.capacity_tokens(),
            "pool accounting must conserve blocks on {:?}",
            dev
        );
    }
    for b in m.prefix_blocks() {
        let rc = m.pool(Device::Gpu).ref_count(b);
        prop_assert!(
            matches!(rc, Ok(n) if n >= 1),
            "indexed block {b} must stay allocated (rc = {rc:?})"
        );
    }
    prop_assert!(m.evictable_tokens() <= m.pool(Device::Gpu).used_tokens());
    prop_assert_eq!(
        m.free_tokens(Device::Gpu),
        m.pool(Device::Gpu).free_tokens() + m.evictable_tokens(),
        "GPU free space must count index-only blocks as reclaimable"
    );
    Ok(())
}

/// The engine's per-request flow against the manager: adopt what the cache has, prefill
/// the rest, publish the prompt. Returns whether the sequence ended up live.
fn admit_request(m: &mut KvCacheManager, id: u64, tokens: &[Token]) -> Result<bool, TestCaseError> {
    let plen = tokens.len();
    let adoption = m.adopt_prefix(id, tokens, plen - 1).expect("fresh id");
    prop_assert!(adoption.cached_tokens < plen, "adoption is capped below the prompt");
    if adoption.cached_tokens == 0 {
        if m.allocate_sequence(id, plen, Device::Gpu).is_err() {
            prop_assert!(m.device_of(id).is_err(), "failed admission must not track the id");
            return Ok(false);
        }
    } else if m.append_tokens(id, plen - adoption.cached_tokens).is_err() {
        // Mid-prefill OOM: the engine frees the partially admitted sequence.
        m.free_sequence(id).expect("adopted sequence exists");
        return Ok(false);
    }
    m.insert_prefix(id, tokens).expect("live sequence");
    Ok(true)
}

fn check_manager_conservation(ops: &[(usize, u64, usize, usize)]) -> Result<(), TestCaseError> {
    let mut m = tiny_manager();
    let mut live: Vec<u64> = Vec::new();
    let mut next_id = 0u64;
    for &(sel, run, len, extra) in ops {
        match sel {
            0..=3 => {
                let tokens = op_tokens(run, len, extra);
                let id = next_id;
                next_id += 1;
                if admit_request(&mut m, id, &tokens)? {
                    live.push(id);
                }
            }
            4 | 5 if !live.is_empty() => {
                let id = live.remove(extra % live.len());
                m.free_sequence(id).expect("live sequence");
            }
            6 if !live.is_empty() => {
                // Decode growth; OOM leaves the sequence unchanged.
                let _ = m.append_tokens(live[extra % live.len()], 1 + extra % 3);
            }
            7 if !live.is_empty() => {
                let id = live[extra % live.len()];
                let target = match m.device_of(id).expect("live sequence") {
                    Device::Gpu => Device::Cpu,
                    _ => Device::Gpu,
                };
                let _ = m.swap(id, target); // OOM leaves the sequence in place
            }
            _ => {}
        }
        check_manager_invariants(&m)?;
    }
    // Release everything: only index-held blocks may remain, all of them evictable.
    for id in live {
        m.free_sequence(id).expect("live sequence");
    }
    prop_assert_eq!(m.num_sequences(), 0);
    prop_assert_eq!(m.pool(Device::Cpu).used_tokens(), 0, "CPU pool must drain");
    prop_assert_eq!(m.pool(Device::Disk).used_tokens(), 0, "disk pool must drain");
    prop_assert_eq!(
        m.pool(Device::Gpu).used_tokens(),
        m.prefix_blocks().len() * BS,
        "after freeing all sequences only index-held blocks remain"
    );
    for b in m.prefix_blocks() {
        prop_assert_eq!(m.pool(Device::Gpu).ref_count(b).expect("allocated"), 1);
    }
    prop_assert_eq!(m.free_tokens(Device::Gpu), GPU_TOKENS, "full capacity reclaimable");
    // The conservation proof: a capacity-sized allocation transparently evicts every
    // cached block and succeeds, leaving the pools exactly as freshly constructed.
    m.allocate_sequence(u64::MAX, GPU_TOKENS, Device::Gpu)
        .expect("transparent eviction must reclaim the whole pool");
    prop_assert!(m.prefix_blocks().is_empty(), "eviction drained the index");
    m.free_sequence(u64::MAX).expect("live sequence");
    prop_assert_eq!(m.pool(Device::Gpu).used_tokens(), 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The radix tree agrees with the naive oracle on every operation of random
    /// interleaved insert/lookup/evict sequences.
    #[test]
    fn prop_prefix_index_matches_naive_oracle(
        ops in proptest::collection::vec((0usize..6, 0u64..3, 1usize..10, 0usize..5), 1..60)
    ) {
        check_index_against_oracle(&ops)?;
    }

    /// Random adopt/prefill/decode/swap/free interleavings conserve blocks across all
    /// three tiers, and releasing every sequence makes the whole GPU pool allocatable.
    #[test]
    fn prop_kv_manager_conserves_blocks(
        ops in proptest::collection::vec((0usize..9, 0u64..3, 1usize..14, 0usize..8), 1..40)
    ) {
        check_manager_conservation(&ops)?;
    }
}

// ---------------------------------------------------------------------------
// Part 3: engine bit-identity with zero sharing, and the pinned cache-hit trace.
// ---------------------------------------------------------------------------

/// With zero shared prefixes (opaque fig8b-style prompts) the full iteration trace of
/// the h100_70b scenario is bit-identical with the KV hierarchy on and off — including
/// the window `tests/tp_accounting.rs` pins, so every published figure regenerates
/// unchanged while the features are available.
#[test]
fn fig8b_style_trace_is_bit_identical_with_the_hierarchy_enabled() {
    let run = |hierarchy: bool| {
        let config = EngineConfig {
            prefix_cache: hierarchy,
            disk_tier: hierarchy,
            ..EngineConfig::default()
        };
        let mut engine = Scenario::h100_70b().engine_with_config(Policy::Neo, config);
        for id in 0..24u64 {
            engine.submit(Request::new(id, 0.0, 2000, 60)).unwrap();
        }
        let mut reports = Vec::new();
        while !engine.is_idle() && reports.len() < 10_000 {
            reports.push(engine.step());
        }
        assert_eq!(engine.completed().len(), 24);
        assert_eq!(engine.prefix_hit_tokens(), 0, "opaque prompts never share");
        assert_eq!(engine.cow_splits(), 0);
        reports
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off, on, "zero-share trace must be bit-identical under the hierarchy");
    // Re-assert the pinned tp_accounting window with the features enabled.
    let window: Vec<(String, usize, usize, usize, usize)> = on[60..69]
        .iter()
        .map(|r| {
            (format!("{}", r.mode), r.batch_size, r.prefill_tokens, r.decode_tokens, r.swapped_out)
        })
        .collect();
    let expected: Vec<(String, usize, usize, usize, usize)> = vec![
        ("gpu-only".into(), 18, 0, 17, 0),
        ("asymmetric".into(), 24, 2031, 20, 1),
        ("asymmetric".into(), 24, 1932, 21, 1),
        ("gpu-only".into(), 17, 0, 17, 0),
        ("gpu-only".into(), 17, 0, 17, 0),
        ("gpu-only".into(), 17, 0, 17, 0),
        ("gpu-only".into(), 17, 0, 17, 0),
        ("gpu-only".into(), 18, 1440, 17, 0),
        ("gpu-only".into(), 18, 481, 18, 0),
    ];
    assert_eq!(window, expected, "the pinned h100_70b window moved under the hierarchy");
}

/// A two-session multi-turn chat on a host-cache-starved T4, with the full KV hierarchy
/// on, follows a pinned per-turn schedule: later turns adopt the cached history
/// (prefilling only the new tokens), partial tails split copy-on-write, and the shrunken
/// CPU cache pushes overflow to the disk tier.
#[test]
fn two_session_chat_cache_hit_schedule_is_pinned() {
    let mut testbed = Testbed::g4dn_4xlarge();
    testbed.cpu_cache_fraction = 0.019;
    let cost = CostModel::new(ModelDesc::llama2_7b(), testbed, 1);
    let config = EngineConfig { prefix_cache: true, disk_tier: true, ..EngineConfig::default() };
    let mut engine = Engine::new(cost, config, Box::new(NeoScheduler::new()));

    let system = TokenRun { id: 1, len: 600 };
    let output_len = 150usize;
    let mut histories: Vec<Vec<TokenRun>> = vec![vec![system], vec![system]];
    let mut demoted = 0usize;
    let mut promoted = 0usize;
    let mut iterations = 0usize;
    // Each session's next turn is typed while the previous answer still streams, so up
    // to four contexts overlap: session B's first turn adopts the system prompt session
    // A cached, later turns adopt their own history, and the overlapping decodes
    // overflow the shrunken host cache into the disk tier.
    //
    // Per admission: (prefilled tokens adopted at submit, cumulative hit tokens,
    // cumulative COW splits, iterations so far, demotions, promotions) — captured once
    // and pinned; any scheduling or cache-semantics change shows up here.
    let mut turn_log: Vec<(usize, usize, usize, usize, usize, usize)> = Vec::new();
    for turn in 0..3u64 {
        for (s, history) in histories.iter_mut().enumerate() {
            let user = TokenRun { id: 100 + s as u64 * 10 + turn, len: 400 };
            let mut runs = history.clone();
            runs.push(user);
            let prompt_len: usize = runs.iter().map(|r| r.len).sum();
            let id = s as u64 * 10 + turn;
            engine
                .submit(Request::with_runs(id, 0.0, prompt_len, output_len, runs.clone()))
                .unwrap();
            turn_log.push((
                engine.request(id).unwrap().prefilled,
                engine.prefix_hit_tokens(),
                engine.cow_splits(),
                iterations,
                demoted,
                promoted,
            ));
            runs.push(TokenRun { id: 200 + s as u64 * 10 + turn, len: output_len });
            *history = runs;
            // Step until this prompt is prefilled (publishing it in the index) before
            // admitting the next one, leaving its decode running concurrently.
            while iterations < 200_000
                && !engine.request(id).map(|r| r.prefill_complete()).unwrap_or(true)
            {
                let r = engine.step();
                demoted += r.demoted_disk;
                promoted += r.promoted_disk;
                iterations += 1;
            }
        }
    }
    while !engine.is_idle() && iterations < 200_000 {
        let r = engine.step();
        demoted += r.demoted_disk;
        promoted += r.promoted_disk;
        iterations += 1;
    }
    turn_log.push((
        0,
        engine.prefix_hit_tokens(),
        engine.cow_splits(),
        iterations,
        demoted,
        promoted,
    ));
    assert_eq!(engine.completed().len(), 6);
    assert_eq!(engine.disk_resident(), 0, "disk drains once decodes retire");
    assert_eq!(engine.kv().num_sequences(), 0, "only the prefix index holds blocks");
    // The pinned schedule, admission by admission (final row = the drain):
    //
    // * B's first turn adopts the 600-token system prompt A cached — 37 shared blocks
    //   plus an 8-token copy-on-write tail (COW split #1).
    // * Each turn-1 prompt adopts its session's full 1000-token turn-0 prompt (COW
    //   splits #2, #3 for the partial tails), each turn-2 prompt its 1550-token turn-1
    //   prompt (split #4); B's turn-2 adoption is clipped to the 1520-token full-block
    //   chain because the pressured pool has no free block left for the COW copy.
    // * The overlapping decodes overflow the shrunken host cache: two CPU residents are
    //   demoted to disk and both are promoted back (the second via the empty-CPU
    //   starvation guard) to finish decoding.
    let expected: Vec<(usize, usize, usize, usize, usize, usize)> = vec![
        (0, 0, 0, 0, 0, 0),
        (600, 600, 1, 2, 0, 0),
        (1000, 1600, 2, 3, 0, 0),
        (1000, 2600, 3, 5, 0, 0),
        (1550, 4150, 4, 7, 0, 0),
        (1520, 5670, 4, 27, 1, 0),
        (0, 5670, 4, 432, 2, 2),
    ];
    assert_eq!(turn_log, expected, "the pinned two-session cache-hit schedule moved");
    assert!(demoted > 0, "the starved host cache must overflow to disk");
    assert!(promoted > 0, "parked contexts must return to finish decoding");
    assert!(engine.cow_splits() >= 2, "partial history tails must split copy-on-write");
}
