//! Event-engine determinism, replay, and closed-form agreement contracts.
//!
//! The discrete-event path (`OverlapModel::EventOrdered`) must be:
//!
//! * **order-invariant** — fuzzing the same-tick dispatch order with any seed leaves
//!   every simulation output (iteration reports, TTFT/ITL summaries) bit-identical,
//!   because well-formed components derive their transitions from simulated time and
//!   shared state, never from dispatch order (proptested over ≥ 64 seeds, plus the
//!   `NEO_EVENT_FUZZ_SEED` CI matrix);
//! * **replayable** — the exact `(tick, component, event)` sequence of an h100_70b
//!   decision window is pinned, in the style of the scheduling traces in
//!   `tests/tp_accounting.rs`;
//! * **agreeing with the pinned closed forms** — the default path regenerates every
//!   figure bit-identically, and the event-ordered path tracks it within the pinned
//!   tolerance asserted here (never slower, at most one stage time faster).

use neo_bench::{Policy, Scenario};
use neo_core::config::{EngineConfig, OverlapModel};
use neo_core::request::Request;
use neo_core::{trace_decision_event, Engine, ExecutionMode, ScheduleDecision, SubBatch};
use neo_serve::Server;
use neo_sim::event::TieBreak;
use proptest::prelude::*;

/// The small T4 scenario (LLaMa-2-7B on g4dn.4xlarge) used by the determinism
/// proptests: bursty enough to exercise offloading, swaps and both sub-batches, small
/// enough to run 64+ fuzzed cases quickly.
const T4_REQUESTS: usize = 10;
const T4_PROMPT: usize = 240;
const T4_OUTPUT: usize = 12;

/// `NEO_KV_HIERARCHY=on` (the CI `prefix-cache` matrix) turns the shared-prefix cache
/// on for every engine in this suite. None of these workloads share token runs, so the
/// cache must be a pure no-op: every bit-identity, replay, and agreement contract below
/// must hold unchanged — the "on" matrix leg re-proves the hierarchy's transparency.
fn kv_hierarchy_on() -> bool {
    std::env::var("NEO_KV_HIERARCHY").map(|v| v == "on" || v == "1").unwrap_or(false)
}

fn t4_engine(seed: u64) -> Engine {
    let config = EngineConfig {
        overlap_model: OverlapModel::EventOrdered,
        event_tie_break_seed: seed,
        prefix_cache: kv_hierarchy_on(),
        ..EngineConfig::default()
    };
    Scenario::t4_7b().engine_with_config(Policy::Neo, config)
}

/// Runs the T4 engine workload under the given fuzz seed and renders every iteration
/// report with full `{:?}` (f64 round-trip) precision — the bit-identity surface.
fn t4_iteration_reports(seed: u64) -> String {
    let mut engine = t4_engine(seed);
    for id in 0..T4_REQUESTS as u64 {
        engine
            .submit(Request::new(id, 0.0, T4_PROMPT + (id as usize % 3) * 40, T4_OUTPUT))
            .unwrap();
    }
    let mut rendered = String::new();
    while !engine.is_idle() {
        rendered.push_str(&format!("{:?}\n", engine.step()));
    }
    rendered
}

/// Runs the same workload through the serving loop (staggered arrivals, token
/// streaming) and renders the full report — TTFT/ITL summaries included — with `{:?}`
/// precision.
fn t4_server_report(seed: u64) -> String {
    let mut server = Server::new(t4_engine(seed));
    for i in 0..T4_REQUESTS {
        server.submit(i as f64 * 0.05, T4_PROMPT, T4_OUTPUT).unwrap();
    }
    format!("{:?}", server.run_until_idle())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ≥ 64 fuzzed tie-break seeds: iteration reports and TTFT/ITL summaries are
    /// bit-identical to the deterministic (`ById`, seed 0) order.
    #[test]
    fn fuzzed_tie_break_order_is_bit_identical_on_t4(seed in 1u64..u64::MAX) {
        let reference = t4_iteration_reports(0);
        let fuzzed = t4_iteration_reports(seed);
        prop_assert_eq!(&reference, &fuzzed);
        let reference_report = t4_server_report(0);
        let fuzzed_report = t4_server_report(seed);
        prop_assert_eq!(&reference_report, &fuzzed_report);
    }
}

/// The CI seed-matrix entry point: `NEO_EVENT_FUZZ_SEED` (0 = deterministic order)
/// must reproduce the seed-0 outputs bit-identically. The fuzzed-order CI job runs
/// this test binary once per seed.
#[test]
fn ci_fuzz_seed_matches_the_deterministic_order() {
    let seed: u64 =
        std::env::var("NEO_EVENT_FUZZ_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE);
    assert_eq!(t4_iteration_reports(0), t4_iteration_reports(seed));
    assert_eq!(t4_server_report(0), t4_server_report(seed));
}

/// A representative h100_70b (tp = 2) asymmetric decision: a prefill chunk headed for
/// the CPU cache, GPU decodes, an offloaded batch-1, and whole-sequence swap traffic in
/// both directions.
fn h100_decision() -> ScheduleDecision {
    ScheduleDecision {
        mode: ExecutionMode::Asymmetric,
        batch0: SubBatch {
            prefills: vec![neo_core::PrefillItem {
                req: 900,
                new_tokens: 512,
                ctx_after: 512,
                target: neo_kvcache::Device::Cpu,
            }],
            gpu_decodes: (0..24).map(|i| (i, 1500)).collect(),
            cpu_decodes: vec![],
        },
        batch1: SubBatch {
            prefills: vec![],
            gpu_decodes: vec![],
            cpu_decodes: (100..112).map(|i| (i, 1500)).collect(),
        },
        swap_out: vec![],
        swap_in: vec![],
        preempt: vec![],
        demote_disk: vec![],
        promote_disk: vec![],
    }
}

/// Golden trace: the exact `(tick, component, event)` sequence of the first ten
/// dispatches of the h100_70b decision window, plus the window's totals, pinned with
/// `{:?}` round-trip literals. Any change to event ordering, job construction or the
/// cost model shows up here as a bit-level diff.
#[test]
fn h100_70b_event_trace_is_pinned() {
    let scenario = Scenario::h100_70b_tp(2);
    let cost = scenario.cost_model();
    let decision = h100_decision();
    let (estimate, trace) =
        trace_decision_event(&cost, &decision, 3000, 2000, true, TieBreak::ById);

    // 80 layers × (4 compute + 2 link jobs), two dispatches (start/finish, possibly
    // fused) each; the exact length is part of the replay contract.
    let window: Vec<(f64, &str, &str)> =
        trace.iter().take(10).map(|r| (r.tick, r.name.as_str(), r.event.as_str())).collect();
    let expected: Vec<(f64, &str, &str)> = vec![
        (0.0, "gpu", "start layer0/gpu.linear0"),
        (0.0, "cpu", "start layer0/cpu.attn1"),
        (0.0007899345306122448, "cpu", "finish layer0/cpu.attn1"),
        (0.0009173112776051424, "gpu", "finish layer0/gpu.linear0; start layer0/gpu.linear1+attn0"),
        (0.0013081066670578786, "gpu", "finish layer0/gpu.linear1+attn0; start layer1/gpu.linear0"),
        (0.0013081066670578786, "cpu", "start layer1/cpu.attn1"),
        (0.0013081066670578786, "link.d2h", "start layer0/d2h"),
        (0.0013081066670578786, "link.h2d", "start layer0/h2d"),
        (0.001401440000391212, "link.h2d", "finish layer0/h2d"),
        (0.001473952000391212, "link.d2h", "finish layer0/d2h"),
    ];
    assert_eq!(window, expected);
    assert_eq!(trace.len(), 641);
    assert_eq!(estimate.total_time, 0.10528941657338621);
    assert_eq!(estimate.exposed_swap_time, 0.00016584533333303952);
}

/// Engine-level agreement: under identical workloads the two overlap models take
/// identical scheduling trajectories (same modes, batch sizes, token counts per
/// iteration) and the event-ordered durations track the closed forms within the pinned
/// tolerance — never slower, at most 8 % faster in aggregate.
#[test]
fn event_path_agrees_with_closed_form_within_pinned_tolerance() {
    // Workloads sized so each scenario drains: the T4 has far less KV headroom than
    // the A10G or the H100, so it gets fewer, shorter requests.
    for (label, scenario, n_requests, prompt) in [
        ("t4_7b", Scenario::t4_7b(), 10u64, 240usize),
        ("a10g_8b", Scenario::a10g_8b(), 16, 1200),
        ("h100_70b", Scenario::h100_70b(), 16, 1200),
    ] {
        let run = |model: OverlapModel| {
            let config = EngineConfig {
                overlap_model: model,
                prefix_cache: kv_hierarchy_on(),
                ..EngineConfig::default()
            };
            let mut engine = scenario.engine_with_config(Policy::Neo, config);
            for id in 0..n_requests {
                engine.submit(Request::new(id, 0.0, prompt, 24)).unwrap();
            }
            let mut reports = Vec::new();
            while !engine.is_idle() {
                reports.push(engine.step());
            }
            reports
        };
        let closed = run(OverlapModel::ClosedForm);
        let event = run(OverlapModel::EventOrdered);
        assert_eq!(closed.len(), event.len(), "{label}: iteration counts diverged");
        let mut closed_total = 0.0;
        let mut event_total = 0.0;
        for (c, e) in closed.iter().zip(&event) {
            // The scheduling trajectory is overlap-model-independent: schedulers see
            // queues and the profiled cost model, never the charged durations.
            assert_eq!(c.mode, e.mode, "{label} iter {}", c.iteration);
            assert_eq!(c.batch_size, e.batch_size, "{label} iter {}", c.iteration);
            assert_eq!(c.prefill_tokens, e.prefill_tokens, "{label} iter {}", c.iteration);
            assert_eq!(c.decode_tokens, e.decode_tokens, "{label} iter {}", c.iteration);
            assert_eq!(c.cpu_offloaded, e.cpu_offloaded, "{label} iter {}", c.iteration);
            assert!(
                e.duration <= c.duration + 1e-9,
                "{label} iter {}: event {} > closed {}",
                c.iteration,
                e.duration,
                c.duration
            );
            closed_total += c.duration;
            event_total += e.duration;
        }
        let rel = (closed_total - event_total) / closed_total;
        assert!(
            (-1e-9..=0.08).contains(&rel),
            "{label}: event makespan deviates {:.2}% from the closed forms",
            rel * 100.0
        );
    }
}

/// Serving-level agreement: the event-ordered server drains the same workload with the
/// same completion counts and a makespan within the pinned tolerance of the closed-form
/// reference.
#[test]
fn event_path_serves_the_same_workload_within_tolerance() {
    let run = |model: OverlapModel| {
        let config = EngineConfig {
            overlap_model: model,
            prefix_cache: kv_hierarchy_on(),
            ..EngineConfig::default()
        };
        let mut server = Server::new(Scenario::a10g_8b().engine_with_config(Policy::Neo, config));
        for _ in 0..12 {
            server.submit(0.0, 800, 16).unwrap();
        }
        server.run_until_idle()
    };
    let closed = run(OverlapModel::ClosedForm);
    let event = run(OverlapModel::EventOrdered);
    assert_eq!(closed.completed, event.completed);
    assert_eq!(closed.completed, 12);
    let rel = (closed.makespan - event.makespan) / closed.makespan;
    assert!(
        (-1e-9..=0.08).contains(&rel),
        "event makespan {} vs closed {} ({:.2}%)",
        event.makespan,
        closed.makespan,
        rel * 100.0
    );
    let (closed_ttft, event_ttft) = (closed.ttft.unwrap(), event.ttft.unwrap());
    assert!((closed_ttft.mean - event_ttft.mean).abs() / closed_ttft.mean < 0.08);
}
