//! Property-based integration tests of the load-aware scheduler's invariants, exercised
//! through the full engine on randomly generated workloads.

use neo_bench::{Policy, Scenario};
use neo_core::request::Request;
use neo_core::ExecutionMode;
use neo_kvcache::Device;
use proptest::prelude::*;

/// Runs a random workload through NEO's engine, checking per-iteration invariants.
fn check_run(
    scenario: &Scenario,
    specs: &[(usize, usize)],
    max_iterations: u64,
) -> Result<(), TestCaseError> {
    let mut engine = scenario.engine(Policy::Neo);
    let gpu_capacity = engine.kv().pool(Device::Gpu).capacity_tokens();
    let cpu_capacity = engine.kv().pool(Device::Cpu).capacity_tokens();
    for (i, &(prompt, output)) in specs.iter().enumerate() {
        engine.submit(Request::new(i as u64, 0.0, prompt, output)).unwrap();
    }

    let mut iterations = 0;
    let mut saw_asymmetric = false;
    while !engine.is_idle() && iterations < max_iterations {
        let report = engine.step();
        iterations += 1;
        if report.mode == ExecutionMode::Asymmetric && !report.idle {
            saw_asymmetric = true;
        }
        // Invariant: the KV pools never over-commit.
        let gpu_pool = engine.kv().pool(Device::Gpu);
        let cpu_pool = engine.kv().pool(Device::Cpu);
        prop_assert!(gpu_pool.used_tokens() <= gpu_capacity);
        prop_assert!(cpu_pool.used_tokens() <= cpu_capacity);
        // Invariant: time always advances while work remains.
        prop_assert!(report.duration > 0.0);
        // Invariant: a non-idle report does some work or applies some state change.
        if !report.idle {
            prop_assert!(
                report.prefill_tokens > 0
                    || report.decode_tokens > 0
                    || report.swapped_in > 0
                    || report.swapped_out > 0,
                "non-idle iteration did nothing"
            );
        }
    }
    // Liveness: everything finished within the iteration budget.
    prop_assert!(engine.is_idle(), "workload did not drain within {max_iterations} iterations");
    prop_assert_eq!(engine.completed().len(), specs.len());
    // Accounting: exact token conservation.
    let expected_prefill: u64 = specs.iter().map(|&(p, _)| p as u64).sum();
    let expected_decode: u64 = specs.iter().map(|&(_, o)| o as u64).sum();
    prop_assert_eq!(engine.total_prefill_tokens(), expected_prefill);
    prop_assert_eq!(engine.total_decode_tokens(), expected_decode);
    // All KV released at the end.
    prop_assert_eq!(engine.kv().pool(Device::Gpu).used_tokens(), 0);
    prop_assert_eq!(engine.kv().pool(Device::Cpu).used_tokens(), 0);
    // The flag is only informational here; memory-pressure cases assert on it below.
    let _ = saw_asymmetric;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// NEO drains arbitrary small workloads on the A10G testbed while respecting memory
    /// limits and conserving tokens.
    #[test]
    fn prop_neo_a10g_conserves_tokens(
        specs in proptest::collection::vec((50usize..1200, 1usize..80), 1..25)
    ) {
        check_run(&Scenario::a10g_8b(), &specs, 400_000)?;
    }

    /// Same invariants on the memory-starved T4, where swaps and preemptions are common.
    #[test]
    fn prop_neo_t4_conserves_tokens(
        specs in proptest::collection::vec((50usize..500, 1usize..60), 1..20)
    ) {
        check_run(&Scenario::t4_7b(), &specs, 400_000)?;
    }
}

#[test]
fn neo_uses_asymmetric_mode_under_memory_pressure() {
    // Deterministic complement to the properties above: a T4 workload too large for the
    // GPU cache must trigger asymmetric (offloaded) iterations.
    let scenario = Scenario::t4_7b();
    let mut engine = scenario.engine(Policy::Neo);
    for id in 0..48 {
        engine.submit(Request::new(id, 0.0, 250, 60)).unwrap();
    }
    let mut saw_asymmetric = false;
    let mut iterations = 0;
    while !engine.is_idle() && iterations < 400_000 {
        let report = engine.step();
        if report.mode == ExecutionMode::Asymmetric && report.cpu_offloaded > 0 {
            saw_asymmetric = true;
        }
        iterations += 1;
    }
    assert!(engine.is_idle());
    assert!(saw_asymmetric, "memory pressure must push NEO into asymmetric pipelining");
}

#[test]
fn gpu_only_baseline_never_touches_the_cpu_pool() {
    let scenario = Scenario::t4_7b();
    let mut engine = scenario.engine(Policy::VllmLike);
    for id in 0..32 {
        engine.submit(Request::new(id, 0.0, 250, 40)).unwrap();
    }
    let mut iterations = 0;
    while !engine.is_idle() && iterations < 400_000 {
        engine.step();
        assert_eq!(engine.kv().pool(Device::Cpu).used_tokens(), 0);
        iterations += 1;
    }
    assert!(engine.is_idle());
}
