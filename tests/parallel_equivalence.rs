//! Parallel kernels must compute the same numbers no matter how wide the pool is.
//!
//! Two properties, proptested over random shapes:
//!
//! 1. **Bit-identity across pool widths.** Running partitioned flash-decode (at a fixed
//!    partition size), paged prefill, and the dense matvec at 1, 2, and 8 threads yields
//!    bit-identical `f32` outputs: the shim's unit grid determines *where* work runs,
//!    never the order of any floating-point reduction. (The decode partition size is
//!    pinned because `paged_decode_attention`'s auto-tuning deliberately varies it with
//!    the pool width, which changes merge order — numerically fine, covered by the
//!    tolerance check below, but not bitwise stable.)
//! 2. **Agreement with the sequential reference.** At every width, the auto-tuned decode
//!    and the prefill kernel match `neo_kernels::reference::dense_attention` within
//!    float tolerance, and the parallel matvec is bit-identical to a hand-rolled serial
//!    dot-product loop (chunking never touches a row's reduction order).

use neo_kernels::decode::{paged_decode_attention, paged_decode_attention_with_partitions};
use neo_kernels::prefill::paged_prefill_attention;
use neo_kernels::reference::dense_attention;
use neo_kernels::AttentionConfig;
use neo_kvcache::{BlockTable, PagedStorage};
use neo_model::linear::Linear;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::{ThreadPool, ThreadPoolBuilder};

/// The widths every kernel is checked at (1 = inline fallback, 2 = minimal parallelism,
/// 8 = oversubscribed on small CI machines, maximal stealing).
const WIDTHS: [usize; 3] = [1, 2, 8];

fn pool(threads: usize) -> ThreadPool {
    ThreadPoolBuilder::new().num_threads(threads).build().expect("shim pool build cannot fail")
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i} differs: {x} vs {y}");
    }
}

/// Paged KV fixture plus the contiguous copies the dense reference needs.
struct Fixture {
    storage: PagedStorage,
    tables: Vec<BlockTable>,
    dense_k: Vec<Vec<f32>>,
    dense_v: Vec<Vec<f32>>,
    queries: Vec<f32>,
}

fn build_fixture(seq_lens: &[usize], cfg: &AttentionConfig, seed: u64) -> Fixture {
    let block_size = 4;
    let total_blocks: usize = seq_lens.iter().map(|l| l.div_ceil(block_size)).sum::<usize>() + 1;
    let mut storage = PagedStorage::new(total_blocks, block_size, cfg.n_kv_heads, cfg.head_dim);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tables = Vec::new();
    let mut dense_k = Vec::new();
    let mut dense_v = Vec::new();
    let mut next_block = 0;
    for &len in seq_lens {
        let blocks_needed = len.div_ceil(block_size);
        let mut table = BlockTable::new(block_size);
        table.append(len, (next_block..next_block + blocks_needed).collect()).unwrap();
        next_block += blocks_needed;
        let mut k_seq = Vec::new();
        let mut v_seq = Vec::new();
        for i in 0..len {
            let k: Vec<f32> = (0..cfg.kv_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let v: Vec<f32> = (0..cfg.kv_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let (b, s) = table.locate(i).unwrap();
            storage.write_token(b, s, &k, &v).unwrap();
            k_seq.extend_from_slice(&k);
            v_seq.extend_from_slice(&v);
        }
        tables.push(table);
        dense_k.push(k_seq);
        dense_v.push(v_seq);
    }
    let queries: Vec<f32> =
        (0..seq_lens.len() * cfg.q_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Fixture { storage, tables, dense_k, dense_v, queries }
}

fn random_cfg(heads_pow: u32, group_pow: u32) -> AttentionConfig {
    let n_kv = 1usize << heads_pow;
    AttentionConfig::new(n_kv << group_pow, n_kv, 8)
}

/// Deterministic companion to the matvec proptest below: the random shapes there sit
/// under `neo-model`'s serial-work cutoff, so this exercises a matrix big enough
/// (512×256 single, plus an 8-row batch) to take the parallel chunked paths, at every
/// width.
#[test]
fn large_matvec_parallel_path_is_bit_identical() {
    let (rows, cols, batch) = (512usize, 256usize, 8usize);
    let mut rng = StdRng::seed_from_u64(99);
    let weight: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-0.1..0.1)).collect();
    let x: Vec<f32> = (0..batch * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let linear = Linear::new(rows, cols, weight.clone());
    let mut expected = vec![0.0f32; batch * rows];
    for (bi, x_row) in x.chunks(cols).enumerate() {
        for r in 0..rows {
            expected[bi * rows + r] =
                weight[r * cols..(r + 1) * cols].iter().zip(x_row).map(|(w, v)| w * v).sum();
        }
    }
    for threads in WIDTHS {
        let (single, batched) =
            pool(threads).install(|| (linear.forward(&x[..cols]), linear.forward_batch(&x)));
        assert_bits_eq(&single, &expected[..rows], "large matvec single");
        assert_bits_eq(&batched, &expected, "large matvec batch");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Flash-decode at a pinned partition size is bit-identical across pool widths, and
    /// the auto-tuned entry point stays within tolerance of the dense reference at every
    /// width.
    #[test]
    fn flash_decode_is_width_invariant(
        lens in proptest::collection::vec(1usize..80, 1..5),
        heads_pow in 0u32..3,
        group_pow in 0u32..2,
        partition_blocks in 1usize..6,
        seed in 0u64..1000,
    ) {
        let cfg = random_cfg(heads_pow, group_pow);
        let fx = build_fixture(&lens, &cfg, seed);
        let tables: Vec<&BlockTable> = fx.tables.iter().collect();
        let mut baseline: Option<Vec<f32>> = None;
        for threads in WIDTHS {
            let mut pinned = vec![0.0f32; lens.len() * cfg.q_stride()];
            let mut auto = vec![0.0f32; lens.len() * cfg.q_stride()];
            pool(threads).install(|| {
                paged_decode_attention_with_partitions(
                    &fx.queries, &fx.storage, &tables, &lens, &cfg, partition_blocks, &mut pinned,
                );
                paged_decode_attention(&fx.queries, &fx.storage, &tables, &lens, &cfg, &mut auto);
            });
            match &baseline {
                None => baseline = Some(pinned),
                Some(first) => assert_bits_eq(first, &pinned, "pinned-partition decode"),
            }
            for (i, &len) in lens.iter().enumerate() {
                let mut expected = vec![0.0f32; cfg.q_stride()];
                dense_attention(
                    &fx.queries[i * cfg.q_stride()..(i + 1) * cfg.q_stride()],
                    &fx.dense_k[i], &fx.dense_v[i], 1, len, &cfg, None, &mut expected,
                );
                for (a, b) in auto[i * cfg.q_stride()..(i + 1) * cfg.q_stride()].iter().zip(&expected) {
                    prop_assert!((a - b).abs() < 1e-3, "threads {}: {} vs {}", threads, a, b);
                }
            }
        }
    }

    /// Paged prefill is bit-identical across pool widths and matches the causal dense
    /// reference at every width.
    #[test]
    fn prefill_is_width_invariant(
        ctx_len in 1usize..64,
        new_frac in 1usize..5,
        heads_pow in 0u32..3,
        group_pow in 0u32..2,
        seed in 0u64..1000,
    ) {
        let cfg = random_cfg(heads_pow, group_pow);
        let n_new = (ctx_len * new_frac).div_ceil(4).max(1).min(ctx_len);
        let fx = build_fixture(&[ctx_len], &cfg, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let q: Vec<f32> = (0..n_new * cfg.q_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut expected = vec![0.0f32; n_new * cfg.q_stride()];
        dense_attention(
            &q, &fx.dense_k[0], &fx.dense_v[0], n_new, ctx_len, &cfg,
            Some(ctx_len - n_new), &mut expected,
        );
        let mut baseline: Option<Vec<f32>> = None;
        for threads in WIDTHS {
            let mut out = vec![0.0f32; n_new * cfg.q_stride()];
            pool(threads).install(|| {
                paged_prefill_attention(
                    &q, &fx.storage, &fx.tables[0], ctx_len, n_new, &cfg, &mut out,
                );
            });
            for (a, b) in out.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-3, "threads {}: {} vs {}", threads, a, b);
            }
            match &baseline {
                None => baseline = Some(out),
                Some(first) => assert_bits_eq(first, &out, "prefill"),
            }
        }
    }

    /// The parallel matvec (single input and batched) is bit-identical across pool
    /// widths *and* to a hand-rolled serial dot-product loop.
    #[test]
    fn matvec_is_width_invariant(
        rows in 1usize..96,
        cols in 1usize..48,
        batch in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let weight: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x: Vec<f32> = (0..batch * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let linear = Linear::new(rows, cols, weight.clone());
        // Serial reference: same expression, same reduction order, no rayon involved.
        let mut expected = vec![0.0f32; batch * rows];
        for (bi, x_row) in x.chunks(cols).enumerate() {
            for r in 0..rows {
                expected[bi * rows + r] = weight[r * cols..(r + 1) * cols]
                    .iter()
                    .zip(x_row)
                    .map(|(w, v)| w * v)
                    .sum();
            }
        }
        for threads in WIDTHS {
            let (single, batched) = pool(threads).install(|| {
                (linear.forward(&x[..cols]), linear.forward_batch(&x))
            });
            assert_bits_eq(&single, &expected[..rows], "matvec single");
            assert_bits_eq(&batched, &expected, "matvec batch");
        }
    }
}
