//! Functional integration tests: the real (tiny) transformer over the paged KV cache must
//! produce bit-for-bit-comparable outputs no matter where its KV cache lives — the
//! accuracy-preservation property that separates NEO from quantization/sparsification
//! approaches (§7 of the paper).

use neo_kvcache::Device;
use neo_model::{argmax, Model, PagedKvCache};
use neo_sim::ModelDesc;

fn close(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
}

fn greedy_generate(
    model: &Model,
    cache: &mut PagedKvCache,
    seq: u64,
    prompt: &[u32],
    device: Device,
    steps: usize,
) -> Vec<u32> {
    let mut logits = model.prefill(seq, prompt, cache, device).unwrap();
    let mut out = Vec::new();
    for _ in 0..steps {
        let t = argmax(&logits);
        out.push(t);
        logits = model.decode(seq, t, cache).unwrap();
    }
    out
}

#[test]
fn gpu_and_cpu_resident_generation_agree() {
    let desc = ModelDesc::small();
    let model = Model::random(&desc, 7);
    let prompt = [3u32, 999, 14, 52, 8, 120, 77];

    let mut gpu_cache = PagedKvCache::new(&desc, 16, 4096, 4096);
    let mut cpu_cache = PagedKvCache::new(&desc, 16, 4096, 4096);
    let on_gpu = greedy_generate(&model, &mut gpu_cache, 1, &prompt, Device::Gpu, 16);
    let on_cpu = greedy_generate(&model, &mut cpu_cache, 1, &prompt, Device::Cpu, 16);
    assert_eq!(on_gpu, on_cpu);
}

#[test]
fn swapping_kv_between_pools_never_changes_logits() {
    let desc = ModelDesc::tiny();
    let model = Model::random(&desc, 8);
    let prompt = [1u32, 2, 3, 4, 5, 6, 7, 8];

    // Reference: stays on the GPU pool the whole time.
    let mut reference = PagedKvCache::new(&desc, 8, 2048, 4096);
    let mut ref_logits = model.prefill(1, &prompt, &mut reference, Device::Gpu).unwrap();

    // Subject: swapped to the other pool before every single decode step.
    let mut subject = PagedKvCache::new(&desc, 8, 2048, 4096);
    let mut sub_logits = model.prefill(1, &prompt, &mut subject, Device::Gpu).unwrap();

    for step in 0..10 {
        assert!(close(&ref_logits, &sub_logits, 1e-4), "logits diverged at step {step}");
        let token = argmax(&ref_logits);
        let target = subject.device_of(1).unwrap().other();
        subject.swap(1, target).unwrap();
        ref_logits = model.decode(1, token, &mut reference).unwrap();
        sub_logits = model.decode(1, token, &mut subject).unwrap();
    }
}

#[test]
fn mixed_device_batch_matches_isolated_requests() {
    // A batch with one GPU-resident and one CPU-resident request (the two sub-batches of
    // an iteration) must produce the same logits as running each request alone.
    let desc = ModelDesc::tiny();
    let model = Model::random(&desc, 9);

    let mut batch_cache = PagedKvCache::new(&desc, 8, 2048, 4096);
    model.prefill(1, &[10, 20, 30, 40], &mut batch_cache, Device::Gpu).unwrap();
    model.prefill(2, &[50, 60, 70], &mut batch_cache, Device::Cpu).unwrap();
    let batched = model.decode_batch(&[(1, 41), (2, 71)], &mut batch_cache).unwrap();

    let mut solo1 = PagedKvCache::new(&desc, 8, 2048, 4096);
    model.prefill(1, &[10, 20, 30, 40], &mut solo1, Device::Gpu).unwrap();
    let alone1 = model.decode(1, 41, &mut solo1).unwrap();

    let mut solo2 = PagedKvCache::new(&desc, 8, 2048, 4096);
    model.prefill(2, &[50, 60, 70], &mut solo2, Device::Cpu).unwrap();
    let alone2 = model.decode(2, 71, &mut solo2).unwrap();

    assert!(close(&batched[0], &alone1, 1e-3));
    assert!(close(&batched[1], &alone2, 1e-3));
}

#[test]
fn long_generation_with_periodic_swaps_stays_deterministic() {
    let desc = ModelDesc::tiny();
    let model = Model::random(&desc, 10);
    let prompt = [42u32, 43, 44];

    let run = |swap_every: Option<usize>| {
        let mut cache = PagedKvCache::new(&desc, 8, 4096, 8192);
        let mut logits = model.prefill(1, &prompt, &mut cache, Device::Gpu).unwrap();
        let mut tokens = Vec::new();
        for step in 0..32 {
            if let Some(k) = swap_every {
                if step % k == k - 1 {
                    let target = cache.device_of(1).unwrap().other();
                    cache.swap(1, target).unwrap();
                }
            }
            let t = argmax(&logits);
            tokens.push(t);
            logits = model.decode(1, t, &mut cache).unwrap();
        }
        tokens
    };

    let never = run(None);
    let sometimes = run(Some(5));
    let often = run(Some(2));
    assert_eq!(never, sometimes);
    assert_eq!(never, often);
}
