//! Per-request SLO deadlines.
//!
//! The paper's whole argument is about keeping *online* serving inside latency SLOs
//! (§5.2 evaluates TTFT and per-token latency against fixed targets). [`SloPolicy`]
//! turns that into a per-request completion deadline a serving layer can enforce: a
//! request that cannot finish by its deadline is shed (typed as dropped) instead of
//! occupying KV and pipeline slots that paying traffic needs.
//!
//! The policy is a trace-level overlay, not a trace field: the same trace can be
//! replayed under different SLO regimes (or none) without regenerating it.

use serde::{Deserialize, Serialize};

/// A linear completion-deadline policy: a request arriving at `t` with `n` output
/// tokens must finish by `t + base_s + per_output_token_s · n`.
///
/// The two terms mirror the paper's two latency metrics — `base_s` budgets the TTFT
/// (queueing + prefill), `per_output_token_s` budgets the decode at an acceptable
/// inter-token latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloPolicy {
    /// Fixed budget covering queueing and prefill, in seconds.
    pub base_s: f64,
    /// Decode budget per output token, in seconds.
    pub per_output_token_s: f64,
}

impl SloPolicy {
    /// A policy with the given fixed and per-output-token budgets.
    ///
    /// # Panics
    ///
    /// Panics if either budget is negative or not finite.
    pub fn new(base_s: f64, per_output_token_s: f64) -> Self {
        assert!(base_s.is_finite() && base_s >= 0.0, "base budget must be finite and >= 0");
        assert!(
            per_output_token_s.is_finite() && per_output_token_s >= 0.0,
            "per-token budget must be finite and >= 0"
        );
        Self { base_s, per_output_token_s }
    }

    /// Completion deadline for a request arriving at `arrival` with `output_len`
    /// output tokens.
    pub fn deadline(&self, arrival: f64, output_len: usize) -> f64 {
        arrival + self.base_s + self.per_output_token_s * output_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_is_linear_in_output_length() {
        let slo = SloPolicy::new(10.0, 0.5);
        assert_eq!(slo.deadline(2.0, 0), 12.0);
        assert_eq!(slo.deadline(2.0, 100), 62.0);
        let longer = SloPolicy::new(10.0, 0.5).deadline(2.0, 101);
        assert!(longer > slo.deadline(2.0, 100));
    }

    #[test]
    fn round_trips_through_serde() {
        let slo = SloPolicy::new(30.0, 0.25);
        let json = serde_json::to_string(&slo).unwrap();
        let back: SloPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(slo, back);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_budgets() {
        let _ = SloPolicy::new(-1.0, 0.0);
    }
}
