//! Synthetic stand-ins for the paper's evaluation datasets.
//!
//! The Azure LLM inference coding trace (AC) and the OpenAI summarization comparison
//! dataset (OSC) cannot be redistributed here, so these generators produce traces whose
//! *length statistics* match the published characteristics of each dataset:
//!
//! * **AC** — coding-assistant requests: long, heavy-tailed prompts (median ≈ 1.5k tokens,
//!   tail to 8k) and short-to-medium outputs (median ≈ 100–200 tokens). The skewed length
//!   distribution is what makes Figure 7's latency CDF skewed.
//! * **OSC** — summarisation chats: short prompts (a few hundred tokens) and short chosen
//!   summaries (tens of tokens). The paper uses this lighter trace on the T4.
//!
//! Figures 8b, 9 and 10a use the synthetic `[0.9l, 1.1l]` sweep instead, provided by
//! [`synthetic`].

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::arrivals::ArrivalProcess;
use crate::lengths::LengthDistribution;
use crate::trace::{Trace, TraceRequest};

/// Generates a trace with the given length distributions and arrival process.
pub fn generate(
    n: usize,
    prompt: &LengthDistribution,
    output: &LengthDistribution,
    arrivals: ArrivalProcess,
    seed: u64,
) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let times = arrivals.generate(n, &mut rng);
    times
        .into_iter()
        .map(|arrival| TraceRequest {
            arrival,
            prompt_len: prompt.sample(&mut rng),
            output_len: output.sample(&mut rng),
        })
        .collect()
}

/// An Azure-coding-trace-like workload: heavy-tailed long prompts, medium outputs.
pub fn azure_code_like(n: usize, arrivals: ArrivalProcess, seed: u64) -> Trace {
    generate(
        n,
        // ln-median ≈ e^7.3 ≈ 1480 prompt tokens, tail clamped at 8k.
        &LengthDistribution::LogNormal { mu: 7.3, sigma: 0.7, min: 64, max: 8192 },
        // ln-median ≈ e^4.9 ≈ 134 output tokens, tail clamped at 1k.
        &LengthDistribution::LogNormal { mu: 4.9, sigma: 0.8, min: 8, max: 1024 },
        arrivals,
        seed,
    )
}

/// An OpenAI-summarization-comparison-like workload: short prompts and short outputs.
pub fn osc_like(n: usize, arrivals: ArrivalProcess, seed: u64) -> Trace {
    generate(
        n,
        &LengthDistribution::LogNormal { mu: 5.8, sigma: 0.5, min: 32, max: 2048 },
        &LengthDistribution::LogNormal { mu: 3.7, sigma: 0.5, min: 4, max: 256 },
        arrivals,
        seed,
    )
}

/// The paper's synthetic sweep: prompt and output lengths sampled independently and
/// uniformly from `[0.9·input, 1.1·input]` and `[0.9·output, 1.1·output]`.
pub fn synthetic(
    n: usize,
    input: usize,
    output: usize,
    arrivals: ArrivalProcess,
    seed: u64,
) -> Trace {
    generate(
        n,
        &LengthDistribution::AroundTarget(input),
        &LengthDistribution::AroundTarget(output),
        arrivals,
        seed,
    )
}

/// A fleet-level arrival stream: an AC-like coding population and an OSC-like chat
/// population, generated independently and merged into one trace for a cluster router.
///
/// `ac_fraction` of the `n` requests (and of the total arrival `rate`) come from the
/// heavy AC stream; the rest from the light OSC stream. Both are Poisson, seeded
/// deterministically from `seed`, so the mix is reproducible.
///
/// The heavy stream carries [`azure_code_like`]'s full 8k-token prompt tail. Not
/// every fleet engine can admit those outliers — the smallest Table 1 pairing
/// (LLaMa-2-7B on the T4, a few thousand tokens of KV headroom) cannot hold them at
/// all — but admission is now *typed*: an engine refuses a never-admissible request
/// at submission (`AdmitError::NeverAdmissible`) and the router re-routes it to an
/// engine that can hold it, or sheds it with a typed reason if none can. The
/// pre-typed-admission clamp to 2.8k tokens (which kept a capacity-blind router from
/// wedging the T4 forever) is gone.
///
/// # Panics
///
/// Panics if `ac_fraction` is outside `[0, 1]` or `rate` is not positive.
pub fn fleet_mix(n: usize, ac_fraction: f64, rate: f64, seed: u64) -> Trace {
    assert!((0.0..=1.0).contains(&ac_fraction), "ac_fraction must be in [0, 1]");
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let ac_n = (n as f64 * ac_fraction).round() as usize;
    let osc_n = n - ac_n;
    let mut parts = Vec::new();
    if ac_n > 0 {
        parts.push(generate(
            ac_n,
            // azure_code_like's length statistics, full prompt tail included.
            &LengthDistribution::LogNormal { mu: 7.3, sigma: 0.7, min: 64, max: 8192 },
            &LengthDistribution::LogNormal { mu: 4.9, sigma: 0.8, min: 8, max: 1024 },
            ArrivalProcess::Poisson { rate: rate * ac_fraction },
            seed,
        ));
    }
    if osc_n > 0 {
        parts.push(osc_like(
            osc_n,
            ArrivalProcess::Poisson { rate: rate * (1.0 - ac_fraction) },
            seed ^ 0x9E37_79B9_7F4A_7C15,
        ));
    }
    parts.into_iter().fold(Trace::default(), |merged, part| merged.merge(&part))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn azure_code_like_has_long_heavy_tailed_prompts() {
        let t = azure_code_like(2000, ArrivalProcess::AllAtOnce, 1);
        let s = t.stats();
        assert!(s.mean_prompt > 1000.0 && s.mean_prompt < 3000.0, "mean prompt {}", s.mean_prompt);
        assert!(s.mean_output > 80.0 && s.mean_output < 400.0, "mean output {}", s.mean_output);
        assert!(s.p95_prompt > 2 * s.mean_prompt as usize / 2, "prompt tail should be heavy");
        assert!(s.mean_prompt > s.mean_output * 4.0, "AC prompts dwarf outputs");
    }

    #[test]
    fn osc_like_is_much_lighter_than_ac() {
        let ac = azure_code_like(1000, ArrivalProcess::AllAtOnce, 2).stats();
        let osc = osc_like(1000, ArrivalProcess::AllAtOnce, 2).stats();
        assert!(osc.mean_prompt < ac.mean_prompt / 2.0);
        assert!(osc.mean_output < ac.mean_output);
    }

    #[test]
    fn synthetic_sweep_respects_target_band() {
        let t = synthetic(500, 1000, 200, ArrivalProcess::AllAtOnce, 3);
        for r in t.requests() {
            assert!((900..=1100).contains(&r.prompt_len));
            assert!((180..=220).contains(&r.output_len));
        }
        let s = t.stats();
        assert!((s.mean_prompt - 1000.0).abs() < 30.0);
        assert!((s.mean_output - 200.0).abs() < 10.0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = azure_code_like(50, ArrivalProcess::Poisson { rate: 1.0 }, 7);
        let b = azure_code_like(50, ArrivalProcess::Poisson { rate: 1.0 }, 7);
        let c = azure_code_like(50, ArrivalProcess::Poisson { rate: 1.0 }, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fleet_mix_blends_heavy_and_light_populations() {
        let mix = fleet_mix(400, 0.5, 4.0, 17);
        assert_eq!(mix.len(), 400);
        let arrivals: Vec<f64> = mix.requests().iter().map(|r| r.arrival).collect();
        assert!(arrivals.windows(2).all(|w| w[1] >= w[0]), "merged trace stays sorted");
        // The mix sits strictly between the two pure populations.
        let pure_ac = fleet_mix(400, 1.0, 4.0, 17).stats();
        let pure_osc = fleet_mix(400, 0.0, 4.0, 17).stats();
        let mixed = mix.stats();
        assert!(mixed.mean_prompt < pure_ac.mean_prompt);
        assert!(mixed.mean_prompt > pure_osc.mean_prompt);
        // Deterministic per seed.
        assert_eq!(mix, fleet_mix(400, 0.5, 4.0, 17));
        assert_ne!(mix, fleet_mix(400, 0.5, 4.0, 18));
    }

    #[test]
    #[should_panic(expected = "ac_fraction")]
    fn fleet_mix_rejects_fractions_outside_the_unit_interval() {
        let _ = fleet_mix(10, 1.5, 1.0, 1);
    }

    #[test]
    fn poisson_arrivals_are_attached_in_order() {
        let t = osc_like(100, ArrivalProcess::Poisson { rate: 5.0 }, 4);
        let arrivals: Vec<f64> = t.requests().iter().map(|r| r.arrival).collect();
        assert!(arrivals.windows(2).all(|w| w[1] >= w[0]));
        assert!(*arrivals.last().unwrap() > 0.0);
    }
}
