//! Token-length distributions.

use rand::Rng;

/// A distribution over token lengths.
#[derive(Debug, Clone, PartialEq)]
pub enum LengthDistribution {
    /// Every sample is exactly this length.
    Fixed(usize),
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Smallest length (inclusive).
        lo: usize,
        /// Largest length (inclusive).
        hi: usize,
    },
    /// The paper's synthetic sweep convention: uniform over `[0.9·target, 1.1·target]`.
    AroundTarget(usize),
    /// Log-normal (heavy-tailed) with the given log-space mean and standard deviation,
    /// clamped to `[min, max]` — models the skew of production traces.
    LogNormal {
        /// Mean of `ln(length)`.
        mu: f64,
        /// Standard deviation of `ln(length)`.
        sigma: f64,
        /// Smallest length after clamping.
        min: usize,
        /// Largest length after clamping.
        max: usize,
    },
}

impl LengthDistribution {
    /// Draws one length.
    ///
    /// All variants return at least 1 token.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let v = match *self {
            LengthDistribution::Fixed(n) => n,
            LengthDistribution::Uniform { lo, hi } => {
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                rng.gen_range(lo..=hi)
            }
            LengthDistribution::AroundTarget(target) => {
                let lo = ((target as f64) * 0.9).round() as usize;
                let hi = ((target as f64) * 1.1).round() as usize;
                rng.gen_range(lo.min(hi)..=hi.max(lo))
            }
            LengthDistribution::LogNormal { mu, sigma, min, max } => {
                // Box–Muller standard normal.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let v = (mu + sigma * z).exp();
                (v.round() as usize).clamp(min, max)
            }
        };
        v.max(1)
    }

    /// Approximate mean of the distribution (exact for the simple variants).
    pub fn mean(&self) -> f64 {
        match *self {
            LengthDistribution::Fixed(n) => n as f64,
            LengthDistribution::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
            LengthDistribution::AroundTarget(t) => t as f64,
            LengthDistribution::LogNormal { mu, sigma, min, max } => {
                ((mu + sigma * sigma / 2.0).exp()).clamp(min as f64, max as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_always_returns_the_value() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = LengthDistribution::Fixed(37);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 37);
        }
    }

    #[test]
    fn uniform_stays_in_range_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = LengthDistribution::Uniform { lo: 10, hi: 20 };
        let samples: Vec<usize> = (0..500).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (10..=20).contains(&s)));
        assert!(samples.contains(&10));
        assert!(samples.contains(&20));
    }

    #[test]
    fn around_target_matches_paper_convention() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LengthDistribution::AroundTarget(1000);
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            assert!((900..=1100).contains(&s), "sample {s} outside [0.9l, 1.1l]");
        }
    }

    #[test]
    fn lognormal_is_heavy_tailed_and_clamped() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = LengthDistribution::LogNormal { mu: 7.0, sigma: 0.8, min: 16, max: 8192 };
        let samples: Vec<usize> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (16..=8192).contains(&s)));
        let mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[samples.len() / 2] as f64;
        assert!(mean > median, "log-normal mean {mean} should exceed median {median}");
    }

    #[test]
    fn samples_are_never_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = LengthDistribution::Uniform { lo: 0, hi: 1 };
        for _ in 0..50 {
            assert!(d.sample(&mut rng) >= 1);
        }
    }

    #[test]
    fn means_are_sensible() {
        assert_eq!(LengthDistribution::Fixed(5).mean(), 5.0);
        assert_eq!(LengthDistribution::Uniform { lo: 0, hi: 10 }.mean(), 5.0);
        assert_eq!(LengthDistribution::AroundTarget(100).mean(), 100.0);
    }
}
