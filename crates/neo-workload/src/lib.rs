//! Workload generation for the NEO reproduction.
//!
//! The paper evaluates on two real traces and a family of synthetic sweeps:
//!
//! * **Azure LLM inference trace for coding (AC)** — production coding-assistant requests
//!   with long prompts (roughly 1–4k tokens) and short-to-medium outputs, heavy-tailed.
//!   Used on the H100 and A10G testbeds (Figures 6a/6b, 7, 8, 10b).
//! * **OpenAI summarization comparison (OSC)** — chat summarisation requests with much
//!   shorter prompts and outputs. Used on the low-end T4 testbed (Figure 6c).
//! * **Synthetic workloads** — input and output lengths sampled independently and
//!   uniformly from `[0.9·l, 1.1·l]` for a target pair `(l_i, l_o)` (Figures 8b, 9, 10a).
//!
//! The original trace files are not redistributable, so [`datasets`] generates synthetic
//! traces whose length statistics match the published characteristics (documented on each
//! constructor); arrivals follow a Poisson process as in §5.2 of the paper.
//!
//! # Example
//!
//! ```
//! use neo_workload::{azure_code_like, ArrivalProcess};
//!
//! let trace = azure_code_like(100, ArrivalProcess::Poisson { rate: 1.0 }, 42);
//! let stats = trace.stats();
//! assert_eq!(stats.count, 100);
//! // Coding-assistant prompts dwarf their outputs.
//! assert!(stats.mean_prompt > stats.mean_output);
//! ```

#![forbid(unsafe_code)]

pub mod arrivals;
pub mod datasets;
pub mod lengths;
pub mod sessions;
pub mod slo;
pub mod trace;

pub use arrivals::ArrivalProcess;
pub use datasets::{azure_code_like, fleet_mix, osc_like, synthetic};
pub use lengths::LengthDistribution;
pub use sessions::{
    agent_loop, multi_turn_chat, AgentConfig, ChatConfig, SessionRequest, SessionTrace,
};
pub use slo::SloPolicy;
pub use trace::{ArrivalEvent, ArrivalEvents, Trace, TraceRequest, TraceStats};
