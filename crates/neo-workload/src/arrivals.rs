//! Arrival processes.

use rand::Rng;

/// How request arrival times are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// All requests arrive at time zero (offline / batch throughput experiments).
    AllAtOnce,
    /// Poisson process with the given rate in requests per second (online experiments,
    /// §5.2 of the paper).
    Poisson {
        /// Mean arrival rate in requests per second.
        rate: f64,
    },
    /// Deterministic arrivals exactly `1/rate` apart.
    Uniform {
        /// Arrival rate in requests per second.
        rate: f64,
    },
}

impl ArrivalProcess {
    /// Generates `n` arrival times (seconds, ascending).
    ///
    /// # Panics
    ///
    /// Panics if a rate-based process has a non-positive rate.
    pub fn generate<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        match *self {
            ArrivalProcess::AllAtOnce => vec![0.0; n],
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "Poisson rate must be positive");
                let mut t = 0.0;
                (0..n)
                    .map(|_| {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        t += -u.ln() / rate;
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Uniform { rate } => {
                assert!(rate > 0.0, "arrival rate must be positive");
                (0..n).map(|i| (i + 1) as f64 / rate).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_at_once_is_all_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(ArrivalProcess::AllAtOnce.generate(4, &mut rng), vec![0.0; 4]);
    }

    #[test]
    fn poisson_mean_interval_matches_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let rate = 2.0;
        let arrivals = ArrivalProcess::Poisson { rate }.generate(4000, &mut rng);
        assert!(arrivals.windows(2).all(|w| w[1] >= w[0]), "arrivals must be ascending");
        let mean_interval = arrivals.last().unwrap() / arrivals.len() as f64;
        assert!((mean_interval - 0.5).abs() < 0.05, "mean interval {mean_interval}");
    }

    #[test]
    fn uniform_is_evenly_spaced() {
        let mut rng = StdRng::seed_from_u64(2);
        let arrivals = ArrivalProcess::Uniform { rate: 4.0 }.generate(4, &mut rng);
        assert_eq!(arrivals, vec![0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn empty_generation_is_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(ArrivalProcess::Poisson { rate: 1.0 }.generate(0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_rate_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = ArrivalProcess::Poisson { rate: 0.0 }.generate(1, &mut rng);
    }
}
