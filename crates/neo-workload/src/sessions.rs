//! Session workloads: multi-turn chat and agent loops with prompt *identity*.
//!
//! The plain [`crate::Trace`] describes requests only by their lengths, which is enough
//! for the latency/throughput experiments but says nothing about *which* tokens a prompt
//! contains. Prefix caching needs identity: a turn of a chat session re-sends the whole
//! conversation so far, so its prompt literally starts with the previous turn's prompt
//! plus the previous answer. These generators produce [`SessionTrace`]s whose requests
//! carry [`TokenRun`]s — `(run id, length)` pairs, the same currency
//! `neo_kvcache::PrefixIndex` matches on — forming per-session prefix chains:
//!
//! * [`multi_turn_chat`] — chat sessions of `turns` requests each. Turn `t`'s prompt is
//!   `[system, user_1, answer_1, …, user_t]`; the answer runs have exactly the previous
//!   turn's output length, so consecutive turns share everything but the newest user
//!   message. A fraction of sessions (driven by `shared_system_prob`) lead with one
//!   fleet-wide system run, so even *first* turns of different sessions can share KV.
//! * [`agent_loop`] — tool-using agent trajectories. Step `t`'s prompt is
//!   `[preamble, task, action_1, observation_1, …, action_{t-1}, observation_{t-1}]`:
//!   the context grows monotonically and every step is a pure extension of the previous
//!   one — the best case for prefix reuse.
//!
//! The share decision of a session is drawn once from a per-session stream seeded
//! independently of `shared_system_prob`, so sweeping the probability upward only ever
//! *adds* sessions to the shared pool (nested sets). Measured hit rates are therefore
//! monotone in the probability, which the `fig_prefix_cache` experiment relies on.

use neo_kvcache::TokenRun;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::arrivals::ArrivalProcess;
use crate::lengths::LengthDistribution;
use crate::trace::{Trace, TraceRequest};

/// Run id of the fleet-wide chat system prompt shared across sessions.
pub const SHARED_SYSTEM_RUN: u64 = 1;

/// Run id of the fleet-wide agent preamble (system prompt + tool definitions).
pub const AGENT_PREAMBLE_RUN: u64 = 2;

/// Builds a session-private run id. Stays far below the engine's opaque-run namespace
/// (`1 << 63`), so workload-issued identities never collide with synthesised ones.
fn run_id(session: usize, turn: usize, kind: u64) -> u64 {
    debug_assert!(kind < 4, "two bits of kind");
    0x100 + (((session as u64) << 34) | ((turn as u64) << 2) | kind)
}

const KIND_SYSTEM: u64 = 0;
const KIND_USER: u64 = 1;
const KIND_ANSWER: u64 = 2;
const KIND_TASK: u64 = 3;

/// One request of a session workload: an arrival time, the prompt as identity-carrying
/// runs, and the output length.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRequest {
    /// Arrival time in seconds.
    pub arrival: f64,
    /// Prompt content as token runs, in prompt order. Never empty; lengths sum to the
    /// prompt length.
    pub runs: Vec<TokenRun>,
    /// Output length in tokens.
    pub output_len: usize,
}

impl SessionRequest {
    /// Prompt length in tokens (the sum of the run lengths).
    pub fn prompt_len(&self) -> usize {
        self.runs.iter().map(|r| r.len).sum()
    }
}

/// A set of identity-carrying requests sorted by arrival time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionTrace {
    requests: Vec<SessionRequest>,
}

impl SessionTrace {
    /// Creates a trace from unsorted requests; they are sorted by arrival time (stable,
    /// so same-time requests keep their construction order).
    pub fn new(mut requests: Vec<SessionRequest>) -> Self {
        requests.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        Self { requests }
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[SessionRequest] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Largest prompt + output context over the trace, in tokens.
    pub fn max_context(&self) -> usize {
        self.requests.iter().map(|r| r.prompt_len() + r.output_len).max().unwrap_or(0)
    }

    /// Drops the prompt identities, yielding a plain length-only [`Trace`] (e.g. to run
    /// the same workload through a cache-less baseline driver).
    pub fn to_trace(&self) -> Trace {
        self.requests
            .iter()
            .map(|r| TraceRequest {
                arrival: r.arrival,
                prompt_len: r.prompt_len(),
                output_len: r.output_len,
            })
            .collect()
    }
}

/// Shape of a [`multi_turn_chat`] workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ChatConfig {
    /// Number of chat sessions.
    pub sessions: usize,
    /// Turns (requests) per session.
    pub turns: usize,
    /// System-prompt length in tokens (identical for shared and private systems).
    pub system_len: usize,
    /// Target user-message length; samples land in `[0.9·len, 1.1·len]`.
    pub user_len: usize,
    /// Target answer length; samples land in `[0.9·len, 1.1·len]`.
    pub output_len: usize,
    /// Probability that a session uses the fleet-wide system prompt instead of a
    /// private one. Sweeping this up only adds sessions to the shared pool.
    pub shared_system_prob: f64,
    /// Poisson rate of session starts, in sessions per second.
    pub session_rate: f64,
    /// Think time between a turn's arrival and the next turn of the same session.
    pub turn_gap: f64,
}

impl ChatConfig {
    fn validate(&self) {
        assert!(self.turns > 0, "sessions need at least one turn");
        assert!(
            self.system_len > 0 && self.user_len > 0 && self.output_len > 0,
            "lengths must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.shared_system_prob),
            "shared_system_prob must be in [0, 1]"
        );
        assert!(
            self.session_rate > 0.0 && self.session_rate.is_finite(),
            "session rate must be positive"
        );
        assert!(self.turn_gap >= 0.0 && self.turn_gap.is_finite(), "turn gap must be finite");
    }
}

/// Per-session random stream, independent of every other session and of any
/// sweep parameter, so per-session decisions stay fixed as the sweep moves.
fn session_rng(seed: u64, session: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(session as u64 + 1))
}

/// Generates a multi-turn chat workload (see the module docs for the prompt structure).
///
/// Deterministic per `(cfg, seed)`.
///
/// # Panics
///
/// Panics if a length or rate is non-positive, `turns` is zero, or
/// `shared_system_prob` is outside `[0, 1]`.
pub fn multi_turn_chat(cfg: &ChatConfig, seed: u64) -> SessionTrace {
    cfg.validate();
    let mut arrival_rng = StdRng::seed_from_u64(seed);
    let starts =
        ArrivalProcess::Poisson { rate: cfg.session_rate }.generate(cfg.sessions, &mut arrival_rng);
    let user_dist = LengthDistribution::AroundTarget(cfg.user_len);
    let output_dist = LengthDistribution::AroundTarget(cfg.output_len);

    let mut requests = Vec::with_capacity(cfg.sessions * cfg.turns);
    for (s, &start) in starts.iter().enumerate() {
        let mut rng = session_rng(seed, s);
        // First draw: the share decision. Drawn before any lengths so it is the same
        // sample no matter how the length targets are configured.
        let shared = rand::Rng::gen_range(&mut rng, 0.0..1.0) < cfg.shared_system_prob;
        let system_id = if shared { SHARED_SYSTEM_RUN } else { run_id(s, 0, KIND_SYSTEM) };
        let mut history = vec![TokenRun { id: system_id, len: cfg.system_len }];
        for t in 0..cfg.turns {
            let user = TokenRun { id: run_id(s, t, KIND_USER), len: user_dist.sample(&mut rng) };
            let output_len = output_dist.sample(&mut rng);
            let mut runs = history.clone();
            runs.push(user);
            requests.push(SessionRequest {
                arrival: start + t as f64 * cfg.turn_gap,
                runs: runs.clone(),
                output_len,
            });
            // Next turn re-sends this prompt plus the answer just generated.
            history = runs;
            history.push(TokenRun { id: run_id(s, t, KIND_ANSWER), len: output_len });
        }
    }
    SessionTrace::new(requests)
}

/// Shape of an [`agent_loop`] workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentConfig {
    /// Number of agent trajectories.
    pub sessions: usize,
    /// Steps (requests) per trajectory.
    pub steps: usize,
    /// Length of the fleet-wide preamble (system prompt + tool definitions).
    pub preamble_len: usize,
    /// Target task-description length; samples land in `[0.9·len, 1.1·len]`.
    pub task_len: usize,
    /// Target tool-observation length; samples land in `[0.9·len, 1.1·len]`.
    pub observation_len: usize,
    /// Target action (model output) length; samples land in `[0.9·len, 1.1·len]`.
    pub output_len: usize,
    /// Poisson rate of trajectory starts, in sessions per second.
    pub session_rate: f64,
    /// Tool-execution time between a step's arrival and the next step.
    pub step_gap: f64,
}

impl AgentConfig {
    fn validate(&self) {
        assert!(self.steps > 0, "trajectories need at least one step");
        assert!(
            self.preamble_len > 0
                && self.task_len > 0
                && self.observation_len > 0
                && self.output_len > 0,
            "lengths must be positive"
        );
        assert!(
            self.session_rate > 0.0 && self.session_rate.is_finite(),
            "session rate must be positive"
        );
        assert!(self.step_gap >= 0.0 && self.step_gap.is_finite(), "step gap must be finite");
    }
}

/// Generates an agent-loop workload: every step's prompt extends the previous step's
/// prompt with the action taken and the observation returned, so a trajectory is one
/// unbroken prefix chain. All trajectories share the preamble run.
///
/// Deterministic per `(cfg, seed)`.
///
/// # Panics
///
/// Panics if a length or rate is non-positive or `steps` is zero.
pub fn agent_loop(cfg: &AgentConfig, seed: u64) -> SessionTrace {
    cfg.validate();
    let mut arrival_rng = StdRng::seed_from_u64(seed);
    let starts =
        ArrivalProcess::Poisson { rate: cfg.session_rate }.generate(cfg.sessions, &mut arrival_rng);
    let task_dist = LengthDistribution::AroundTarget(cfg.task_len);
    let obs_dist = LengthDistribution::AroundTarget(cfg.observation_len);
    let output_dist = LengthDistribution::AroundTarget(cfg.output_len);

    let mut requests = Vec::with_capacity(cfg.sessions * cfg.steps);
    for (s, &start) in starts.iter().enumerate() {
        let mut rng = session_rng(seed, s);
        let mut history = vec![
            TokenRun { id: AGENT_PREAMBLE_RUN, len: cfg.preamble_len },
            TokenRun { id: run_id(s, 0, KIND_TASK), len: task_dist.sample(&mut rng) },
        ];
        for t in 0..cfg.steps {
            let output_len = output_dist.sample(&mut rng);
            requests.push(SessionRequest {
                arrival: start + t as f64 * cfg.step_gap,
                runs: history.clone(),
                output_len,
            });
            // The action the model emitted and the observation the tool returned both
            // join the next step's context.
            history.push(TokenRun { id: run_id(s, t, KIND_ANSWER), len: output_len });
            history.push(TokenRun { id: run_id(s, t, KIND_USER), len: obs_dist.sample(&mut rng) });
        }
    }
    SessionTrace::new(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn chat_cfg(prob: f64) -> ChatConfig {
        ChatConfig {
            sessions: 12,
            turns: 4,
            system_len: 256,
            user_len: 64,
            output_len: 48,
            shared_system_prob: prob,
            session_rate: 2.0,
            turn_gap: 5.0,
        }
    }

    /// Requests of one chat session, in turn order (arrival order within a session).
    fn session_requests(
        trace: &SessionTrace,
        system_ids: &BTreeSet<u64>,
    ) -> Vec<Vec<SessionRequest>> {
        // Group by the session-identifying user run of turn 0 is awkward; instead group
        // by the first *user* run's session bits.
        let mut by_session: std::collections::BTreeMap<u64, Vec<SessionRequest>> =
            std::collections::BTreeMap::new();
        for r in trace.requests() {
            let user = r.runs.iter().find(|run| !system_ids.contains(&run.id)).unwrap();
            by_session.entry(user.id >> 34).or_default().push(r.clone());
        }
        let mut out: Vec<Vec<SessionRequest>> = by_session.into_values().collect();
        for session in &mut out {
            session.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        }
        out
    }

    #[test]
    fn chat_turns_form_a_prefix_chain() {
        let trace = multi_turn_chat(&chat_cfg(0.5), 7);
        assert_eq!(trace.len(), 12 * 4);
        let system_ids: BTreeSet<u64> = trace.requests().iter().map(|r| r.runs[0].id).collect();
        for session in session_requests(&trace, &system_ids) {
            assert_eq!(session.len(), 4);
            for pair in session.windows(2) {
                let (prev, next) = (&pair[0], &pair[1]);
                // The next prompt starts with the whole previous prompt...
                assert!(next.runs.len() > prev.runs.len());
                assert_eq!(&next.runs[..prev.runs.len()], &prev.runs[..]);
                // ...followed by an answer run of exactly the previous output length.
                assert_eq!(next.runs[prev.runs.len()].len, prev.output_len);
                assert!(next.arrival > prev.arrival);
            }
        }
    }

    #[test]
    fn share_probability_extremes_are_all_or_nothing() {
        let all = multi_turn_chat(&chat_cfg(1.0), 7);
        assert!(all.requests().iter().all(|r| r.runs[0].id == SHARED_SYSTEM_RUN));
        let none = multi_turn_chat(&chat_cfg(0.0), 7);
        assert!(none.requests().iter().all(|r| r.runs[0].id != SHARED_SYSTEM_RUN));
        // Private system runs are private: one distinct id per session.
        let ids: BTreeSet<u64> = none.requests().iter().map(|r| r.runs[0].id).collect();
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn shared_sessions_nest_as_the_probability_grows() {
        // The sessions sharing at p=0.3 are a subset of those sharing at p=0.7: the
        // share decision comes from a per-session stream independent of p.
        let shared_at = |p: f64| -> BTreeSet<u64> {
            let trace = multi_turn_chat(&chat_cfg(p), 7);
            let system_ids: BTreeSet<u64> = trace.requests().iter().map(|r| r.runs[0].id).collect();
            session_requests(&trace, &system_ids)
                .iter()
                .enumerate()
                .filter(|(_, reqs)| reqs[0].runs[0].id == SHARED_SYSTEM_RUN)
                .map(|(i, _)| i as u64)
                .collect()
        };
        let low = shared_at(0.3);
        let high = shared_at(0.7);
        assert!(low.is_subset(&high), "shared pools must nest: {low:?} vs {high:?}");
        assert!(high.len() >= low.len());
    }

    #[test]
    fn chat_is_deterministic_per_seed() {
        let a = multi_turn_chat(&chat_cfg(0.5), 3);
        let b = multi_turn_chat(&chat_cfg(0.5), 3);
        let c = multi_turn_chat(&chat_cfg(0.5), 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn run_ids_stay_below_the_opaque_namespace() {
        let chat = multi_turn_chat(&chat_cfg(0.5), 7);
        let agent = agent_loop(&agent_cfg(), 7);
        for r in chat.requests().iter().chain(agent.requests()) {
            assert_eq!(r.prompt_len(), r.runs.iter().map(|x| x.len).sum::<usize>());
            for run in &r.runs {
                assert!(run.len > 0);
                assert!(run.id < 1 << 63, "workload ids stay out of the opaque namespace");
            }
        }
    }

    fn agent_cfg() -> AgentConfig {
        AgentConfig {
            sessions: 6,
            steps: 5,
            preamble_len: 512,
            task_len: 96,
            observation_len: 128,
            output_len: 32,
            session_rate: 1.0,
            step_gap: 2.0,
        }
    }

    #[test]
    fn agent_steps_grow_one_unbroken_prefix_chain() {
        let trace = agent_loop(&agent_cfg(), 11);
        assert_eq!(trace.len(), 6 * 5);
        // Group by the task run (index 1), which is unique per trajectory.
        let mut by_session: std::collections::BTreeMap<u64, Vec<&SessionRequest>> =
            std::collections::BTreeMap::new();
        for r in trace.requests() {
            assert_eq!(r.runs[0].id, AGENT_PREAMBLE_RUN);
            by_session.entry(r.runs[1].id).or_default().push(r);
        }
        assert_eq!(by_session.len(), 6);
        for steps in by_session.values_mut() {
            steps.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
            assert_eq!(steps.len(), 5);
            for pair in steps.windows(2) {
                let (prev, next) = (pair[0], pair[1]);
                // Each step appends exactly an action and an observation.
                assert_eq!(next.runs.len(), prev.runs.len() + 2);
                assert_eq!(&next.runs[..prev.runs.len()], &prev.runs[..]);
                assert_eq!(next.runs[prev.runs.len()].len, prev.output_len);
            }
            // The context grows monotonically along the trajectory.
            assert!(steps.windows(2).all(|w| w[1].prompt_len() > w[0].prompt_len()));
        }
    }

    #[test]
    fn to_trace_preserves_lengths_and_order() {
        let trace = multi_turn_chat(&chat_cfg(0.5), 9);
        let flat = trace.to_trace();
        assert_eq!(flat.len(), trace.len());
        for (s, f) in trace.requests().iter().zip(flat.requests()) {
            assert_eq!(f.arrival, s.arrival);
            assert_eq!(f.prompt_len, s.prompt_len());
            assert_eq!(f.output_len, s.output_len);
        }
        let arrivals: Vec<f64> = flat.requests().iter().map(|r| r.arrival).collect();
        assert!(arrivals.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    #[should_panic(expected = "shared_system_prob")]
    fn chat_rejects_probabilities_outside_the_unit_interval() {
        let _ = multi_turn_chat(&ChatConfig { shared_system_prob: 1.5, ..chat_cfg(0.0) }, 1);
    }

    #[test]
    fn max_context_and_emptiness() {
        let empty = SessionTrace::default();
        assert!(empty.is_empty());
        assert_eq!(empty.max_context(), 0);
        let trace = agent_loop(&agent_cfg(), 2);
        let by_hand = trace.requests().iter().map(|r| r.prompt_len() + r.output_len).max().unwrap();
        assert_eq!(trace.max_context(), by_hand);
    }
}
