//! Request traces and their statistics.

use serde::{Deserialize, Serialize};

/// One request of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRequest {
    /// Arrival time in seconds from the start of the trace.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Output length in tokens.
    pub output_len: usize,
}

/// A workload trace: requests ordered by arrival time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    requests: Vec<TraceRequest>,
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of requests.
    pub count: usize,
    /// Mean prompt length in tokens.
    pub mean_prompt: f64,
    /// Mean output length in tokens.
    pub mean_output: f64,
    /// 95th-percentile prompt length.
    pub p95_prompt: usize,
    /// 95th-percentile output length.
    pub p95_output: usize,
    /// Total tokens (prompt + output) across the trace.
    pub total_tokens: u64,
    /// Trace duration (last arrival time), in seconds.
    pub duration: f64,
}

impl Trace {
    /// Builds a trace, sorting the requests by arrival time.
    pub fn new(mut requests: Vec<TraceRequest>) -> Self {
        requests.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        Self { requests }
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[TraceRequest] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Returns a copy of the trace with all arrival times set to zero ("feed the whole
    /// trace at once"), as the offline-throughput experiments do (§5.5).
    pub fn as_offline(&self) -> Trace {
        Trace {
            requests: self.requests.iter().map(|r| TraceRequest { arrival: 0.0, ..*r }).collect(),
        }
    }

    /// Returns a copy truncated to the first `n` requests.
    pub fn take(&self, n: usize) -> Trace {
        Trace { requests: self.requests.iter().take(n).copied().collect() }
    }

    /// Merges two traces into one arrival stream, re-sorted by arrival time.
    ///
    /// This is how fleet-level workloads are assembled: each user population (e.g. an
    /// AC-like coding stream and an OSC-like chat stream) is generated independently
    /// and the router sees their interleaving. The sort is stable, so same-instant
    /// arrivals keep `self`-before-`other` order and the merge is deterministic.
    pub fn merge(&self, other: &Trace) -> Trace {
        let mut requests = self.requests.clone();
        requests.extend_from_slice(&other.requests);
        Trace::new(requests)
    }

    /// Summary statistics.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn stats(&self) -> TraceStats {
        assert!(!self.requests.is_empty(), "cannot compute statistics of an empty trace");
        let count = self.requests.len();
        let mut prompts: Vec<usize> = self.requests.iter().map(|r| r.prompt_len).collect();
        let mut outputs: Vec<usize> = self.requests.iter().map(|r| r.output_len).collect();
        prompts.sort_unstable();
        outputs.sort_unstable();
        let p95 = |v: &[usize]| v[((v.len() as f64 * 0.95) as usize).min(v.len() - 1)];
        TraceStats {
            count,
            mean_prompt: prompts.iter().sum::<usize>() as f64 / count as f64,
            mean_output: outputs.iter().sum::<usize>() as f64 / count as f64,
            p95_prompt: p95(&prompts),
            p95_output: p95(&outputs),
            total_tokens: self.requests.iter().map(|r| (r.prompt_len + r.output_len) as u64).sum(),
            duration: self.requests.last().map(|r| r.arrival).unwrap_or(0.0),
        }
    }
}

/// One arrival event of a trace replay: the `index`-th request of the trace becomes
/// visible to the serving layer at `time`.
///
/// Produced by [`Trace::events`]; event-driven serving loops consume these one at a time
/// instead of scanning the whole trace up front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalEvent {
    /// Position of the request within the trace (a stable per-trace id).
    pub index: usize,
    /// Arrival time in seconds from the start of the trace.
    pub time: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Output length in tokens.
    pub output_len: usize,
}

/// Iterator over a trace's [`ArrivalEvent`]s in arrival-time order.
#[derive(Debug, Clone)]
pub struct ArrivalEvents<'a> {
    inner: std::iter::Enumerate<std::slice::Iter<'a, TraceRequest>>,
}

impl Iterator for ArrivalEvents<'_> {
    type Item = ArrivalEvent;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(index, r)| ArrivalEvent {
            index,
            time: r.arrival,
            prompt_len: r.prompt_len,
            output_len: r.output_len,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for ArrivalEvents<'_> {}

impl Trace {
    /// Iterates over the trace as a stream of arrival events, in time order (the trace is
    /// sorted at construction). This is the replay interface of the event-driven serving
    /// loop: each event is fed to the server as it "happens" rather than the whole trace
    /// being walked synchronously.
    pub fn events(&self) -> ArrivalEvents<'_> {
        ArrivalEvents { inner: self.requests.iter().enumerate() }
    }
}

impl FromIterator<TraceRequest> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRequest>>(iter: I) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(vec![
            TraceRequest { arrival: 2.0, prompt_len: 100, output_len: 10 },
            TraceRequest { arrival: 0.5, prompt_len: 300, output_len: 30 },
            TraceRequest { arrival: 1.0, prompt_len: 200, output_len: 20 },
        ])
    }

    #[test]
    fn requests_are_sorted_by_arrival() {
        let t = sample();
        let arrivals: Vec<f64> = t.requests().iter().map(|r| r.arrival).collect();
        assert_eq!(arrivals, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    fn stats_are_correct() {
        let s = sample().stats();
        assert_eq!(s.count, 3);
        assert!((s.mean_prompt - 200.0).abs() < 1e-9);
        assert!((s.mean_output - 20.0).abs() < 1e-9);
        assert_eq!(s.total_tokens, 660);
        assert_eq!(s.duration, 2.0);
        assert_eq!(s.p95_prompt, 300);
    }

    #[test]
    fn offline_variant_zeroes_arrivals() {
        let t = sample().as_offline();
        assert!(t.requests().iter().all(|r| r.arrival == 0.0));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn take_truncates() {
        let t = sample().take(2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(sample().take(0).is_empty());
    }

    #[test]
    fn merge_interleaves_two_traces_in_arrival_order() {
        let a = Trace::new(vec![
            TraceRequest { arrival: 0.0, prompt_len: 10, output_len: 1 },
            TraceRequest { arrival: 2.0, prompt_len: 20, output_len: 2 },
        ]);
        let b = Trace::new(vec![TraceRequest { arrival: 1.0, prompt_len: 30, output_len: 3 }]);
        let merged = a.merge(&b);
        assert_eq!(merged.len(), 3);
        let arrivals: Vec<f64> = merged.requests().iter().map(|r| r.arrival).collect();
        assert_eq!(arrivals, vec![0.0, 1.0, 2.0]);
        assert_eq!(merged.requests()[1].prompt_len, 30);
        // Stable on ties: self's request comes first.
        let tie = a.merge(&Trace::new(vec![TraceRequest {
            arrival: 0.0,
            prompt_len: 99,
            output_len: 9,
        }]));
        assert_eq!(tie.requests()[0].prompt_len, 10);
        assert_eq!(tie.requests()[1].prompt_len, 99);
    }

    #[test]
    fn from_iterator_collects() {
        let t: Trace = (0..5)
            .map(|i| TraceRequest { arrival: i as f64, prompt_len: 10, output_len: 5 })
            .collect();
        assert_eq!(t.len(), 5);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn stats_of_empty_trace_panics() {
        let _ = Trace::default().stats();
    }

    #[test]
    fn events_stream_the_trace_in_time_order() {
        let t = sample();
        let events: Vec<ArrivalEvent> = t.events().collect();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(
            events[0],
            ArrivalEvent { index: 0, time: 0.5, prompt_len: 300, output_len: 30 }
        );
        assert_eq!(events[2].index, 2);
        assert_eq!(events[2].prompt_len, 100);
    }

    #[test]
    fn events_is_an_exact_size_iterator() {
        let t = sample();
        let mut events = t.events();
        assert_eq!(events.len(), 3);
        events.next();
        assert_eq!(events.len(), 2);
        assert!(Trace::default().events().next().is_none());
    }
}
