//! Thread-scaling sweep for the CPU hot paths: partitioned flash-decode attention and the
//! dense matvec.
//!
//! Sweeps the rayon pool width over 1/2/4/8 via `ThreadPool::install` (no re-exec, no
//! `RAYON_NUM_THREADS` juggling) and reports one estimate per width, so the
//! serial-vs-partitioned curves NEO's offloading bet depends on are measurable directly:
//! on an N-core machine the `flash_decode/<t>` ids should show throughput rising with `t`
//! up to N (the paper's core-group scaling), while a sequential executor shows a flat
//! line. The decode side uses the auto-tuned partition size, so each width also exercises
//! `auto_partition_blocks` at that width; `flash_decode/serial` is the non-partitioned
//! baseline for reference.
//!
//! This target is deliberately *not* part of the `bench_baseline` regression gate: its
//! numbers exist to be compared across widths on one machine, not across machines.

#![allow(missing_docs)] // criterion_group! generates an undocumented accessor

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use neo_kernels::decode::{paged_decode_attention, paged_decode_attention_serial};
use neo_kernels::AttentionConfig;
use neo_kvcache::{BlockTable, PagedStorage};
use neo_model::linear::Linear;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::ThreadPoolBuilder;

/// Pool widths swept by every group.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

struct Fixture {
    storage: PagedStorage,
    tables: Vec<BlockTable>,
    seq_lens: Vec<usize>,
    queries: Vec<f32>,
    cfg: AttentionConfig,
}

fn build(n_seqs: usize, ctx: usize, cfg: AttentionConfig) -> Fixture {
    let block_size = 16;
    let blocks_per_seq = ctx.div_ceil(block_size);
    let mut storage =
        PagedStorage::new(n_seqs * blocks_per_seq, block_size, cfg.n_kv_heads, cfg.head_dim);
    let mut rng = StdRng::seed_from_u64(7);
    let mut tables = Vec::new();
    for s in 0..n_seqs {
        let mut t = BlockTable::new(block_size);
        t.append(ctx, (s * blocks_per_seq..(s + 1) * blocks_per_seq).collect()).unwrap();
        for i in 0..ctx {
            let (b, slot) = t.locate(i).unwrap();
            let k: Vec<f32> = (0..cfg.kv_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let v: Vec<f32> = (0..cfg.kv_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            storage.write_token(b, slot, &k, &v).unwrap();
        }
        tables.push(t);
    }
    let queries: Vec<f32> =
        (0..n_seqs * cfg.q_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Fixture { storage, tables, seq_lens: vec![ctx; n_seqs], queries, cfg }
}

fn kv_bytes(fx: &Fixture) -> u64 {
    (fx.seq_lens.iter().sum::<usize>() * fx.cfg.kv_stride() * 2 * 4) as u64
}

fn bench_flash_decode_threads(c: &mut Criterion) {
    let cfg = AttentionConfig::new(32, 8, 128); // LLaMa-3.1-8B head geometry
    let fx = build(4, 2048, cfg);
    let tables: Vec<&BlockTable> = fx.tables.iter().collect();
    let mut group = c.benchmark_group("threads_scaling/flash_decode");
    group.sample_size(15);
    group.throughput(Throughput::Bytes(kv_bytes(&fx)));
    group.bench_function("serial", |b| {
        let mut out = vec![0.0f32; fx.queries.len()];
        b.iter(|| {
            paged_decode_attention_serial(
                &fx.queries,
                &fx.storage,
                &tables,
                &fx.seq_lens,
                &fx.cfg,
                &mut out,
            )
        });
    });
    for &threads in &WIDTHS {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            let mut out = vec![0.0f32; fx.queries.len()];
            pool.install(|| {
                b.iter(|| {
                    paged_decode_attention(
                        &fx.queries,
                        &fx.storage,
                        &tables,
                        &fx.seq_lens,
                        &fx.cfg,
                        &mut out,
                    )
                })
            });
        });
    }
    group.finish();
}

fn bench_matvec_threads(c: &mut Criterion) {
    // 4096x4096 is the paper's 8B-class projection size: 64 MiB of weights, firmly
    // memory-bound — the regime where core scaling is supposed to pay.
    let (rows, cols) = (4096usize, 4096usize);
    let mut rng = StdRng::seed_from_u64(11);
    let weight: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-0.02..0.02)).collect();
    let linear = Linear::new(rows, cols, weight);
    let x: Vec<f32> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut group = c.benchmark_group("threads_scaling/matvec");
    group.sample_size(15);
    group.throughput(Throughput::Bytes((rows * cols * 4) as u64));
    for &threads in &WIDTHS {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            let mut y = vec![0.0f32; rows];
            pool.install(|| b.iter(|| linear.forward_into(&x, &mut y)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flash_decode_threads, bench_matvec_threads);
criterion_main!(benches);
