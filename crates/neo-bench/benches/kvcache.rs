//! Micro-benchmarks of the paged KV cache: allocation, growth, release and swap.

#![allow(missing_docs)] // criterion_group! generates an undocumented accessor

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neo_kvcache::manager::{KvCacheConfig, KvCacheManager};
use neo_kvcache::Device;

fn manager() -> KvCacheManager {
    KvCacheManager::new(KvCacheConfig {
        block_size: 16,
        gpu_capacity_tokens: 1 << 18,
        cpu_capacity_tokens: 1 << 20,
        kv_bytes_per_token: 128 * 1024,
    })
}

fn bench_allocate_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvcache/allocate_free");
    for &tokens in &[128usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(tokens), &tokens, |b, &tokens| {
            let mut mgr = manager();
            b.iter(|| {
                mgr.allocate_sequence(1, tokens, Device::Gpu).unwrap();
                mgr.free_sequence(1).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_decode_append(c: &mut Criterion) {
    c.bench_function("kvcache/append_one_token_x1000_seqs", |b| {
        // A fresh manager per sample batch: repeated appends would otherwise exhaust the
        // pool during criterion's warm-up.
        b.iter_batched_ref(
            || {
                let mut mgr = manager();
                for id in 0..1000u64 {
                    mgr.allocate_sequence(id, 100, Device::Gpu).unwrap();
                }
                mgr
            },
            |mgr| {
                for id in 0..1000u64 {
                    mgr.append_tokens(id, 1).unwrap();
                }
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

fn bench_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvcache/swap_round_trip");
    for &tokens in &[256usize, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(tokens), &tokens, |b, &tokens| {
            let mut mgr = manager();
            mgr.allocate_sequence(1, tokens, Device::Gpu).unwrap();
            b.iter(|| {
                mgr.swap(1, Device::Cpu).unwrap();
                mgr.swap(1, Device::Gpu).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocate_free, bench_decode_append, bench_swap);
criterion_main!(benches);
