//! Micro-benchmarks of the iteration-time estimator and one full simulated iteration.
//!
//! The estimator runs several times per scheduling decision (once per candidate CPU
//! request in step 4 of §3.2), so it has to be cheap; the end-to-end `engine_step`
//! benchmark measures a complete schedule → execute → account iteration.

#![allow(missing_docs)] // criterion_group! generates an undocumented accessor

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neo_core::batch::{ScheduleDecision, SubBatch};
use neo_core::config::EngineConfig;
use neo_core::engine::Engine;
use neo_core::pipeline::{estimate_asymmetric, estimate_gpu_only};
use neo_core::request::Request;
use neo_core::scheduler::NeoScheduler;
use neo_core::ExecutionMode;
use neo_sim::{CostModel, ModelDesc, Testbed};

fn decision(n_gpu: usize, n_cpu: usize) -> ScheduleDecision {
    ScheduleDecision {
        mode: ExecutionMode::Asymmetric,
        batch0: SubBatch {
            prefills: vec![],
            gpu_decodes: (0..n_gpu as u64).map(|i| (i, 800)).collect(),
            cpu_decodes: vec![],
        },
        batch1: SubBatch {
            prefills: vec![],
            gpu_decodes: vec![],
            cpu_decodes: (1000..1000 + n_cpu as u64).map(|i| (i, 800)).collect(),
        },
        swap_out: vec![],
        swap_in: vec![],
        preempt: vec![],
        demote_disk: vec![],
        promote_disk: vec![],
    }
}

fn bench_estimators(c: &mut Criterion) {
    let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
    let mut group = c.benchmark_group("pipeline/estimate");
    for &n in &[16usize, 128] {
        let d = decision(n, n / 2);
        group.bench_with_input(BenchmarkId::new("asymmetric", n), &d, |b, d| {
            b.iter(|| estimate_asymmetric(&cost, d, 0, 0, true));
        });
        group.bench_with_input(BenchmarkId::new("gpu_only", n), &d, |b, d| {
            b.iter(|| estimate_gpu_only(&cost, &d.batch0, 0, 0, true));
        });
    }
    group.finish();
}

fn bench_engine_step(c: &mut Criterion) {
    c.bench_function("pipeline/engine_step_64_requests", |b| {
        b.iter_batched(
            || {
                let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
                let mut engine =
                    Engine::new(cost, EngineConfig::default(), Box::new(NeoScheduler::new()));
                for id in 0..64 {
                    engine.submit(Request::new(id, 0.0, 500, 100)).unwrap();
                }
                // Warm the system past the initial prefill burst.
                for _ in 0..5 {
                    engine.step();
                }
                engine
            },
            |mut engine| {
                engine.step();
                engine
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_estimators, bench_engine_step);
criterion_main!(benches);
