//! Micro-benchmarks of the load-aware scheduler.
//!
//! The paper's scheduler runs once per iteration on the critical path, so its own cost
//! must stay in the tens of microseconds even with hundreds of queued requests. This
//! bench measures one `schedule()` call against queue depth, for NEO and the baselines.
#![allow(missing_docs)] // criterion_group! generates an undocumented accessor

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neo_baselines::{
    FastDecodePlusScheduler, GpuOnlyScheduler, PipoScheduler, SpecOffloadScheduler,
};
use neo_core::config::EngineConfig;
use neo_core::request::Request;
use neo_core::scheduler::{NeoScheduler, ScheduleContext, Scheduler};
use neo_kvcache::Device;
use neo_sim::profiler::ProfiledCostModel;
use neo_sim::{CostModel, ModelDesc, Testbed};

struct Fixture {
    cost: ProfiledCostModel,
    config: EngineConfig,
    requests: BTreeMap<u64, Request>,
    waiting: Vec<u64>,
    gpu_run: Vec<u64>,
    cpu_run: Vec<u64>,
    prefill_device: BTreeMap<u64, Device>,
}

fn build(n_waiting: usize, n_gpu: usize, n_cpu: usize) -> Fixture {
    let cost =
        ProfiledCostModel::new(CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1));
    let mut requests = BTreeMap::new();
    let mut waiting = Vec::new();
    let mut gpu_run = Vec::new();
    let mut cpu_run = Vec::new();
    let mut id = 0u64;
    for _ in 0..n_waiting {
        requests.insert(id, Request::new(id, 0.0, 1000, 200));
        waiting.push(id);
        id += 1;
    }
    for _ in 0..n_gpu {
        let mut r = Request::new(id, 0.0, 800, 200);
        r.advance_prefill(800);
        requests.insert(id, r);
        gpu_run.push(id);
        id += 1;
    }
    for _ in 0..n_cpu {
        let mut r = Request::new(id, 0.0, 800, 200);
        r.advance_prefill(800);
        requests.insert(id, r);
        cpu_run.push(id);
        id += 1;
    }
    Fixture {
        cost,
        config: EngineConfig::default(),
        requests,
        waiting,
        gpu_run,
        cpu_run,
        prefill_device: BTreeMap::new(),
    }
}

fn ctx(fx: &Fixture) -> ScheduleContext<'_> {
    ScheduleContext {
        cost: &fx.cost,
        config: &fx.config,
        requests: &fx.requests,
        waiting: &fx.waiting,
        gpu_run: &fx.gpu_run,
        cpu_run: &fx.cpu_run,
        disk_run: &[],
        gpu_free_tokens: 30_000,
        cpu_free_tokens: 300_000,
        disk_free_tokens: 0,
        gpu_capacity_tokens: 30_000,
        prefill_device: &fx.prefill_device,
        admission_backlog: 0,
    }
}

fn bench_neo_queue_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/neo_queue_depth");
    for &n in &[16usize, 64, 256] {
        let fx = build(n / 4, n / 2, n / 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &fx, |b, fx| {
            let mut sched = NeoScheduler::new();
            b.iter(|| sched.schedule(&ctx(fx)));
        });
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let fx = build(32, 64, 64);
    let mut group = c.benchmark_group("scheduler/policy_comparison");
    group.bench_function("neo", |b| {
        let mut s = NeoScheduler::new();
        b.iter(|| s.schedule(&ctx(&fx)));
    });
    group.bench_function("vllm_like", |b| {
        let mut s = GpuOnlyScheduler::vllm_like();
        b.iter(|| s.schedule(&ctx(&fx)));
    });
    group.bench_function("fastdecode_plus", |b| {
        let mut s = FastDecodePlusScheduler::new();
        b.iter(|| s.schedule(&ctx(&fx)));
    });
    group.bench_function("pipo", |b| {
        let mut s = PipoScheduler::new();
        b.iter(|| s.schedule(&ctx(&fx)));
    });
    group.bench_function("specoffload", |b| {
        let mut s = SpecOffloadScheduler::new();
        b.iter(|| s.schedule(&ctx(&fx)));
    });
    group.finish();
}

criterion_group!(benches, bench_neo_queue_depth, bench_policies);
criterion_main!(benches);
