//! Micro-benchmarks of the functional CPU attention kernels (the PACPU equivalent).
//!
//! Measures paged decode attention across context lengths, batch sizes and partition
//! sizes, and the serial vs partitioned-parallel variants — the CPU-side operator whose
//! memory-bandwidth behaviour underpins the whole paper.

#![allow(missing_docs)] // criterion_group! generates an undocumented accessor

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use neo_kernels::decode::{
    paged_decode_attention, paged_decode_attention_serial, paged_decode_attention_with_partitions,
};
use neo_kernels::prefill::paged_prefill_attention;
use neo_kernels::AttentionConfig;
use neo_kvcache::{BlockTable, PagedStorage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Fixture {
    storage: PagedStorage,
    tables: Vec<BlockTable>,
    seq_lens: Vec<usize>,
    queries: Vec<f32>,
    cfg: AttentionConfig,
}

fn build(n_seqs: usize, ctx: usize, cfg: AttentionConfig) -> Fixture {
    let block_size = 16;
    let blocks_per_seq = ctx.div_ceil(block_size);
    let mut storage =
        PagedStorage::new(n_seqs * blocks_per_seq, block_size, cfg.n_kv_heads, cfg.head_dim);
    let mut rng = StdRng::seed_from_u64(7);
    let mut tables = Vec::new();
    for s in 0..n_seqs {
        let mut t = BlockTable::new(block_size);
        t.append(ctx, (s * blocks_per_seq..(s + 1) * blocks_per_seq).collect()).unwrap();
        for i in 0..ctx {
            let (b, slot) = t.locate(i).unwrap();
            let k: Vec<f32> = (0..cfg.kv_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let v: Vec<f32> = (0..cfg.kv_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            storage.write_token(b, slot, &k, &v).unwrap();
        }
        tables.push(t);
    }
    let queries: Vec<f32> =
        (0..n_seqs * cfg.q_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Fixture { storage, tables, seq_lens: vec![ctx; n_seqs], queries, cfg }
}

fn kv_bytes(fx: &Fixture) -> u64 {
    (fx.seq_lens.iter().sum::<usize>() * fx.cfg.kv_stride() * 2 * 4) as u64
}

fn bench_decode_context_scaling(c: &mut Criterion) {
    let cfg = AttentionConfig::new(32, 8, 128); // LLaMa-3.1-8B head geometry
    let mut group = c.benchmark_group("decode_attention/context_length");
    group.sample_size(20);
    for &ctx in &[256usize, 1024, 4096] {
        let fx = build(4, ctx, cfg);
        group.throughput(Throughput::Bytes(kv_bytes(&fx)));
        group.bench_with_input(BenchmarkId::from_parameter(ctx), &fx, |b, fx| {
            let tables: Vec<&BlockTable> = fx.tables.iter().collect();
            let mut out = vec![0.0f32; fx.queries.len()];
            b.iter(|| {
                paged_decode_attention(
                    &fx.queries,
                    &fx.storage,
                    &tables,
                    &fx.seq_lens,
                    &fx.cfg,
                    &mut out,
                )
            });
        });
    }
    group.finish();
}

fn bench_decode_batch_scaling(c: &mut Criterion) {
    let cfg = AttentionConfig::new(32, 8, 128);
    let mut group = c.benchmark_group("decode_attention/batch_size");
    group.sample_size(20);
    for &n in &[1usize, 8, 32] {
        let fx = build(n, 1024, cfg);
        group.throughput(Throughput::Bytes(kv_bytes(&fx)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &fx, |b, fx| {
            let tables: Vec<&BlockTable> = fx.tables.iter().collect();
            let mut out = vec![0.0f32; fx.queries.len()];
            b.iter(|| {
                paged_decode_attention(
                    &fx.queries,
                    &fx.storage,
                    &tables,
                    &fx.seq_lens,
                    &fx.cfg,
                    &mut out,
                )
            });
        });
    }
    group.finish();
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let cfg = AttentionConfig::new(32, 8, 128);
    let fx = build(8, 2048, cfg);
    let tables: Vec<&BlockTable> = fx.tables.iter().collect();
    let mut group = c.benchmark_group("decode_attention/parallelism");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(kv_bytes(&fx)));
    group.bench_function("serial", |b| {
        let mut out = vec![0.0f32; fx.queries.len()];
        b.iter(|| {
            paged_decode_attention_serial(
                &fx.queries,
                &fx.storage,
                &tables,
                &fx.seq_lens,
                &fx.cfg,
                &mut out,
            )
        });
    });
    for &partition_blocks in &[1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("flash_decoding_partitions", partition_blocks),
            &partition_blocks,
            |b, &p| {
                let mut out = vec![0.0f32; fx.queries.len()];
                b.iter(|| {
                    paged_decode_attention_with_partitions(
                        &fx.queries,
                        &fx.storage,
                        &tables,
                        &fx.seq_lens,
                        &fx.cfg,
                        p,
                        &mut out,
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_prefill(c: &mut Criterion) {
    let cfg = AttentionConfig::new(8, 2, 64);
    let mut group = c.benchmark_group("prefill_attention/prompt_length");
    group.sample_size(15);
    for &len in &[128usize, 512] {
        let fx = build(1, len, cfg);
        let mut rng = StdRng::seed_from_u64(9);
        let q: Vec<f32> = (0..len * cfg.q_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let mut out = vec![0.0f32; len * cfg.q_stride()];
            b.iter(|| {
                paged_prefill_attention(&q, &fx.storage, &fx.tables[0], len, len, &cfg, &mut out)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decode_context_scaling,
    bench_decode_batch_scaling,
    bench_serial_vs_parallel,
    bench_prefill
);
criterion_main!(benches);
