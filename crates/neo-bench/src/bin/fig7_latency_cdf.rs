//! Figure 7: per-token latency CDF of NEO vs vLLM (A10G + LLaMa-3.1-8B + AC, 1.6 req/s).
//!
//! The paper's point: NEO's throughput gains do not come at the cost of latency — the two
//! CDFs lie on top of each other at every percentile. Both distributions are skewed
//! because the trace's request lengths are skewed.

use neo_bench::{print_table, save_json, scaled, Policy, Scenario};
use neo_serve::run_online;
use neo_workload::{azure_code_like, ArrivalProcess};
use serde::Serialize;

#[derive(Serialize)]
struct CdfSummary {
    policy: String,
    rate: f64,
    quantiles: Vec<(f64, f64)>,
    mean: f64,
    /// Streaming latency summaries from the serving loop (the CDF figure's companions).
    mean_ttft: f64,
    p99_ttft: f64,
    mean_itl: f64,
    p99_itl: f64,
}

fn main() {
    let rate = 1.6;
    let scenario = Scenario::a10g_8b();
    let trace = azure_code_like(scaled(200), ArrivalProcess::Poisson { rate }, 7);

    let quantile_grid = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for policy in [Policy::Neo, Policy::VllmLike] {
        let result = run_online(scenario.engine(policy), &trace, rate, 50_000_000);
        let cdf = result.cdf();
        let quantiles: Vec<(f64, f64)> =
            quantile_grid.iter().map(|&q| (q, cdf.quantile(q).unwrap_or(f64::NAN))).collect();
        rows.push(
            std::iter::once(policy.label().to_string())
                .chain(quantiles.iter().map(|(_, v)| format!("{v:.3}")))
                .chain(std::iter::once(format!("{:.3}", result.avg_per_token_latency)))
                .collect::<Vec<_>>(),
        );
        let itl = result.itl.expect("multi-token outputs");
        summaries.push(CdfSummary {
            policy: policy.label().to_string(),
            rate,
            quantiles,
            mean: result.avg_per_token_latency,
            mean_ttft: result.ttft.mean,
            p99_ttft: result.ttft.p99,
            mean_itl: itl.mean,
            p99_itl: itl.p99,
        });
    }

    let headers: Vec<String> = std::iter::once("policy".to_string())
        .chain(quantile_grid.iter().map(|q| format!("p{:.0}", q * 100.0)))
        .chain(std::iter::once("mean".to_string()))
        .collect();
    print_table(
        "Figure 7: per-token latency quantiles (s), A10G + LLaMa-3.1-8B + AC @ 1.6 req/s",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        &rows,
    );

    // Streaming latency companions: TTFT and ITL at the same operating point.
    print_table(
        "Time-to-first-token and inter-token latency (s)",
        &["policy", "mean TTFT", "p99 TTFT", "mean ITL", "p99 ITL"],
        &summaries
            .iter()
            .map(|s| {
                vec![
                    s.policy.clone(),
                    format!("{:.3}", s.mean_ttft),
                    format!("{:.3}", s.p99_ttft),
                    format!("{:.3}", s.mean_itl),
                    format!("{:.3}", s.p99_itl),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // The comparable-latency check the figure makes visually.
    let neo_p99 = summaries[0].quantiles.iter().find(|(q, _)| *q == 0.99).map(|(_, v)| *v);
    let vllm_p99 = summaries[1].quantiles.iter().find(|(q, _)| *q == 0.99).map(|(_, v)| *v);
    if let (Some(a), Some(b)) = (neo_p99, vllm_p99) {
        println!("p99 ratio NEO/vLLM: {:.2}", a / b);
    }
    save_json("fig7_latency_cdf", &summaries);
}
