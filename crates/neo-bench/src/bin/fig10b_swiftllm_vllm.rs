//! Figure 10b: SwiftLLM vs vLLM offline token throughput.
//!
//! Feeds the Azure-coding-like trace all at once to both GPU-only baselines and reports
//! token throughput (total tokens / elapsed time, §5.5) in the single-GPU
//! (A10G + LLaMa-3.1-8B) and 2-GPU (2×H100 + LLaMa-3.1-70B) settings. The paper finds
//! the two comparable on one GPU, with SwiftLLM about 8.8% behind on two GPUs because its
//! tensor-parallel implementation does not overlap the all-reduce; we model exactly that
//! difference via the cost model's all-reduce overlap factor.

use neo_baselines::GpuOnlyScheduler;
use neo_bench::{print_table, save_json, scaled, Scenario};
use neo_core::{Engine, EngineConfig};
use neo_serve::run_offline;
use neo_workload::{azure_code_like, ArrivalProcess};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    setting: String,
    system: String,
    token_throughput: f64,
}

fn main() {
    // vLLM's production tensor parallelism hides roughly half the all-reduce behind
    // compute; SwiftLLM's simple implementation exposes all of it.
    const VLLM_ALLREDUCE_OVERLAP: f64 = 0.5;

    let settings = [Scenario::a10g_8b(), Scenario::h100_70b()];
    let trace = azure_code_like(scaled(150), ArrivalProcess::AllAtOnce, 55);

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for scenario in &settings {
        for (system, overlap, chunked) in
            [("SwiftLLM", 0.0, false), ("vLLM", VLLM_ALLREDUCE_OVERLAP, true)]
        {
            let cost = scenario.cost_model().with_allreduce_overlap(overlap);
            let scheduler = if chunked {
                GpuOnlyScheduler::vllm_like()
            } else {
                GpuOnlyScheduler::swiftllm_like()
            };
            let engine = Engine::new(cost, EngineConfig::default(), Box::new(scheduler));
            let result = run_offline(engine, &trace, 50_000_000);
            rows.push(vec![
                scenario.name.clone(),
                system.to_string(),
                format!("{:.0}", result.token_throughput),
            ]);
            points.push(Point {
                setting: scenario.name.clone(),
                system: system.to_string(),
                token_throughput: result.token_throughput,
            });
        }
    }
    print_table(
        "Figure 10b: SwiftLLM vs vLLM offline token throughput (tokens/s)",
        &["setting", "system", "token throughput"],
        &rows,
    );

    for scenario in &settings {
        let get = |sys: &str| {
            points
                .iter()
                .find(|p| p.setting == scenario.name && p.system == sys)
                .map(|p| p.token_throughput)
                .unwrap_or(f64::NAN)
        };
        println!("SwiftLLM / vLLM ratio [{}]: {:.3}", scenario.name, get("SwiftLLM") / get("vLLM"));
    }
    save_json("fig10b_swiftllm_vllm", &points);
}
