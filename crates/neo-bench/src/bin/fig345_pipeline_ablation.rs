//! Figures 3–5 (design ablation): simple offloading vs symmetric pipelining vs NEO's
//! asymmetric pipelining, against the GPU-only baseline.
//!
//! The paper motivates asymmetric pipelining by walking through two strawmen (§3.1):
//! simple offloading leaves the GPU idle while the CPU computes attention, and symmetric
//! pipelining wastes GPU memory and cannot balance the two devices. This harness runs all
//! four designs on the same decode-heavy workload and reports throughput relative to the
//! GPU-only baseline, plus how often each design offloads.

use neo_bench::{print_table, save_json, scaled, Policy, Scenario};
use neo_serve::run_offline;
use neo_workload::{synthetic, ArrivalProcess};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    setting: String,
    policy: String,
    relative_throughput: f64,
    offload_fraction: f64,
    asymmetric_fraction: f64,
}

fn main() {
    let scenarios = [Scenario::a10g_8b(), Scenario::t4_7b()];
    let policies =
        [Policy::SimpleOffload, Policy::SymmetricPipeline, Policy::FastDecodePlus, Policy::Neo];

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for scenario in &scenarios {
        // A decode-heavy workload that stresses the offloading design choices.
        let (input, output) = if scenario.name.contains("T4") { (200, 100) } else { (1000, 200) };
        let trace = synthetic(scaled(100), input, output, ArrivalProcess::AllAtOnce, 66);
        let baseline =
            run_offline(scenario.engine(Policy::SwiftLlmLike), &trace, 50_000_000).token_throughput;
        for &policy in &policies {
            let result = run_offline(scenario.engine(policy), &trace, 50_000_000);
            let relative = result.token_throughput / baseline;
            rows.push(vec![
                scenario.name.clone(),
                policy.label().to_string(),
                format!("{relative:.3}"),
                format!("{:.2}", result.offload_fraction),
                format!("{:.2}", result.asymmetric_fraction),
            ]);
            points.push(Point {
                setting: scenario.name.clone(),
                policy: policy.label().to_string(),
                relative_throughput: relative,
                offload_fraction: result.offload_fraction,
                asymmetric_fraction: result.asymmetric_fraction,
            });
        }
    }
    print_table(
        "Figures 3-5 ablation: offloading designs vs GPU-only baseline (relative throughput)",
        &["setting", "design", "relative throughput", "offload frac", "asym frac"],
        &rows,
    );
    save_json("fig345_pipeline_ablation", &points);
}
