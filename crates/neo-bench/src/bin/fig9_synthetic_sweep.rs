//! Figure 9: relative offline throughput on synthetic workloads with varying input and
//! output lengths, for the three hardware/model settings.
//!
//! For each setting the harness fixes a set of average input lengths (500/1000/2000 for
//! the H100 and A10G settings, 100/200/500 for the T4) and sweeps the average output
//! length, reporting NEO's token throughput relative to the GPU-only baseline (SwiftLLM).
//! The expected shape (§5.4): a dip or ≈1.0 at very short outputs, a peak where GPU and
//! CPU time balance, and a slow decay back towards 1.0 as outputs grow — with far larger
//! peaks on the memory-starved T4.

use neo_bench::{print_table, save_json, scaled, Policy, Scenario};
use neo_serve::run_offline;
use neo_workload::{synthetic, ArrivalProcess};
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    setting: String,
    input_len: usize,
    output_len: usize,
    relative_throughput: f64,
    offload_fraction: f64,
}

struct Setting {
    scenario: Scenario,
    inputs: Vec<usize>,
    outputs: Vec<usize>,
    requests: usize,
}

fn main() {
    let settings = vec![
        Setting {
            scenario: Scenario::h100_70b(),
            inputs: vec![500, 1000, 2000],
            outputs: vec![50, 100, 150, 200, 250, 300],
            requests: scaled(100),
        },
        Setting {
            scenario: Scenario::a10g_8b(),
            inputs: vec![500, 1000, 2000],
            outputs: vec![50, 100, 150, 200, 250, 300],
            requests: scaled(100),
        },
        Setting {
            scenario: Scenario::t4_7b(),
            inputs: vec![100, 200, 500],
            outputs: vec![50, 100, 150, 200],
            requests: scaled(100),
        },
    ];

    let mut all = Vec::new();
    for setting in &settings {
        let mut rows = Vec::new();
        for &input in &setting.inputs {
            for &output in &setting.outputs {
                let trace =
                    synthetic(setting.requests, input, output, ArrivalProcess::AllAtOnce, 33);
                let baseline =
                    run_offline(setting.scenario.engine(Policy::SwiftLlmLike), &trace, 50_000_000);
                let neo = run_offline(setting.scenario.engine(Policy::Neo), &trace, 50_000_000);
                let relative = neo.token_throughput / baseline.token_throughput;
                rows.push(vec![
                    input.to_string(),
                    output.to_string(),
                    format!("{relative:.3}"),
                    format!("{:.2}", neo.offload_fraction),
                ]);
                all.push(SweepPoint {
                    setting: setting.scenario.name.clone(),
                    input_len: input,
                    output_len: output,
                    relative_throughput: relative,
                    offload_fraction: neo.offload_fraction,
                });
            }
        }
        print_table(
            &format!("Figure 9: NEO throughput relative to GPU-only — {}", setting.scenario.name),
            &["avg input", "avg output", "relative throughput", "offload frac"],
            &rows,
        );
    }

    // Peak gain per setting, the numbers quoted in §5.4 (14% / 26% / 750%).
    for setting in &settings {
        let peak = all
            .iter()
            .filter(|p| p.setting == setting.scenario.name)
            .map(|p| p.relative_throughput)
            .fold(0.0_f64, f64::max);
        println!("peak gain [{}]: {:+.1}%", setting.scenario.name, (peak - 1.0) * 100.0);
    }
    save_json("fig9_synthetic_sweep", &all);
}
