//! Goodput under faults: outage rate × routing discipline, with and without failover.
//!
//! The load sweeps ask how a healthy fleet behaves; this driver asks the operator's
//! question: when engines *die mid-decode*, how much goodput does router failover
//! buy, and what does it cost in retries and tail latency? The heterogeneous
//! Table-1 fleet (T4 + A10G + H100) serves the mixed AC+OSC stream while a seeded
//! [`neo_cluster::FaultPlan`] fail-stops engines at a swept outage rate; each outage
//! kills whatever the engine held (KV included) and recovers it empty a few seconds
//! later. Every cell is run twice:
//!
//! * **failover on** — orphans are re-dispatched to survivors under capped
//!   exponential backoff and a per-request retry budget, restarting from scratch;
//! * **failover off** — every request a dead engine held is shed on the spot.
//!
//! A moderate completion SLO prices the retries: a request that cannot finish by its
//! deadline is shed even with failover, so the failover advantage shown here is
//! *goodput* (completions within SLO), not mere eventual completion. Every run is
//! fully deterministic (fixed trace, plan, and tie-break seeds), so the emitted
//! `results/fig_fault_sweep.json` is bit-stable and CI regenerates and diffs it
//! (`results-fresh`).

use neo_bench::{print_table, save_json, scaled, Policy, Scenario};
use neo_cluster::{Cluster, ClusterConfig, Discipline, FaultPlan};
use neo_core::Engine;
use neo_workload::{fleet_mix, SloPolicy, Trace, TraceRequest};
use serde::Serialize;

/// One (outage-count, discipline, failover) measurement — a flat row, one JSON
/// object per swept point, so downstream tooling can pivot freely.
#[derive(Serialize, Clone)]
struct SweepPoint {
    fleet: String,
    discipline: String,
    failover: bool,
    outages: usize,
    retry_budget: u32,
    requests: usize,
    completed: usize,
    dropped: usize,
    retries: u64,
    mean_ttft: f64,
    p99_ttft: f64,
    streamed_tokens: u64,
    makespan: f64,
}

fn heterogeneous_fleet() -> Vec<(String, Engine)> {
    vec![
        ("t4-7b".to_string(), Scenario::t4_7b().engine(Policy::Neo)),
        ("a10g-8b".to_string(), Scenario::a10g_8b().engine(Policy::Neo)),
        ("h100-70b".to_string(), Scenario::h100_70b().engine(Policy::Neo)),
    ]
}

/// The mixed AC+OSC stream compressed to `rate` requests/s (same compression trick
/// as the cluster sweep: one arrival sequence, so every cell serves identical work).
fn mixed_trace(n: usize, rate: f64) -> Trace {
    fleet_mix(n, 0.35, 1.0, 42)
        .requests()
        .iter()
        .map(|r| TraceRequest { arrival: r.arrival / rate, ..*r })
        .collect()
}

fn main() {
    let requests = scaled(96);
    let rate = 2.0;
    let trace = mixed_trace(requests, rate);
    // Outages land inside the busy period; each kills an engine for 5 s.
    let horizon = trace.requests().last().map(|r| r.arrival).unwrap_or(1.0);
    let outage_s = 5.0;
    // Generous completion SLO: a healthy fleet meets it easily, so every shed
    // request below is attributable to the injected faults.
    let slo = SloPolicy::new(60.0, 0.5);
    let outage_counts = [0usize, 2, 4, 8];

    let mut points: Vec<SweepPoint> = Vec::new();
    let mut rows = Vec::new();
    for &outages in &outage_counts {
        let plan = if outages == 0 {
            FaultPlan::new()
        } else {
            FaultPlan::seeded_outages(3, horizon, outages, outage_s, 7 + outages as u64)
        };
        for discipline in Discipline::ALL {
            for failover in [true, false] {
                let config = ClusterConfig {
                    discipline,
                    failover,
                    fault_plan: plan.clone(),
                    slo: Some(slo),
                    ..ClusterConfig::default()
                };
                let report = Cluster::new(heterogeneous_fleet(), &trace, config).run();
                let (ttft_mean, ttft_p99) =
                    report.ttft.as_ref().map_or((f64::NAN, f64::NAN), |t| (t.mean, t.p99));
                let point = SweepPoint {
                    fleet: "T4+A10G+H100 (heterogeneous)".to_string(),
                    discipline: discipline.label().to_string(),
                    failover,
                    outages,
                    retry_budget: config_budget(),
                    requests: report.requests,
                    completed: report.completed,
                    dropped: report.dropped,
                    retries: report.retries,
                    mean_ttft: ttft_mean,
                    p99_ttft: ttft_p99,
                    streamed_tokens: report.streamed_tokens,
                    makespan: report.makespan,
                };
                rows.push(vec![
                    format!("{}", point.outages),
                    point.discipline.clone(),
                    if point.failover { "on".to_string() } else { "off".to_string() },
                    format!("{}/{}", point.completed, point.requests),
                    format!("{}", point.dropped),
                    format!("{}", point.retries),
                    format!("{:.3}", point.p99_ttft),
                ]);
                points.push(point);
            }
        }
    }
    print_table(
        "Fault sweep — T4+A10G+H100, mixed AC+OSC stream",
        &["outages", "discipline", "failover", "goodput", "shed", "retries", "p99 TTFT (s)"],
        &rows,
    );
    save_json("fig_fault_sweep", &points);
}

/// The retry budget every cell runs under (recorded per point for the schema test).
fn config_budget() -> u32 {
    ClusterConfig::default().retry_budget
}
