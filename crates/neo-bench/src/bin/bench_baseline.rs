//! Performance-regression gate over the four criterion micro-bench targets.
//!
//! Runs `cargo bench` for each target in quick mode with the criterion shim's JSON
//! emission enabled (`CRITERION_JSON_DIR`), collects the per-benchmark estimates, and
//! either records them as the checked-in baselines (`BENCH_<bench>.json` at the
//! repository root) or diffs the fresh numbers against those baselines:
//!
//! ```text
//! # refresh the checked-in baselines (run on the reference machine)
//! cargo run -p neo-bench --bin bench_baseline -- --write-baseline
//!
//! # fail (exit 1) if any benchmark's mean regressed more than 50% vs its baseline
//! cargo run -p neo-bench --bin bench_baseline -- --check-baseline 0.5
//! ```
//!
//! `--samples <n>` controls the quick-mode sample count (default 10) and `--no-run`
//! skips the bench invocation and diffs the JSON already in `target/criterion-json`
//! (useful when iterating on tolerances). A regression must clear **two** bars:
//!
//! 1. `current_median > baseline_median * (1 + tolerance)` — the median, not the
//!    mean, because scheduler jitter skews a handful of quick-mode samples far more
//!    than it shifts their middle; and
//! 2. the ~95% confidence intervals on the means (`mean ± 2·stddev/√samples`, from
//!    the shim's recorded `stddev_ns`) must **not** overlap in the regression
//!    direction — a median excursion whose interval still touches the baseline's is
//!    reported as `noise`, not a failure.
//!
//! The second bar is what lets the tolerance sit well below the old shared-CI-runner
//! worst case: a genuinely noisy sample set widens its own interval and exonerates
//! itself, while a real slowdown shifts the whole distribution and cannot. Improvements
//! never fail. Missing or extra benchmark ids fail the check too — they mean the
//! baselines are stale.
//!
//! Reports carry `threads` (the rayon pool width at measurement time) and
//! `sample_size` metadata. A check against a baseline recorded at a different thread
//! count fails outright — parallel kernels scale with the pool, so such medians are
//! incommensurable. To keep that impossible to trip by accident, the spawned bench
//! processes always run with `RAYON_NUM_THREADS` pinned to `--threads` (default 1, the
//! width the committed baselines are recorded at), regardless of the ambient machine
//! or environment; pass `--threads <n>` to both `--write-baseline` and
//! `--check-baseline` to work at another width. Differing sample counts (judged from
//! the per-benchmark `samples` actually taken — bench groups may override the
//! quick-mode setting) only print a note.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use serde::{Deserialize, Serialize};

/// The four criterion bench targets of `neo-bench`.
const BENCHES: [&str; 4] = ["kernels", "kvcache", "pipeline", "scheduler"];

/// Quick-mode sample count used when `--samples` is not given.
const DEFAULT_SAMPLES: usize = 10;

/// Pool width the benches run at when `--threads` is not given — the width the
/// committed `BENCH_*.json` baselines are recorded at, so a refresh on a many-core
/// workstation cannot silently produce baselines CI's pinned runs would reject.
const DEFAULT_THREADS: usize = 1;

/// Mirror of the JSON report the criterion shim writes (see `shims/README.md`).
///
/// `threads` is the rayon pool width the numbers were measured at and
/// `sample_size` the effective `CRITERION_SAMPLE_SIZE`; medians measured at a
/// different parallelism are not comparable, so the check refuses mismatched
/// thread counts instead of reporting bogus regressions/improvements.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    bench: String,
    threads: usize,
    sample_size: usize,
    benchmarks: Vec<BenchEstimate>,
}

/// One benchmark's estimate within a report.
///
/// `stddev_ns` is the sample standard deviation (n − 1 divisor) the shim records
/// alongside the point estimates; the check uses it to build the confidence interval
/// that separates real regressions from quick-mode noise.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchEstimate {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    best_ns: f64,
    stddev_ns: f64,
    samples: usize,
}

/// Half-width of the ~95% confidence interval on the mean: `2·stddev/√samples`.
///
/// Single-sample estimates record a stddev of 0, so their interval is a point — the
/// variance term never rescues a measurement that carries no variance information.
fn ci_half_width(estimate: &BenchEstimate) -> f64 {
    if estimate.samples <= 1 {
        0.0
    } else {
        2.0 * estimate.stddev_ns / (estimate.samples as f64).sqrt()
    }
}

#[derive(Debug, Clone)]
enum Mode {
    WriteBaseline,
    CheckBaseline { tolerance: f64 },
}

#[derive(Debug, Clone)]
struct Args {
    mode: Mode,
    samples: usize,
    threads: usize,
    run_benches: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut mode = None;
    let mut samples = DEFAULT_SAMPLES;
    let mut threads = DEFAULT_THREADS;
    let mut run_benches = true;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--write-baseline" => mode = Some(Mode::WriteBaseline),
            "--check-baseline" => {
                let tol = argv
                    .next()
                    .ok_or("--check-baseline needs a tolerance, e.g. 0.5 for +50%")?
                    .parse::<f64>()
                    .map_err(|e| format!("invalid tolerance: {e}"))?;
                if tol <= -1.0 {
                    return Err("tolerance must be greater than -1".into());
                }
                mode = Some(Mode::CheckBaseline { tolerance: tol });
            }
            "--samples" => {
                samples = argv
                    .next()
                    .ok_or("--samples needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("invalid sample count: {e}"))?
                    .max(1);
            }
            "--threads" => {
                threads = argv
                    .next()
                    .ok_or("--threads needs a pool width")?
                    .parse::<usize>()
                    .map_err(|e| format!("invalid thread count: {e}"))?
                    .max(1);
            }
            "--no-run" => run_benches = false,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let mode = mode.ok_or("pass --write-baseline or --check-baseline <tolerance>")?;
    Ok(Args { mode, samples, threads, run_benches })
}

/// Repository root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn baseline_path(root: &Path, bench: &str) -> PathBuf {
    root.join(format!("BENCH_{bench}.json"))
}

fn current_path(json_dir: &Path, bench: &str) -> PathBuf {
    json_dir.join(format!("{bench}.json"))
}

fn load_report(path: &Path) -> Result<BenchReport, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("could not read {}: {e}", path.display()))?;
    serde_json::from_str(&body).map_err(|e| format!("could not parse {}: {e}", path.display()))
}

/// Runs one bench target with JSON emission into `json_dir`, the pool width pinned to
/// `threads` (the spawned process resolves `RAYON_NUM_THREADS` fresh, so the ambient
/// machine or environment cannot leak into the recorded metadata).
fn run_bench(bench: &str, json_dir: &Path, samples: usize, threads: usize) -> Result<(), String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    println!("== running bench target `{bench}` ({samples} samples, {threads} thread(s)) ==");
    let status = Command::new(cargo)
        .args(["bench", "-p", "neo-bench", "--bench", bench])
        .env("CRITERION_JSON_DIR", json_dir)
        .env("CRITERION_SAMPLE_SIZE", samples.to_string())
        .env("RAYON_NUM_THREADS", threads.to_string())
        .status()
        .map_err(|e| format!("could not spawn cargo bench: {e}"))?;
    if !status.success() {
        return Err(format!("cargo bench --bench {bench} failed with {status}"));
    }
    Ok(())
}

/// One row of the comparison table.
struct Comparison {
    id: String,
    baseline_ns: f64,
    current_ns: f64,
    /// The median breached the tolerance but the confidence intervals still overlap —
    /// reported, not failed.
    within_noise: bool,
    regressed: bool,
}

/// Classifies one current estimate against its baseline: a regression needs the median
/// over tolerance *and* clearly separated confidence intervals; an over-tolerance
/// median whose interval still overlaps the baseline's is noise.
fn classify(base: &BenchEstimate, cur: &BenchEstimate, tolerance: f64) -> Comparison {
    let median_breached = cur.median_ns > base.median_ns * (1.0 + tolerance);
    let separated = cur.mean_ns - ci_half_width(cur) > base.mean_ns + ci_half_width(base);
    Comparison {
        id: base.id.clone(),
        baseline_ns: base.median_ns,
        current_ns: cur.median_ns,
        within_noise: median_breached && !separated,
        regressed: median_breached && separated,
    }
}

/// Diffs current estimates against the baseline; `Err` rows are id mismatches.
fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance: f64,
) -> (Vec<Comparison>, Vec<String>) {
    let mut rows = Vec::new();
    let mut problems = Vec::new();
    if baseline.threads != current.threads {
        problems.push(format!(
            "thread count mismatch: baseline recorded at {} thread(s) but this run used {} \
             — medians are not comparable across pool widths; re-run with RAYON_NUM_THREADS={} \
             or re-record with --write-baseline",
            baseline.threads, current.threads, baseline.threads
        ));
        return (rows, problems);
    }
    // The top-level `sample_size` records the quick-mode *setting*; bench groups may
    // override it per benchmark, so the comparability note is driven by the per-estimate
    // `samples` fields, which record what each measurement actually took.
    let differing: Vec<&str> = baseline
        .benchmarks
        .iter()
        .filter(|base| {
            current.benchmarks.iter().any(|cur| cur.id == base.id && cur.samples != base.samples)
        })
        .map(|base| base.id.as_str())
        .collect();
    if let Some(first) = differing.first() {
        println!(
            "note: {} benchmark(s) took a different sample count than their baseline \
             (e.g. `{first}`) — medians are noisier but still compared",
            differing.len()
        );
    }
    for base in &baseline.benchmarks {
        match current.benchmarks.iter().find(|c| c.id == base.id) {
            Some(cur) => rows.push(classify(base, cur, tolerance)),
            None => problems.push(format!(
                "benchmark `{}` is in the baseline but was not produced by the run \
                 (renamed or removed? refresh with --write-baseline)",
                base.id
            )),
        }
    }
    for cur in &current.benchmarks {
        if !baseline.benchmarks.iter().any(|b| b.id == cur.id) {
            problems.push(format!(
                "benchmark `{}` has no checked-in baseline (new bench? refresh with \
                 --write-baseline)",
                cur.id
            ));
        }
    }
    (rows, problems)
}

/// `BENCH_*.json` files at the repository root whose stem names no current bench
/// target. A baseline for a deleted or renamed bench would otherwise sit checked in
/// forever, silently asserting nothing — the check treats any such file as a hard
/// error so the rename/removal that orphaned it also has to clean it up.
fn stale_baseline_files(root: &Path) -> Vec<String> {
    let mut stale = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else {
        return stale;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_prefix("BENCH_").and_then(|s| s.strip_suffix(".json")) else {
            continue;
        };
        if !BENCHES.contains(&stem) {
            stale.push(name.to_owned());
        }
    }
    stale.sort();
    stale
}

fn check(root: &Path, json_dir: &Path, tolerance: f64) -> Result<bool, String> {
    let mut ok = true;
    for name in stale_baseline_files(root) {
        println!(
            "problem: `{name}` names no bench target (known: {}) — stale baseline; \
             delete it or add the bench back",
            BENCHES.join(", ")
        );
        ok = false;
    }
    for bench in BENCHES {
        let baseline = load_report(&baseline_path(root, bench))?;
        let current = load_report(&current_path(json_dir, bench))?;
        let (rows, problems) = compare(&baseline, &current, tolerance);
        println!("\n== {bench}: baseline vs current (tolerance +{:.0}%) ==", tolerance * 100.0);
        println!("{:<50} {:>14} {:>14} {:>8}  status", "id", "baseline", "current", "ratio");
        for row in &rows {
            let ratio = row.current_ns / row.baseline_ns.max(f64::MIN_POSITIVE);
            println!(
                "{:<50} {:>12.1}ns {:>12.1}ns {:>7.2}x  {}",
                row.id,
                row.baseline_ns,
                row.current_ns,
                ratio,
                if row.regressed {
                    "REGRESSED"
                } else if row.within_noise {
                    "noise (CI overlap)"
                } else {
                    "ok"
                }
            );
            if row.regressed {
                ok = false;
            }
        }
        for problem in &problems {
            println!("problem: {problem}");
            ok = false;
        }
    }
    Ok(ok)
}

fn write_baselines(root: &Path, json_dir: &Path) -> Result<(), String> {
    for bench in BENCHES {
        // Round-trip through the report type so a shim format drift fails loudly here
        // rather than in CI.
        let report = load_report(&current_path(json_dir, bench))?;
        let path = baseline_path(root, bench);
        let body = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("could not serialise {bench}: {e}"))?;
        std::fs::write(&path, body + "\n")
            .map_err(|e| format!("could not write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: bench_baseline (--write-baseline | --check-baseline <tolerance>) \
                 [--samples <n>] [--threads <n>] [--no-run]"
            );
            return ExitCode::FAILURE;
        }
    };
    let root = repo_root();
    let json_dir = root.join("target").join("criterion-json");
    if args.run_benches {
        for bench in BENCHES {
            if let Err(e) = run_bench(bench, &json_dir, args.samples, args.threads) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let outcome = match args.mode {
        Mode::WriteBaseline => write_baselines(&root, &json_dir).map(|()| true),
        Mode::CheckBaseline { tolerance } => check(&root, &json_dir, tolerance),
    };
    match outcome {
        Ok(true) => {
            println!("\nbench baseline: OK");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("\nbench baseline: FAILED (regressions or id mismatches above)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate(id: &str, mean: f64, median: f64, stddev: f64, samples: usize) -> BenchEstimate {
        BenchEstimate {
            id: id.to_owned(),
            mean_ns: mean,
            median_ns: median,
            best_ns: median * 0.9,
            stddev_ns: stddev,
            samples,
        }
    }

    fn report(threads: usize, benchmarks: Vec<BenchEstimate>) -> BenchReport {
        BenchReport { bench: "kernels".to_owned(), threads, sample_size: 10, benchmarks }
    }

    #[test]
    fn ci_half_width_is_two_sigma_over_root_n() {
        let e = estimate("b", 100.0, 100.0, 5.0, 25);
        assert_eq!(ci_half_width(&e), 2.0 * 5.0 / 5.0);
        // Single-sample estimates get a point interval: no variance data, no rescue.
        assert_eq!(ci_half_width(&estimate("b", 100.0, 100.0, 0.0, 1)), 0.0);
    }

    #[test]
    fn a_clear_slowdown_past_tolerance_regresses() {
        // 3x the baseline median, tight spreads: intervals are far apart.
        let base = estimate("b", 100.0, 100.0, 2.0, 10);
        let cur = estimate("b", 300.0, 300.0, 2.0, 10);
        let row = classify(&base, &cur, 0.5);
        assert!(row.regressed);
        assert!(!row.within_noise);
    }

    #[test]
    fn a_median_breach_with_overlapping_intervals_is_noise_not_regression() {
        // The median breaches +50% but both runs are noisy enough that the
        // ±2σ/√n intervals [100±60] and [160±60] overlap — a shared-runner blip,
        // not a code regression.
        let base = estimate("b", 100.0, 100.0, 94.9, 10);
        let cur = estimate("b", 160.0, 160.0, 94.9, 10);
        let row = classify(&base, &cur, 0.5);
        assert!(!row.regressed);
        assert!(row.within_noise);
    }

    #[test]
    fn noisy_intervals_never_excuse_a_within_tolerance_median() {
        // Below the median bar nothing is flagged, however the intervals sit.
        let base = estimate("b", 100.0, 100.0, 1.0, 10);
        let cur = estimate("b", 120.0, 120.0, 1.0, 10);
        let row = classify(&base, &cur, 0.5);
        assert!(!row.regressed);
        assert!(!row.within_noise);
    }

    #[test]
    fn single_sample_runs_gate_on_the_median_alone() {
        // With samples == 1 the stddev is 0 by construction, the intervals are
        // points, and the median bar decides outright.
        let base = estimate("b", 100.0, 100.0, 0.0, 1);
        let cur = estimate("b", 300.0, 300.0, 0.0, 1);
        assert!(classify(&base, &cur, 0.5).regressed);
    }

    #[test]
    fn improvements_never_fail() {
        let base = estimate("b", 100.0, 100.0, 2.0, 10);
        let cur = estimate("b", 10.0, 10.0, 2.0, 10);
        let row = classify(&base, &cur, 0.5);
        assert!(!row.regressed);
        assert!(!row.within_noise);
    }

    #[test]
    fn stale_baseline_files_flag_unknown_bench_stems() {
        let dir = std::env::temp_dir().join(format!("neo-bench-stale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["BENCH_kernels.json", "BENCH_ghost.json", "BENCH_scheduler.json"] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        // Non-baseline files and non-JSON files are ignored.
        std::fs::write(dir.join("BENCHMARKS.md"), "").unwrap();
        std::fs::write(dir.join("BENCH_notes.txt"), "").unwrap();
        assert_eq!(stale_baseline_files(&dir), vec!["BENCH_ghost.json".to_owned()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn the_checked_in_baselines_are_not_stale() {
        assert_eq!(stale_baseline_files(&repo_root()), Vec::<String>::new());
    }

    #[test]
    fn mismatched_ids_and_thread_counts_are_problems() {
        let base = report(
            1,
            vec![estimate("kept", 1.0, 1.0, 0.1, 10), estimate("gone", 1.0, 1.0, 0.1, 10)],
        );
        let cur = report(
            1,
            vec![estimate("kept", 1.0, 1.0, 0.1, 10), estimate("new", 1.0, 1.0, 0.1, 10)],
        );
        let (rows, problems) = compare(&base, &cur, 0.5);
        assert_eq!(rows.len(), 1);
        assert_eq!(problems.len(), 2);

        let cur_other_width = report(4, vec![estimate("kept", 1.0, 1.0, 0.1, 10)]);
        let (rows, problems) = compare(&base, &cur_other_width, 0.5);
        assert!(rows.is_empty());
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("thread count mismatch"));
    }
}
