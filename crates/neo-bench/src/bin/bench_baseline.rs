//! Performance-regression gate over the four criterion micro-bench targets.
//!
//! Runs `cargo bench` for each target in quick mode with the criterion shim's JSON
//! emission enabled (`CRITERION_JSON_DIR`), collects the per-benchmark estimates, and
//! either records them as the checked-in baselines (`BENCH_<bench>.json` at the
//! repository root) or diffs the fresh numbers against those baselines:
//!
//! ```text
//! # refresh the checked-in baselines (run on the reference machine)
//! cargo run -p neo-bench --bin bench_baseline -- --write-baseline
//!
//! # fail (exit 1) if any benchmark's mean regressed more than 50% vs its baseline
//! cargo run -p neo-bench --bin bench_baseline -- --check-baseline 0.5
//! ```
//!
//! `--samples <n>` controls the quick-mode sample count (default 10) and `--no-run`
//! skips the bench invocation and diffs the JSON already in `target/criterion-json`
//! (useful when iterating on tolerances). A regression is `current_median >
//! baseline_median * (1 + tolerance)` — the median, not the mean, because scheduler
//! jitter skews a handful of quick-mode samples far more than it shifts their middle.
//! Improvements never fail. Missing or extra benchmark ids fail the check too — they
//! mean the baselines are stale.
//!
//! Reports carry `threads` (the rayon pool width at measurement time) and
//! `sample_size` metadata. A check against a baseline recorded at a different thread
//! count fails outright — parallel kernels scale with the pool, so such medians are
//! incommensurable. To keep that impossible to trip by accident, the spawned bench
//! processes always run with `RAYON_NUM_THREADS` pinned to `--threads` (default 1, the
//! width the committed baselines are recorded at), regardless of the ambient machine
//! or environment; pass `--threads <n>` to both `--write-baseline` and
//! `--check-baseline` to work at another width. Differing sample counts (judged from
//! the per-benchmark `samples` actually taken — bench groups may override the
//! quick-mode setting) only print a note.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use serde::{Deserialize, Serialize};

/// The four criterion bench targets of `neo-bench`.
const BENCHES: [&str; 4] = ["kernels", "kvcache", "pipeline", "scheduler"];

/// Quick-mode sample count used when `--samples` is not given.
const DEFAULT_SAMPLES: usize = 10;

/// Pool width the benches run at when `--threads` is not given — the width the
/// committed `BENCH_*.json` baselines are recorded at, so a refresh on a many-core
/// workstation cannot silently produce baselines CI's pinned runs would reject.
const DEFAULT_THREADS: usize = 1;

/// Mirror of the JSON report the criterion shim writes (see `shims/README.md`).
///
/// `threads` is the rayon pool width the numbers were measured at and
/// `sample_size` the effective `CRITERION_SAMPLE_SIZE`; medians measured at a
/// different parallelism are not comparable, so the check refuses mismatched
/// thread counts instead of reporting bogus regressions/improvements.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    bench: String,
    threads: usize,
    sample_size: usize,
    benchmarks: Vec<BenchEstimate>,
}

/// One benchmark's estimate within a report.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchEstimate {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    best_ns: f64,
    samples: usize,
}

#[derive(Debug, Clone)]
enum Mode {
    WriteBaseline,
    CheckBaseline { tolerance: f64 },
}

#[derive(Debug, Clone)]
struct Args {
    mode: Mode,
    samples: usize,
    threads: usize,
    run_benches: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut mode = None;
    let mut samples = DEFAULT_SAMPLES;
    let mut threads = DEFAULT_THREADS;
    let mut run_benches = true;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--write-baseline" => mode = Some(Mode::WriteBaseline),
            "--check-baseline" => {
                let tol = argv
                    .next()
                    .ok_or("--check-baseline needs a tolerance, e.g. 0.5 for +50%")?
                    .parse::<f64>()
                    .map_err(|e| format!("invalid tolerance: {e}"))?;
                if tol <= -1.0 {
                    return Err("tolerance must be greater than -1".into());
                }
                mode = Some(Mode::CheckBaseline { tolerance: tol });
            }
            "--samples" => {
                samples = argv
                    .next()
                    .ok_or("--samples needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("invalid sample count: {e}"))?
                    .max(1);
            }
            "--threads" => {
                threads = argv
                    .next()
                    .ok_or("--threads needs a pool width")?
                    .parse::<usize>()
                    .map_err(|e| format!("invalid thread count: {e}"))?
                    .max(1);
            }
            "--no-run" => run_benches = false,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let mode = mode.ok_or("pass --write-baseline or --check-baseline <tolerance>")?;
    Ok(Args { mode, samples, threads, run_benches })
}

/// Repository root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn baseline_path(root: &Path, bench: &str) -> PathBuf {
    root.join(format!("BENCH_{bench}.json"))
}

fn current_path(json_dir: &Path, bench: &str) -> PathBuf {
    json_dir.join(format!("{bench}.json"))
}

fn load_report(path: &Path) -> Result<BenchReport, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("could not read {}: {e}", path.display()))?;
    serde_json::from_str(&body).map_err(|e| format!("could not parse {}: {e}", path.display()))
}

/// Runs one bench target with JSON emission into `json_dir`, the pool width pinned to
/// `threads` (the spawned process resolves `RAYON_NUM_THREADS` fresh, so the ambient
/// machine or environment cannot leak into the recorded metadata).
fn run_bench(bench: &str, json_dir: &Path, samples: usize, threads: usize) -> Result<(), String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    println!("== running bench target `{bench}` ({samples} samples, {threads} thread(s)) ==");
    let status = Command::new(cargo)
        .args(["bench", "-p", "neo-bench", "--bench", bench])
        .env("CRITERION_JSON_DIR", json_dir)
        .env("CRITERION_SAMPLE_SIZE", samples.to_string())
        .env("RAYON_NUM_THREADS", threads.to_string())
        .status()
        .map_err(|e| format!("could not spawn cargo bench: {e}"))?;
    if !status.success() {
        return Err(format!("cargo bench --bench {bench} failed with {status}"));
    }
    Ok(())
}

/// One row of the comparison table.
struct Comparison {
    id: String,
    baseline_ns: f64,
    current_ns: f64,
    regressed: bool,
}

/// Diffs current estimates against the baseline; `Err` rows are id mismatches.
fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance: f64,
) -> (Vec<Comparison>, Vec<String>) {
    let mut rows = Vec::new();
    let mut problems = Vec::new();
    if baseline.threads != current.threads {
        problems.push(format!(
            "thread count mismatch: baseline recorded at {} thread(s) but this run used {} \
             — medians are not comparable across pool widths; re-run with RAYON_NUM_THREADS={} \
             or re-record with --write-baseline",
            baseline.threads, current.threads, baseline.threads
        ));
        return (rows, problems);
    }
    // The top-level `sample_size` records the quick-mode *setting*; bench groups may
    // override it per benchmark, so the comparability note is driven by the per-estimate
    // `samples` fields, which record what each measurement actually took.
    let differing: Vec<&str> = baseline
        .benchmarks
        .iter()
        .filter(|base| {
            current.benchmarks.iter().any(|cur| cur.id == base.id && cur.samples != base.samples)
        })
        .map(|base| base.id.as_str())
        .collect();
    if let Some(first) = differing.first() {
        println!(
            "note: {} benchmark(s) took a different sample count than their baseline \
             (e.g. `{first}`) — medians are noisier but still compared",
            differing.len()
        );
    }
    for base in &baseline.benchmarks {
        match current.benchmarks.iter().find(|c| c.id == base.id) {
            Some(cur) => rows.push(Comparison {
                id: base.id.clone(),
                baseline_ns: base.median_ns,
                current_ns: cur.median_ns,
                regressed: cur.median_ns > base.median_ns * (1.0 + tolerance),
            }),
            None => problems.push(format!(
                "benchmark `{}` is in the baseline but was not produced by the run \
                 (renamed or removed? refresh with --write-baseline)",
                base.id
            )),
        }
    }
    for cur in &current.benchmarks {
        if !baseline.benchmarks.iter().any(|b| b.id == cur.id) {
            problems.push(format!(
                "benchmark `{}` has no checked-in baseline (new bench? refresh with \
                 --write-baseline)",
                cur.id
            ));
        }
    }
    (rows, problems)
}

fn check(root: &Path, json_dir: &Path, tolerance: f64) -> Result<bool, String> {
    let mut ok = true;
    for bench in BENCHES {
        let baseline = load_report(&baseline_path(root, bench))?;
        let current = load_report(&current_path(json_dir, bench))?;
        let (rows, problems) = compare(&baseline, &current, tolerance);
        println!("\n== {bench}: baseline vs current (tolerance +{:.0}%) ==", tolerance * 100.0);
        println!("{:<50} {:>14} {:>14} {:>8}  status", "id", "baseline", "current", "ratio");
        for row in &rows {
            let ratio = row.current_ns / row.baseline_ns.max(f64::MIN_POSITIVE);
            println!(
                "{:<50} {:>12.1}ns {:>12.1}ns {:>7.2}x  {}",
                row.id,
                row.baseline_ns,
                row.current_ns,
                ratio,
                if row.regressed { "REGRESSED" } else { "ok" }
            );
            if row.regressed {
                ok = false;
            }
        }
        for problem in &problems {
            println!("problem: {problem}");
            ok = false;
        }
    }
    Ok(ok)
}

fn write_baselines(root: &Path, json_dir: &Path) -> Result<(), String> {
    for bench in BENCHES {
        // Round-trip through the report type so a shim format drift fails loudly here
        // rather than in CI.
        let report = load_report(&current_path(json_dir, bench))?;
        let path = baseline_path(root, bench);
        let body = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("could not serialise {bench}: {e}"))?;
        std::fs::write(&path, body + "\n")
            .map_err(|e| format!("could not write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: bench_baseline (--write-baseline | --check-baseline <tolerance>) \
                 [--samples <n>] [--threads <n>] [--no-run]"
            );
            return ExitCode::FAILURE;
        }
    };
    let root = repo_root();
    let json_dir = root.join("target").join("criterion-json");
    if args.run_benches {
        for bench in BENCHES {
            if let Err(e) = run_bench(bench, &json_dir, args.samples, args.threads) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let outcome = match args.mode {
        Mode::WriteBaseline => write_baselines(&root, &json_dir).map(|()| true),
        Mode::CheckBaseline { tolerance } => check(&root, &json_dir, tolerance),
    };
    match outcome {
        Ok(true) => {
            println!("\nbench baseline: OK");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("\nbench baseline: FAILED (regressions or id mismatches above)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
