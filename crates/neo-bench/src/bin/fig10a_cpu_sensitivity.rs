//! Figure 10a: sensitivity of NEO's gain to CPU capacity (g5.2x/4x/8x/16xlarge).
//!
//! All four instance sizes carry the same A10G GPU (identical GPU-only baseline) but
//! differ in CPU cores, memory size and — decisively — memory bandwidth. The paper's
//! finding: peak throughput gain tracks CPU *memory bandwidth*, not core count, because
//! the offloaded decode attention is bandwidth-bound; bigger instances also keep their
//! advantage to longer output lengths. The paper reports peak gains of roughly 12%, 13%,
//! 30% and 79% for the four sizes.

use neo_bench::{print_table, save_json, scaled, Policy, Scenario};
use neo_serve::run_offline;
use neo_workload::{synthetic, ArrivalProcess};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    instance: String,
    cpu_bandwidth_gbs: f64,
    output_len: usize,
    relative_throughput: f64,
}

fn main() {
    let sizes = [2usize, 4, 8, 16];
    let outputs = [100usize, 200, 300, 400];
    let input = 1000;
    let requests = scaled(100);

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &n in &sizes {
        let scenario = Scenario::a10g_8b_on(n);
        let cpu_bw = scenario.testbed.cpu.mem_bw / 1e9;
        for &output in &outputs {
            let trace = synthetic(requests, input, output, ArrivalProcess::AllAtOnce, 44);
            let baseline = run_offline(scenario.engine(Policy::SwiftLlmLike), &trace, 50_000_000);
            let neo = run_offline(scenario.engine(Policy::Neo), &trace, 50_000_000);
            let relative = neo.token_throughput / baseline.token_throughput;
            rows.push(vec![
                format!("g5.{n}xlarge"),
                format!("{cpu_bw:.0}"),
                output.to_string(),
                format!("{relative:.3}"),
            ]);
            points.push(Point {
                instance: format!("g5.{n}xlarge"),
                cpu_bandwidth_gbs: cpu_bw,
                output_len: output,
                relative_throughput: relative,
            });
        }
    }
    print_table(
        "Figure 10a: NEO relative throughput vs CPU capacity (A10G + LLaMa-3.1-8B, input=1000)",
        &["instance", "CPU BW (GB/s)", "avg output", "relative throughput"],
        &rows,
    );

    // Peak gain per instance — should increase with CPU memory bandwidth.
    for &n in &sizes {
        let name = format!("g5.{n}xlarge");
        let peak = points
            .iter()
            .filter(|p| p.instance == name)
            .map(|p| p.relative_throughput)
            .fold(0.0_f64, f64::max);
        println!("peak gain [{name}]: {:+.1}%", (peak - 1.0) * 100.0);
    }
    save_json("fig10a_cpu_sensitivity", &points);
}
