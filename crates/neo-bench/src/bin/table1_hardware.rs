//! Table 1: hardware specifications of the testbeds.
//!
//! Prints the hardware presets used throughout the reproduction in the same shape as
//! Table 1 of the paper (instance name, GPU, CPU/cores, memory), plus the derived
//! quantities the cost model works from (memory bandwidths, GPU KV capacity).

use neo_bench::{print_table, save_json, Scenario};
use neo_sim::Testbed;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    gpu: String,
    gpus: usize,
    cpu: String,
    cpu_mem_gb: u64,
    gpu_mem_bw_gbs: f64,
    cpu_mem_bw_gbs: f64,
    tp: usize,
    weight_gb_per_rank: f64,
    kv_shard_kib_per_token: f64,
    gpu_kv_capacity_tokens: usize,
    cpu_kv_capacity_tokens: usize,
}

fn main() {
    let testbeds: Vec<(Testbed, Scenario)> = vec![
        (Testbed::g5_xlarge(2), Scenario::a10g_8b_on(2)),
        (Testbed::g5_xlarge(4), Scenario::a10g_8b_on(4)),
        (Testbed::g5_xlarge(8), Scenario::a10g_8b_on(8)),
        (Testbed::g5_xlarge(16), Scenario::a10g_8b_on(16)),
        (Testbed::g4dn_4xlarge(), Scenario::t4_7b()),
        (Testbed::hgx_h100(2), Scenario::h100_70b()),
    ];

    let rows: Vec<Row> = testbeds
        .iter()
        .map(|(tb, scenario)| {
            let cm = scenario.cost_model();
            // All ranks are identical GPUs, so rank 0's budget stands for every rank.
            let budget = cm.rank_budget(0);
            Row {
                name: tb.name.clone(),
                gpu: tb.gpu.name.clone(),
                gpus: tb.num_gpus,
                cpu: tb.cpu.name.clone(),
                cpu_mem_gb: tb.cpu.mem_bytes / (1 << 30),
                gpu_mem_bw_gbs: tb.gpu.mem_bw / 1e9,
                cpu_mem_bw_gbs: tb.cpu.mem_bw / 1e9,
                tp: cm.tp(),
                weight_gb_per_rank: budget.weight_bytes as f64 / 1e9,
                kv_shard_kib_per_token: budget.kv_bytes_per_token as f64 / 1024.0,
                gpu_kv_capacity_tokens: cm.gpu_kv_capacity_tokens(),
                cpu_kv_capacity_tokens: cm.cpu_kv_capacity_tokens(),
            }
        })
        .collect();

    print_table(
        "Table 1: testbed hardware (with derived KV capacities for the paired model)",
        &[
            "instance",
            "GPU",
            "#GPU",
            "CPU",
            "host mem (GB)",
            "GPU BW (GB/s)",
            "CPU BW (GB/s)",
            "tp",
            "weights/rank (GB)",
            "KV shard (KiB/tok)",
            "GPU KV cap (tok)",
            "CPU KV cap (tok)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.gpu.clone(),
                    r.gpus.to_string(),
                    r.cpu.clone(),
                    r.cpu_mem_gb.to_string(),
                    format!("{:.0}", r.gpu_mem_bw_gbs),
                    format!("{:.0}", r.cpu_mem_bw_gbs),
                    r.tp.to_string(),
                    format!("{:.1}", r.weight_gb_per_rank),
                    format!("{:.0}", r.kv_shard_kib_per_token),
                    r.gpu_kv_capacity_tokens.to_string(),
                    r.cpu_kv_capacity_tokens.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("table1_hardware", &rows);
}
