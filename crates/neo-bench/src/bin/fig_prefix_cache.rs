//! Prefix-cache experiment: TTFT and throughput under shared-prefix reuse.
//!
//! Serves a multi-turn chat workload on the A10G + LLaMa-3.1-8B setting and sweeps the
//! fraction of sessions that share one fleet-wide system prompt
//! (`shared_system_prob` ∈ {0, ¼, ½, ¾, 1}), with the engine's prefix cache on and off.
//! Every turn re-sends the whole conversation, so even the 0-share points reuse
//! within-session history once caching is on; the sweep adds cross-session sharing on
//! top. The share decision comes from a per-session stream independent of the swept
//! probability, so the *flattened* workload (arrivals and lengths) is identical at every
//! share point — the cache-off rows are all the same run, and any change in the cache-on
//! rows is purely identity-driven.
//!
//! Reported per point: the measured cache hit rate (prompt tokens served from cached KV
//! over prompt tokens submitted), TTFT mean/p99, average per-token latency, decode
//! throughput, and the copy-on-write split count. The headline: at a fixed offered
//! load, TTFT improves monotonically with the hit rate.

use neo_bench::{print_table, save_json, scaled, Policy, Scenario};
use neo_core::EngineConfig;
use neo_serve::run_sessions;
use neo_workload::{multi_turn_chat, ChatConfig};
use serde::Serialize;

#[derive(Serialize, Clone)]
struct PrefixPoint {
    setting: String,
    policy: String,
    cache: String,
    shared_system_prob: f64,
    request_rate: f64,
    hit_rate: f64,
    prefix_hit_tokens: usize,
    prompt_tokens: usize,
    cow_splits: usize,
    mean_ttft: f64,
    p99_ttft: f64,
    avg_per_token_latency: f64,
    decode_throughput: f64,
    completed: usize,
}

fn main() {
    let scenario = Scenario::a10g_8b();
    let sessions = scaled(36);
    let turns = 4;
    let session_rate = 0.6;
    let request_rate = session_rate * turns as f64;

    let mut points: Vec<PrefixPoint> = Vec::new();
    let mut rows = Vec::new();
    for &share in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let trace = multi_turn_chat(
            &ChatConfig {
                sessions,
                turns,
                system_len: 1024,
                user_len: 96,
                output_len: 48,
                shared_system_prob: share,
                session_rate,
                turn_gap: 4.0,
            },
            42,
        );
        for cache in [true, false] {
            let config = EngineConfig { prefix_cache: cache, ..EngineConfig::default() };
            let engine = scenario.engine_with_config(Policy::Neo, config);
            let result = run_sessions(engine, &trace, request_rate, 50_000_000);
            let point = PrefixPoint {
                setting: scenario.name.clone(),
                policy: Policy::Neo.label().to_string(),
                cache: if cache { "on" } else { "off" }.to_string(),
                shared_system_prob: share,
                request_rate,
                hit_rate: result.hit_rate(),
                prefix_hit_tokens: result.prefix_hit_tokens,
                prompt_tokens: result.prompt_tokens,
                cow_splits: result.cow_splits,
                mean_ttft: result.online.ttft.mean,
                p99_ttft: result.online.ttft.p99,
                avg_per_token_latency: result.online.avg_per_token_latency,
                decode_throughput: result.online.decode_throughput,
                completed: result.online.completed,
            };
            rows.push(vec![
                format!("{:.2}", point.shared_system_prob),
                point.cache.clone(),
                format!("{:.3}", point.hit_rate),
                format!("{}", point.cow_splits),
                format!("{:.4}", point.mean_ttft),
                format!("{:.4}", point.p99_ttft),
                format!("{:.4}", point.avg_per_token_latency),
                format!("{:.1}", point.decode_throughput),
            ]);
            points.push(point);
        }
    }
    print_table(
        &format!("Prefix cache: multi-turn chat on {} at {request_rate:.1} req/s", scenario.name),
        &[
            "share",
            "cache",
            "hit rate",
            "COW",
            "TTFT (s)",
            "p99 TTFT (s)",
            "avg tok lat (s)",
            "decode tok/s",
        ],
        &rows,
    );
    save_json("fig_prefix_cache", &points);
}
