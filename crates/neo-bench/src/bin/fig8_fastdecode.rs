//! Figure 8: NEO vs the offloading family on 2×H100 + LLaMa-3.1-70B.
//!
//! (a) Online latency on the Azure-coding-like trace across request rates: FastDecode+'s
//!     rigidity (it must run CPU-bound batches even when that hurts) shows up as higher
//!     latency at load.
//! (b) Offline relative throughput versus output length at a fixed 2000-token input:
//!     NEO stays at or above the GPU-only baseline (it can always fall back), while
//!     FastDecode+ becomes CPU-bound as outputs grow and drops well below 1.0.
//! (c) The pipelined-offloading family (PIPO, SpecOffload — see `docs/BASELINES.md`) on
//!     the same offline sweep: PIPO's double-buffered KV streaming is PCIe-bound at a
//!     2000-token input so it sits below the GPU-only baseline throughout, while
//!     SpecOffload's speculative expansion tracks NEO from below (it probes toward the
//!     balanced operating point instead of solving for it).

use neo_bench::{print_table, save_json, scaled, Policy, Scenario};
use neo_serve::{run_offline, run_online};
use neo_workload::{azure_code_like, synthetic, ArrivalProcess};
use serde::Serialize;

#[derive(Serialize)]
struct OnlinePoint {
    policy: String,
    rate: f64,
    avg_per_token_latency: f64,
    mean_ttft: f64,
}

#[derive(Serialize)]
struct OfflinePoint {
    policy: String,
    output_len: usize,
    relative_throughput: f64,
}

fn main() {
    let scenario = Scenario::h100_70b();

    // (a) Online latency vs rate.
    let mut online_rows = Vec::new();
    let mut online_points = Vec::new();
    for &rate in &[0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5] {
        for policy in [Policy::Neo, Policy::FastDecodePlus] {
            let trace = azure_code_like(scaled(120), ArrivalProcess::Poisson { rate }, 21);
            let result = run_online(scenario.engine(policy), &trace, rate, 50_000_000);
            online_rows.push(vec![
                policy.label().to_string(),
                format!("{rate:.1}"),
                format!("{:.3}", result.avg_per_token_latency),
                format!("{:.3}", result.ttft.mean),
            ]);
            online_points.push(OnlinePoint {
                policy: policy.label().to_string(),
                rate,
                avg_per_token_latency: result.avg_per_token_latency,
                mean_ttft: result.ttft.mean,
            });
        }
    }
    print_table(
        "Figure 8a: online per-token latency, 2xH100 + LLaMa-3.1-70B + AC",
        &["policy", "req/s", "avg tok lat (s)", "TTFT (s)"],
        &online_rows,
    );

    // (b) Offline relative throughput vs output length (input fixed at 2000).
    let mut offline_rows = Vec::new();
    let mut offline_points = Vec::new();
    for &output in &[50usize, 100, 150, 200, 250, 300] {
        let trace = synthetic(scaled(120), 2000, output, ArrivalProcess::AllAtOnce, 22);
        let baseline =
            run_offline(scenario.engine(Policy::SwiftLlmLike), &trace, 50_000_000).token_throughput;
        for policy in [Policy::Neo, Policy::FastDecodePlus] {
            let result = run_offline(scenario.engine(policy), &trace, 50_000_000);
            let relative = result.token_throughput / baseline;
            offline_rows.push(vec![
                policy.label().to_string(),
                output.to_string(),
                format!("{relative:.3}"),
            ]);
            offline_points.push(OfflinePoint {
                policy: policy.label().to_string(),
                output_len: output,
                relative_throughput: relative,
            });
        }
    }
    print_table(
        "Figure 8b: offline throughput relative to GPU-only baseline (input = 2000)",
        &["policy", "avg output len", "relative throughput"],
        &offline_rows,
    );

    // (c) The full offload family on the same offline sweep.
    let family = [Policy::Neo, Policy::FastDecodePlus, Policy::Pipo, Policy::SpecOffload];
    let mut family_rows = Vec::new();
    let mut family_points = Vec::new();
    for &output in &[50usize, 100, 150, 200, 250, 300] {
        let trace = synthetic(scaled(120), 2000, output, ArrivalProcess::AllAtOnce, 23);
        let baseline =
            run_offline(scenario.engine(Policy::SwiftLlmLike), &trace, 50_000_000).token_throughput;
        for policy in family {
            let result = run_offline(scenario.engine(policy), &trace, 50_000_000);
            let relative = result.token_throughput / baseline;
            family_rows.push(vec![
                policy.label().to_string(),
                output.to_string(),
                format!("{relative:.3}"),
                format!("{:.2}", result.offload_fraction),
            ]);
            family_points.push(OfflinePoint {
                policy: policy.label().to_string(),
                output_len: output,
                relative_throughput: relative,
            });
        }
    }
    print_table(
        "Figure 8c: offload family, offline throughput relative to GPU-only (input = 2000)",
        &["policy", "avg output len", "relative throughput", "offload frac"],
        &family_rows,
    );

    save_json("fig8a_online", &online_points);
    save_json("fig8b_offline", &offline_points);
    save_json("fig8c_offload_family", &family_points);
}
