//! Figure 6: online load–latency curves, NEO vs vLLM.
//!
//! Reproduces the three settings of Figure 6: (a) 2×H100 + LLaMa-3.1-70B on the
//! Azure-coding-like trace, (b) A10G + LLaMa-3.1-8B on the same trace, and (c) T4 +
//! LLaMa-2-7B on the OSC-like trace. For each offered request rate the harness runs an
//! online simulation with Poisson arrivals and reports the average per-token latency.
//!
//! Passing `--headline` additionally prints the sustainable-throughput gain at a
//! per-token latency target. The paper evaluates at 2 s (H100/A10G) and 1 s (T4); our
//! simulated latencies are lower in absolute terms (shorter synthetic outputs, no Python
//! overhead), so the targets here are scaled down to the knee of the simulated curves
//! (0.15 s for H100/A10G, 0.25 s for T4) — the comparison between NEO and vLLM at the
//! target is what matters, not the absolute cut-off.

use neo_bench::{print_table, save_json, scaled, Policy, Scenario};
use neo_serve::run_online;
use neo_workload::{azure_code_like, osc_like, ArrivalProcess, Trace};
use serde::Serialize;

#[derive(Serialize, Clone)]
struct RatePoint {
    setting: String,
    policy: String,
    rate: f64,
    avg_per_token_latency: f64,
    p90_per_token_latency: f64,
    mean_ttft: f64,
    p99_itl: f64,
    offload_fraction: f64,
}

struct Setting {
    scenario: Scenario,
    trace: fn(usize, f64, u64) -> Trace,
    rates: Vec<f64>,
    requests: usize,
    latency_slo: f64,
}

fn ac_trace(n: usize, rate: f64, seed: u64) -> Trace {
    azure_code_like(n, ArrivalProcess::Poisson { rate }, seed)
}

fn osc_trace(n: usize, rate: f64, seed: u64) -> Trace {
    osc_like(n, ArrivalProcess::Poisson { rate }, seed)
}

fn main() {
    let headline = std::env::args().any(|a| a == "--headline");
    let settings = vec![
        Setting {
            scenario: Scenario::h100_70b(),
            trace: ac_trace,
            rates: vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5],
            requests: scaled(150),
            latency_slo: 0.15,
        },
        Setting {
            scenario: Scenario::a10g_8b(),
            trace: ac_trace,
            rates: vec![0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0],
            requests: scaled(150),
            latency_slo: 0.15,
        },
        Setting {
            scenario: Scenario::t4_7b(),
            trace: osc_trace,
            rates: vec![0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5],
            requests: scaled(150),
            latency_slo: 0.25,
        },
    ];

    let mut all_points: Vec<RatePoint> = Vec::new();
    for setting in &settings {
        let mut rows = Vec::new();
        for &rate in &setting.rates {
            for policy in [Policy::Neo, Policy::VllmLike] {
                let trace = (setting.trace)(setting.requests, rate, 42);
                let engine = setting.scenario.engine(policy);
                let result = run_online(engine, &trace, rate, 50_000_000);
                let point = RatePoint {
                    setting: setting.scenario.name.clone(),
                    policy: policy.label().to_string(),
                    rate,
                    avg_per_token_latency: result.avg_per_token_latency,
                    p90_per_token_latency: result.per_token_latency.p90,
                    mean_ttft: result.ttft.mean,
                    p99_itl: result.itl.map(|s| s.p99).unwrap_or(f64::NAN),
                    offload_fraction: result.offload_fraction,
                };
                rows.push(vec![
                    point.policy.clone(),
                    format!("{:.2}", point.rate),
                    format!("{:.3}", point.avg_per_token_latency),
                    format!("{:.3}", point.p90_per_token_latency),
                    format!("{:.3}", point.mean_ttft),
                    format!("{:.3}", point.p99_itl),
                    format!("{:.2}", point.offload_fraction),
                ]);
                all_points.push(point);
            }
        }
        print_table(
            &format!("Figure 6: load vs per-token latency — {}", setting.scenario.name),
            &[
                "policy",
                "req/s",
                "avg tok lat (s)",
                "p90 tok lat (s)",
                "TTFT (s)",
                "p99 ITL (s)",
                "offload frac",
            ],
            &rows,
        );

        if headline {
            headline_gain(&all_points, &setting.scenario.name, setting.latency_slo);
        }
    }
    save_json("fig6_load_latency", &all_points);
}

/// Highest offered rate whose average per-token latency stays under `slo`, per policy,
/// and the resulting NEO-over-vLLM throughput gain.
fn headline_gain(points: &[RatePoint], setting: &str, slo: f64) {
    let max_rate = |policy: &str| {
        points
            .iter()
            .filter(|p| p.setting == setting && p.policy == policy)
            .filter(|p| p.avg_per_token_latency <= slo)
            .map(|p| p.rate)
            .fold(0.0_f64, f64::max)
    };
    let neo = max_rate("NEO");
    let vllm = max_rate("vLLM");
    if vllm > 0.0 {
        println!(
            "headline [{setting}]: sustainable rate at {slo:.1}s/token — NEO {neo:.2} req/s, \
             vLLM {vllm:.2} req/s, gain {:+.1}%",
            (neo / vllm - 1.0) * 100.0
        );
    } else {
        println!("headline [{setting}]: vLLM met the {slo:.1}s/token target at no tested rate");
    }
}
