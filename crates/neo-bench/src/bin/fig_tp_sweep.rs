//! Tensor-parallel sweep: how NEO's cost terms and throughput gains re-price as the
//! LLaMa-3.1-70B deployment is sharded over tp ∈ {1, 2, 4, 8} H100 GPUs.
//!
//! The sweep separates two effects of sharding on the §3.2 offload-split inequalities:
//!
//! * **PCIe terms shrink with tp** — each rank moves only its `1/tp` KV shard over its
//!   own link, so per-rank swap and QKVO round-trip times fall, making offloading
//!   *cheaper* per token as the group grows.
//! * **Collective terms grow with tp** — the per-layer all-reduces and the LM-head
//!   all-gather add interconnect time that a single GPU never pays.
//!
//! Each row reports the per-rank budget ([`neo_sim::RankBudget`]), the priced cost
//! terms, and — where the weight shard actually fits the 80 GB card (tp ≥ 2) — offline
//! token throughput of NEO against the SwiftLLM-like GPU-only baseline on the Figure-8b
//! workload. Output: `results/fig_tp_sweep.json`.

use neo_bench::{print_table, save_json, scaled, Policy, Scenario};
use neo_serve::run_offline;
use neo_workload::{synthetic, ArrivalProcess};
use serde::Serialize;

#[derive(Serialize)]
struct TpSweepPoint {
    tp: usize,
    /// Whether the per-rank weight shard fits the GPU at all (tp = 1 cannot hold 70B).
    feasible: bool,
    weight_gb_per_rank: f64,
    kv_shard_kib_per_token: f64,
    rank_kv_capacity_tokens: usize,
    /// Per-rank, per-layer swap-out time of 1000 tokens (seconds).
    swap_out_s_per_layer_1k: f64,
    /// Per-rank, per-layer swap-in time of 1000 tokens (seconds).
    swap_in_s_per_layer_1k: f64,
    /// Per-layer CPU decode-attention time, 100 requests × 500 ctx (seconds).
    cpu_attn_s_50k: f64,
    /// Per-layer tensor-parallel all-reduce time for 512 tokens (seconds).
    allreduce_s_512: f64,
    /// LM-head all-gather time for 64 sampled tokens (seconds).
    lm_head_allgather_s_64: f64,
    /// Offline token throughput (tok/s); 0.0 when the deployment is infeasible.
    neo_token_throughput: f64,
    gpu_only_token_throughput: f64,
    /// NEO / GPU-only; 0.0 when infeasible.
    neo_relative_throughput: f64,
}

fn main() {
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for tp in [1usize, 2, 4, 8] {
        let scenario = Scenario::h100_70b_tp(tp);
        let cm = scenario.cost_model();
        let budget = cm.rank_budget(0);
        let feasible = budget.kv_capacity_tokens > 0;

        let (neo_tps, gpu_tps) = if feasible {
            // The Figure-8b offline workload at a fixed mid-sweep output length.
            let trace = synthetic(scaled(120), 2000, 150, ArrivalProcess::AllAtOnce, 24);
            let neo = run_offline(scenario.engine(Policy::Neo), &trace, 50_000_000);
            let gpu = run_offline(scenario.engine(Policy::SwiftLlmLike), &trace, 50_000_000);
            (neo.token_throughput, gpu.token_throughput)
        } else {
            (0.0, 0.0)
        };

        let point = TpSweepPoint {
            tp,
            feasible,
            weight_gb_per_rank: budget.weight_bytes as f64 / 1e9,
            kv_shard_kib_per_token: budget.kv_bytes_per_token as f64 / 1024.0,
            rank_kv_capacity_tokens: budget.kv_capacity_tokens,
            swap_out_s_per_layer_1k: cm.swap_out_time_per_layer(1000),
            swap_in_s_per_layer_1k: cm.swap_in_time_per_layer(1000),
            cpu_attn_s_50k: cm.cpu_decode_attn_time(50_000, 100),
            allreduce_s_512: cm.allreduce_time(512),
            lm_head_allgather_s_64: cm.lm_head_allgather_time(64),
            neo_token_throughput: neo_tps,
            gpu_only_token_throughput: gpu_tps,
            neo_relative_throughput: if gpu_tps > 0.0 { neo_tps / gpu_tps } else { 0.0 },
        };
        rows.push(vec![
            point.tp.to_string(),
            if point.feasible { "yes" } else { "no" }.to_string(),
            format!("{:.1}", point.weight_gb_per_rank),
            point.rank_kv_capacity_tokens.to_string(),
            format!("{:.3}", point.swap_out_s_per_layer_1k * 1e3),
            format!("{:.3}", point.allreduce_s_512 * 1e6),
            format!("{:.3}", point.lm_head_allgather_s_64 * 1e6),
            format!("{:.1}", point.neo_token_throughput),
            format!("{:.3}", point.neo_relative_throughput),
        ]);
        points.push(point);
    }

    print_table(
        "TP sweep: HGX H100 + LLaMa-3.1-70B, tp in {1, 2, 4, 8}",
        &[
            "tp",
            "fits",
            "weights/rank (GB)",
            "rank KV cap (tok)",
            "swap-out 1k (ms/layer)",
            "all-reduce 512 (us)",
            "LM all-gather 64 (us)",
            "NEO tok/s",
            "NEO/GPU-only",
        ],
        &rows,
    );
    save_json("fig_tp_sweep", &points);
}
