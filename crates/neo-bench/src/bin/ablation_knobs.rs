//! Design-choice ablations: how much each of NEO's mechanisms contributes.
//!
//! Quantifies, on the A10G + LLaMa-3.1-8B testbed, how much each of NEO's design choices
//! contributes and how sensitive the scheduler is to its knobs:
//!
//! * **Layer-wise swap overlap** (§3.1): overlapping the swap-out of freshly prefilled KV
//!   with per-layer compute vs deferring the whole transfer to the end of the iteration.
//! * **Profiling noise** (§3.2 / §5.4): the scheduler consults an offline-profiled,
//!   interpolated cost model; injected relative error emulates profiling inaccuracy and
//!   should cause only mild degradation.
//! * **Balance slack**: how strictly the `Tca ≤ Tl` inequalities are enforced.
//! * **Swap-in watermark**: how eagerly CPU-requests are pulled back to an idle GPU.

use neo_bench::{print_table, save_json, scaled, Policy, Scenario};
use neo_core::EngineConfig;
use neo_serve::run_offline;
use neo_workload::{synthetic, ArrivalProcess};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ablation: String,
    value: String,
    relative_throughput: f64,
}

fn main() {
    let scenario = Scenario::t4_7b();
    let trace = synthetic(scaled(100), 300, 120, ArrivalProcess::AllAtOnce, 77);
    let baseline =
        run_offline(scenario.engine(Policy::SwiftLlmLike), &trace, 50_000_000).token_throughput;

    let mut rows: Vec<Row> = Vec::new();
    let mut run = |ablation: &str, value: &str, config: EngineConfig| {
        let engine = scenario.engine_with_config(Policy::Neo, config);
        let result = run_offline(engine, &trace, 50_000_000);
        rows.push(Row {
            ablation: ablation.to_string(),
            value: value.to_string(),
            relative_throughput: result.token_throughput / baseline,
        });
    };

    run("reference", "defaults", EngineConfig::default());

    run(
        "layerwise swap overlap",
        "disabled (deferred swap)",
        EngineConfig { layerwise_swap_overlap: false, ..EngineConfig::default() },
    );

    for noise in [0.05, 0.1, 0.2] {
        run(
            "profiling noise",
            &format!("±{:.0}%", noise * 100.0),
            EngineConfig { profile_noise: noise, ..EngineConfig::default() },
        );
    }

    for slack in [0.0, 0.2, 0.5] {
        run(
            "balance slack",
            &format!("{slack:.1}"),
            EngineConfig { balance_slack: slack, ..EngineConfig::default() },
        );
    }

    for watermark in [0.0, 0.5, 0.9] {
        run(
            "swap-in watermark",
            &format!("{watermark:.1}"),
            EngineConfig { swap_in_watermark: watermark, ..EngineConfig::default() },
        );
    }

    print_table(
        "Design-knob ablations: NEO throughput relative to GPU-only (T4 + LLaMa-2-7B, 300/120)",
        &["ablation", "value", "relative throughput"],
        &rows
            .iter()
            .map(|r| {
                vec![r.ablation.clone(), r.value.clone(), format!("{:.3}", r.relative_throughput)]
            })
            .collect::<Vec<_>>(),
    );
    save_json("ablation_knobs", &rows);
}
