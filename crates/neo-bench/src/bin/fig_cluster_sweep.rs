//! Cluster load–latency curves: four routing disciplines over two fleets.
//!
//! The paper's Figure 6 measures one engine; this driver asks the fleet-level question
//! online providers face: given N NEO engines behind a router, how much does the
//! *routing discipline* move the load–latency curve? Two fleets are swept:
//!
//! * **4×(A10G + LLaMa-3.1-8B)** — homogeneous, on the Azure-coding-like trace. All
//!   engines are identical, so request-count balancing (round-robin, cFCFS, dFCFS)
//!   is near-optimal and least-KV has little edge — the control.
//! * **T4 + A10G + 2×H100 (Table 1 pairings)** — heterogeneous, on a mixed AC+OSC
//!   arrival stream ([`neo_workload::fleet_mix`]). Here a request *count* is the wrong
//!   unit of load: the T4's KV cache is a fraction of an H100 rank's, so
//!   capacity-blind disciplines drown the small engine at high load while
//!   least-KV-occupancy keeps tail latency flat — the fleet-level analogue of the
//!   paper's point that KV headroom, not request count, is the binding resource.
//!
//! Every run is fully deterministic (fixed trace seeds, tie-break seed 0), so the
//! emitted `results/fig_cluster_sweep.json` is bit-stable and CI regenerates and
//! diffs it (`results-fresh`).

use neo_bench::{print_table, save_json, scaled, Policy, Scenario};
use neo_cluster::{Cluster, ClusterConfig, Discipline};
use neo_core::Engine;
use neo_workload::{azure_code_like, fleet_mix, ArrivalProcess, Trace, TraceRequest};
use serde::Serialize;

/// One (fleet, discipline, offered-rate) measurement — a flat row, one JSON object
/// per swept point, so downstream tooling can pivot freely.
#[derive(Serialize, Clone)]
struct SweepPoint {
    fleet: String,
    discipline: String,
    rate: f64,
    requests: usize,
    completed: usize,
    mean_ttft: f64,
    p99_ttft: f64,
    mean_itl: f64,
    p99_itl: f64,
    streamed_tokens: u64,
    makespan: f64,
    max_central_queue: usize,
    rebalances: usize,
}

struct FleetSetting {
    name: &'static str,
    engines: fn() -> Vec<(String, Engine)>,
    /// Base trace at an offered rate of 1 request/s. Load is swept by *compressing
    /// this one arrival sequence* (dividing arrival times by the target rate), so
    /// every point of a discipline's curve serves the identical request sequence and
    /// latency is monotone in offered load — sampling a fresh Poisson trace per rate
    /// would instead reshuffle which engine each request lands on, burying the load
    /// trend under assignment noise on a heterogeneous fleet.
    base_trace: fn(usize) -> Trace,
    rates: Vec<f64>,
    requests: usize,
}

/// The base trace compressed to an offered rate of `rate` requests/s.
fn at_rate(base: &Trace, rate: f64) -> Trace {
    base.requests().iter().map(|r| TraceRequest { arrival: r.arrival / rate, ..*r }).collect()
}

fn homogeneous_fleet() -> Vec<(String, Engine)> {
    (0..4).map(|i| (format!("a10g-{i}"), Scenario::a10g_8b().engine(Policy::Neo))).collect()
}

fn heterogeneous_fleet() -> Vec<(String, Engine)> {
    vec![
        ("t4-7b".to_string(), Scenario::t4_7b().engine(Policy::Neo)),
        ("a10g-8b".to_string(), Scenario::a10g_8b().engine(Policy::Neo)),
        ("h100-70b".to_string(), Scenario::h100_70b().engine(Policy::Neo)),
    ]
}

fn ac_trace(n: usize) -> Trace {
    azure_code_like(n, ArrivalProcess::Poisson { rate: 1.0 }, 42)
}

fn mixed_trace(n: usize) -> Trace {
    fleet_mix(n, 0.35, 1.0, 42)
}

fn main() {
    let settings = [
        FleetSetting {
            name: "4xA10G (homogeneous)",
            engines: homogeneous_fleet,
            base_trace: ac_trace,
            rates: vec![1.0, 2.0, 4.0, 6.0],
            requests: scaled(96),
        },
        FleetSetting {
            name: "T4+A10G+2xH100 (heterogeneous)",
            engines: heterogeneous_fleet,
            base_trace: mixed_trace,
            rates: vec![1.0, 2.0, 4.0, 6.0],
            requests: scaled(96),
        },
    ];

    let mut points: Vec<SweepPoint> = Vec::new();
    for setting in &settings {
        let mut rows = Vec::new();
        let base = (setting.base_trace)(setting.requests);
        for &rate in &setting.rates {
            let trace = at_rate(&base, rate);
            for discipline in Discipline::ALL {
                let config = ClusterConfig { discipline, ..ClusterConfig::default() };
                let report = Cluster::new((setting.engines)(), &trace, config).run();
                let ttft = report.ttft.expect("every request streams at least one token");
                let point = SweepPoint {
                    fleet: setting.name.to_string(),
                    discipline: discipline.label().to_string(),
                    rate,
                    requests: report.requests,
                    completed: report.completed,
                    mean_ttft: ttft.mean,
                    p99_ttft: ttft.p99,
                    mean_itl: report.itl.map(|s| s.mean).unwrap_or(f64::NAN),
                    p99_itl: report.itl.map(|s| s.p99).unwrap_or(f64::NAN),
                    streamed_tokens: report.streamed_tokens,
                    makespan: report.makespan,
                    max_central_queue: report.max_central_queue,
                    rebalances: report.rebalances,
                };
                rows.push(vec![
                    point.discipline.clone(),
                    format!("{:.2}", point.rate),
                    format!("{:.3}", point.mean_ttft),
                    format!("{:.3}", point.p99_ttft),
                    format!("{:.4}", point.mean_itl),
                    format!("{:.4}", point.p99_itl),
                    format!("{}", point.max_central_queue),
                    format!("{}", point.rebalances),
                ]);
                points.push(point);
            }
        }
        print_table(
            &format!("Cluster sweep — {}", setting.name),
            &[
                "discipline",
                "req/s",
                "mean TTFT (s)",
                "p99 TTFT (s)",
                "mean ITL (s)",
                "p99 ITL (s)",
                "max central q",
                "rebalances",
            ],
            &rows,
        );
    }
    save_json("fig_cluster_sweep", &points);
}
