//! Shared helpers for the NEO benchmark and figure harnesses.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary in `src/bin/`
//! (see the repository `README.md` for the experiment index).
//! This library provides the pieces they share: scenario presets matching the paper's
//! hardware/model pairings, scheduler construction by policy name, and small table /
//! JSON output helpers.

#![forbid(unsafe_code)]

use neo_baselines::{
    FastDecodePlusScheduler, GpuOnlyScheduler, PipoScheduler, SimpleOffloadScheduler,
    SpecOffloadScheduler, SymmetricPipelineScheduler,
};
use neo_core::{Engine, EngineConfig, NeoScheduler, Scheduler};
use neo_sim::{CostModel, ModelDesc, Testbed};
use serde::Serialize;

/// A hardware + model pairing used in the paper's evaluation.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short label used in figure output, e.g. `"2xH100 + LLaMa-3.1-70B"`.
    pub name: String,
    /// Hardware testbed.
    pub testbed: Testbed,
    /// Model descriptor.
    pub model: ModelDesc,
    /// Tensor-parallel degree.
    pub tp: usize,
}

impl Scenario {
    /// 2×H100 serving LLaMa-3.1-70B (Figures 6a, 8, 9a, 10b).
    pub fn h100_70b() -> Self {
        Self::h100_70b_tp(2)
    }

    /// The HGX H100 server serving LLaMa-3.1-70B at an arbitrary tensor-parallel degree:
    /// `tp` GPUs, `tp`-way sharding (the `fig_tp_sweep` driver sweeps tp ∈ {1, 2, 4, 8}).
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero or greater than 8 (the HGX box has 8 GPUs).
    pub fn h100_70b_tp(tp: usize) -> Self {
        Self {
            name: format!("{tp}xH100 + LLaMa-3.1-70B"),
            testbed: Testbed::hgx_h100(tp),
            model: ModelDesc::llama3_70b(),
            tp,
        }
    }

    /// A10G (g5.4xlarge) serving LLaMa-3.1-8B (Figures 6b, 7, 9b, 10).
    pub fn a10g_8b() -> Self {
        Self {
            name: "A10G + LLaMa-3.1-8B".to_string(),
            testbed: Testbed::g5_xlarge(4),
            model: ModelDesc::llama3_8b(),
            tp: 1,
        }
    }

    /// A10G on a specific `g5.nxlarge` size (Figure 10a sweeps n ∈ {2, 4, 8, 16}).
    pub fn a10g_8b_on(n: usize) -> Self {
        Self {
            name: format!("g5.{n}xlarge + LLaMa-3.1-8B"),
            testbed: Testbed::g5_xlarge(n),
            model: ModelDesc::llama3_8b(),
            tp: 1,
        }
    }

    /// T4 (g4dn.4xlarge) serving LLaMa-2-7B (Figures 6c, 9c).
    pub fn t4_7b() -> Self {
        Self {
            name: "T4 + LLaMa-2-7B".to_string(),
            testbed: Testbed::g4dn_4xlarge(),
            model: ModelDesc::llama2_7b(),
            tp: 1,
        }
    }

    /// Cost model of this scenario.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.model.clone(), self.testbed.clone(), self.tp)
    }

    /// Builds an engine running `policy` on this scenario with the default configuration.
    pub fn engine(&self, policy: Policy) -> Engine {
        self.engine_with_config(policy, EngineConfig::default())
    }

    /// Builds an engine with an explicit configuration.
    pub fn engine_with_config(&self, policy: Policy, config: EngineConfig) -> Engine {
        Engine::new(self.cost_model(), config, policy.scheduler())
    }
}

/// Scheduling policies compared across the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// NEO's load-aware asymmetric-pipelining scheduler.
    Neo,
    /// vLLM-like GPU-only baseline (chunked prefill).
    VllmLike,
    /// SwiftLLM-like GPU-only baseline (whole-prompt admission).
    SwiftLlmLike,
    /// FastDecode+ (full CPU offload).
    FastDecodePlus,
    /// Strawman #1: offloading without overlap.
    SimpleOffload,
    /// Strawman #2: symmetric pipelining.
    SymmetricPipeline,
    /// PIPO: static pipelined offloading (double-buffered KV streaming).
    Pipo,
    /// SpecOffload: speculative batch expansion with AIMD width control.
    SpecOffload,
}

impl Policy {
    /// Every registered policy, in evaluation order. This is the registry the
    /// results-regeneration tests check figure JSON against: a policy label appearing in
    /// `results/*.json` must map back to exactly one of these.
    pub const ALL: [Policy; 8] = [
        Policy::Neo,
        Policy::VllmLike,
        Policy::SwiftLlmLike,
        Policy::FastDecodePlus,
        Policy::SimpleOffload,
        Policy::SymmetricPipeline,
        Policy::Pipo,
        Policy::SpecOffload,
    ];

    /// Constructs the scheduler implementing this policy.
    pub fn scheduler(self) -> Box<dyn Scheduler> {
        match self {
            Policy::Neo => Box::new(NeoScheduler::new()),
            Policy::VllmLike => Box::new(GpuOnlyScheduler::vllm_like()),
            Policy::SwiftLlmLike => Box::new(GpuOnlyScheduler::swiftllm_like()),
            Policy::FastDecodePlus => Box::new(FastDecodePlusScheduler::new()),
            Policy::SimpleOffload => Box::new(SimpleOffloadScheduler::new()),
            Policy::SymmetricPipeline => Box::new(SymmetricPipelineScheduler::new()),
            Policy::Pipo => Box::new(PipoScheduler::new()),
            Policy::SpecOffload => Box::new(SpecOffloadScheduler::new()),
        }
    }

    /// Display label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Neo => "NEO",
            Policy::VllmLike => "vLLM",
            Policy::SwiftLlmLike => "SwiftLLM",
            Policy::FastDecodePlus => "FastDecode+",
            Policy::SimpleOffload => "SimpleOffload",
            Policy::SymmetricPipeline => "SymmetricPipeline",
            Policy::Pipo => "PIPO",
            Policy::SpecOffload => "SpecOffload",
        }
    }

    /// Looks a policy up by its display label (the name recorded in `results/*.json`).
    pub fn from_label(label: &str) -> Option<Policy> {
        Policy::ALL.into_iter().find(|p| p.label() == label)
    }
}

/// Prints a fixed-width table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(|c| c.len()).unwrap_or(0))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(h.len())
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Writes any serialisable result as pretty JSON under `results/<name>.json` so reported
/// numbers can be regenerated and diffed.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(saved {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialise {name}: {e}"),
    }
}

/// Returns a scale factor in (0, 1] for request counts: the `NEO_BENCH_SCALE` environment
/// variable (e.g. `0.2` for a quick smoke run) or 1.0.
pub fn bench_scale() -> f64 {
    std::env::var("NEO_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| *v > 0.0 && *v <= 1.0)
        .unwrap_or(1.0)
}

/// Scales a request count by [`bench_scale`], keeping at least 8 requests.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * bench_scale()).round() as usize).max(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build_engines_for_every_policy() {
        for scenario in [Scenario::a10g_8b(), Scenario::t4_7b(), Scenario::h100_70b()] {
            for policy in Policy::ALL {
                let engine = scenario.engine(policy);
                assert!(engine.is_idle());
                assert!(!engine.scheduler_name().is_empty());
            }
        }
    }

    #[test]
    fn policy_labels_are_unique_and_resolvable() {
        let labels: Vec<&str> = Policy::ALL.iter().map(|p| p.label()).collect();
        let mut dedup = labels.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        for policy in Policy::ALL {
            assert_eq!(Policy::from_label(policy.label()), Some(policy));
        }
        assert_eq!(Policy::from_label("nope"), None);
    }

    #[test]
    fn scaled_has_a_floor() {
        assert!(scaled(100) >= 8);
        assert!(scaled(0) == 8);
    }
}
