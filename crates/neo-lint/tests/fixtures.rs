//! Per-rule fixture tests: every rule has a positive fixture (known findings
//! at known lines) and a negative fixture (idiomatic code, doc-comment
//! mentions, string literals, pragma suppressions and `#[cfg(test)]` regions
//! that must all stay silent). Fixtures live in `fixtures/` — outside `src/`,
//! so the workspace walk never lints them — and are fed through [`lint_file`]
//! under a synthetic workspace-relative path that selects the scope under
//! test.

use std::path::Path;

use neo_lint::lint_file;

/// Reads a fixture file relative to `crates/neo-lint/fixtures/`.
fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(rel);
    match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!("read fixture {}: {e}", path.display()),
    }
}

/// Lints fixture `rel` as if it lived at `as_path`, returning `(line, rule)`
/// pairs.
fn findings(rel: &str, as_path: &str) -> Vec<(usize, &'static str)> {
    lint_file(as_path, &fixture(rel)).into_iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn no_unordered_iteration_positive() {
    assert_eq!(
        findings("no_unordered_iteration/positive.rs", "crates/neo-core/src/fx.rs"),
        vec![
            (1, "no-unordered-iteration"),
            (3, "no-unordered-iteration"),
            (4, "no-unordered-iteration"),
        ]
    );
}

#[test]
fn no_unordered_iteration_negative() {
    assert_eq!(findings("no_unordered_iteration/negative.rs", "crates/neo-core/src/fx.rs"), vec![]);
}

#[test]
fn no_unordered_iteration_only_scopes_sim_state_crates() {
    // The same violating source is fine in a non-sim-state crate or a shim.
    assert_eq!(
        findings("no_unordered_iteration/positive.rs", "crates/neo-workload/src/fx.rs"),
        vec![]
    );
    assert_eq!(findings("no_unordered_iteration/positive.rs", "shims/rayon/src/fx.rs"), vec![]);
}

#[test]
fn no_ambient_time_positive() {
    // Wall-clock reads are flagged even inside `#[cfg(test)]` (line 12): a
    // test depending on ambient time is flaky by construction.
    assert_eq!(
        findings("no_ambient_time/positive.rs", "crates/neo-workload/src/fx.rs"),
        vec![
            (1, "no-ambient-time"),
            (3, "no-ambient-time"),
            (4, "no-ambient-time"),
            (5, "no-ambient-time"),
            (12, "no-ambient-time"),
        ]
    );
}

#[test]
fn no_ambient_time_negative_and_criterion_exemption() {
    assert_eq!(findings("no_ambient_time/negative.rs", "crates/neo-sim/src/fx.rs"), vec![]);
    // The criterion shim is the one place allowed to touch the wall clock.
    assert_eq!(findings("no_ambient_time/positive.rs", "shims/criterion/src/fx.rs"), vec![]);
}

#[test]
fn no_unseeded_rng_positive() {
    assert_eq!(
        findings("no_unseeded_rng/positive.rs", "shims/rayon/src/fx.rs"),
        vec![(2, "no-unseeded-rng"), (3, "no-unseeded-rng"), (11, "no-unseeded-rng"),]
    );
}

#[test]
fn no_unseeded_rng_negative() {
    assert_eq!(findings("no_unseeded_rng/negative.rs", "crates/neo-workload/src/fx.rs"), vec![]);
}

#[test]
fn float_total_order_positive() {
    assert_eq!(
        findings("float_total_order/positive.rs", "crates/neo-model/src/fx.rs"),
        vec![(2, "float-total-order")]
    );
}

#[test]
fn float_total_order_negative_and_shim_exemption() {
    assert_eq!(findings("float_total_order/negative.rs", "crates/neo-model/src/fx.rs"), vec![]);
    // Shims mirror upstream APIs (`PartialOrd` impls) and are exempt.
    assert_eq!(findings("float_total_order/positive.rs", "shims/serde/src/fx.rs"), vec![]);
}

#[test]
fn panic_hygiene_positive() {
    assert_eq!(
        findings("panic_hygiene/positive.rs", "crates/neo-kvcache/src/fx.rs"),
        vec![(2, "panic-hygiene"), (3, "panic-hygiene"), (5, "panic-hygiene")]
    );
}

#[test]
fn panic_hygiene_negative() {
    assert_eq!(findings("panic_hygiene/negative.rs", "crates/neo-kvcache/src/fx.rs"), vec![]);
}

#[test]
fn panic_hygiene_only_scopes_sim_state_crates() {
    assert_eq!(findings("panic_hygiene/positive.rs", "crates/neo-bench/src/fx.rs"), vec![]);
}

#[test]
fn forbid_unsafe_positive() {
    // Line 1: the lib root is missing `#![forbid(unsafe_code)]`; line 2: the
    // `unsafe` keyword itself.
    assert_eq!(
        findings("forbid_unsafe/positive.rs", "crates/neo-kernels/src/lib.rs"),
        vec![(1, "forbid-unsafe-outside-shims"), (2, "forbid-unsafe-outside-shims")]
    );
}

#[test]
fn forbid_unsafe_negative_and_shim_exemption() {
    assert_eq!(findings("forbid_unsafe/negative.rs", "crates/neo-kernels/src/lib.rs"), vec![]);
    // Shims may use `unsafe` (rayon's pool does) and skip the root attribute.
    assert_eq!(findings("forbid_unsafe/positive.rs", "shims/rayon/src/lib.rs"), vec![]);
}

#[test]
fn bad_pragma_positive() {
    assert_eq!(
        findings("bad_pragma/positive.rs", "crates/neo-core/src/fx.rs"),
        vec![(1, "bad-pragma"), (4, "bad-pragma"), (7, "bad-pragma"), (10, "bad-pragma"),]
    );
}

#[test]
fn bad_pragma_negative() {
    assert_eq!(findings("bad_pragma/negative.rs", "crates/neo-core/src/fx.rs"), vec![]);
}

#[test]
fn deny_exits_nonzero_on_violating_workspace() {
    // End-to-end exit-code contract: `fixtures/ws` is a miniature workspace
    // whose `crates/neo-core/src/lib.rs` violates three rules.
    let ws = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_neo-lint"))
        .arg("--deny")
        .arg("--root")
        .arg(&ws)
        .output()
        .expect("spawn neo-lint");
    assert!(!out.status.success(), "deny mode must exit non-zero on findings");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in ["no-ambient-time", "no-unordered-iteration", "forbid-unsafe-outside-shims"] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }

    // `--warn` prints the same findings but keeps the exit code at 0.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_neo-lint"))
        .arg("--warn")
        .arg("--root")
        .arg(&ws)
        .output()
        .expect("spawn neo-lint");
    assert!(out.status.success(), "warn mode must exit 0 despite findings");
}

#[test]
fn real_workspace_is_clean() {
    // The acceptance bar: the linter exits 0 at HEAD. Running the library
    // entry point keeps the failure message (the diagnostics themselves)
    // readable when a violation slips in.
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = neo_lint::find_workspace_root(here).expect("workspace root");
    let (diags, scanned) = neo_lint::lint_workspace(&root).expect("walk workspace");
    assert!(scanned > 50, "workspace walk looks truncated: {scanned} files");
    assert!(
        diags.is_empty(),
        "workspace must lint clean:\n{}",
        diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
