//! Scanner robustness properties.
//!
//! The scanner is the linter's trust root: if it panics or desyncs its views,
//! the CI gate dies (or lies) on exactly the weird file that most needs
//! checking. Two properties pin it down: (1) on arbitrary byte soup — lossy
//! UTF-8, truncated raw strings, unterminated comments, stray quotes — it
//! never panics and its views stay byte- and line-aligned with the input;
//! (2) the same holds on every real source file in the workspace, where the
//! masked view must also be free of comment/string text.

use std::path::Path;

use neo_lint::{lint_file, scan};
use proptest::collection;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn scanner_never_panics_on_byte_soup(bytes in collection::vec(0u8..255u8, 0usize..512)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let s = scan(&text);
        prop_assert_eq!(s.classes.len(), text.len());
        prop_assert_eq!(s.masked.len(), text.len());
        prop_assert_eq!(s.comments.len(), text.len());
        prop_assert_eq!(s.masked.lines().count(), text.lines().count());
        // The full rule engine must survive the soup too (it slices by line).
        let _ = lint_file("crates/neo-core/src/soup.rs", &text);
        let _ = lint_file("shims/criterion/src/soup.rs", &text);
    }
}

#[test]
fn scanner_handles_every_workspace_file() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = neo_lint::find_workspace_root(here).expect("workspace root");
    let files = neo_lint::workspace_sources(&root).expect("walk workspace");
    assert!(files.len() > 50, "workspace walk looks truncated: {} files", files.len());
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel)).expect("read source");
        let s = scan(&src);
        let at = rel.display();
        assert_eq!(s.classes.len(), src.len(), "class/byte desync in {at}");
        assert_eq!(s.masked.len(), src.len(), "masked/byte desync in {at}");
        assert_eq!(s.comments.len(), src.len(), "comment/byte desync in {at}");
        assert_eq!(
            s.masked.lines().count(),
            src.lines().count(),
            "masked view dropped or invented lines in {at}"
        );
    }
}
