use std::time::Instant;

pub fn stamp() -> std::time::SystemTime {
    let _ = Instant::now();
    std::time::SystemTime::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_tests_is_still_flagged() {
        let _ = Instant::now();
    }
}
