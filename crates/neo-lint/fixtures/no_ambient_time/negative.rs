//! Simulation time comes from `SimClock`; `Instant` here is only a doc word.

pub fn now(clock: f64) -> f64 {
    let _ = "Instant::now() in a string is fine";
    /* SystemTime in a block comment is fine too */
    clock
}
