//! Clean dummy shim: shims are exempt from the sim-state rules and from the
//! crate-root `#![forbid(unsafe_code)]` requirement.

pub fn identity(x: u64) -> u64 {
    x
}
