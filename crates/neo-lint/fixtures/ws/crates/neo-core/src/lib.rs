use std::time::Instant;
use std::collections::HashMap;

pub fn wall() -> Instant {
    Instant::now()
}

pub fn map() -> HashMap<u64, u64> {
    HashMap::new()
}
