use rand::SeedableRng;

/// Seeded construction (`seed_from_u64`) is the only sanctioned RNG source;
/// `thread_rng` may appear in docs without tripping the rule.
pub fn roll(seed: u64) -> u64 {
    let _rng = rand::rngs::StdRng::seed_from_u64(seed);
    seed
}
