pub fn roll() -> u64 {
    let _rng = rand::thread_rng();
    let _other = rand::rngs::StdRng::from_entropy();
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn os_entropy_in_tests_is_still_flagged() {
        let _ = rand::thread_rng();
    }
}
