/// `partial_cmp` may appear in docs; `total_cmp` is the sanctioned spelling.
pub fn sort(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
