pub fn read(xs: &[u64]) -> u64 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("two elements");
    if *first == 0 {
        panic!("zero");
    }
    *second
}
