pub fn read(xs: &[u64]) -> Option<u64> {
    // neo-lint: allow(panic-hygiene) -- fixture: slice checked non-empty by the caller
    let first = xs.first().unwrap();
    Some(*first)
}

/// `unwrap()` in docs never fires; `expect_fn()` and `repanic!` have the wrong
/// identifier boundaries.
pub fn near_misses(x: Option<u64>) -> u64 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = [1u64];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
