// neo-lint: allow(no-such-rule) -- the rule name must be in the catalog
pub fn a() {}

// neo-lint: deny(panic-hygiene) -- only allow(...) exists
pub fn b() {}

// neo-lint: allow(panic-hygiene)
pub fn c() {}

// neo-lint: allow(panic-hygiene -- reason outside the parens
pub fn d() {}
