//! Docs may quote the grammar: `// neo-lint: allow(<rule>) -- <reason>`.

/// Same in item docs: `neo-lint: allow(panic-hygiene)` is not a pragma here.
pub fn documented() {}

// A comment that merely mentions neo-lint without the pragma key is fine.
pub fn mentioned() {}
