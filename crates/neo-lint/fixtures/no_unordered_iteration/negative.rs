use std::collections::BTreeMap;

// neo-lint: allow(no-unordered-iteration) -- fixture: keyed lookups only, never iterated
use std::collections::HashMap;

/// Docs may say HashMap; only code counts.
pub fn build() -> BTreeMap<u64, u64> {
    let _ = "HashMap in a string is fine";
    BTreeMap::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_map_is_fine_in_tests() {
        let _ = HashMap::<u64, u64>::new();
    }
}
