//! Fixture crate root: carries the mandatory unsafe ban.

#![forbid(unsafe_code)]

pub fn peek(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}
