//! Workspace determinism-hygiene static analysis (`neo-lint`).
//!
//! Every figure, golden trace, and CI gate in this NEO reproduction rests on
//! one invariant: simulation output is **bit-identical** under fuzzed event
//! tie-break seeds. That invariant is defended dynamically by the
//! `NEO_EVENT_FUZZ_SEED` proptest matrices — but a `HashMap` iteration in a
//! settle path, an ambient `Instant::now()`, or a NaN-swallowing float sort
//! slips past those probabilistically, long after merge. `neo-lint` is the
//! compile-time-style gate: a hand-rolled, comment/string/raw-string-aware
//! token scanner ([`mod@scan`]) plus a rule engine ([`rules`]) that walks every
//! `crates/*/src` and `shims/*/src` file and enforces the hygiene catalog in
//! `docs/LINTS.md`:
//!
//! 1. `no-unordered-iteration` — `HashMap`/`HashSet` banned in the
//!    simulation-state crates; use ordered containers.
//! 2. `no-ambient-time` — `std::time::{Instant, SystemTime}` banned outside
//!    the criterion shim.
//! 3. `no-unseeded-rng` — `thread_rng`/`from_entropy` banned everywhere.
//! 4. `float-total-order` — `.partial_cmp(` banned in first-party crates;
//!    use `f64::total_cmp`.
//! 5. `panic-hygiene` — `unwrap()`/`expect()`/`panic!` banned in non-test
//!    library code of the simulation-state crates.
//! 6. `forbid-unsafe-outside-shims` — every `crates/*` lib root carries
//!    `#![forbid(unsafe_code)]`, and the `unsafe` keyword never appears
//!    outside `shims/`.
//!
//! Violations are suppressible only via an inline
//! `// neo-lint: allow(<rule>) -- <reason>` pragma whose reason is mandatory;
//! a malformed pragma is itself a violation (`bad-pragma`). The `neo-lint`
//! binary exits non-zero on any finding, and the `lint` CI job runs it on
//! every push.
//!
//! The crate deliberately has **no dependencies**: it must build before
//! anything else in the workspace (it gates the rest) and it honours the same
//! no-network shim policy it polices.

#![forbid(unsafe_code)]

pub mod rules;
pub mod scan;

pub use rules::{lint_file, Diagnostic, RULE_NAMES, SIM_STATE_CRATES};
pub use scan::{scan, Class, Scan};

use std::path::{Path, PathBuf};

/// Recursively collects the `.rs` files under `dir`, sorted by path so runs
/// are deterministic on any filesystem.
fn rust_files_under(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Every source file the linter covers: `crates/*/src/**/*.rs` and
/// `shims/*/src/**/*.rs`, as workspace-relative paths in deterministic order.
///
/// # Errors
///
/// Propagates filesystem errors from walking `root`.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut rels = Vec::new();
    for kind in ["crates", "shims"] {
        let base = root.join(kind);
        if !base.is_dir() {
            continue;
        }
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&base)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            for file in rust_files_under(&member.join("src"))? {
                if let Ok(rel) = file.strip_prefix(root) {
                    rels.push(rel.to_path_buf());
                }
            }
        }
    }
    rels.sort();
    Ok(rels)
}

/// Lints the whole workspace rooted at `root`, returning the diagnostics and
/// the number of files scanned.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable tree or file).
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let mut diags = Vec::new();
    let files = workspace_sources(root)?;
    let scanned = files.len();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        // Paths are reported with `/` separators on every platform.
        let rel_str =
            rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/");
        diags.extend(lint_file(&rel_str, &source));
    }
    Ok((diags, scanned))
}

/// Finds the workspace root by walking up from `start` until a directory
/// containing both `crates/` and `Cargo.toml` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() && d.join("shims").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_scoping_ignores_paths_outside_the_workspace_layout() {
        assert!(lint_file("tests/foo.rs", "use std::collections::HashMap;").is_empty());
        assert!(lint_file("crates", "").is_empty());
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/neo-lint");
        assert!(root.join("crates/neo-lint/src/lib.rs").is_file());
    }

    #[test]
    fn workspace_sources_cover_crates_and_shims() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = workspace_sources(&root).expect("walk");
        let as_str: Vec<String> = files.iter().map(|p| p.to_string_lossy().into_owned()).collect();
        assert!(as_str.iter().any(|p| p.ends_with("neo-core/src/engine.rs")));
        assert!(as_str.iter().any(|p| p.contains("shims/rayon/src/")));
        assert!(as_str.iter().any(|p| p.contains("neo-bench/src/bin/")), "nested dirs walked");
        let mut sorted = as_str.clone();
        sorted.sort();
        assert_eq!(as_str, sorted, "deterministic order");
    }
}
