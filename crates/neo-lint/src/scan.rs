//! The lexical scanner: classifies every byte of a Rust source file as code,
//! comment, or string-literal content.
//!
//! The rule engine in [`crate::rules`] is purely line/substring based, so the
//! one piece of real lexing the linter needs is knowing *which bytes are code*:
//! `// a HashMap would be wrong here` must never trip the unordered-iteration
//! rule, and a raw string containing `".unwrap()"` (this crate's own rule
//! tables, say) must never trip panic hygiene. The scanner handles line
//! comments, nested block comments, string literals with escapes, byte
//! strings, raw (and raw byte) strings with arbitrary `#` fences, character
//! literals, and the character-literal/lifetime ambiguity (`'a'` vs `<'a>`).
//!
//! It is intentionally *not* a full lexer: it never fails, never allocates
//! tokens, and treats any malformed tail (an unterminated string, a lone
//! quote) by classifying the remainder conservatively and stopping at
//! end-of-input. The proptests in `tests/scanner_props.rs` pin the safety
//! contract: any input scans without panicking, byte counts are preserved,
//! and newlines survive masking so diagnostics keep their line numbers.

/// Classification of one source byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Executable source text (identifiers, punctuation, whitespace).
    Code,
    /// Line (`//`) or block (`/* */`) comment content, delimiters included.
    Comment,
    /// String, byte-string, raw-string, or character-literal content,
    /// delimiters and prefixes included.
    Str,
}

/// The scan of one source file.
#[derive(Debug, Clone)]
pub struct Scan {
    /// Per-byte classification; `classes.len() == source.len()`.
    pub classes: Vec<Class>,
    /// The source with every non-code byte (except newlines) blanked to a
    /// space. One line per source line, so `masked.lines()` aligns with the
    /// file's physical lines.
    pub masked: String,
    /// The source with every non-comment byte (except newlines) blanked. This
    /// is where pragmas are parsed from.
    pub comments: String,
}

/// Scanner state between bytes.
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* */`.
    BlockComment(u32),
    /// Inside a `"…"` or `b"…"` literal; `true` when the previous byte was an
    /// unconsumed backslash.
    Str {
        escaped: bool,
    },
    /// Inside a raw string with this many `#` fence characters.
    RawStr {
        hashes: u32,
    },
    /// Inside a `'…'` character literal; `true` when the previous byte was an
    /// unconsumed backslash.
    CharLit {
        escaped: bool,
    },
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length of the raw-string prefix (`r`/`br` + `#`* + `"`) starting at `i`,
/// or `None` if the bytes at `i` do not open a raw string.
fn raw_prefix_len(bytes: &[u8], i: usize) -> Option<(usize, u32)> {
    let mut j = i;
    match bytes.get(j) {
        Some(b'r') => j += 1,
        Some(b'b') if bytes.get(j + 1) == Some(&b'r') => j += 2,
        _ => return None,
    }
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some((j + 1 - i, hashes))
}

/// Classifies every byte of `source` and builds the masked code / comment
/// views. Never panics, whatever the input.
pub fn scan(source: &str) -> Scan {
    let bytes = source.as_bytes();
    let mut classes = vec![Class::Code; bytes.len()];
    let mut state = State::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    classes[i] = Class::Comment;
                    state = State::LineComment;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    classes[i] = Class::Comment;
                    classes[i + 1] = Class::Comment;
                    state = State::BlockComment(1);
                    i += 1;
                } else if b == b'"' {
                    classes[i] = Class::Str;
                    state = State::Str { escaped: false };
                } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                    classes[i] = Class::Str;
                    // The quote is handled on the next step.
                } else if (b == b'r' || b == b'b')
                    && (i == 0 || !is_ident_byte(bytes[i - 1]))
                    && raw_prefix_len(bytes, i).is_some()
                {
                    let (len, hashes) = raw_prefix_len(bytes, i).unwrap_or((1, 0));
                    for c in classes.iter_mut().skip(i).take(len) {
                        *c = Class::Str;
                    }
                    i += len - 1;
                    state = State::RawStr { hashes };
                } else if b == b'\'' {
                    // Disambiguate character literal from lifetime/label: a
                    // quote opens a literal when it is escaped (`'\n'`) or when
                    // a closing quote follows one character (`'a'`, including
                    // multi-byte chars). Otherwise (`'static`, `'a>`): code.
                    let next = bytes.get(i + 1).copied();
                    let is_char = match next {
                        Some(b'\\') => true,
                        Some(n) if n != b'\'' => {
                            // Skip one UTF-8 character, then require a quote.
                            let step = utf8_len(n);
                            bytes.get(i + 1 + step) == Some(&b'\'')
                        }
                        _ => false,
                    };
                    if is_char {
                        classes[i] = Class::Str;
                        state = State::CharLit { escaped: false };
                    }
                }
            }
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                } else {
                    classes[i] = Class::Comment;
                }
            }
            State::BlockComment(depth) => {
                classes[i] = Class::Comment;
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    classes[i + 1] = Class::Comment;
                    i += 1;
                    state = State::BlockComment(depth + 1);
                } else if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    classes[i + 1] = Class::Comment;
                    i += 1;
                    state = if depth > 1 { State::BlockComment(depth - 1) } else { State::Code };
                }
            }
            State::Str { escaped } => {
                classes[i] = Class::Str;
                if escaped {
                    state = State::Str { escaped: false };
                } else if b == b'\\' {
                    state = State::Str { escaped: true };
                } else if b == b'"' {
                    state = State::Code;
                }
            }
            State::RawStr { hashes } => {
                classes[i] = Class::Str;
                if b == b'"' {
                    let h = hashes as usize;
                    let closes = (0..h).all(|k| bytes.get(i + 1 + k) == Some(&b'#'));
                    if closes {
                        for c in classes.iter_mut().skip(i + 1).take(h) {
                            *c = Class::Str;
                        }
                        i += h;
                        state = State::Code;
                    }
                }
            }
            State::CharLit { escaped } => {
                classes[i] = Class::Str;
                if escaped {
                    state = State::CharLit { escaped: false };
                } else if b == b'\\' {
                    state = State::CharLit { escaped: true };
                } else if b == b'\'' {
                    state = State::Code;
                }
            }
        }
        i += 1;
    }

    let mask = |keep: Class| -> String {
        let mut out = Vec::with_capacity(bytes.len());
        for (j, &b) in bytes.iter().enumerate() {
            if b == b'\n' || b == b'\r' || classes[j] == keep {
                out.push(b);
            } else {
                out.push(b' ');
            }
        }
        // Masking replaces whole multi-byte characters (class changes only at
        // ASCII delimiters), so the buffer stays valid UTF-8; lossy conversion
        // is a belt-and-braces guarantee, not an expected path.
        String::from_utf8_lossy(&out).into_owned()
    };
    let masked = mask(Class::Code);
    let comments = mask(Class::Comment);
    Scan { classes, masked, comments }
}

/// Byte length of the UTF-8 character starting with `first` (1 for malformed
/// leading bytes — the scanner only needs a non-zero step, never correctness
/// on invalid UTF-8, which `&str` rules out anyway).
fn utf8_len(first: u8) -> usize {
    match first {
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        b if b >= 0xC0 => 2,
        _ => 1,
    }
}

/// Whether the identifier `ident` occurs in `line` as a whole word (not as a
/// substring of a longer identifier). `line` must already be masked code.
pub fn has_ident(line: &str, ident: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(ident) {
        let start = from + pos;
        let end = start + ident.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> String {
        scan(src).masked
    }

    #[test]
    fn line_comments_are_masked() {
        let src = "let x = 1; // HashMap here\nlet y;";
        let m = masked(src);
        assert_eq!(m.len(), src.len());
        assert!(!m.contains("HashMap"));
        assert!(m.starts_with("let x = 1; "));
        assert!(m.ends_with("\nlet y;"));
    }

    #[test]
    fn nested_block_comments_are_masked() {
        let src = "a /* one /* two */ still */ b";
        assert_eq!(masked(src), "a                           b");
    }

    #[test]
    fn strings_and_escapes_are_masked() {
        assert_eq!(masked(r#"f("un\"wrap() // x", y)"#), r"f(                 , y)");
    }

    #[test]
    fn raw_strings_with_fences_are_masked() {
        let src = "let s = r#\"a \" inside .unwrap()\"# + r\"plain\";";
        let m = masked(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("plain"));
        assert!(m.starts_with("let s = "));
        assert!(m.trim_end().ends_with(';'), "code after the raw strings stays code: {m}");
        assert_eq!(m.len(), src.len(), "masking must preserve byte counts");
    }

    #[test]
    fn byte_and_raw_byte_strings_are_masked() {
        let m = masked("let a = b\"panic!\"; let c = br#\"expect(\"#;");
        assert!(!m.contains("panic"));
        assert!(!m.contains("expect"));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let src = "fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; }";
        let m = masked(src);
        assert!(m.contains("<'a>"), "lifetimes stay code: {m}");
        assert!(m.contains("&'a str"));
        assert!(!m.contains('"'), "quote char literal must not open a string: {m}");
    }

    #[test]
    fn identifier_trailing_r_does_not_open_raw_string() {
        let m = masked("mgr(\"text HashMap\")");
        assert!(!m.contains("HashMap"));
        assert!(m.contains("mgr("));
    }

    #[test]
    fn unterminated_string_masks_to_eof_without_panicking() {
        let m = masked("let s = \"never closed .unwrap()");
        assert!(!m.contains("unwrap"));
    }

    #[test]
    fn comments_view_keeps_only_comments() {
        let s = scan("code(); // neo-lint: allow(x) -- y\n\"str\"");
        assert!(s.comments.contains("neo-lint: allow(x) -- y"));
        assert!(!s.comments.contains("code"));
        assert!(!s.comments.contains("str"));
    }

    #[test]
    fn has_ident_respects_word_boundaries() {
        assert!(has_ident("use std::collections::HashMap;", "HashMap"));
        assert!(!has_ident("type MyHashMapLike = ();", "HashMap"));
        assert!(has_ident("panic!(\"x\")", "panic"));
        assert!(!has_ident("should_panic", "panic"));
    }
}
