//! The determinism-hygiene rule catalog and the per-file rule engine.
//!
//! Rules operate on the scanner's masked-code view ([`crate::scan::Scan`]):
//! comments and string literals can never trip them, and pragmas live in the
//! comment view. Every rule is lexical by design — the point is a fast,
//! dependency-free gate that catches the hygiene regressions which otherwise
//! only fail probabilistically under the fuzzed-seed matrices (see
//! `docs/LINTS.md` for the catalog rationale and the pragma grammar).

use crate::scan::{has_ident, scan};

/// Crates whose state feeds simulation output: any unordered iteration or
/// stray panic there can change (or abort) a golden trace.
pub const SIM_STATE_CRATES: &[&str] =
    &["neo-sim", "neo-core", "neo-serve", "neo-cluster", "neo-kvcache"];

/// All rule names, in catalog order (`docs/LINTS.md` mirrors this list).
pub const RULE_NAMES: &[&str] = &[
    "no-unordered-iteration",
    "no-ambient-time",
    "no-unseeded-rng",
    "float-total-order",
    "panic-hygiene",
    "forbid-unsafe-outside-shims",
    "bad-pragma",
];

/// One `file:line:rule` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Where a file lives in the workspace, as far as rule scoping cares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileOrigin {
    /// Crate (or shim) name, e.g. `neo-core` or `rayon`.
    pub crate_name: String,
    /// `true` for `shims/*`, `false` for `crates/*`.
    pub is_shim: bool,
    /// `true` when this is the crate's `src/lib.rs` root.
    pub is_lib_root: bool,
}

impl FileOrigin {
    /// Derives the origin from a workspace-relative path like
    /// `crates/neo-core/src/engine.rs`. Returns `None` for paths outside
    /// `crates/*`/`shims/*` (the walker never produces those).
    pub fn from_path(rel_path: &str) -> Option<Self> {
        let mut parts = rel_path.split('/');
        let kind = parts.next()?;
        let is_shim = match kind {
            "crates" => false,
            "shims" => true,
            _ => return None,
        };
        let crate_name = parts.next()?.to_string();
        let rest: Vec<&str> = parts.collect();
        let is_lib_root = rest == ["src", "lib.rs"];
        Some(Self { crate_name, is_shim, is_lib_root })
    }
}

/// A parsed `neo-lint: allow(<rule>) -- <reason>` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pragma {
    /// Line the pragma suppresses (its own line when it shares it with code,
    /// the next line when it stands alone).
    target_line: usize,
    rule: String,
}

/// Scans the comment view for pragmas. Malformed pragmas (unknown rule, no
/// reason) become `bad-pragma` diagnostics instead of silently suppressing.
fn collect_pragmas(
    file: &str,
    comment_lines: &[&str],
    code_lines: &[&str],
) -> (Vec<Pragma>, Vec<Diagnostic>) {
    let mut pragmas = Vec::new();
    let mut diags = Vec::new();
    for (idx, comment) in comment_lines.iter().enumerate() {
        let Some(pos) = comment.find("neo-lint:") else { continue };
        // Doc comments are documentation (they may quote the pragma grammar
        // itself); only plain `//` / `/* */` comments carry pragmas.
        let lead = comment.trim_start();
        if ["///", "//!", "/**", "/*!"].iter().any(|d| lead.starts_with(d)) {
            continue;
        }
        let line = idx + 1;
        let body = comment[pos + "neo-lint:".len()..].trim_start();
        let bad = |msg: &str| Diagnostic {
            file: file.to_string(),
            line,
            rule: "bad-pragma",
            message: msg.to_string(),
        };
        let Some(rest) = body.strip_prefix("allow(") else {
            diags.push(bad("pragma must be `neo-lint: allow(<rule>) -- <reason>`"));
            continue;
        };
        let Some(close) = rest.find(')') else {
            diags.push(bad("unclosed `allow(` in pragma"));
            continue;
        };
        let rule = rest[..close].trim();
        if !RULE_NAMES.contains(&rule) {
            diags.push(bad(&format!("unknown rule `{rule}` in pragma")));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            diags.push(bad(&format!("pragma for `{rule}` is missing its mandatory `-- <reason>`")));
            continue;
        }
        let has_code = code_lines.get(idx).is_some_and(|c| !c.trim().is_empty());
        let target_line = if has_code { line } else { line + 1 };
        pragmas.push(Pragma { target_line, rule: rule.to_string() });
    }
    (pragmas, diags)
}

/// Marks the lines belonging to `#[cfg(test)]` items (the attribute line
/// through the item's closing brace), using brace depth on masked code.
fn test_line_mask(code_lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; code_lines.len()];
    let mut i = 0usize;
    while i < code_lines.len() {
        if !code_lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Walk forward to the item's opening brace, then to its close.
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = i;
        while j < code_lines.len() {
            mask[j] = true;
            for b in code_lines[j].bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// Whether `name!` occurs in `line` as a macro invocation (left identifier
/// boundary, immediately followed by `!`).
fn has_macro(line: &str, name: &str) -> bool {
    let with_bang = format!("{name}!");
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(&with_bang) {
        let start = from + pos;
        let left_ok =
            start == 0 || !bytes[start - 1].is_ascii_alphanumeric() && bytes[start - 1] != b'_';
        if left_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Per-line lexical check of one rule.
fn line_violation(rule: &'static str, line: &str) -> Option<String> {
    match rule {
        "no-unordered-iteration" => {
            let unordered = ["HashMap", "HashSet"].iter().find(|ident| has_ident(line, ident))?;
            Some(format!(
                "`{unordered}` in a simulation-state crate: iteration order feeds traces; \
                 use `BTreeMap`/`BTreeSet` (or justify a keyed-lookup-only map with a pragma)"
            ))
        }
        "no-ambient-time" => {
            let ident = ["Instant", "SystemTime"].iter().find(|ident| has_ident(line, ident))?;
            Some(format!(
                "ambient `{ident}`: simulation time comes from `SimClock`/the event engine, \
                 wall-clock reads are only allowed in the criterion shim"
            ))
        }
        "no-unseeded-rng" => {
            let ident =
                ["thread_rng", "from_entropy"].iter().find(|ident| has_ident(line, ident))?;
            Some(format!(
                "`{ident}` draws OS entropy: every RNG in this workspace must be \
                 constructed from an explicit seed"
            ))
        }
        "float-total-order" => line.contains(".partial_cmp(").then(|| {
            "float comparison via `partial_cmp`: use `f64::total_cmp` so NaN can never \
             produce an unordered (and thus order-dependent) result"
                .to_string()
        }),
        "panic-hygiene" => {
            let shown = if line.contains(".unwrap()") {
                "unwrap()"
            } else if line.contains(".expect(") {
                "expect(..)"
            } else if has_macro(line, "panic") {
                "panic!"
            } else {
                return None;
            };
            Some(format!(
                "`{shown}` in non-test library code of a simulation-state crate: return the \
                 crate's typed error instead, or justify the invariant with a pragma"
            ))
        }
        "forbid-unsafe-outside-shims" => has_ident(line, "unsafe").then(|| {
            "`unsafe` outside `shims/`: the simulation crates are forbidden from unsafe \
             code (see the crate-root `#![forbid(unsafe_code)]`)"
                .to_string()
        }),
        _ => None,
    }
}

/// Whether a rule applies to this file at all, and whether `#[cfg(test)]`
/// regions are exempt from it.
fn rule_scope(rule: &'static str, origin: &FileOrigin) -> Option<bool> {
    let sim_state = !origin.is_shim && SIM_STATE_CRATES.contains(&origin.crate_name.as_str());
    match rule {
        // Tests may build whatever maps they like; simulation code may not.
        "no-unordered-iteration" => sim_state.then_some(true),
        // Wall-clock time and OS entropy are banned even in tests: a test that
        // depends on either is flaky by construction.
        "no-ambient-time" => {
            (!(origin.is_shim && origin.crate_name == "criterion")).then_some(false)
        }
        "no-unseeded-rng" => Some(false),
        "float-total-order" => (!origin.is_shim).then_some(false),
        "panic-hygiene" => sim_state.then_some(true),
        "forbid-unsafe-outside-shims" => (!origin.is_shim).then_some(false),
        _ => None,
    }
}

/// Lints one file's source, returning every diagnostic (already pragma
/// filtered; suppressions with bad pragmas still fire).
pub fn lint_file(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let Some(origin) = FileOrigin::from_path(rel_path) else { return Vec::new() };
    let scanned = scan(source);
    let code_lines: Vec<&str> = scanned.masked.lines().collect();
    let comment_lines: Vec<&str> = scanned.comments.lines().collect();
    let (pragmas, mut diags) = collect_pragmas(rel_path, &comment_lines, &code_lines);
    let tests = test_line_mask(&code_lines);

    let suppressed =
        |line: usize, rule: &str| pragmas.iter().any(|p| p.target_line == line && p.rule == rule);

    for &rule in RULE_NAMES {
        let Some(tests_exempt) = rule_scope(rule, &origin) else { continue };
        for (idx, code) in code_lines.iter().enumerate() {
            let line = idx + 1;
            if tests_exempt && tests.get(idx).copied().unwrap_or(false) {
                continue;
            }
            let Some(message) = line_violation(rule, code) else { continue };
            if suppressed(line, rule) {
                continue;
            }
            diags.push(Diagnostic { file: rel_path.to_string(), line, rule, message });
        }
    }

    // Crate roots of first-party crates must pin the unsafe ban.
    if origin.is_lib_root
        && !origin.is_shim
        && !code_lines.iter().any(|l| l.contains("#![forbid(unsafe_code)]"))
    {
        diags.push(Diagnostic {
            file: rel_path.to_string(),
            line: 1,
            rule: "forbid-unsafe-outside-shims",
            message: "crate root must open with `#![forbid(unsafe_code)]`".to_string(),
        });
    }

    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}
