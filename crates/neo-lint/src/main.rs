//! CLI entry point for the `neo-lint` determinism-hygiene gate.
//!
//! Usage: `cargo run -p neo-lint [-- --deny|--warn|--list-rules|--root <dir>]`.
//! With no flags (or `--deny`, the CI spelling) the process exits non-zero when
//! any diagnostic fires; `--warn` prints findings but always exits 0.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "neo-lint: workspace determinism-hygiene static analysis\n\
     \n\
     USAGE: neo-lint [--deny] [--warn] [--list-rules] [--root <dir>]\n\
     \n\
     --deny        exit non-zero on any finding (default)\n\
     --warn        print findings but exit 0\n\
     --list-rules  print the rule names and exit\n\
     --root <dir>  workspace root (default: discovered from the cwd)"
}

fn main() -> ExitCode {
    let mut deny = true;
    let mut root: Option<PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--warn" => deny = false,
            "--list-rules" => {
                for rule in neo_lint::RULE_NAMES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match argv.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root requires a directory argument\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match neo_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "error: no workspace root (a dir with Cargo.toml, crates/, shims/) \
                         above {}; pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match neo_lint::lint_workspace(&root) {
        Ok((diags, scanned)) => {
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                eprintln!("neo-lint: {scanned} files clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("neo-lint: {} finding(s) across {scanned} files", diags.len());
                if deny {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}
