//! Rotary position embeddings (RoPE).
//!
//! LLaMa-family models rotate pairs of query/key dimensions by a position-dependent angle
//! before attention. The functional model applies RoPE to Q and K right after the QKV
//! projection and *before* the K vector is written into the paged cache, so the attention
//! kernels themselves never need to know token positions.

/// Precomputed inverse frequencies for a head dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct RopeTable {
    head_dim: usize,
    inv_freq: Vec<f32>,
}

impl RopeTable {
    /// Builds the standard RoPE frequency table with base `theta` (LLaMa uses 10000, the
    /// 3.1 series uses 500000; the numerics are identical for our purposes).
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is zero or odd.
    pub fn new(head_dim: usize, theta: f32) -> Self {
        assert!(head_dim > 0 && head_dim % 2 == 0, "head_dim must be a positive even number");
        let half = head_dim / 2;
        let inv_freq =
            (0..half).map(|i| 1.0 / theta.powf(2.0 * i as f32 / head_dim as f32)).collect();
        Self { head_dim, inv_freq }
    }

    /// Head dimension this table was built for.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Applies the rotation for `position` in place to one head vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != head_dim`.
    pub fn apply(&self, x: &mut [f32], position: usize) {
        assert_eq!(x.len(), self.head_dim, "vector length must equal head_dim");
        let half = self.head_dim / 2;
        for i in 0..half {
            let angle = position as f32 * self.inv_freq[i];
            let (sin, cos) = angle.sin_cos();
            let (a, b) = (x[i], x[i + half]);
            x[i] = a * cos - b * sin;
            x[i + half] = a * sin + b * cos;
        }
    }

    /// Applies the rotation to every head in a `[n_heads * head_dim]` row.
    ///
    /// # Panics
    ///
    /// Panics if the row length is not a multiple of `head_dim`.
    pub fn apply_row(&self, row: &mut [f32], position: usize) {
        assert!(row.len() % self.head_dim == 0, "row must contain whole heads");
        for head in row.chunks_mut(self.head_dim) {
            self.apply(head, position);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_preserves_norm() {
        let table = RopeTable::new(8, 10000.0);
        let original: Vec<f32> = (0..8).map(|i| i as f32 * 0.3 - 1.0).collect();
        for pos in [0usize, 1, 17, 500] {
            let mut x = original.clone();
            table.apply(&mut x, pos);
            let n0: f32 = original.iter().map(|v| v * v).sum::<f32>().sqrt();
            let n1: f32 = x.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n0 - n1).abs() < 1e-4, "norm changed at pos {pos}");
        }
    }

    #[test]
    fn position_zero_is_identity() {
        let table = RopeTable::new(4, 10000.0);
        let mut x = vec![1.0f32, 2.0, 3.0, 4.0];
        table.apply(&mut x, 0);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn relative_position_property() {
        // The inner product of rotated q (at pos m) and rotated k (at pos n) depends only
        // on m - n. Check two pairs with the same offset.
        let table = RopeTable::new(16, 10000.0);
        let q: Vec<f32> = (0..16).map(|i| (i as f32 * 0.17).sin()).collect();
        let k: Vec<f32> = (0..16).map(|i| (i as f32 * 0.31).cos()).collect();
        let dot = |a: &[f32], b: &[f32]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>();

        let rotated_dot = |qpos: usize, kpos: usize| {
            let mut qr = q.clone();
            let mut kr = k.clone();
            table.apply(&mut qr, qpos);
            table.apply(&mut kr, kpos);
            dot(&qr, &kr)
        };
        assert!((rotated_dot(10, 3) - rotated_dot(27, 20)).abs() < 1e-3);
        assert!((rotated_dot(5, 5) - rotated_dot(100, 100)).abs() < 1e-3);
    }

    #[test]
    fn apply_row_rotates_each_head_independently() {
        let table = RopeTable::new(4, 10000.0);
        let mut row = vec![1.0f32, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        let mut single = vec![1.0f32, 0.0, 0.0, 0.0];
        table.apply_row(&mut row, 7);
        table.apply(&mut single, 7);
        assert_eq!(&row[0..4], &single[..]);
        assert_eq!(&row[4..8], &single[..]);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_head_dim_panics() {
        let _ = RopeTable::new(7, 10000.0);
    }

    #[test]
    #[should_panic(expected = "head_dim")]
    fn wrong_vector_length_panics() {
        let table = RopeTable::new(8, 10000.0);
        let mut x = vec![0.0f32; 4];
        table.apply(&mut x, 1);
    }
}
