//! Numerically stable softmax and online-softmax merging.
//!
//! The partitioned decode kernel computes attention over disjoint chunks of the context in
//! parallel. Each chunk produces a partial result described by the running maximum `m`,
//! the running denominator `l = Σ exp(score - m)` and the un-normalised weighted value
//! accumulator; [`OnlineSoftmax::merge`] combines two such partials into one, which is the
//! same rescaling trick FlashAttention / Flash-Decoding use.

/// In-place numerically stable softmax over `scores`.
///
/// Empty input is a no-op. All-`-inf` rows produce a uniform distribution of zeros
/// (callers mask fully-masked rows themselves).
pub fn softmax_inplace(scores: &mut [f32]) {
    if scores.is_empty() {
        return;
    }
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        scores.iter_mut().for_each(|s| *s = 0.0);
        return;
    }
    let mut sum = 0.0f32;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    if sum > 0.0 {
        scores.iter_mut().for_each(|s| *s /= sum);
    }
}

/// Running (max, denominator, weighted-value) accumulator for one attention head.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineSoftmax {
    /// Running maximum of the attention scores seen so far.
    pub max: f32,
    /// Running denominator `Σ exp(score - max)`.
    pub denom: f32,
    /// Un-normalised accumulated output `Σ exp(score - max) * v`, one entry per value dim.
    pub acc: Vec<f32>,
}

impl OnlineSoftmax {
    /// Creates an empty accumulator for a `head_dim`-dimensional value.
    pub fn new(head_dim: usize) -> Self {
        Self { max: f32::NEG_INFINITY, denom: 0.0, acc: vec![0.0; head_dim] }
    }

    /// Folds one `(score, value)` pair into the accumulator.
    pub fn push(&mut self, score: f32, value: &[f32]) {
        debug_assert_eq!(value.len(), self.acc.len());
        if score == f32::NEG_INFINITY {
            return;
        }
        if score <= self.max {
            let w = (score - self.max).exp();
            self.denom += w;
            for (a, &v) in self.acc.iter_mut().zip(value) {
                *a += w * v;
            }
        } else {
            // New maximum: rescale the existing accumulator.
            let scale = if self.max == f32::NEG_INFINITY { 0.0 } else { (self.max - score).exp() };
            self.denom = self.denom * scale + 1.0;
            for (a, &v) in self.acc.iter_mut().zip(value) {
                *a = *a * scale + v;
            }
            self.max = score;
        }
    }

    /// Merges another accumulator (over a disjoint chunk of keys) into this one.
    pub fn merge(&mut self, other: &OnlineSoftmax) {
        debug_assert_eq!(other.acc.len(), self.acc.len());
        if other.denom == 0.0 {
            return;
        }
        if self.denom == 0.0 {
            self.max = other.max;
            self.denom = other.denom;
            self.acc.copy_from_slice(&other.acc);
            return;
        }
        let new_max = self.max.max(other.max);
        let self_scale = (self.max - new_max).exp();
        let other_scale = (other.max - new_max).exp();
        self.denom = self.denom * self_scale + other.denom * other_scale;
        for (a, &o) in self.acc.iter_mut().zip(&other.acc) {
            *a = *a * self_scale + o * other_scale;
        }
        self.max = new_max;
    }

    /// Finalises the accumulator into the normalised attention output.
    pub fn finish(&self, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.acc.len());
        if self.denom == 0.0 {
            out.iter_mut().for_each(|o| *o = 0.0);
            return;
        }
        for (o, &a) in out.iter_mut().zip(&self.acc) {
            *o = a / self.denom;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut s = vec![1.0f32, 2.0, 3.0, 4.0];
        softmax_inplace(&mut s);
        let sum: f32 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = vec![1.0f32, 2.0, 3.0];
        let mut b = vec![1001.0f32, 1002.0, 1003.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extremes_without_nan() {
        let mut s = vec![-1e30f32, 0.0, 1e3];
        softmax_inplace(&mut s);
        assert!(s.iter().all(|x| x.is_finite()));
        let mut empty: Vec<f32> = vec![];
        softmax_inplace(&mut empty);
        let mut all_masked = vec![f32::NEG_INFINITY; 3];
        softmax_inplace(&mut all_masked);
        assert!(all_masked.iter().all(|&x| x == 0.0));
    }

    fn naive_attention(scores: &[f32], values: &[Vec<f32>]) -> Vec<f32> {
        let mut s = scores.to_vec();
        softmax_inplace(&mut s);
        let dim = values[0].len();
        let mut out = vec![0.0f32; dim];
        for (w, v) in s.iter().zip(values) {
            for (o, &x) in out.iter_mut().zip(v) {
                *o += w * x;
            }
        }
        out
    }

    #[test]
    fn online_softmax_matches_naive() {
        let scores = [0.3f32, -1.2, 2.5, 0.0, 1.1];
        let values: Vec<Vec<f32>> =
            (0..5).map(|i| (0..4).map(|j| (i * 4 + j) as f32 * 0.1).collect()).collect();
        let mut acc = OnlineSoftmax::new(4);
        for (s, v) in scores.iter().zip(&values) {
            acc.push(*s, v);
        }
        let mut out = vec![0.0; 4];
        acc.finish(&mut out);
        let expected = naive_attention(&scores, &values);
        for (a, b) in out.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn merged_partitions_match_single_pass() {
        let scores: Vec<f32> = (0..10).map(|i| (i as f32 * 0.7).sin() * 3.0).collect();
        let values: Vec<Vec<f32>> =
            (0..10).map(|i| (0..3).map(|j| ((i + j) as f32).cos()).collect()).collect();

        let mut whole = OnlineSoftmax::new(3);
        for (s, v) in scores.iter().zip(&values) {
            whole.push(*s, v);
        }
        let mut a = OnlineSoftmax::new(3);
        let mut b = OnlineSoftmax::new(3);
        for (s, v) in scores.iter().zip(&values).take(4) {
            a.push(*s, v);
        }
        for (s, v) in scores.iter().zip(&values).skip(4) {
            b.push(*s, v);
        }
        a.merge(&b);
        let (mut o1, mut o2) = (vec![0.0; 3], vec![0.0; 3]);
        whole.finish(&mut o1);
        a.finish(&mut o2);
        for (x, y) in o1.iter().zip(&o2) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn empty_accumulator_finishes_to_zero() {
        let acc = OnlineSoftmax::new(2);
        let mut out = vec![1.0f32; 2];
        acc.finish(&mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineSoftmax::new(2);
        a.push(1.0, &[2.0, 3.0]);
        let before = a.clone();
        a.merge(&OnlineSoftmax::new(2));
        assert_eq!(a, before);

        let mut empty = OnlineSoftmax::new(2);
        empty.merge(&before);
        let (mut o1, mut o2) = (vec![0.0; 2], vec![0.0; 2]);
        empty.finish(&mut o1);
        before.finish(&mut o2);
        assert_eq!(o1, o2);
    }

    proptest! {
        /// Splitting the key sequence at any point and merging gives the same result as a
        /// single pass, up to floating-point tolerance.
        #[test]
        fn prop_merge_associativity(
            scores in proptest::collection::vec(-5.0f32..5.0, 2..40),
            split in 1usize..39,
        ) {
            let n = scores.len();
            let split = split.min(n - 1);
            let values: Vec<Vec<f32>> =
                (0..n).map(|i| vec![(i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()]).collect();

            let mut whole = OnlineSoftmax::new(2);
            for (s, v) in scores.iter().zip(&values) { whole.push(*s, v); }

            let mut left = OnlineSoftmax::new(2);
            let mut right = OnlineSoftmax::new(2);
            for i in 0..split { left.push(scores[i], &values[i]); }
            for i in split..n { right.push(scores[i], &values[i]); }
            left.merge(&right);

            let (mut o1, mut o2) = (vec![0.0; 2], vec![0.0; 2]);
            whole.finish(&mut o1);
            left.finish(&mut o2);
            for (a, b) in o1.iter().zip(&o2) {
                prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
            }
        }
    }
}
