//! Causal prefill attention over the paged cache.
//!
//! During prefill (and chunked prefill), a contiguous run of `n_new` new tokens of one
//! request attends causally over the request's full context so far (earlier cached tokens
//! plus the new ones, whose K/V entries have already been written into the paged cache by
//! the model). In NEO this always runs on the GPU sub-batch; in the functional model it is
//! the kernel that produces the prefill attention output.
//!
//! Parallelism is per (query row × KV-head group): the output is cut into
//! `n_new * n_kv_heads` independent chunks, each covering the query heads that share one
//! KV head, and the chunks are distributed across the rayon pool. Splitting by KV group
//! rather than whole rows keeps K/V rows read once per chunk *and* exposes enough units
//! to fill the pool even for short chunked-prefill runs (a one-token chunk still fans out
//! across `n_kv_heads` workers). Chunk results do not depend on how the pool schedules
//! them — each output chunk is written by exactly one task.

use neo_kvcache::{BlockTable, PagedStorage};
use rayon::prelude::*;

use crate::softmax::OnlineSoftmax;
use crate::AttentionConfig;

/// Causal prefill attention for one sequence.
///
/// * `q` — `[n_new, n_heads, head_dim]` queries of the new tokens (RoPE already applied).
/// * `storage` / `table` — the paged cache holding all `ctx_len` tokens of the sequence,
///   including the `n_new` new ones (written before calling this kernel).
/// * `ctx_len` — total tokens of the sequence after this chunk (cached + new).
/// * `out` — `[n_new, n_heads, head_dim]`.
///
/// New token `i` (global position `ctx_len - n_new + i`) attends to positions
/// `0..=ctx_len - n_new + i`.
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent, `n_new > ctx_len`, or the block table holds
/// fewer than `ctx_len` tokens.
pub fn paged_prefill_attention(
    q: &[f32],
    storage: &PagedStorage,
    table: &BlockTable,
    ctx_len: usize,
    n_new: usize,
    cfg: &AttentionConfig,
    out: &mut [f32],
) {
    assert!(n_new <= ctx_len, "new tokens ({n_new}) exceed total context ({ctx_len})");
    assert_eq!(q.len(), n_new * cfg.q_stride(), "query buffer has wrong length");
    assert_eq!(out.len(), n_new * cfg.q_stride(), "output buffer has wrong length");
    assert!(
        table.num_tokens() >= ctx_len,
        "block table holds {} tokens but context is {ctx_len}",
        table.num_tokens()
    );

    let hd = cfg.head_dim;
    let group = cfg.group_size();
    let first_pos = ctx_len - n_new;

    // Parallelise over (query row × KV-head group): each output chunk covers the `group`
    // query heads sharing one KV head of one row, and depends only on that row's causal
    // prefix — chunks are fully independent.
    out.par_chunks_mut(group * hd).enumerate().for_each(|(c, out_chunk)| {
        let (qi, kv_h) = (c / cfg.n_kv_heads, c % cfg.n_kv_heads);
        let visible = first_pos + qi + 1;
        let q_row = &q[qi * cfg.q_stride()..(qi + 1) * cfg.q_stride()];
        let mut accs: Vec<OnlineSoftmax> = (0..group).map(|_| OnlineSoftmax::new(hd)).collect();
        for tok in 0..visible {
            let (block, slot) = table.locate(tok).expect("context within block table");
            let k_row = storage.read_k(block, slot).expect("block table points into storage");
            let v_row = storage.read_v(block, slot).expect("block table points into storage");
            let k_vec = &k_row[kv_h * hd..(kv_h + 1) * hd];
            let v_vec = &v_row[kv_h * hd..(kv_h + 1) * hd];
            for (g, acc) in accs.iter_mut().enumerate() {
                let h = kv_h * group + g;
                let q_vec = &q_row[h * hd..(h + 1) * hd];
                let score: f32 =
                    q_vec.iter().zip(k_vec).map(|(a, b)| a * b).sum::<f32>() * cfg.scale;
                acc.push(score, v_vec);
            }
        }
        for (g, acc) in accs.iter().enumerate() {
            acc.finish(&mut out_chunk[g * hd..(g + 1) * hd]);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dense_attention;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    struct Fixture {
        storage: PagedStorage,
        table: BlockTable,
        dense_k: Vec<f32>,
        dense_v: Vec<f32>,
    }

    fn build_fixture(ctx_len: usize, cfg: &AttentionConfig, seed: u64) -> Fixture {
        let block_size = 4;
        let blocks = ctx_len.div_ceil(block_size).max(1);
        let mut storage = PagedStorage::new(blocks, block_size, cfg.n_kv_heads, cfg.head_dim);
        let mut table = BlockTable::new(block_size);
        table
            .append(
                ctx_len,
                (0..blocks).collect::<Vec<_>>()[..ctx_len.div_ceil(block_size)].to_vec(),
            )
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dense_k = Vec::new();
        let mut dense_v = Vec::new();
        for i in 0..ctx_len {
            let k: Vec<f32> = (0..cfg.kv_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let v: Vec<f32> = (0..cfg.kv_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let (b, s) = table.locate(i).unwrap();
            storage.write_token(b, s, &k, &v).unwrap();
            dense_k.extend_from_slice(&k);
            dense_v.extend_from_slice(&v);
        }
        Fixture { storage, table, dense_k, dense_v }
    }

    fn check(ctx_len: usize, n_new: usize, cfg: &AttentionConfig, seed: u64) {
        let fx = build_fixture(ctx_len, cfg, seed);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let q: Vec<f32> = (0..n_new * cfg.q_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut out = vec![0.0f32; n_new * cfg.q_stride()];
        paged_prefill_attention(&q, &fx.storage, &fx.table, ctx_len, n_new, cfg, &mut out);

        let mut expected = vec![0.0f32; n_new * cfg.q_stride()];
        dense_attention(
            &q,
            &fx.dense_k,
            &fx.dense_v,
            n_new,
            ctx_len,
            cfg,
            Some(ctx_len - n_new),
            &mut expected,
        );
        for (a, b) in out.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn full_prefill_matches_reference() {
        check(24, 24, &AttentionConfig::new(4, 2, 8), 10);
    }

    #[test]
    fn chunked_prefill_with_prior_context_matches_reference() {
        // 40 cached tokens, last 16 are the new chunk.
        check(40, 16, &AttentionConfig::new(4, 4, 8), 11);
    }

    #[test]
    fn single_new_token_equals_decode_semantics() {
        check(31, 1, &AttentionConfig::new(8, 2, 16), 12);
    }

    #[test]
    fn longer_context_than_block_multiple() {
        check(37, 37, &AttentionConfig::new(2, 1, 4), 13);
    }

    #[test]
    #[should_panic(expected = "exceed total context")]
    fn too_many_new_tokens_panics() {
        let cfg = AttentionConfig::new(2, 2, 4);
        let fx = build_fixture(4, &cfg, 14);
        let q = vec![0.0f32; 8 * cfg.q_stride()];
        let mut out = vec![0.0f32; 8 * cfg.q_stride()];
        paged_prefill_attention(&q, &fx.storage, &fx.table, 4, 8, &cfg, &mut out);
    }

    #[test]
    #[should_panic(expected = "block table holds")]
    fn short_block_table_panics() {
        let cfg = AttentionConfig::new(2, 2, 4);
        let fx = build_fixture(4, &cfg, 15);
        let q = vec![0.0f32; cfg.q_stride()];
        let mut out = vec![0.0f32; cfg.q_stride()];
        paged_prefill_attention(&q, &fx.storage, &fx.table, 10, 1, &cfg, &mut out);
    }
}
