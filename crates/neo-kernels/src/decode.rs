//! Paged, grouped-query decode attention with Flash-Decoding-style partitioning.
//!
//! This is the Rust equivalent of the paper's PACPU kernel (§4): for every offloaded
//! request, one new query token attends over the request's entire cached context, which is
//! read block-by-block from the paged CPU cache. The context of each request is split into
//! block-aligned *partitions*; partitions are processed independently and in parallel
//! across the rayon pool's worker threads — the role the paper's ISPC "core groups" play —
//! each producing an online-softmax partial, and the partials are merged per request.
//! Memory access inside a partition is contiguous at block granularity, mirroring the
//! paper's "unique and continuous memory at block granularity" strategy.
//!
//! [`paged_decode_attention`] sizes partitions automatically from
//! [`rayon::current_num_threads`] via [`auto_partition_blocks`]: enough partitions that
//! every worker gets several steal-units (so unequal context lengths still balance), but
//! no more, because each extra partition costs one extra online-softmax merge per head.
//! With a single worker the whole batch collapses to one partition per sequence — the
//! partitioning overhead disappears from the measurement instead of being mistaken for
//! kernel cost. [`paged_decode_attention_with_partitions`] keeps the explicit knob for
//! benchmarks that study the trade-off.

use neo_kvcache::{BlockTable, PagedStorage};
use rayon::prelude::*;

use crate::softmax::OnlineSoftmax;
use crate::AttentionConfig;

/// Default number of KV blocks per partition (a partition is the unit of parallelism)
/// when a caller wants a fixed, pool-independent partitioning.
pub const DEFAULT_PARTITION_BLOCKS: usize = 4;

/// Steal-units targeted per pool worker by [`auto_partition_blocks`]. More than one unit
/// per worker lets the pool's atomic claim index rebalance unequal partition costs; the
/// value matches the pool's own unit granularity (see the rayon shim).
const PARTITIONS_PER_THREAD: usize = 4;

/// Picks a partition size (in KV blocks) for one sequence at the current pool width.
///
/// Aims for roughly four partitions per [`rayon::current_num_threads`] worker over the
/// sequence's own block count. On a single-threaded pool this returns the sequence's
/// whole block count — one partition, no merge overhead. Deliberately a function of the
/// sequence alone (never of the batch it happens to share a step with): a request's
/// partition grouping — and hence its floating-point output — must not change with
/// concurrent load, only with the explicit pool width.
pub fn auto_partition_blocks(seq_len: usize, block_size: usize) -> usize {
    let blocks = seq_len.div_ceil(block_size.max(1)).max(1);
    let threads = rayon::current_num_threads();
    if threads <= 1 {
        return blocks;
    }
    blocks.div_ceil(threads * PARTITIONS_PER_THREAD)
}

/// One unit of work: a contiguous range of blocks of one sequence.
#[derive(Debug, Clone, Copy)]
struct Task {
    seq: usize,
    /// First token index (inclusive) covered by this partition.
    token_start: usize,
    /// Last token index (exclusive).
    token_end: usize,
}

/// Splits every sequence's context into block-aligned partitions, `partition_blocks(len)`
/// blocks each (evaluated per sequence, so sizing policies can depend on the sequence
/// alone).
fn build_tasks(
    seq_lens: &[usize],
    block_size: usize,
    partition_blocks: impl Fn(usize) -> usize,
) -> Vec<Task> {
    let mut tasks = Vec::new();
    for (seq, &len) in seq_lens.iter().enumerate() {
        let chunk = block_size * partition_blocks(len).max(1);
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            tasks.push(Task { seq, token_start: start, token_end: end });
            start = end;
        }
    }
    tasks
}

/// Computes the online-softmax partials of one task for all query heads.
fn run_task(
    task: Task,
    queries: &[f32],
    storage: &PagedStorage,
    table: &BlockTable,
    cfg: &AttentionConfig,
) -> Vec<OnlineSoftmax> {
    let hd = cfg.head_dim;
    let group = cfg.group_size();
    let q_base = task.seq * cfg.q_stride();
    let mut partials: Vec<OnlineSoftmax> =
        (0..cfg.n_heads).map(|_| OnlineSoftmax::new(hd)).collect();

    for tok in task.token_start..task.token_end {
        let (block, slot) = table
            .locate(tok)
            .expect("sequence length and block table are consistent by construction");
        let k_row = storage.read_k(block, slot).expect("block table points into storage");
        let v_row = storage.read_v(block, slot).expect("block table points into storage");
        for h in 0..cfg.n_heads {
            let kv_h = h / group;
            let q_vec = &queries[q_base + h * hd..q_base + (h + 1) * hd];
            let k_vec = &k_row[kv_h * hd..(kv_h + 1) * hd];
            let v_vec = &v_row[kv_h * hd..(kv_h + 1) * hd];
            let score: f32 = q_vec.iter().zip(k_vec).map(|(a, b)| a * b).sum::<f32>() * cfg.scale;
            partials[h].push(score, v_vec);
        }
    }
    partials
}

/// Paged decode attention over a batch of sequences, parallelised across partitions.
///
/// * `queries` — `[n_seqs, n_heads, head_dim]`, one new token per sequence.
/// * `storage` — the layer's paged KV storage (already containing each sequence's cached
///   K/V, including the current token's entry).
/// * `tables` / `seq_lens` — per-sequence block table and cached length (in tokens).
/// * `out` — `[n_seqs, n_heads, head_dim]`.
///
/// The partition size is tuned to the pool width via [`auto_partition_blocks`]. Partials
/// merge deterministically in context order, but the partition *size* changes the
/// grouping of the online-softmax reductions, so outputs are equal across pool widths
/// only to floating-point tolerance — callers needing bit-stable outputs across widths
/// must pin the size via [`paged_decode_attention_with_partitions`]. Sequences with
/// length zero produce zero output.
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent with `cfg` and the number of sequences, or if
/// a block table is shorter than the stated sequence length.
pub fn paged_decode_attention(
    queries: &[f32],
    storage: &PagedStorage,
    tables: &[&BlockTable],
    seq_lens: &[usize],
    cfg: &AttentionConfig,
    out: &mut [f32],
) {
    let block_size = storage.block_size();
    run_with_partition_policy(queries, storage, tables, seq_lens, cfg, out, |len| {
        auto_partition_blocks(len, block_size)
    });
}

/// Like [`paged_decode_attention`] but with an explicit partition size (in blocks), used
/// by the benchmarks to study the partitioning trade-off.
///
/// # Panics
///
/// See [`paged_decode_attention`].
pub fn paged_decode_attention_with_partitions(
    queries: &[f32],
    storage: &PagedStorage,
    tables: &[&BlockTable],
    seq_lens: &[usize],
    cfg: &AttentionConfig,
    partition_blocks: usize,
    out: &mut [f32],
) {
    run_with_partition_policy(queries, storage, tables, seq_lens, cfg, out, |_| partition_blocks);
}

/// Shared checked body of the two public entry points: partitions each sequence with
/// `partition_blocks(len)`, runs the tasks across the pool, and merges the partials.
fn run_with_partition_policy(
    queries: &[f32],
    storage: &PagedStorage,
    tables: &[&BlockTable],
    seq_lens: &[usize],
    cfg: &AttentionConfig,
    out: &mut [f32],
    partition_blocks: impl Fn(usize) -> usize,
) {
    let n_seqs = seq_lens.len();
    assert_eq!(tables.len(), n_seqs, "one block table per sequence");
    assert_eq!(queries.len(), n_seqs * cfg.q_stride(), "query buffer has wrong length");
    assert_eq!(out.len(), n_seqs * cfg.q_stride(), "output buffer has wrong length");
    for (i, (&len, table)) in seq_lens.iter().zip(tables).enumerate() {
        assert!(
            table.num_tokens() >= len,
            "block table of sequence {i} holds {} tokens but {len} were requested",
            table.num_tokens()
        );
    }

    let tasks = build_tasks(seq_lens, storage.block_size(), partition_blocks);

    // Each task is independent; run them across the rayon pool (the CPU "core groups" of
    // the paper), then merge the partials of each sequence.
    let partials: Vec<(usize, Vec<OnlineSoftmax>)> = tasks
        .par_iter()
        .map(|&t| (t.seq, run_task(t, queries, storage, tables[t.seq], cfg)))
        .collect();

    let mut merged: Vec<Option<Vec<OnlineSoftmax>>> = (0..n_seqs).map(|_| None).collect();
    for (seq, partial) in partials {
        match &mut merged[seq] {
            None => merged[seq] = Some(partial),
            Some(existing) => {
                for (e, p) in existing.iter_mut().zip(&partial) {
                    e.merge(p);
                }
            }
        }
    }

    for (seq, maybe) in merged.iter().enumerate() {
        let base = seq * cfg.q_stride();
        match maybe {
            Some(heads) => {
                for (h, acc) in heads.iter().enumerate() {
                    acc.finish(&mut out[base + h * cfg.head_dim..base + (h + 1) * cfg.head_dim]);
                }
            }
            None => out[base..base + cfg.q_stride()].iter_mut().for_each(|o| *o = 0.0),
        }
    }
}

/// Single-threaded, non-partitioned variant used as a baseline in tests and benchmarks.
///
/// # Panics
///
/// See [`paged_decode_attention`].
pub fn paged_decode_attention_serial(
    queries: &[f32],
    storage: &PagedStorage,
    tables: &[&BlockTable],
    seq_lens: &[usize],
    cfg: &AttentionConfig,
    out: &mut [f32],
) {
    let n_seqs = seq_lens.len();
    assert_eq!(tables.len(), n_seqs, "one block table per sequence");
    assert_eq!(queries.len(), n_seqs * cfg.q_stride(), "query buffer has wrong length");
    assert_eq!(out.len(), n_seqs * cfg.q_stride(), "output buffer has wrong length");

    for seq in 0..n_seqs {
        let task = Task { seq, token_start: 0, token_end: seq_lens[seq] };
        let heads = run_task(task, queries, storage, tables[seq], cfg);
        let base = seq * cfg.q_stride();
        for (h, acc) in heads.iter().enumerate() {
            acc.finish(&mut out[base + h * cfg.head_dim..base + (h + 1) * cfg.head_dim]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dense_attention;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a paged cache holding `seq_lens` sequences of random KV data and returns the
    /// matching contiguous copies for the reference kernel.
    struct Fixture {
        storage: PagedStorage,
        tables: Vec<BlockTable>,
        dense_k: Vec<Vec<f32>>,
        dense_v: Vec<Vec<f32>>,
        queries: Vec<f32>,
    }

    fn build_fixture(seq_lens: &[usize], cfg: &AttentionConfig, seed: u64) -> Fixture {
        let block_size = 4;
        let total_blocks: usize =
            seq_lens.iter().map(|l| l.div_ceil(block_size)).sum::<usize>() + 1;
        let mut storage = PagedStorage::new(total_blocks, block_size, cfg.n_kv_heads, cfg.head_dim);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tables = Vec::new();
        let mut dense_k = Vec::new();
        let mut dense_v = Vec::new();
        let mut next_block = 0;
        for &len in seq_lens {
            let blocks_needed = len.div_ceil(block_size);
            let mut table = BlockTable::new(block_size);
            table.append(len, (next_block..next_block + blocks_needed).collect()).unwrap();
            next_block += blocks_needed;
            let mut k_seq = Vec::new();
            let mut v_seq = Vec::new();
            for i in 0..len {
                let k: Vec<f32> = (0..cfg.kv_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let v: Vec<f32> = (0..cfg.kv_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let (b, s) = table.locate(i).unwrap();
                storage.write_token(b, s, &k, &v).unwrap();
                k_seq.extend_from_slice(&k);
                v_seq.extend_from_slice(&v);
            }
            tables.push(table);
            dense_k.push(k_seq);
            dense_v.push(v_seq);
        }
        let queries: Vec<f32> =
            (0..seq_lens.len() * cfg.q_stride()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Fixture { storage, tables, dense_k, dense_v, queries }
    }

    fn check_against_reference(seq_lens: &[usize], cfg: &AttentionConfig, seed: u64) {
        let fx = build_fixture(seq_lens, cfg, seed);
        let table_refs: Vec<&BlockTable> = fx.tables.iter().collect();
        let mut out = vec![0.0f32; seq_lens.len() * cfg.q_stride()];
        paged_decode_attention(&fx.queries, &fx.storage, &table_refs, seq_lens, cfg, &mut out);

        for (i, &len) in seq_lens.iter().enumerate() {
            let mut expected = vec![0.0f32; cfg.q_stride()];
            if len > 0 {
                dense_attention(
                    &fx.queries[i * cfg.q_stride()..(i + 1) * cfg.q_stride()],
                    &fx.dense_k[i],
                    &fx.dense_v[i],
                    1,
                    len,
                    cfg,
                    None,
                    &mut expected,
                );
            }
            for (a, b) in out[i * cfg.q_stride()..(i + 1) * cfg.q_stride()].iter().zip(&expected) {
                assert!((a - b).abs() < 1e-4, "seq {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn matches_reference_mha() {
        check_against_reference(&[7, 13, 1], &AttentionConfig::new(4, 4, 8), 1);
    }

    #[test]
    fn matches_reference_gqa() {
        check_against_reference(&[9, 32, 5, 17], &AttentionConfig::new(8, 2, 16), 2);
    }

    #[test]
    fn matches_reference_long_context_many_partitions() {
        check_against_reference(&[257], &AttentionConfig::new(2, 1, 8), 3);
    }

    #[test]
    fn zero_length_sequence_gives_zero_output() {
        let cfg = AttentionConfig::new(2, 2, 4);
        let fx = build_fixture(&[0, 5], &cfg, 4);
        let table_refs: Vec<&BlockTable> = fx.tables.iter().collect();
        let mut out = vec![1.0f32; 2 * cfg.q_stride()];
        paged_decode_attention(&fx.queries, &fx.storage, &table_refs, &[0, 5], &cfg, &mut out);
        assert!(out[..cfg.q_stride()].iter().all(|&x| x == 0.0));
        assert!(out[cfg.q_stride()..].iter().any(|&x| x != 0.0));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let cfg = AttentionConfig::new(8, 4, 16);
        let seq_lens = [33usize, 64, 5, 100];
        let fx = build_fixture(&seq_lens, &cfg, 5);
        let table_refs: Vec<&BlockTable> = fx.tables.iter().collect();
        let mut par = vec![0.0f32; seq_lens.len() * cfg.q_stride()];
        let mut ser = vec![0.0f32; seq_lens.len() * cfg.q_stride()];
        paged_decode_attention(&fx.queries, &fx.storage, &table_refs, &seq_lens, &cfg, &mut par);
        paged_decode_attention_serial(
            &fx.queries,
            &fx.storage,
            &table_refs,
            &seq_lens,
            &cfg,
            &mut ser,
        );
        for (a, b) in par.iter().zip(&ser) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn partition_size_does_not_change_result() {
        let cfg = AttentionConfig::new(4, 2, 8);
        let seq_lens = [50usize, 23];
        let fx = build_fixture(&seq_lens, &cfg, 6);
        let table_refs: Vec<&BlockTable> = fx.tables.iter().collect();
        let mut out1 = vec![0.0f32; seq_lens.len() * cfg.q_stride()];
        let mut out8 = vec![0.0f32; seq_lens.len() * cfg.q_stride()];
        paged_decode_attention_with_partitions(
            &fx.queries,
            &fx.storage,
            &table_refs,
            &seq_lens,
            &cfg,
            1,
            &mut out1,
        );
        paged_decode_attention_with_partitions(
            &fx.queries,
            &fx.storage,
            &table_refs,
            &seq_lens,
            &cfg,
            8,
            &mut out8,
        );
        for (a, b) in out1.iter().zip(&out8) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn auto_partition_tracks_pool_width() {
        // One sequence of 256 tokens over 4-token blocks = 64 blocks.
        let width = |n: usize| rayon::ThreadPoolBuilder::new().num_threads(n).build().unwrap();
        // One worker: a single partition spanning the sequence.
        assert_eq!(width(1).install(|| auto_partition_blocks(256, 4)), 64);
        // Four workers x four units each: 64 / 16 = 4 blocks per partition.
        assert_eq!(width(4).install(|| auto_partition_blocks(256, 4)), 4);
        // More units than blocks: clamps at one block per partition.
        assert_eq!(width(64).install(|| auto_partition_blocks(256, 4)), 1);
        // Empty sequences still return a positive size, and the sizing depends only on
        // the sequence itself — never on what else is in the batch.
        assert_eq!(width(4).install(|| auto_partition_blocks(0, 4)), 1);
    }

    #[test]
    #[should_panic(expected = "query buffer")]
    fn wrong_query_length_panics() {
        let cfg = AttentionConfig::new(2, 2, 4);
        let storage = PagedStorage::new(1, 4, 2, 4);
        let table = BlockTable::new(4);
        let mut out = vec![0.0f32; cfg.q_stride()];
        paged_decode_attention(&[0.0; 3], &storage, &[&table], &[0], &cfg, &mut out);
    }

    #[test]
    #[should_panic(expected = "block table of sequence")]
    fn table_shorter_than_seq_len_panics() {
        let cfg = AttentionConfig::new(2, 2, 4);
        let storage = PagedStorage::new(1, 4, 2, 4);
        let table = BlockTable::new(4); // zero tokens
        let q = vec![0.0f32; cfg.q_stride()];
        let mut out = vec![0.0f32; cfg.q_stride()];
        paged_decode_attention(&q, &storage, &[&table], &[4], &cfg, &mut out);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The paged, partitioned, parallel kernel agrees with the dense reference for
        /// random shapes and lengths.
        #[test]
        fn prop_matches_reference(
            lens in proptest::collection::vec(1usize..60, 1..5),
            heads_pow in 0u32..3,
            group_pow in 0u32..2,
            seed in 0u64..1000,
        ) {
            let n_kv = 1usize << heads_pow;
            let n_heads = n_kv << group_pow;
            let cfg = AttentionConfig::new(n_heads, n_kv, 8);
            let fx = build_fixture(&lens, &cfg, seed);
            let table_refs: Vec<&BlockTable> = fx.tables.iter().collect();
            let mut out = vec![0.0f32; lens.len() * cfg.q_stride()];
            paged_decode_attention(&fx.queries, &fx.storage, &table_refs, &lens, &cfg, &mut out);
            for (i, &len) in lens.iter().enumerate() {
                let mut expected = vec![0.0f32; cfg.q_stride()];
                dense_attention(
                    &fx.queries[i * cfg.q_stride()..(i + 1) * cfg.q_stride()],
                    &fx.dense_k[i], &fx.dense_v[i], 1, len, &cfg, None, &mut expected,
                );
                for (a, b) in out[i * cfg.q_stride()..(i + 1) * cfg.q_stride()].iter().zip(&expected) {
                    prop_assert!((a - b).abs() < 1e-3, "seq {}: {} vs {}", i, a, b);
                }
            }
        }
    }
}
