//! Slow, obviously-correct dense attention used to validate the paged kernels.
//!
//! The reference operates on contiguous `[token, head, head_dim]` buffers (no paging) and
//! materialises the full score matrix. Every paged kernel in this crate is tested against
//! it, including grouped-query configurations and causal masking.

use crate::softmax::softmax_inplace;
use crate::AttentionConfig;

/// Dense (non-paged) multi-head attention with optional causal masking.
///
/// * `q` is `[n_q, n_heads, head_dim]`, `k`/`v` are `[n_kv, n_kv_heads, head_dim]`.
/// * When `causal_offset` is `Some(off)`, query `i` may only attend to key positions
///   `j <= off + i` (decode uses `off = n_kv - 1` with `n_q = 1`; prefill of a suffix of
///   new tokens uses `off = n_kv - n_q`).
/// * The result is written to `out`, `[n_q, n_heads, head_dim]`.
///
/// # Panics
///
/// Panics if any buffer length is inconsistent with the shape arguments.
// A reference kernel mirrors the math's flat signature on purpose; bundling the
// shape scalars into a struct would only obscure the comparison with the paged
// implementations it validates.
#[allow(clippy::too_many_arguments)]
pub fn dense_attention(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    n_q: usize,
    n_kv: usize,
    cfg: &AttentionConfig,
    causal_offset: Option<usize>,
    out: &mut [f32],
) {
    assert_eq!(q.len(), n_q * cfg.q_stride(), "q buffer has wrong length");
    assert_eq!(k.len(), n_kv * cfg.kv_stride(), "k buffer has wrong length");
    assert_eq!(v.len(), n_kv * cfg.kv_stride(), "v buffer has wrong length");
    assert_eq!(out.len(), n_q * cfg.q_stride(), "out buffer has wrong length");

    let hd = cfg.head_dim;
    let group = cfg.group_size();

    for qi in 0..n_q {
        let visible = match causal_offset {
            Some(off) => (off + qi + 1).min(n_kv),
            None => n_kv,
        };
        for h in 0..cfg.n_heads {
            let kv_h = h / group;
            let q_vec = &q[qi * cfg.q_stride() + h * hd..qi * cfg.q_stride() + (h + 1) * hd];
            let mut scores = vec![f32::NEG_INFINITY; n_kv];
            for (ki, score) in scores.iter_mut().enumerate().take(visible) {
                let k_vec =
                    &k[ki * cfg.kv_stride() + kv_h * hd..ki * cfg.kv_stride() + (kv_h + 1) * hd];
                let dot: f32 = q_vec.iter().zip(k_vec).map(|(a, b)| a * b).sum();
                *score = dot * cfg.scale;
            }
            softmax_inplace(&mut scores);
            let out_vec =
                &mut out[qi * cfg.q_stride() + h * hd..qi * cfg.q_stride() + (h + 1) * hd];
            out_vec.iter_mut().for_each(|o| *o = 0.0);
            for (ki, &w) in scores.iter().enumerate().take(visible) {
                let v_vec =
                    &v[ki * cfg.kv_stride() + kv_h * hd..ki * cfg.kv_stride() + (kv_h + 1) * hd];
                for (o, &x) in out_vec.iter_mut().zip(v_vec) {
                    *o += w * x;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AttentionConfig {
        AttentionConfig::new(2, 1, 4)
    }

    #[test]
    fn single_key_returns_its_value() {
        let c = cfg();
        let q = vec![1.0f32; c.q_stride()];
        let k = vec![0.5f32; c.kv_stride()];
        let v: Vec<f32> = (0..c.kv_stride()).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; c.q_stride()];
        dense_attention(&q, &k, &v, 1, 1, &c, None, &mut out);
        // With a single key, softmax weight is 1 and the output equals V (per KV head,
        // repeated for each query head in the group).
        assert_eq!(&out[0..4], &v[0..4]);
        assert_eq!(&out[4..8], &v[0..4]);
    }

    #[test]
    fn uniform_keys_average_values() {
        let c = AttentionConfig::new(1, 1, 2);
        let q = vec![0.0f32; 2]; // zero query => uniform weights
        let k = vec![1.0, 0.0, 0.0, 1.0, 0.5, 0.5];
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = vec![0.0f32; 2];
        dense_attention(&q, &k, &v, 1, 3, &c, None, &mut out);
        assert!((out[0] - 3.0).abs() < 1e-5);
        assert!((out[1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn causal_mask_hides_future_tokens() {
        let c = AttentionConfig::new(1, 1, 2);
        // 2 queries over 2 keys with causal offset 0: query 0 sees key 0 only.
        let q = vec![1.0f32, 0.0, 1.0, 0.0];
        let k = vec![1.0, 0.0, 1.0, 0.0];
        let v = vec![10.0, 0.0, 20.0, 0.0];
        let mut out = vec![0.0f32; 4];
        dense_attention(&q, &k, &v, 2, 2, &c, Some(0), &mut out);
        assert!((out[0] - 10.0).abs() < 1e-5, "first query must only see first value");
        // Second query sees both (equal scores => average).
        assert!((out[2] - 15.0).abs() < 1e-4);
    }

    #[test]
    fn gqa_heads_share_kv() {
        let c = AttentionConfig::new(4, 2, 2);
        let n_kv = 3;
        let q: Vec<f32> = (0..c.q_stride()).map(|i| (i as f32 * 0.1).sin()).collect();
        let k: Vec<f32> = (0..n_kv * c.kv_stride()).map(|i| (i as f32 * 0.2).cos()).collect();
        let v: Vec<f32> = (0..n_kv * c.kv_stride()).map(|i| i as f32 * 0.05).collect();
        let mut out = vec![0.0f32; c.q_stride()];
        dense_attention(&q, &k, &v, 1, n_kv, &c, None, &mut out);
        // Query heads 0,1 use kv head 0; heads 2,3 use kv head 1. If q head 0 == q head 1
        // the outputs must match. Here they differ, so just sanity-check finiteness and
        // that a duplicated query gives identical outputs.
        let mut q2 = q.clone();
        q2.copy_within(0..2, 2); // make head 1 identical to head 0
        let mut out2 = vec![0.0f32; c.q_stride()];
        dense_attention(&q2, &k, &v, 1, n_kv, &c, None, &mut out2);
        assert_eq!(&out2[0..2], &out2[2..4]);
        assert!(out.iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn inconsistent_shapes_panic() {
        let c = cfg();
        let mut out = vec![0.0f32; c.q_stride()];
        dense_attention(&[0.0; 4], &[0.0; 4], &[0.0; 4], 1, 1, &c, None, &mut out);
    }
}
