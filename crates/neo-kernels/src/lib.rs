//! Functional CPU attention kernels for the NEO reproduction.
//!
//! The original system implements "Paged-Attention-for-CPU" (PACPU), a C++/ISPC torch
//! extension that runs decoding attention over a paged KV cache on the host CPU, using a
//! Flash-Decoding-style partitioning of each request's context across cores (§4 of the
//! paper). This crate is the Rust equivalent:
//!
//! * [`decode`] — paged, grouped-query decode attention. Each request's cached context is
//!   split into block-aligned partitions; partitions are processed in parallel across the
//!   thread pool with an online-softmax accumulator and then merged, exactly like Flash
//!   Decoding.
//! * [`prefill`] — causal (chunked) prefill attention over the paged cache, used by the
//!   functional model for the GPU-side sub-batch; parallel across (query row × KV-head
//!   group) tasks.
//! * [`softmax`] — numerically stable softmax and the online-softmax merge primitive.
//! * [`rope`] — rotary position embeddings applied to Q/K before caching.
//! * [`mod@reference`] — slow, obviously-correct dense attention used by the test suite to
//!   validate every kernel.
//!
//! The kernels operate on `f32` slices laid out `[token, head, head_dim]` and read the KV
//! cache through [`neo_kvcache::PagedStorage`] + [`neo_kvcache::BlockTable`], i.e. the same
//! data structures the serving engine maintains.
//!
//! # Core groups ↔ the thread pool
//!
//! The paper's PACPU kernel dispatches each request's partitions across ISPC *core
//! groups* — fixed teams of CPU cores that each own a slice of the context. This crate
//! maps that role onto the rayon pool: a partition is one steal-unit, workers claim units
//! off a shared atomic index, and `RAYON_NUM_THREADS` (default: the machine's available
//! parallelism) plays the part of the core-group count. The mapping is *dynamic* where
//! the paper's is static — a worker that finishes its partition early steals the next
//! one — which is what lets batches with wildly unequal context lengths stay balanced.
//!
//! [`decode::auto_partition_blocks`] ties the partition size to the pool width: it
//! targets a few partitions per worker over each sequence's own block count (never the
//! batch's — a request's partition grouping, and hence its floating-point output, must
//! not depend on concurrent load), so doubling the threads roughly halves the partition
//! size until the one-block floor. The
//! [`AttentionConfig`] geometry sets what a partition costs — every partition computes
//! all `n_heads` query heads over its token range (head-level work never splits across
//! partitions in decode), so wider-headed models have coarser, fewer-needed partitions,
//! while prefill splits along `n_kv_heads` instead. On a one-thread pool the tuner
//! collapses to one partition per sequence and the kernels run inline with no spawn or
//! merge overhead; the `threads_scaling` bench in `neo-bench` measures the actual
//! multi-core speedup curve at widths 1/2/4/8.
//!
//! # Example
//!
//! ```
//! use neo_kernels::{AttentionConfig, decode::paged_decode_attention};
//! use neo_kvcache::{BlockTable, PagedStorage};
//!
//! let cfg = AttentionConfig::new(4, 2, 8);
//! let mut storage = PagedStorage::new(8, 4, 2, 8);
//! let mut table = BlockTable::new(4);
//! table.append(3, vec![0]).unwrap();
//! // Write 3 cached tokens.
//! for i in 0..3 {
//!     let kv = vec![0.1 * i as f32; 16];
//!     let (b, s) = table.locate(i).unwrap();
//!     storage.write_token(b, s, &kv, &kv).unwrap();
//! }
//! let q = vec![0.5_f32; 32]; // one sequence, 4 heads x 8 dims
//! let mut out = vec![0.0_f32; 32];
//! paged_decode_attention(&q, &storage, &[&table], &[3], &cfg, &mut out);
//! assert!(out.iter().all(|x| x.is_finite()));
//! ```

#![forbid(unsafe_code)]

pub mod decode;
pub mod prefill;
pub mod reference;
pub mod rope;
pub mod softmax;

/// Shape parameters shared by all attention kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionConfig {
    /// Number of query heads.
    pub n_heads: usize,
    /// Number of KV heads (`n_heads` must be a multiple of this; GQA groups
    /// `n_heads / n_kv_heads` query heads per KV head).
    pub n_kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// Softmax scale, normally `1 / sqrt(head_dim)`.
    pub scale: f32,
}

impl AttentionConfig {
    /// Creates a config with the default `1/sqrt(head_dim)` scale.
    ///
    /// # Panics
    ///
    /// Panics if `n_heads` is not a positive multiple of `n_kv_heads`, or `head_dim` is 0.
    pub fn new(n_heads: usize, n_kv_heads: usize, head_dim: usize) -> Self {
        assert!(n_heads > 0 && n_kv_heads > 0 && head_dim > 0, "dimensions must be positive");
        assert!(
            n_heads % n_kv_heads == 0,
            "query heads ({n_heads}) must be a multiple of KV heads ({n_kv_heads})"
        );
        Self { n_heads, n_kv_heads, head_dim, scale: 1.0 / (head_dim as f32).sqrt() }
    }

    /// Number of query heads sharing each KV head.
    pub fn group_size(&self) -> usize {
        self.n_heads / self.n_kv_heads
    }

    /// Elements in one token's query/output row (`n_heads * head_dim`).
    pub fn q_stride(&self) -> usize {
        self.n_heads * self.head_dim
    }

    /// Elements in one token's K or V row (`n_kv_heads * head_dim`).
    pub fn kv_stride(&self) -> usize {
        self.n_kv_heads * self.head_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_derives_strides_and_groups() {
        let c = AttentionConfig::new(8, 2, 16);
        assert_eq!(c.group_size(), 4);
        assert_eq!(c.q_stride(), 128);
        assert_eq!(c.kv_stride(), 32);
        assert!((c.scale - 0.25).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn non_divisible_heads_panic() {
        let _ = AttentionConfig::new(6, 4, 16);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        let _ = AttentionConfig::new(4, 2, 0);
    }
}
