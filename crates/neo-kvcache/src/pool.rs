//! Per-device KV pool: capacity accounting on top of the block allocator.

use crate::allocator::BlockAllocator;
use crate::error::KvCacheError;

/// The device a KV pool (or a request's cache) lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Device {
    /// GPU HBM — the "GPU-cache" of the paper.
    Gpu,
    /// Host DRAM — the "CPU-cache" of the paper.
    Cpu,
    /// Local NVMe/disk — cold third tier; sequences parked here cannot decode until
    /// promoted back to the CPU cache.
    Disk,
}

impl Device {
    /// The device one tier up or down: GPU↔CPU keep their historical pairing; disk's
    /// neighbour is the CPU cache (promotion target).
    pub fn other(self) -> Device {
        match self {
            Device::Gpu => Device::Cpu,
            Device::Cpu => Device::Gpu,
            Device::Disk => Device::Cpu,
        }
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Device::Gpu => write!(f, "GPU"),
            Device::Cpu => write!(f, "CPU"),
            Device::Disk => write!(f, "DISK"),
        }
    }
}

/// One device's paged KV pool.
#[derive(Debug, Clone)]
pub struct KvPool {
    allocator: BlockAllocator,
    block_size: usize,
    capacity_tokens: usize,
}

impl KvPool {
    /// Creates a pool able to hold `capacity_tokens` tokens in blocks of `block_size`.
    ///
    /// The capacity is rounded **down** to a whole number of blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(device: Device, capacity_tokens: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let num_blocks = capacity_tokens / block_size;
        Self {
            allocator: BlockAllocator::new(device, num_blocks),
            block_size,
            capacity_tokens: num_blocks * block_size,
        }
    }

    /// Device of this pool.
    pub fn device(&self) -> Device {
        self.allocator.device()
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Usable capacity in tokens (whole blocks).
    pub fn capacity_tokens(&self) -> usize {
        self.capacity_tokens
    }

    /// Number of tokens that can still be stored (free blocks × block size).
    pub fn free_tokens(&self) -> usize {
        self.allocator.num_free() * self.block_size
    }

    /// Number of tokens' worth of blocks currently allocated (counting partially filled
    /// blocks as full — this is the allocation granularity, not the logical token count).
    pub fn used_tokens(&self) -> usize {
        self.allocator.num_used() * self.block_size
    }

    /// Number of blocks needed to hold `n_tokens` tokens.
    pub fn blocks_for(&self, n_tokens: usize) -> usize {
        n_tokens.div_ceil(self.block_size)
    }

    /// Whether `n_tokens` more tokens could be allocated right now.
    pub fn can_allocate(&self, n_tokens: usize) -> bool {
        self.blocks_for(n_tokens) <= self.allocator.num_free()
    }

    /// Allocates enough blocks for `n_tokens` tokens.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::OutOfMemory`] if the pool cannot hold them; no blocks are
    /// taken in that case.
    pub fn allocate_tokens(&mut self, n_tokens: usize) -> Result<Vec<usize>, KvCacheError> {
        self.allocator.allocate_many(self.blocks_for(n_tokens))
    }

    /// Allocates exactly `n_blocks` blocks.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::OutOfMemory`] if fewer than `n_blocks` are free.
    pub fn allocate_blocks(&mut self, n_blocks: usize) -> Result<Vec<usize>, KvCacheError> {
        self.allocator.allocate_many(n_blocks)
    }

    /// Releases blocks back to the pool.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidBlock`] on out-of-range indices or double frees;
    /// blocks released before the failing one stay released.
    pub fn release_blocks(&mut self, blocks: &[usize]) -> Result<(), KvCacheError> {
        for &b in blocks {
            self.allocator.release(b)?;
        }
        Ok(())
    }

    /// Adds one reference to an allocated block (shared-prefix adoption).
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidBlock`] on out-of-range indices or free blocks.
    pub fn retain(&mut self, block: usize) -> Result<(), KvCacheError> {
        self.allocator.retain(block)
    }

    /// Current reference count of a block.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidBlock`] on out-of-range indices.
    pub fn ref_count(&self, block: usize) -> Result<u32, KvCacheError> {
        self.allocator.ref_count(block)
    }

    /// Fraction of the pool currently in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_tokens == 0 {
            return 0.0;
        }
        self.used_tokens() as f64 / self.capacity_tokens as f64
    }

    /// Total number of blocks in the pool.
    pub fn num_blocks(&self) -> usize {
        self.allocator.num_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_down_to_blocks() {
        let p = KvPool::new(Device::Gpu, 100, 16);
        assert_eq!(p.num_blocks(), 6);
        assert_eq!(p.capacity_tokens(), 96);
    }

    #[test]
    fn allocate_tokens_uses_ceiling_blocks() {
        let mut p = KvPool::new(Device::Gpu, 160, 16);
        let blocks = p.allocate_tokens(17).unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(p.used_tokens(), 32);
        p.release_blocks(&blocks).unwrap();
        assert_eq!(p.used_tokens(), 0);
    }

    #[test]
    fn can_allocate_matches_allocate() {
        let mut p = KvPool::new(Device::Cpu, 64, 16);
        assert!(p.can_allocate(64));
        assert!(!p.can_allocate(65));
        p.allocate_tokens(48).unwrap();
        assert!(p.can_allocate(16));
        assert!(!p.can_allocate(17));
    }

    #[test]
    fn utilization_tracks_usage() {
        let mut p = KvPool::new(Device::Gpu, 64, 16);
        assert_eq!(p.utilization(), 0.0);
        let b = p.allocate_tokens(32).unwrap();
        assert!((p.utilization() - 0.5).abs() < 1e-12);
        p.release_blocks(&b).unwrap();
        assert_eq!(p.utilization(), 0.0);
    }

    #[test]
    fn zero_capacity_pool_is_benign() {
        let p = KvPool::new(Device::Cpu, 0, 16);
        assert_eq!(p.capacity_tokens(), 0);
        assert_eq!(p.utilization(), 0.0);
        assert!(!p.can_allocate(1));
        assert!(p.can_allocate(0));
    }

    #[test]
    fn device_other_flips() {
        assert_eq!(Device::Gpu.other(), Device::Cpu);
        assert_eq!(Device::Cpu.other(), Device::Gpu);
        assert_eq!(Device::Disk.other(), Device::Cpu);
        assert_eq!(Device::Gpu.to_string(), "GPU");
        assert_eq!(Device::Disk.to_string(), "DISK");
    }

    #[test]
    fn retain_and_ref_count_delegate_to_the_allocator() {
        let mut p = KvPool::new(Device::Gpu, 64, 16);
        let b = p.allocate_tokens(16).unwrap();
        assert_eq!(p.ref_count(b[0]).unwrap(), 1);
        p.retain(b[0]).unwrap();
        assert_eq!(p.ref_count(b[0]).unwrap(), 2);
        // First release drops the extra reference, the block stays allocated.
        p.release_blocks(&b).unwrap();
        assert_eq!(p.used_tokens(), 16);
        p.release_blocks(&b).unwrap();
        assert_eq!(p.used_tokens(), 0);
        assert!(p.retain(b[0]).is_err(), "retaining a free block is a typed error");
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        let _ = KvPool::new(Device::Gpu, 64, 0);
    }
}
