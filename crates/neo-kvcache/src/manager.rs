//! Multi-tier (GPU-cache + CPU-cache + disk) sequence-level manager.
//!
//! This is the accounting heart of NEO's partial offloading: every prefilled sequence owns
//! a block table on exactly one device, the scheduler asks "can I fit these new tokens on
//! the GPU?" / "how many tokens must I swap out?", and swaps move a whole sequence between
//! pools while reporting the bytes that crossed PCIe (so the cost model can charge for it).
//!
//! Two optional features extend the two-tier core:
//!
//! * a **shared-prefix cache** ([`crate::prefix::PrefixIndex`]): prompt blocks of
//!   prefilled GPU sequences are indexed by token identity, later requests *adopt* the
//!   cached prefix (refcount bump, copy-on-write for partial tail blocks) and skip
//!   re-prefilling it. Index-only blocks (refcount 1) are *evictable*: they are counted
//!   as free capacity and reclaimed LRU-first the moment a real allocation needs room,
//!   so with zero sharing the cache is accounting-invisible.
//! * a **disk tier** ([`Device::Disk`]): a third pool sequences can be demoted to when
//!   the CPU cache fills; parked sequences cannot decode until promoted back.

use std::collections::BTreeMap;

use crate::blocktable::BlockTable;
use crate::error::KvCacheError;
use crate::pool::{Device, KvPool};
use crate::prefix::{PrefixIndex, Token};

/// Configuration of the two KV pools.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvCacheConfig {
    /// Tokens per block.
    pub block_size: usize,
    /// GPU pool capacity in tokens.
    pub gpu_capacity_tokens: usize,
    /// CPU pool capacity in tokens.
    pub cpu_capacity_tokens: usize,
    /// Bytes of KV cache one token occupies across all layers (for swap byte accounting).
    pub kv_bytes_per_token: usize,
}

/// Statistics of one swap operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapStats {
    /// Sequence that was moved.
    pub seq_id: u64,
    /// Tokens whose KV entries were moved.
    pub tokens: usize,
    /// Bytes moved across PCIe (all layers).
    pub bytes: u64,
    /// Direction of the move.
    pub to: Device,
}

/// Occupancy of the GPU KV pool as seen by one tensor-parallel rank.
///
/// Every token's KV entries are sharded `1/tp` per rank, so each rank caches the same
/// *token count* as the group but only its shard of the *bytes*. This view is what
/// capacity dashboards and TP-aware policies consume instead of group-level token
/// totals: the pool is full exactly when the tightest rank's shard budget is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankOccupancy {
    /// Rank index within the tensor-parallel group (`0..tp`).
    pub rank: usize,
    /// Tokens whose KV shard this rank currently caches (block-granular, like
    /// [`KvPool::used_tokens`]).
    pub used_tokens: usize,
    /// Tokens this rank can still accept.
    pub free_tokens: usize,
    /// Bytes of KV shard currently resident on this rank.
    pub used_bytes: u64,
    /// Total bytes of KV shard this rank can hold.
    pub capacity_bytes: u64,
}

/// What a prefix adoption reused: tokens served from cache and copy-on-write splits
/// performed (at most one — the partially matching tail block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixAdoption {
    /// Prompt tokens covered by cached KV (the sequence skips prefilling them).
    pub cached_tokens: usize,
    /// Copy-on-write block splits performed for a partially matching tail block.
    pub cow_splits: usize,
}

/// Per-sequence record kept by the manager.
#[derive(Debug, Clone)]
struct SeqEntry {
    device: Device,
    table: BlockTable,
}

/// The GPU + CPU (+ optional disk) paged KV cache manager.
#[derive(Debug, Clone)]
pub struct KvCacheManager {
    config: KvCacheConfig,
    gpu: KvPool,
    cpu: KvPool,
    disk: KvPool,
    prefix: Option<PrefixIndex>,
    prefix_hit_tokens: usize,
    cow_splits: usize,
    seqs: BTreeMap<u64, SeqEntry>,
}

impl KvCacheManager {
    /// Creates a manager with the given pool configuration (no prefix cache, no disk
    /// tier — the historical two-tier behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero (propagated from [`KvPool::new`]).
    pub fn new(config: KvCacheConfig) -> Self {
        Self::with_features(config, false, 0)
    }

    /// Creates a manager with the optional shared-prefix cache and a disk tier of
    /// `disk_capacity_tokens` (0 disables the tier).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero (propagated from [`KvPool::new`]).
    pub fn with_features(
        config: KvCacheConfig,
        prefix_cache: bool,
        disk_capacity_tokens: usize,
    ) -> Self {
        Self {
            gpu: KvPool::new(Device::Gpu, config.gpu_capacity_tokens, config.block_size),
            cpu: KvPool::new(Device::Cpu, config.cpu_capacity_tokens, config.block_size),
            disk: KvPool::new(Device::Disk, disk_capacity_tokens, config.block_size),
            prefix: if prefix_cache { Some(PrefixIndex::new(config.block_size)) } else { None },
            prefix_hit_tokens: 0,
            cow_splits: 0,
            config,
            seqs: BTreeMap::new(),
        }
    }

    /// The configuration this manager was created with.
    pub fn config(&self) -> &KvCacheConfig {
        &self.config
    }

    /// The pool for `device`.
    pub fn pool(&self, device: Device) -> &KvPool {
        match device {
            Device::Gpu => &self.gpu,
            Device::Cpu => &self.cpu,
            Device::Disk => &self.disk,
        }
    }

    fn pool_mut(&mut self, device: Device) -> &mut KvPool {
        match device {
            Device::Gpu => &mut self.gpu,
            Device::Cpu => &mut self.cpu,
            Device::Disk => &mut self.disk,
        }
    }

    /// Whether the shared-prefix cache is enabled.
    pub fn prefix_enabled(&self) -> bool {
        self.prefix.is_some()
    }

    /// Cumulative prompt tokens served from the prefix cache.
    pub fn prefix_hit_tokens(&self) -> usize {
        self.prefix_hit_tokens
    }

    /// Cumulative copy-on-write block splits performed for partial prefix hits.
    pub fn cow_splits(&self) -> usize {
        self.cow_splits
    }

    /// Blocks currently held by the prefix index (empty when the cache is disabled).
    pub fn prefix_blocks(&self) -> Vec<usize> {
        self.prefix.as_ref().map(|p| p.blocks()).unwrap_or_default()
    }

    /// Ids of all tracked sequences, in ascending order.
    pub fn sequence_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.seqs.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of sequences currently tracked.
    pub fn num_sequences(&self) -> usize {
        self.seqs.len()
    }

    /// Device a sequence currently resides on.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownSequence`] if the sequence is not tracked.
    pub fn device_of(&self, seq_id: u64) -> Result<Device, KvCacheError> {
        self.seqs.get(&seq_id).map(|e| e.device).ok_or(KvCacheError::UnknownSequence(seq_id))
    }

    /// Number of cached tokens of a sequence.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownSequence`] if the sequence is not tracked.
    pub fn num_tokens_of(&self, seq_id: u64) -> Result<usize, KvCacheError> {
        self.seqs
            .get(&seq_id)
            .map(|e| e.table.num_tokens())
            .ok_or(KvCacheError::UnknownSequence(seq_id))
    }

    /// The block table of a sequence (for the functional kernels).
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownSequence`] if the sequence is not tracked.
    pub fn block_table(&self, seq_id: u64) -> Result<&BlockTable, KvCacheError> {
        self.seqs.get(&seq_id).map(|e| &e.table).ok_or(KvCacheError::UnknownSequence(seq_id))
    }

    /// GPU blocks held only by the prefix index (refcount 1): reclaimable on demand, so
    /// they count as free capacity everywhere the scheduler looks.
    fn evictable_gpu_blocks(&self) -> usize {
        match &self.prefix {
            Some(p) => {
                p.blocks().into_iter().filter(|&b| matches!(self.gpu.ref_count(b), Ok(1))).count()
            }
            None => 0,
        }
    }

    /// Tokens' worth of GPU blocks held only by the prefix index (evictable on demand).
    pub fn evictable_tokens(&self) -> usize {
        self.evictable_gpu_blocks() * self.config.block_size
    }

    /// Evicts index-only blocks (LRU leaves first) until at least `n_blocks` GPU blocks
    /// are free or nothing evictable remains.
    fn ensure_gpu_free(&mut self, n_blocks: usize) {
        let bs = self.config.block_size;
        loop {
            if self.gpu.free_tokens() / bs >= n_blocks {
                return;
            }
            let evicted = {
                let gpu = &self.gpu;
                match self.prefix.as_mut() {
                    Some(prefix) => prefix.evict_lru(|b| matches!(gpu.ref_count(b), Ok(1))),
                    None => None,
                }
            };
            match evicted {
                // The eviction callback admits only ref_count == 1 blocks, so the
                // release cannot fail; an error here means the index and the pool
                // disagree and stopping eviction (returning) is the safe response.
                Some(block) => {
                    if self.gpu.release_blocks(&[block]).is_err() {
                        return;
                    }
                }
                None => return,
            }
        }
    }

    /// Free token capacity of a device's pool. For the GPU this includes blocks held
    /// only by the prefix index — they are evicted transparently when space is needed.
    pub fn free_tokens(&self, device: Device) -> usize {
        let base = self.pool(device).free_tokens();
        if device == Device::Gpu {
            base + self.evictable_tokens()
        } else {
            base
        }
    }

    /// Whether `n_tokens` new tokens can be placed on `device` right now (counting
    /// evictable prefix-index blocks as free on the GPU).
    pub fn can_allocate(&self, device: Device, n_tokens: usize) -> bool {
        let needed = self.pool(device).blocks_for(n_tokens);
        let free_blocks = self.free_tokens(device) / self.config.block_size;
        needed <= free_blocks
    }

    /// Allocates a new sequence of `n_tokens` tokens (its prefill KV) on `device`.
    ///
    /// # Errors
    ///
    /// * [`KvCacheError::DuplicateSequence`] if the id is already tracked.
    /// * [`KvCacheError::OutOfMemory`] if the pool cannot hold the tokens.
    pub fn allocate_sequence(
        &mut self,
        seq_id: u64,
        n_tokens: usize,
        device: Device,
    ) -> Result<(), KvCacheError> {
        if self.seqs.contains_key(&seq_id) {
            return Err(KvCacheError::DuplicateSequence(seq_id));
        }
        let block_size = self.config.block_size;
        if device == Device::Gpu {
            self.ensure_gpu_free(n_tokens.div_ceil(block_size));
        }
        let blocks = self.pool_mut(device).allocate_tokens(n_tokens)?;
        let mut table = BlockTable::new(block_size);
        table.append(n_tokens, blocks)?;
        self.seqs.insert(seq_id, SeqEntry { device, table });
        Ok(())
    }

    /// Appends `n_tokens` decode tokens to an existing sequence on its current device.
    ///
    /// # Errors
    ///
    /// * [`KvCacheError::UnknownSequence`] if the id is not tracked.
    /// * [`KvCacheError::OutOfMemory`] if the device pool is full (sequence unchanged).
    pub fn append_tokens(&mut self, seq_id: u64, n_tokens: usize) -> Result<(), KvCacheError> {
        let entry = self.seqs.get(&seq_id).ok_or(KvCacheError::UnknownSequence(seq_id))?;
        let device = entry.device;
        let needed = entry.table.blocks_needed_for_append(n_tokens);
        if device == Device::Gpu {
            self.ensure_gpu_free(needed);
        }
        let blocks = self.pool_mut(device).allocate_blocks(needed)?;
        let entry = self.seqs.get_mut(&seq_id).ok_or(KvCacheError::UnknownSequence(seq_id))?;
        entry.table.append(n_tokens, blocks)?;
        Ok(())
    }

    /// Releases a sequence and returns how many tokens' worth of cache it freed.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownSequence`] if the id is not tracked.
    pub fn free_sequence(&mut self, seq_id: u64) -> Result<usize, KvCacheError> {
        let mut entry = self.seqs.remove(&seq_id).ok_or(KvCacheError::UnknownSequence(seq_id))?;
        let tokens = entry.table.num_tokens();
        let blocks = entry.table.take_blocks();
        self.pool_mut(entry.device).release_blocks(&blocks)?;
        Ok(tokens)
    }

    /// Moves a sequence's whole KV cache to the other device, returning the transfer stats.
    ///
    /// # Errors
    ///
    /// * [`KvCacheError::UnknownSequence`] if the id is not tracked.
    /// * [`KvCacheError::AlreadyOnDevice`] if it already lives on `to`.
    /// * [`KvCacheError::OutOfMemory`] if the destination pool cannot hold it (the
    ///   sequence stays untouched on its current device).
    pub fn swap(&mut self, seq_id: u64, to: Device) -> Result<SwapStats, KvCacheError> {
        let entry = self.seqs.get(&seq_id).ok_or(KvCacheError::UnknownSequence(seq_id))?;
        if entry.device == to {
            return Err(KvCacheError::AlreadyOnDevice { seq_id, device: to });
        }
        let tokens = entry.table.num_tokens();
        // Reserve space on the destination first so failure leaves the source intact.
        if to == Device::Gpu {
            self.ensure_gpu_free(tokens.div_ceil(self.config.block_size));
        }
        let new_blocks = self.pool_mut(to).allocate_tokens(tokens)?;
        let entry = self.seqs.get_mut(&seq_id).ok_or(KvCacheError::UnknownSequence(seq_id))?;
        let from = entry.device;
        let old_blocks = entry.table.take_blocks();
        entry.table.append(tokens, new_blocks)?;
        entry.device = to;
        self.pool_mut(from).release_blocks(&old_blocks)?;
        Ok(SwapStats {
            seq_id,
            tokens,
            bytes: tokens as u64 * self.config.kv_bytes_per_token as u64,
            to,
        })
    }

    /// Tries to serve the head of a new sequence's prompt from the prefix cache.
    ///
    /// `tokens` is the prompt's token identity (see [`crate::prefix::expand`]) and
    /// `max_tokens` caps how much may be adopted (callers pass `prompt_len - 1` so at
    /// least one token is always prefilled and the first output token is produced
    /// normally). On a hit the sequence is created on the GPU holding the shared blocks
    /// (refcounts bumped); a partially matching tail block is reused copy-on-write into
    /// one fresh private block. With `cached_tokens == 0` no sequence is created — the
    /// caller proceeds exactly as without a cache.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::DuplicateSequence`] if the id is already tracked.
    pub fn adopt_prefix(
        &mut self,
        seq_id: u64,
        tokens: &[Token],
        max_tokens: usize,
    ) -> Result<PrefixAdoption, KvCacheError> {
        if self.seqs.contains_key(&seq_id) {
            return Err(KvCacheError::DuplicateSequence(seq_id));
        }
        let bs = self.config.block_size;
        let hit = match self.prefix.as_mut() {
            Some(prefix) => prefix.lookup(tokens),
            None => return Ok(PrefixAdoption::default()),
        };
        let full_take = hit.blocks.len().min(max_tokens / bs);
        let leftover = max_tokens - full_take * bs;
        let mut partial_len = if leftover == 0 {
            0
        } else if full_take < hit.blocks.len() {
            // The cap cut into the full chain: reuse the next full block partially.
            leftover.min(bs)
        } else {
            hit.partial.map(|(_, len)| len.min(leftover)).unwrap_or(0)
        };
        let mut cow_blocks = Vec::new();
        if partial_len > 0 {
            self.ensure_gpu_free(1);
            match self.gpu.allocate_blocks(1) {
                Ok(b) => cow_blocks = b,
                Err(_) => partial_len = 0, // no room for the COW copy: drop the tail hit
            }
        }
        let cached = full_take * bs + partial_len;
        if cached == 0 {
            return Ok(PrefixAdoption::default());
        }
        let shared = hit.blocks[..full_take].to_vec();
        for &b in &shared {
            self.gpu.retain(b)?;
        }
        let mut table = BlockTable::new(bs);
        table.append(full_take * bs, shared)?;
        if partial_len > 0 {
            table.append(partial_len, cow_blocks)?;
        }
        self.seqs.insert(seq_id, SeqEntry { device: Device::Gpu, table });
        let splits = usize::from(partial_len > 0);
        self.prefix_hit_tokens += cached;
        self.cow_splits += splits;
        Ok(PrefixAdoption { cached_tokens: cached, cow_splits: splits })
    }

    /// Registers a prefilled GPU sequence's prompt blocks in the prefix cache so later
    /// requests can adopt them. `tokens` is the *prompt* token identity; only the first
    /// `min(tokens.len(), cached len)` tokens are indexed. No-op when the cache is
    /// disabled or the sequence lives off-GPU. Safe to call repeatedly: identical
    /// content is deduplicated.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownSequence`] if the id is not tracked.
    pub fn insert_prefix(&mut self, seq_id: u64, tokens: &[Token]) -> Result<(), KvCacheError> {
        let entry = self.seqs.get(&seq_id).ok_or(KvCacheError::UnknownSequence(seq_id))?;
        if entry.device != Device::Gpu {
            return Ok(());
        }
        let n = tokens.len().min(entry.table.num_tokens());
        let blocks: Vec<usize> = entry.table.blocks().to_vec();
        let Some(prefix) = self.prefix.as_mut() else { return Ok(()) };
        let outcome = prefix.insert(&tokens[..n], &blocks);
        for &b in &outcome.retained {
            self.gpu.retain(b)?;
        }
        for &b in &outcome.released {
            self.gpu.release_blocks(&[b])?;
        }
        Ok(())
    }

    /// Ids of all sequences currently resident on `device`, in ascending order.
    pub fn sequences_on(&self, device: Device) -> Vec<u64> {
        let mut ids: Vec<u64> =
            self.seqs.iter().filter(|(_, e)| e.device == device).map(|(&id, _)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// Per-rank occupancy of the GPU pool under a `tp`-way tensor-parallel sharding.
    ///
    /// Token counts are identical across ranks (every token is sharded over all of
    /// them); byte counts are each rank's `1/tp` shard of
    /// [`KvCacheConfig::kv_bytes_per_token`]. Block-granular, like the pool's own
    /// accounting.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero.
    pub fn rank_occupancy(&self, tp: usize) -> Vec<RankOccupancy> {
        assert!(tp >= 1, "tensor-parallel degree must be at least 1");
        let pool = self.pool(Device::Gpu);
        let shard_bytes_per_token = self.config.kv_bytes_per_token as u64 / tp as u64;
        // Index-only blocks are reclaimable on demand, so ranks report them as free.
        let evictable = self.evictable_tokens();
        let used = pool.used_tokens() - evictable;
        let free = pool.free_tokens() + evictable;
        (0..tp)
            .map(|rank| RankOccupancy {
                rank,
                used_tokens: used,
                free_tokens: free,
                used_bytes: used as u64 * shard_bytes_per_token,
                capacity_bytes: pool.capacity_tokens() as u64 * shard_bytes_per_token,
            })
            .collect()
    }

    /// Total cached tokens per device `(gpu_tokens, cpu_tokens)`, counting logical tokens.
    /// Disk-resident sequences are excluded; see [`Self::cached_tokens_on`].
    pub fn cached_tokens(&self) -> (usize, usize) {
        (self.cached_tokens_on(Device::Gpu), self.cached_tokens_on(Device::Cpu))
    }

    /// Total logical tokens of sequences resident on `device`.
    pub fn cached_tokens_on(&self, device: Device) -> usize {
        self.seqs.values().filter(|e| e.device == device).map(|e| e.table.num_tokens()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mgr(gpu: usize, cpu: usize) -> KvCacheManager {
        KvCacheManager::new(KvCacheConfig {
            block_size: 16,
            gpu_capacity_tokens: gpu,
            cpu_capacity_tokens: cpu,
            kv_bytes_per_token: 1024,
        })
    }

    #[test]
    fn allocate_append_free_cycle() {
        let mut m = mgr(256, 256);
        m.allocate_sequence(1, 100, Device::Gpu).unwrap();
        assert_eq!(m.device_of(1).unwrap(), Device::Gpu);
        assert_eq!(m.num_tokens_of(1).unwrap(), 100);
        m.append_tokens(1, 30).unwrap();
        assert_eq!(m.num_tokens_of(1).unwrap(), 130);
        let freed = m.free_sequence(1).unwrap();
        assert_eq!(freed, 130);
        assert_eq!(m.free_tokens(Device::Gpu), 256);
        assert!(m.device_of(1).is_err());
    }

    #[test]
    fn duplicate_allocation_is_rejected() {
        let mut m = mgr(256, 256);
        m.allocate_sequence(1, 10, Device::Gpu).unwrap();
        assert!(matches!(
            m.allocate_sequence(1, 10, Device::Cpu),
            Err(KvCacheError::DuplicateSequence(1))
        ));
    }

    #[test]
    fn gpu_exhaustion_reports_oom_and_leaves_state_clean() {
        let mut m = mgr(64, 256);
        m.allocate_sequence(1, 60, Device::Gpu).unwrap();
        let err = m.allocate_sequence(2, 32, Device::Gpu).unwrap_err();
        assert!(matches!(err, KvCacheError::OutOfMemory { device: Device::Gpu, .. }));
        // Sequence 2 must not be half-created.
        assert!(m.device_of(2).is_err());
        // And the CPU pool still works.
        m.allocate_sequence(2, 32, Device::Cpu).unwrap();
    }

    #[test]
    fn swap_moves_tokens_and_accounts_bytes() {
        let mut m = mgr(256, 256);
        m.allocate_sequence(5, 100, Device::Gpu).unwrap();
        let used_gpu_before = m.pool(Device::Gpu).used_tokens();
        let stats = m.swap(5, Device::Cpu).unwrap();
        assert_eq!(stats.tokens, 100);
        assert_eq!(stats.bytes, 100 * 1024);
        assert_eq!(stats.to, Device::Cpu);
        assert_eq!(m.device_of(5).unwrap(), Device::Cpu);
        assert_eq!(m.num_tokens_of(5).unwrap(), 100);
        assert_eq!(m.pool(Device::Gpu).used_tokens(), used_gpu_before - 112); // 7 blocks

        // Swapping back also works.
        let back = m.swap(5, Device::Gpu).unwrap();
        assert_eq!(back.to, Device::Gpu);
    }

    #[test]
    fn swap_to_same_device_is_rejected() {
        let mut m = mgr(256, 256);
        m.allocate_sequence(5, 10, Device::Gpu).unwrap();
        assert!(matches!(
            m.swap(5, Device::Gpu),
            Err(KvCacheError::AlreadyOnDevice { seq_id: 5, device: Device::Gpu })
        ));
    }

    #[test]
    fn swap_to_full_destination_keeps_source_intact() {
        let mut m = mgr(256, 32);
        m.allocate_sequence(5, 100, Device::Gpu).unwrap();
        let err = m.swap(5, Device::Cpu).unwrap_err();
        assert!(matches!(err, KvCacheError::OutOfMemory { device: Device::Cpu, .. }));
        assert_eq!(m.device_of(5).unwrap(), Device::Gpu);
        assert_eq!(m.num_tokens_of(5).unwrap(), 100);
    }

    #[test]
    fn sequences_on_filters_by_device() {
        let mut m = mgr(256, 256);
        m.allocate_sequence(1, 10, Device::Gpu).unwrap();
        m.allocate_sequence(2, 10, Device::Cpu).unwrap();
        m.allocate_sequence(3, 10, Device::Gpu).unwrap();
        assert_eq!(m.sequences_on(Device::Gpu), vec![1, 3]);
        assert_eq!(m.sequences_on(Device::Cpu), vec![2]);
        assert_eq!(m.cached_tokens(), (20, 10));
    }

    #[test]
    fn rank_occupancy_shards_bytes_not_tokens() {
        let mut m = mgr(256, 256);
        m.allocate_sequence(1, 100, Device::Gpu).unwrap(); // 7 blocks = 112 tokens
        m.allocate_sequence(2, 10, Device::Cpu).unwrap(); // CPU tokens are not per-rank
        let ranks = m.rank_occupancy(2);
        assert_eq!(ranks.len(), 2);
        for (i, r) in ranks.iter().enumerate() {
            assert_eq!(r.rank, i);
            // Every rank caches a shard of every GPU token: token counts match the pool.
            assert_eq!(r.used_tokens, m.pool(Device::Gpu).used_tokens());
            assert_eq!(r.free_tokens, m.free_tokens(Device::Gpu));
            // Bytes are the 1/tp shard.
            assert_eq!(r.used_bytes, r.used_tokens as u64 * 1024 / 2);
            assert_eq!(r.capacity_bytes, 256 * 1024 / 2);
        }
        // tp = 1 degenerates to the whole-pool view.
        let solo = m.rank_occupancy(1);
        assert_eq!(solo.len(), 1);
        assert_eq!(solo[0].used_bytes, solo[0].used_tokens as u64 * 1024);
    }

    #[test]
    fn append_to_unknown_sequence_fails() {
        let mut m = mgr(64, 64);
        assert!(matches!(m.append_tokens(42, 1), Err(KvCacheError::UnknownSequence(42))));
    }

    fn pmgr(gpu: usize, cpu: usize) -> KvCacheManager {
        KvCacheManager::with_features(
            KvCacheConfig {
                block_size: 16,
                gpu_capacity_tokens: gpu,
                cpu_capacity_tokens: cpu,
                kv_bytes_per_token: 1024,
            },
            true,
            0,
        )
    }

    fn prompt(id: u64, len: usize) -> Vec<Token> {
        crate::prefix::expand(&[crate::prefix::TokenRun { id, len }])
    }

    #[test]
    fn adopting_a_cached_prefix_shares_blocks_copy_on_write() {
        let mut m = pmgr(320, 320);
        let toks = prompt(7, 100);
        m.allocate_sequence(1, 100, Device::Gpu).unwrap();
        m.insert_prefix(1, &toks).unwrap();
        // 100 tokens = 6 full blocks (96) + a 4-token tail. Capped at 99, the adopter
        // shares the 6 full blocks and COW-copies 3 tokens of the tail.
        let a = m.adopt_prefix(2, &toks, 99).unwrap();
        assert_eq!(a, PrefixAdoption { cached_tokens: 99, cow_splits: 1 });
        assert_eq!(m.num_tokens_of(2).unwrap(), 99);
        assert_eq!(m.device_of(2).unwrap(), Device::Gpu);
        // The shared full blocks are the same physical blocks, three ways referenced
        // (owner + adopter + index); the COW tail is private.
        let t1: Vec<usize> = m.block_table(1).unwrap().blocks().to_vec();
        let t2: Vec<usize> = m.block_table(2).unwrap().blocks().to_vec();
        assert_eq!(&t1[..6], &t2[..6]);
        assert_ne!(t1[6], t2[6]);
        for &b in &t1[..6] {
            assert_eq!(m.pool(Device::Gpu).ref_count(b).unwrap(), 3);
        }
        assert_eq!(m.pool(Device::Gpu).ref_count(t2[6]).unwrap(), 1);
        assert_eq!(m.prefix_hit_tokens(), 99);
        assert_eq!(m.cow_splits(), 1);
        // Freeing both sequences leaves only index references; everything is evictable
        // and thus reported free, but physically still cached.
        m.free_sequence(1).unwrap();
        m.free_sequence(2).unwrap();
        assert_eq!(m.evictable_tokens(), 7 * 16);
        assert_eq!(m.free_tokens(Device::Gpu), 320);
        assert!(m.pool(Device::Gpu).used_tokens() > 0);
    }

    #[test]
    fn adoption_with_no_hit_creates_nothing() {
        let mut m = pmgr(320, 320);
        let a = m.adopt_prefix(9, &prompt(1, 50), 49).unwrap();
        assert_eq!(a, PrefixAdoption::default());
        assert!(m.device_of(9).is_err());
        assert_eq!(m.num_sequences(), 0);
        // Duplicate ids are still rejected.
        m.allocate_sequence(9, 10, Device::Gpu).unwrap();
        assert!(matches!(
            m.adopt_prefix(9, &prompt(1, 50), 49),
            Err(KvCacheError::DuplicateSequence(9))
        ));
    }

    #[test]
    fn allocation_pressure_evicts_index_only_blocks_transparently() {
        let mut m = pmgr(64, 320); // 4 GPU blocks
        let toks = prompt(1, 64);
        m.allocate_sequence(1, 64, Device::Gpu).unwrap();
        m.insert_prefix(1, &toks).unwrap();
        // Swapping the owner out leaves the whole chain index-only on the GPU.
        m.swap(1, Device::Cpu).unwrap();
        assert_eq!(m.pool(Device::Gpu).free_tokens(), 0);
        assert_eq!(m.evictable_tokens(), 64);
        assert_eq!(m.free_tokens(Device::Gpu), 64);
        assert!(m.can_allocate(Device::Gpu, 64));
        // A new allocation evicts just enough cached blocks (leaf-first).
        m.allocate_sequence(2, 40, Device::Gpu).unwrap();
        assert_eq!(m.evictable_tokens(), 16, "one cached block survives");
        assert_eq!(m.free_tokens(Device::Gpu), 16);
        // Swapping seq 1 back needs 4 blocks; even after evicting the last cached
        // block only 1 is free, so the swap fails typed and the source is intact.
        let err = m.swap(1, Device::Gpu).unwrap_err();
        assert!(matches!(err, KvCacheError::OutOfMemory { device: Device::Gpu, .. }));
        assert_eq!(m.device_of(1).unwrap(), Device::Cpu);
        assert_eq!(m.num_tokens_of(1).unwrap(), 64);
        assert_eq!(m.evictable_tokens(), 0, "the failed swap still reclaimed the cache");
    }

    #[test]
    fn disk_tier_swaps_round_trip_and_respect_capacity() {
        let cfg = KvCacheConfig {
            block_size: 16,
            gpu_capacity_tokens: 256,
            cpu_capacity_tokens: 320,
            kv_bytes_per_token: 1024,
        };
        let mut m = KvCacheManager::with_features(cfg, false, 64);
        m.allocate_sequence(1, 50, Device::Gpu).unwrap();
        m.swap(1, Device::Cpu).unwrap();
        let stats = m.swap(1, Device::Disk).unwrap();
        assert_eq!((stats.tokens, stats.to), (50, Device::Disk));
        assert_eq!(stats.bytes, 50 * 1024);
        assert_eq!(m.sequences_on(Device::Disk), vec![1]);
        assert_eq!(m.cached_tokens(), (0, 0), "disk tokens are not GPU/CPU cached");
        assert_eq!(m.cached_tokens_on(Device::Disk), 50);
        // Promotion back to the CPU cache.
        m.swap(1, Device::Cpu).unwrap();
        assert_eq!(m.device_of(1).unwrap(), Device::Cpu);
        assert_eq!(m.pool(Device::Disk).used_tokens(), 0);
        // A sequence bigger than the disk tier is refused, source intact.
        m.allocate_sequence(2, 100, Device::Cpu).unwrap();
        let err = m.swap(2, Device::Disk).unwrap_err();
        assert!(matches!(err, KvCacheError::OutOfMemory { device: Device::Disk, .. }));
        assert_eq!(m.device_of(2).unwrap(), Device::Cpu);
    }

    #[test]
    fn default_manager_has_no_disk_and_no_prefix_cache() {
        let mut m = mgr(256, 256);
        assert!(!m.prefix_enabled());
        assert_eq!(m.pool(Device::Disk).capacity_tokens(), 0);
        m.allocate_sequence(1, 10, Device::Cpu).unwrap();
        assert!(matches!(
            m.swap(1, Device::Disk),
            Err(KvCacheError::OutOfMemory { device: Device::Disk, .. })
        ));
        // insert/adopt degrade to no-ops.
        m.insert_prefix(1, &prompt(1, 10)).unwrap();
        let a = m.adopt_prefix(2, &prompt(1, 10), 9).unwrap();
        assert_eq!(a, PrefixAdoption::default());
        assert_eq!(m.prefix_blocks(), Vec::<usize>::new());
    }

    proptest! {
        /// Pool accounting stays exact under random allocate / append / free / swap
        /// sequences: used + free == capacity on both pools, and the sum of logical tokens
        /// never exceeds used block capacity.
        #[test]
        fn prop_pool_accounting(ops in proptest::collection::vec((0u8..4, 1u64..6, 1usize..50), 1..120)) {
            let mut m = mgr(320, 640);
            for (op, id, n) in ops {
                match op {
                    0 => { let _ = m.allocate_sequence(id, n, Device::Gpu); }
                    1 => { let _ = m.allocate_sequence(id, n, Device::Cpu); }
                    2 => { let _ = m.append_tokens(id, n.min(8)); }
                    _ => {
                        if let Ok(dev) = m.device_of(id) {
                            let _ = m.swap(id, dev.other());
                        } else {
                            let _ = m.free_sequence(id);
                        }
                    }
                }
                for dev in [Device::Gpu, Device::Cpu] {
                    let p = m.pool(dev);
                    prop_assert_eq!(p.used_tokens() + p.free_tokens(), p.capacity_tokens());
                }
                let (gpu_logical, cpu_logical) = m.cached_tokens();
                prop_assert!(gpu_logical <= m.pool(Device::Gpu).used_tokens());
                prop_assert!(cpu_logical <= m.pool(Device::Cpu).used_tokens());
            }
            // Freeing everything returns both pools to pristine state.
            let ids: Vec<u64> = (1..6).collect();
            for id in ids {
                let _ = m.free_sequence(id);
            }
            prop_assert_eq!(m.pool(Device::Gpu).used_tokens(), 0);
            prop_assert_eq!(m.pool(Device::Cpu).used_tokens(), 0);
        }
    }
}
