//! Two-pool (GPU-cache + CPU-cache) sequence-level manager.
//!
//! This is the accounting heart of NEO's partial offloading: every prefilled sequence owns
//! a block table on exactly one device, the scheduler asks "can I fit these new tokens on
//! the GPU?" / "how many tokens must I swap out?", and swaps move a whole sequence between
//! pools while reporting the bytes that crossed PCIe (so the cost model can charge for it).

use std::collections::HashMap;

use crate::blocktable::BlockTable;
use crate::error::KvCacheError;
use crate::pool::{Device, KvPool};

/// Configuration of the two KV pools.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvCacheConfig {
    /// Tokens per block.
    pub block_size: usize,
    /// GPU pool capacity in tokens.
    pub gpu_capacity_tokens: usize,
    /// CPU pool capacity in tokens.
    pub cpu_capacity_tokens: usize,
    /// Bytes of KV cache one token occupies across all layers (for swap byte accounting).
    pub kv_bytes_per_token: usize,
}

/// Statistics of one swap operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapStats {
    /// Sequence that was moved.
    pub seq_id: u64,
    /// Tokens whose KV entries were moved.
    pub tokens: usize,
    /// Bytes moved across PCIe (all layers).
    pub bytes: u64,
    /// Direction of the move.
    pub to: Device,
}

/// Occupancy of the GPU KV pool as seen by one tensor-parallel rank.
///
/// Every token's KV entries are sharded `1/tp` per rank, so each rank caches the same
/// *token count* as the group but only its shard of the *bytes*. This view is what
/// capacity dashboards and TP-aware policies consume instead of group-level token
/// totals: the pool is full exactly when the tightest rank's shard budget is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankOccupancy {
    /// Rank index within the tensor-parallel group (`0..tp`).
    pub rank: usize,
    /// Tokens whose KV shard this rank currently caches (block-granular, like
    /// [`KvPool::used_tokens`]).
    pub used_tokens: usize,
    /// Tokens this rank can still accept.
    pub free_tokens: usize,
    /// Bytes of KV shard currently resident on this rank.
    pub used_bytes: u64,
    /// Total bytes of KV shard this rank can hold.
    pub capacity_bytes: u64,
}

/// Per-sequence record kept by the manager.
#[derive(Debug, Clone)]
struct SeqEntry {
    device: Device,
    table: BlockTable,
}

/// The GPU + CPU paged KV cache manager.
#[derive(Debug, Clone)]
pub struct KvCacheManager {
    config: KvCacheConfig,
    gpu: KvPool,
    cpu: KvPool,
    seqs: HashMap<u64, SeqEntry>,
}

impl KvCacheManager {
    /// Creates a manager with the given pool configuration.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero (propagated from [`KvPool::new`]).
    pub fn new(config: KvCacheConfig) -> Self {
        Self {
            gpu: KvPool::new(Device::Gpu, config.gpu_capacity_tokens, config.block_size),
            cpu: KvPool::new(Device::Cpu, config.cpu_capacity_tokens, config.block_size),
            config,
            seqs: HashMap::new(),
        }
    }

    /// The configuration this manager was created with.
    pub fn config(&self) -> &KvCacheConfig {
        &self.config
    }

    /// The pool for `device`.
    pub fn pool(&self, device: Device) -> &KvPool {
        match device {
            Device::Gpu => &self.gpu,
            Device::Cpu => &self.cpu,
        }
    }

    fn pool_mut(&mut self, device: Device) -> &mut KvPool {
        match device {
            Device::Gpu => &mut self.gpu,
            Device::Cpu => &mut self.cpu,
        }
    }

    /// Number of sequences currently tracked.
    pub fn num_sequences(&self) -> usize {
        self.seqs.len()
    }

    /// Device a sequence currently resides on.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownSequence`] if the sequence is not tracked.
    pub fn device_of(&self, seq_id: u64) -> Result<Device, KvCacheError> {
        self.seqs.get(&seq_id).map(|e| e.device).ok_or(KvCacheError::UnknownSequence(seq_id))
    }

    /// Number of cached tokens of a sequence.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownSequence`] if the sequence is not tracked.
    pub fn num_tokens_of(&self, seq_id: u64) -> Result<usize, KvCacheError> {
        self.seqs
            .get(&seq_id)
            .map(|e| e.table.num_tokens())
            .ok_or(KvCacheError::UnknownSequence(seq_id))
    }

    /// The block table of a sequence (for the functional kernels).
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownSequence`] if the sequence is not tracked.
    pub fn block_table(&self, seq_id: u64) -> Result<&BlockTable, KvCacheError> {
        self.seqs.get(&seq_id).map(|e| &e.table).ok_or(KvCacheError::UnknownSequence(seq_id))
    }

    /// Free token capacity of a device's pool.
    pub fn free_tokens(&self, device: Device) -> usize {
        self.pool(device).free_tokens()
    }

    /// Whether `n_tokens` new tokens can be placed on `device` right now.
    pub fn can_allocate(&self, device: Device, n_tokens: usize) -> bool {
        self.pool(device).can_allocate(n_tokens)
    }

    /// Allocates a new sequence of `n_tokens` tokens (its prefill KV) on `device`.
    ///
    /// # Errors
    ///
    /// * [`KvCacheError::DuplicateSequence`] if the id is already tracked.
    /// * [`KvCacheError::OutOfMemory`] if the pool cannot hold the tokens.
    pub fn allocate_sequence(
        &mut self,
        seq_id: u64,
        n_tokens: usize,
        device: Device,
    ) -> Result<(), KvCacheError> {
        if self.seqs.contains_key(&seq_id) {
            return Err(KvCacheError::DuplicateSequence(seq_id));
        }
        let block_size = self.config.block_size;
        let blocks = self.pool_mut(device).allocate_tokens(n_tokens)?;
        let mut table = BlockTable::new(block_size);
        table.append(n_tokens, blocks).expect("block count from allocate_tokens matches");
        self.seqs.insert(seq_id, SeqEntry { device, table });
        Ok(())
    }

    /// Appends `n_tokens` decode tokens to an existing sequence on its current device.
    ///
    /// # Errors
    ///
    /// * [`KvCacheError::UnknownSequence`] if the id is not tracked.
    /// * [`KvCacheError::OutOfMemory`] if the device pool is full (sequence unchanged).
    pub fn append_tokens(&mut self, seq_id: u64, n_tokens: usize) -> Result<(), KvCacheError> {
        let entry = self.seqs.get(&seq_id).ok_or(KvCacheError::UnknownSequence(seq_id))?;
        let device = entry.device;
        let needed = entry.table.blocks_needed_for_append(n_tokens);
        let blocks = self.pool_mut(device).allocate_blocks(needed)?;
        let entry = self.seqs.get_mut(&seq_id).expect("checked above");
        entry.table.append(n_tokens, blocks).expect("block count matches");
        Ok(())
    }

    /// Releases a sequence and returns how many tokens' worth of cache it freed.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownSequence`] if the id is not tracked.
    pub fn free_sequence(&mut self, seq_id: u64) -> Result<usize, KvCacheError> {
        let mut entry = self.seqs.remove(&seq_id).ok_or(KvCacheError::UnknownSequence(seq_id))?;
        let tokens = entry.table.num_tokens();
        let blocks = entry.table.take_blocks();
        self.pool_mut(entry.device).release_blocks(&blocks)?;
        Ok(tokens)
    }

    /// Moves a sequence's whole KV cache to the other device, returning the transfer stats.
    ///
    /// # Errors
    ///
    /// * [`KvCacheError::UnknownSequence`] if the id is not tracked.
    /// * [`KvCacheError::AlreadyOnDevice`] if it already lives on `to`.
    /// * [`KvCacheError::OutOfMemory`] if the destination pool cannot hold it (the
    ///   sequence stays untouched on its current device).
    pub fn swap(&mut self, seq_id: u64, to: Device) -> Result<SwapStats, KvCacheError> {
        let entry = self.seqs.get(&seq_id).ok_or(KvCacheError::UnknownSequence(seq_id))?;
        if entry.device == to {
            return Err(KvCacheError::AlreadyOnDevice { seq_id, device: to });
        }
        let tokens = entry.table.num_tokens();
        // Reserve space on the destination first so failure leaves the source intact.
        let new_blocks = self.pool_mut(to).allocate_tokens(tokens)?;
        let entry = self.seqs.get_mut(&seq_id).expect("checked above");
        let from = entry.device;
        let old_blocks = entry.table.take_blocks();
        entry.table.append(tokens, new_blocks).expect("block count matches");
        entry.device = to;
        self.pool_mut(from).release_blocks(&old_blocks)?;
        Ok(SwapStats {
            seq_id,
            tokens,
            bytes: tokens as u64 * self.config.kv_bytes_per_token as u64,
            to,
        })
    }

    /// Ids of all sequences currently resident on `device`, in ascending order.
    pub fn sequences_on(&self, device: Device) -> Vec<u64> {
        let mut ids: Vec<u64> =
            self.seqs.iter().filter(|(_, e)| e.device == device).map(|(&id, _)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// Per-rank occupancy of the GPU pool under a `tp`-way tensor-parallel sharding.
    ///
    /// Token counts are identical across ranks (every token is sharded over all of
    /// them); byte counts are each rank's `1/tp` shard of
    /// [`KvCacheConfig::kv_bytes_per_token`]. Block-granular, like the pool's own
    /// accounting.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero.
    pub fn rank_occupancy(&self, tp: usize) -> Vec<RankOccupancy> {
        assert!(tp >= 1, "tensor-parallel degree must be at least 1");
        let pool = self.pool(Device::Gpu);
        let shard_bytes_per_token = self.config.kv_bytes_per_token as u64 / tp as u64;
        (0..tp)
            .map(|rank| RankOccupancy {
                rank,
                used_tokens: pool.used_tokens(),
                free_tokens: pool.free_tokens(),
                used_bytes: pool.used_tokens() as u64 * shard_bytes_per_token,
                capacity_bytes: pool.capacity_tokens() as u64 * shard_bytes_per_token,
            })
            .collect()
    }

    /// Total cached tokens per device `(gpu_tokens, cpu_tokens)`, counting logical tokens.
    pub fn cached_tokens(&self) -> (usize, usize) {
        let mut gpu = 0;
        let mut cpu = 0;
        for e in self.seqs.values() {
            match e.device {
                Device::Gpu => gpu += e.table.num_tokens(),
                Device::Cpu => cpu += e.table.num_tokens(),
            }
        }
        (gpu, cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mgr(gpu: usize, cpu: usize) -> KvCacheManager {
        KvCacheManager::new(KvCacheConfig {
            block_size: 16,
            gpu_capacity_tokens: gpu,
            cpu_capacity_tokens: cpu,
            kv_bytes_per_token: 1024,
        })
    }

    #[test]
    fn allocate_append_free_cycle() {
        let mut m = mgr(256, 256);
        m.allocate_sequence(1, 100, Device::Gpu).unwrap();
        assert_eq!(m.device_of(1).unwrap(), Device::Gpu);
        assert_eq!(m.num_tokens_of(1).unwrap(), 100);
        m.append_tokens(1, 30).unwrap();
        assert_eq!(m.num_tokens_of(1).unwrap(), 130);
        let freed = m.free_sequence(1).unwrap();
        assert_eq!(freed, 130);
        assert_eq!(m.free_tokens(Device::Gpu), 256);
        assert!(m.device_of(1).is_err());
    }

    #[test]
    fn duplicate_allocation_is_rejected() {
        let mut m = mgr(256, 256);
        m.allocate_sequence(1, 10, Device::Gpu).unwrap();
        assert!(matches!(
            m.allocate_sequence(1, 10, Device::Cpu),
            Err(KvCacheError::DuplicateSequence(1))
        ));
    }

    #[test]
    fn gpu_exhaustion_reports_oom_and_leaves_state_clean() {
        let mut m = mgr(64, 256);
        m.allocate_sequence(1, 60, Device::Gpu).unwrap();
        let err = m.allocate_sequence(2, 32, Device::Gpu).unwrap_err();
        assert!(matches!(err, KvCacheError::OutOfMemory { device: Device::Gpu, .. }));
        // Sequence 2 must not be half-created.
        assert!(m.device_of(2).is_err());
        // And the CPU pool still works.
        m.allocate_sequence(2, 32, Device::Cpu).unwrap();
    }

    #[test]
    fn swap_moves_tokens_and_accounts_bytes() {
        let mut m = mgr(256, 256);
        m.allocate_sequence(5, 100, Device::Gpu).unwrap();
        let used_gpu_before = m.pool(Device::Gpu).used_tokens();
        let stats = m.swap(5, Device::Cpu).unwrap();
        assert_eq!(stats.tokens, 100);
        assert_eq!(stats.bytes, 100 * 1024);
        assert_eq!(stats.to, Device::Cpu);
        assert_eq!(m.device_of(5).unwrap(), Device::Cpu);
        assert_eq!(m.num_tokens_of(5).unwrap(), 100);
        assert_eq!(m.pool(Device::Gpu).used_tokens(), used_gpu_before - 112); // 7 blocks

        // Swapping back also works.
        let back = m.swap(5, Device::Gpu).unwrap();
        assert_eq!(back.to, Device::Gpu);
    }

    #[test]
    fn swap_to_same_device_is_rejected() {
        let mut m = mgr(256, 256);
        m.allocate_sequence(5, 10, Device::Gpu).unwrap();
        assert!(matches!(
            m.swap(5, Device::Gpu),
            Err(KvCacheError::AlreadyOnDevice { seq_id: 5, device: Device::Gpu })
        ));
    }

    #[test]
    fn swap_to_full_destination_keeps_source_intact() {
        let mut m = mgr(256, 32);
        m.allocate_sequence(5, 100, Device::Gpu).unwrap();
        let err = m.swap(5, Device::Cpu).unwrap_err();
        assert!(matches!(err, KvCacheError::OutOfMemory { device: Device::Cpu, .. }));
        assert_eq!(m.device_of(5).unwrap(), Device::Gpu);
        assert_eq!(m.num_tokens_of(5).unwrap(), 100);
    }

    #[test]
    fn sequences_on_filters_by_device() {
        let mut m = mgr(256, 256);
        m.allocate_sequence(1, 10, Device::Gpu).unwrap();
        m.allocate_sequence(2, 10, Device::Cpu).unwrap();
        m.allocate_sequence(3, 10, Device::Gpu).unwrap();
        assert_eq!(m.sequences_on(Device::Gpu), vec![1, 3]);
        assert_eq!(m.sequences_on(Device::Cpu), vec![2]);
        assert_eq!(m.cached_tokens(), (20, 10));
    }

    #[test]
    fn rank_occupancy_shards_bytes_not_tokens() {
        let mut m = mgr(256, 256);
        m.allocate_sequence(1, 100, Device::Gpu).unwrap(); // 7 blocks = 112 tokens
        m.allocate_sequence(2, 10, Device::Cpu).unwrap(); // CPU tokens are not per-rank
        let ranks = m.rank_occupancy(2);
        assert_eq!(ranks.len(), 2);
        for (i, r) in ranks.iter().enumerate() {
            assert_eq!(r.rank, i);
            // Every rank caches a shard of every GPU token: token counts match the pool.
            assert_eq!(r.used_tokens, m.pool(Device::Gpu).used_tokens());
            assert_eq!(r.free_tokens, m.free_tokens(Device::Gpu));
            // Bytes are the 1/tp shard.
            assert_eq!(r.used_bytes, r.used_tokens as u64 * 1024 / 2);
            assert_eq!(r.capacity_bytes, 256 * 1024 / 2);
        }
        // tp = 1 degenerates to the whole-pool view.
        let solo = m.rank_occupancy(1);
        assert_eq!(solo.len(), 1);
        assert_eq!(solo[0].used_bytes, solo[0].used_tokens as u64 * 1024);
    }

    #[test]
    fn append_to_unknown_sequence_fails() {
        let mut m = mgr(64, 64);
        assert!(matches!(m.append_tokens(42, 1), Err(KvCacheError::UnknownSequence(42))));
    }

    proptest! {
        /// Pool accounting stays exact under random allocate / append / free / swap
        /// sequences: used + free == capacity on both pools, and the sum of logical tokens
        /// never exceeds used block capacity.
        #[test]
        fn prop_pool_accounting(ops in proptest::collection::vec((0u8..4, 1u64..6, 1usize..50), 1..120)) {
            let mut m = mgr(320, 640);
            for (op, id, n) in ops {
                match op {
                    0 => { let _ = m.allocate_sequence(id, n, Device::Gpu); }
                    1 => { let _ = m.allocate_sequence(id, n, Device::Cpu); }
                    2 => { let _ = m.append_tokens(id, n.min(8)); }
                    _ => {
                        if let Ok(dev) = m.device_of(id) {
                            let _ = m.swap(id, dev.other());
                        } else {
                            let _ = m.free_sequence(id);
                        }
                    }
                }
                for dev in [Device::Gpu, Device::Cpu] {
                    let p = m.pool(dev);
                    prop_assert_eq!(p.used_tokens() + p.free_tokens(), p.capacity_tokens());
                }
                let (gpu_logical, cpu_logical) = m.cached_tokens();
                prop_assert!(gpu_logical <= m.pool(Device::Gpu).used_tokens());
                prop_assert!(cpu_logical <= m.pool(Device::Cpu).used_tokens());
            }
            // Freeing everything returns both pools to pristine state.
            let ids: Vec<u64> = (1..6).collect();
            for id in ids {
                let _ = m.free_sequence(id);
            }
            prop_assert_eq!(m.pool(Device::Gpu).used_tokens(), 0);
            prop_assert_eq!(m.pool(Device::Cpu).used_tokens(), 0);
        }
    }
}
