//! Physical paged storage of KV vectors, used by the functional attention kernels.
//!
//! The simulation path of this reproduction only needs block *accounting*
//! ([`crate::manager::KvCacheManager`]); the functional path (`neo-kernels` / `neo-model`)
//! additionally needs the actual numbers. [`PagedStorage`] is that backing store: a flat
//! `f32` buffer per layer organised as `[block, slot, kv_head, head_dim]`, addressed
//! through the same block tables the manager maintains — exactly the layout the paper's
//! PACPU kernel reads.

use crate::blocktable::BlockTable;
use crate::error::KvCacheError;

/// Physical K/V storage for one transformer layer on one device.
#[derive(Debug, Clone)]
pub struct PagedStorage {
    num_blocks: usize,
    block_size: usize,
    n_kv_heads: usize,
    head_dim: usize,
    k: Vec<f32>,
    v: Vec<f32>,
}

impl PagedStorage {
    /// Allocates storage for `num_blocks` blocks of `block_size` tokens each, with
    /// `n_kv_heads` KV heads of dimension `head_dim`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(num_blocks: usize, block_size: usize, n_kv_heads: usize, head_dim: usize) -> Self {
        assert!(block_size > 0 && n_kv_heads > 0 && head_dim > 0, "dimensions must be positive");
        let elems = num_blocks * block_size * n_kv_heads * head_dim;
        Self {
            num_blocks,
            block_size,
            n_kv_heads,
            head_dim,
            k: vec![0.0; elems],
            v: vec![0.0; elems],
        }
    }

    /// Number of `f32` elements one token's K (or V) entry occupies.
    pub fn token_stride(&self) -> usize {
        self.n_kv_heads * self.head_dim
    }

    /// Number of `f32` elements one block's K (or V) entries occupy.
    pub fn block_stride(&self) -> usize {
        self.block_size * self.token_stride()
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of KV heads stored per token.
    pub fn n_kv_heads(&self) -> usize {
        self.n_kv_heads
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Number of physical blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    fn offset(&self, block: usize, slot: usize) -> Result<usize, KvCacheError> {
        if block >= self.num_blocks {
            return Err(KvCacheError::InvalidBlock { block, pool_blocks: self.num_blocks });
        }
        if slot >= self.block_size {
            return Err(KvCacheError::InvalidBlock { block: slot, pool_blocks: self.block_size });
        }
        Ok(block * self.block_stride() + slot * self.token_stride())
    }

    /// Writes one token's K and V vectors (each `n_kv_heads * head_dim` long) into
    /// physical `(block, slot)`.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidBlock`] on out-of-range coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `v` has the wrong length.
    pub fn write_token(
        &mut self,
        block: usize,
        slot: usize,
        k: &[f32],
        v: &[f32],
    ) -> Result<(), KvCacheError> {
        let stride = self.token_stride();
        assert_eq!(k.len(), stride, "k vector has wrong length");
        assert_eq!(v.len(), stride, "v vector has wrong length");
        let off = self.offset(block, slot)?;
        self.k[off..off + stride].copy_from_slice(k);
        self.v[off..off + stride].copy_from_slice(v);
        Ok(())
    }

    /// Reads one token's K vector.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidBlock`] on out-of-range coordinates.
    pub fn read_k(&self, block: usize, slot: usize) -> Result<&[f32], KvCacheError> {
        let off = self.offset(block, slot)?;
        Ok(&self.k[off..off + self.token_stride()])
    }

    /// Reads one token's V vector.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidBlock`] on out-of-range coordinates.
    pub fn read_v(&self, block: usize, slot: usize) -> Result<&[f32], KvCacheError> {
        let off = self.offset(block, slot)?;
        Ok(&self.v[off..off + self.token_stride()])
    }

    /// The full K buffer (for kernels that index blocks themselves).
    pub fn k_data(&self) -> &[f32] {
        &self.k
    }

    /// The full V buffer (for kernels that index blocks themselves).
    pub fn v_data(&self) -> &[f32] {
        &self.v
    }

    /// Copies a whole sequence's KV entries from `src` (read through `src_table`) into
    /// `self` (written through `dst_table`). This is the functional analogue of a PCIe
    /// swap: same logical content, different physical blocks / device.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidBlock`] if either table addresses storage out of
    /// range, or if the tables have different logical lengths.
    pub fn copy_sequence_from(
        &mut self,
        src: &PagedStorage,
        src_table: &BlockTable,
        dst_table: &BlockTable,
    ) -> Result<(), KvCacheError> {
        if src_table.num_tokens() != dst_table.num_tokens() {
            return Err(KvCacheError::InvalidBlock {
                block: dst_table.num_tokens(),
                pool_blocks: src_table.num_tokens(),
            });
        }
        for i in 0..src_table.num_tokens() {
            let (sb, ss) = src_table.locate(i)?;
            let (db, ds) = dst_table.locate(i)?;
            let k: Vec<f32> = src.read_k(sb, ss)?.to_vec();
            let v: Vec<f32> = src.read_v(sb, ss)?.to_vec();
            self.write_token(db, ds, &k, &v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage() -> PagedStorage {
        PagedStorage::new(4, 2, 2, 3)
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut s = storage();
        let k: Vec<f32> = (0..6).map(|x| x as f32).collect();
        let v: Vec<f32> = (10..16).map(|x| x as f32).collect();
        s.write_token(1, 1, &k, &v).unwrap();
        assert_eq!(s.read_k(1, 1).unwrap(), &k[..]);
        assert_eq!(s.read_v(1, 1).unwrap(), &v[..]);
        // Other slots untouched.
        assert!(s.read_k(1, 0).unwrap().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn out_of_range_access_is_an_error() {
        let s = storage();
        assert!(s.read_k(4, 0).is_err());
        assert!(s.read_k(0, 2).is_err());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_vector_length_panics() {
        let mut s = storage();
        s.write_token(0, 0, &[1.0], &[1.0]).unwrap();
    }

    #[test]
    fn copy_sequence_between_storages_preserves_content() {
        let mut gpu = PagedStorage::new(8, 2, 2, 3);
        let mut cpu = PagedStorage::new(8, 2, 2, 3);
        let mut src_table = BlockTable::new(2);
        src_table.append(3, vec![5, 6]).unwrap();
        let mut dst_table = BlockTable::new(2);
        dst_table.append(3, vec![0, 1]).unwrap();

        for i in 0..3usize {
            let (b, s) = src_table.locate(i).unwrap();
            let k = vec![i as f32; 6];
            let v = vec![i as f32 + 100.0; 6];
            gpu.write_token(b, s, &k, &v).unwrap();
        }
        cpu.copy_sequence_from(&gpu, &src_table, &dst_table).unwrap();
        for i in 0..3usize {
            let (b, s) = dst_table.locate(i).unwrap();
            assert_eq!(cpu.read_k(b, s).unwrap()[0], i as f32);
            assert_eq!(cpu.read_v(b, s).unwrap()[0], i as f32 + 100.0);
        }
    }

    #[test]
    fn copy_sequence_length_mismatch_is_rejected() {
        let gpu = PagedStorage::new(2, 2, 2, 3);
        let mut cpu = PagedStorage::new(2, 2, 2, 3);
        let mut a = BlockTable::new(2);
        a.append(2, vec![0]).unwrap();
        let b = BlockTable::new(2);
        assert!(cpu.copy_sequence_from(&gpu, &a, &b).is_err());
    }

    #[test]
    fn strides_are_consistent() {
        let s = storage();
        assert_eq!(s.token_stride(), 6);
        assert_eq!(s.block_stride(), 12);
        assert_eq!(s.k_data().len(), 48);
        assert_eq!(s.v_data().len(), 48);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = PagedStorage::new(1, 0, 2, 3);
    }
}
