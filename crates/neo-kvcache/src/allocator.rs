//! Reference-counted free-list block allocator.
//!
//! Both the GPU-cache and the CPU-cache hand out fixed-size blocks of `block_size` tokens.
//! The allocator keeps a LIFO free list (so recently freed — likely cache-warm — blocks are
//! reused first) and a per-block reference count, which supports future prefix-sharing use
//! cases and catches double frees.

use crate::error::KvCacheError;
use crate::pool::Device;

/// A fixed-capacity block allocator with reference counting.
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    device: Device,
    ref_counts: Vec<u32>,
    free_list: Vec<usize>,
}

impl BlockAllocator {
    /// Creates an allocator managing `num_blocks` blocks for `device`.
    pub fn new(device: Device, num_blocks: usize) -> Self {
        Self {
            device,
            ref_counts: vec![0; num_blocks],
            // Reverse order so block 0 is handed out first (LIFO pop from the back).
            free_list: (0..num_blocks).rev().collect(),
        }
    }

    /// Total number of blocks managed.
    pub fn num_blocks(&self) -> usize {
        self.ref_counts.len()
    }

    /// Number of currently free blocks.
    pub fn num_free(&self) -> usize {
        self.free_list.len()
    }

    /// Number of currently allocated blocks.
    pub fn num_used(&self) -> usize {
        self.num_blocks() - self.num_free()
    }

    /// Device this allocator belongs to.
    pub fn device(&self) -> Device {
        self.device
    }

    /// Allocates one block.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::OutOfMemory`] when no block is free.
    pub fn allocate(&mut self) -> Result<usize, KvCacheError> {
        match self.free_list.pop() {
            Some(b) => {
                self.ref_counts[b] = 1;
                Ok(b)
            }
            None => Err(KvCacheError::OutOfMemory {
                device: self.device,
                requested_blocks: 1,
                available_blocks: 0,
            }),
        }
    }

    /// Allocates `n` blocks atomically: either all succeed or none are taken.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::OutOfMemory`] when fewer than `n` blocks are free; the
    /// allocator state is unchanged in that case.
    pub fn allocate_many(&mut self, n: usize) -> Result<Vec<usize>, KvCacheError> {
        if self.num_free() < n {
            return Err(KvCacheError::OutOfMemory {
                device: self.device,
                requested_blocks: n,
                available_blocks: self.num_free(),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.allocate()?);
        }
        Ok(out)
    }

    /// Increments the reference count of an allocated block (prefix sharing).
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidBlock`] if the block is out of range or currently free.
    pub fn retain(&mut self, block: usize) -> Result<(), KvCacheError> {
        self.check(block)?;
        if self.ref_counts[block] == 0 {
            return Err(KvCacheError::InvalidBlock { block, pool_blocks: self.num_blocks() });
        }
        self.ref_counts[block] += 1;
        Ok(())
    }

    /// Releases one reference to `block`, returning it to the free list when the count
    /// reaches zero. Returns `true` if the block became free.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidBlock`] on out-of-range indices or double frees.
    pub fn release(&mut self, block: usize) -> Result<bool, KvCacheError> {
        self.check(block)?;
        if self.ref_counts[block] == 0 {
            return Err(KvCacheError::InvalidBlock { block, pool_blocks: self.num_blocks() });
        }
        self.ref_counts[block] -= 1;
        if self.ref_counts[block] == 0 {
            self.free_list.push(block);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Reference count of `block` (0 when free).
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidBlock`] if `block` is out of range.
    pub fn ref_count(&self, block: usize) -> Result<u32, KvCacheError> {
        self.check(block)?;
        Ok(self.ref_counts[block])
    }

    fn check(&self, block: usize) -> Result<(), KvCacheError> {
        if block >= self.num_blocks() {
            Err(KvCacheError::InvalidBlock { block, pool_blocks: self.num_blocks() })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocate_and_release_round_trip() {
        let mut a = BlockAllocator::new(Device::Gpu, 4);
        assert_eq!(a.num_free(), 4);
        let b = a.allocate().unwrap();
        assert_eq!(a.num_used(), 1);
        assert!(a.release(b).unwrap());
        assert_eq!(a.num_free(), 4);
    }

    #[test]
    fn exhaustion_is_an_error_not_a_panic() {
        let mut a = BlockAllocator::new(Device::Cpu, 2);
        a.allocate().unwrap();
        a.allocate().unwrap();
        let err = a.allocate().unwrap_err();
        assert!(matches!(err, KvCacheError::OutOfMemory { device: Device::Cpu, .. }));
    }

    #[test]
    fn allocate_many_is_atomic() {
        let mut a = BlockAllocator::new(Device::Gpu, 3);
        let _one = a.allocate().unwrap();
        let err = a.allocate_many(3).unwrap_err();
        assert!(matches!(err, KvCacheError::OutOfMemory { available_blocks: 2, .. }));
        // Nothing was taken by the failed call.
        assert_eq!(a.num_free(), 2);
        assert_eq!(a.allocate_many(2).unwrap().len(), 2);
    }

    #[test]
    fn refcounted_blocks_survive_partial_release() {
        let mut a = BlockAllocator::new(Device::Gpu, 1);
        let b = a.allocate().unwrap();
        a.retain(b).unwrap();
        assert_eq!(a.ref_count(b).unwrap(), 2);
        assert!(!a.release(b).unwrap());
        assert_eq!(a.num_free(), 0);
        assert!(a.release(b).unwrap());
        assert_eq!(a.num_free(), 1);
    }

    #[test]
    fn double_free_is_rejected() {
        let mut a = BlockAllocator::new(Device::Gpu, 1);
        let b = a.allocate().unwrap();
        a.release(b).unwrap();
        assert!(a.release(b).is_err());
    }

    #[test]
    fn retain_free_block_is_rejected() {
        let mut a = BlockAllocator::new(Device::Gpu, 1);
        assert!(a.retain(0).is_err());
    }

    #[test]
    fn out_of_range_block_is_rejected() {
        let a = BlockAllocator::new(Device::Gpu, 1);
        assert!(matches!(a.ref_count(5), Err(KvCacheError::InvalidBlock { .. })));
    }

    #[test]
    fn zero_capacity_allocator_always_fails() {
        let mut a = BlockAllocator::new(Device::Gpu, 0);
        assert!(a.allocate().is_err());
        assert_eq!(a.num_blocks(), 0);
    }

    #[test]
    fn exhaustion_error_carries_exact_counts() {
        let mut a = BlockAllocator::new(Device::Gpu, 3);
        a.allocate().unwrap();
        let err = a.allocate_many(5).unwrap_err();
        assert!(matches!(
            err,
            KvCacheError::OutOfMemory {
                device: Device::Gpu,
                requested_blocks: 5,
                available_blocks: 2
            }
        ));
        // Draining the rest makes even a single-block request fail typed, never panic.
        a.allocate_many(2).unwrap();
        let err = a.allocate().unwrap_err();
        assert!(matches!(err, KvCacheError::OutOfMemory { requested_blocks: 1, .. }));
    }

    #[test]
    fn allocate_many_zero_succeeds_even_when_exhausted() {
        let mut a = BlockAllocator::new(Device::Cpu, 1);
        a.allocate().unwrap();
        assert_eq!(a.allocate_many(0).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn release_out_of_range_is_a_typed_error() {
        let mut a = BlockAllocator::new(Device::Gpu, 2);
        assert!(matches!(
            a.release(7),
            Err(KvCacheError::InvalidBlock { block: 7, pool_blocks: 2 })
        ));
        assert!(matches!(a.retain(2), Err(KvCacheError::InvalidBlock { block: 2, .. })));
    }

    #[test]
    fn retained_blocks_are_never_rehanded_under_exhaustion() {
        // A fully retained pool must refuse new allocations rather than recycle a
        // shared block out from under its holders (the mid-eviction hazard).
        let mut a = BlockAllocator::new(Device::Gpu, 2);
        let b0 = a.allocate().unwrap();
        let b1 = a.allocate().unwrap();
        a.retain(b0).unwrap();
        // One release each: b0 stays live (shared), b1 frees.
        assert!(!a.release(b0).unwrap());
        assert!(a.release(b1).unwrap());
        let again = a.allocate().unwrap();
        assert_eq!(again, b1, "only the truly free block is reused");
        assert!(a.allocate().is_err(), "the shared block is not up for grabs");
        assert_eq!(a.ref_count(b0).unwrap(), 1);
    }

    #[test]
    fn free_list_is_lifo_with_block_zero_first() {
        let mut a = BlockAllocator::new(Device::Gpu, 3);
        assert_eq!(a.allocate().unwrap(), 0);
        assert_eq!(a.allocate().unwrap(), 1);
        a.release(0).unwrap();
        // The most recently freed (cache-warm) block comes back first.
        assert_eq!(a.allocate().unwrap(), 0);
        assert_eq!(a.allocate().unwrap(), 2);
    }

    proptest! {
        /// Allocations never hand out the same block twice while it is live, and
        /// used + free always equals the capacity.
        #[test]
        fn prop_no_double_allocation(ops in proptest::collection::vec(0u8..3, 1..200)) {
            let mut a = BlockAllocator::new(Device::Gpu, 16);
            let mut live: Vec<usize> = Vec::new();
            for op in ops {
                match op {
                    0 => {
                        if let Ok(b) = a.allocate() {
                            prop_assert!(!live.contains(&b), "block {} handed out twice", b);
                            live.push(b);
                        }
                    }
                    1 => {
                        if let Some(b) = live.pop() {
                            prop_assert!(a.release(b).unwrap());
                        }
                    }
                    _ => {
                        if let Ok(bs) = a.allocate_many(3) {
                            for b in bs {
                                prop_assert!(!live.contains(&b));
                                live.push(b);
                            }
                        }
                    }
                }
                prop_assert_eq!(a.num_used(), live.len());
                prop_assert_eq!(a.num_used() + a.num_free(), 16);
            }
        }
    }
}
