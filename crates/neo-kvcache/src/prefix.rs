//! Radix (prefix) tree over KV blocks: shared-prompt reuse at block granularity.
//!
//! Heavy online traffic is dominated by requests that share a prompt prefix — a fleet-wide
//! system prompt, or the growing history of a multi-turn session. The [`PrefixIndex`]
//! records, per KV block, which run of prompt tokens it caches, so a later request whose
//! prompt starts with the same tokens can *adopt* those blocks (bumping their reference
//! counts) instead of re-prefilling them. Partially matching tail blocks are reused
//! copy-on-write: the cached span is copied into a fresh private block so the shared block
//! is never written.
//!
//! Prompts are identified by [`TokenRun`]s — `(run id, length)` pairs — rather than raw
//! token ids: the simulator has no vocabulary, but two requests share a prefix exactly when
//! their leading runs are identical, which is how workload generators express "same system
//! prompt" or "same session history". [`expand`] flattens runs into per-token identities.
//!
//! The index itself owns no memory; it only names blocks. The [`crate::KvCacheManager`]
//! holds one allocator reference per indexed block, and eviction (LRU over leaves whose
//! block nobody else references) is driven by the manager when the GPU pool runs dry.

use serde::{Deserialize, Serialize};

/// A run of `len` prompt tokens with a workload-assigned identity.
///
/// Two runs with the same `id` denote the same token content; sharing is detected at run
/// granularity (plus offsets within a run), never across distinct ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TokenRun {
    /// Content identity of the run (workload-assigned; equal ids = equal tokens).
    pub id: u64,
    /// Number of tokens in the run.
    pub len: usize,
}

/// One prompt token's identity: `(run id, offset within the run)`.
pub type Token = (u64, u64);

/// Flattens runs into per-token identities, in prompt order.
pub fn expand(runs: &[TokenRun]) -> Vec<Token> {
    let mut out = Vec::with_capacity(runs.iter().map(|r| r.len).sum());
    for run in runs {
        for off in 0..run.len {
            out.push((run.id, off as u64));
        }
    }
    out
}

/// Result of a prefix lookup: the chain of fully matching blocks, plus at most one
/// partially matching block (`(block, matched_tokens)`) usable copy-on-write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixHit {
    /// Blocks whose full content matches the prompt, in prefix order.
    pub blocks: Vec<usize>,
    /// A block whose leading `len` tokens match the prompt past the full chain.
    pub partial: Option<(usize, usize)>,
}

impl PrefixHit {
    /// Tokens covered by the hit, given the index block size.
    pub fn tokens(&self, block_size: usize) -> usize {
        self.blocks.len() * block_size + self.partial.map(|(_, len)| len).unwrap_or(0)
    }
}

/// What an insertion changed: blocks the index newly references and blocks it dropped
/// (pruned partial nodes subsumed by longer content). The manager mirrors these into
/// allocator retains/releases.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Blocks the index now holds a reference to (one per newly created node).
    pub retained: Vec<usize>,
    /// Blocks the index no longer references (pruned nodes).
    pub released: Vec<usize>,
}

/// One node: a block caching `content` (1..=block_size tokens; less than a full block
/// only for leaf "tail" nodes).
#[derive(Debug, Clone)]
struct Node {
    content: Vec<Token>,
    block: usize,
    parent: Option<usize>,
    children: Vec<usize>,
    last_touch: u64,
}

/// Block-granular radix tree mapping token prefixes to cached KV blocks.
#[derive(Debug, Clone, Default)]
pub struct PrefixIndex {
    block_size: usize,
    nodes: Vec<Option<Node>>,
    free_slots: Vec<usize>,
    roots: Vec<usize>,
    clock: u64,
}

impl PrefixIndex {
    /// Creates an empty index over blocks of `block_size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self { block_size, nodes: Vec::new(), free_slots: Vec::new(), roots: Vec::new(), clock: 0 }
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of indexed blocks (= nodes).
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Whether the index holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every indexed block, in slab order (deterministic).
    pub fn blocks(&self) -> Vec<usize> {
        self.nodes.iter().flatten().map(|n| n.block).collect()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn node(&self, idx: usize) -> &Node {
        // neo-lint: allow(panic-hygiene) -- indices come from the tree's own edges; a dead slot is a structural bug that must fail loudly, not corrupt the radix tree
        self.nodes[idx].as_ref().expect("live node")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node {
        // neo-lint: allow(panic-hygiene) -- indices come from the tree's own edges; a dead slot is a structural bug that must fail loudly, not corrupt the radix tree
        self.nodes[idx].as_mut().expect("live node")
    }

    fn children_of(&self, parent: Option<usize>) -> Vec<usize> {
        match parent {
            Some(p) => self.node(p).children.clone(),
            None => self.roots.clone(),
        }
    }

    fn add_node(
        &mut self,
        parent: Option<usize>,
        content: Vec<Token>,
        block: usize,
        now: u64,
    ) -> usize {
        let node = Node { content, block, parent, children: Vec::new(), last_touch: now };
        let idx = match self.free_slots.pop() {
            Some(slot) => {
                self.nodes[slot] = Some(node);
                slot
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        };
        match parent {
            Some(p) => self.node_mut(p).children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    /// Detaches and frees a node, returning its block. The node must be a leaf.
    fn remove_node(&mut self, idx: usize) -> usize {
        // neo-lint: allow(panic-hygiene) -- indices come from the tree's own edges; a dead slot is a structural bug that must fail loudly, not corrupt the radix tree
        let node = self.nodes[idx].take().expect("live node");
        debug_assert!(node.children.is_empty(), "only leaves are removed");
        match node.parent {
            Some(p) => self.node_mut(p).children.retain(|&c| c != idx),
            None => self.roots.retain(|&c| c != idx),
        }
        self.free_slots.push(idx);
        node.block
    }

    /// Longest cached prefix of `tokens`: the chain of fully matching blocks plus at most
    /// one partially matching child (best common prefix; ties broken by smallest block).
    /// Touches every matched node for LRU purposes.
    pub fn lookup(&mut self, tokens: &[Token]) -> PrefixHit {
        let now = self.tick();
        let bs = self.block_size;
        let mut parent: Option<usize> = None;
        let mut blocks = Vec::new();
        let mut start = 0usize;
        loop {
            if start >= tokens.len() {
                return PrefixHit { blocks, partial: None };
            }
            let remaining = &tokens[start..];
            let child_ids = self.children_of(parent);
            if remaining.len() >= bs {
                let chunk = &remaining[..bs];
                if let Some(&c) = child_ids.iter().find(|&&c| self.node(c).content == chunk) {
                    self.node_mut(c).last_touch = now;
                    blocks.push(self.node(c).block);
                    parent = Some(c);
                    start += bs;
                    continue;
                }
            }
            // No full-block step: find the best partially matching child.
            let mut best: Option<(usize, usize, usize)> = None; // (cpl, block, node)
            for &c in &child_ids {
                let content = &self.node(c).content;
                let cpl = content.iter().zip(remaining.iter()).take_while(|(a, b)| a == b).count();
                if cpl >= 1 {
                    let key = (cpl, self.node(c).block);
                    let better = match best {
                        None => true,
                        Some((bcpl, bblock, _)) => cpl > bcpl || (cpl == bcpl && key.1 < bblock),
                    };
                    if better {
                        best = Some((cpl, key.1, c));
                    }
                }
            }
            return match best {
                Some((cpl, block, c)) => {
                    self.node_mut(c).last_touch = now;
                    PrefixHit { blocks, partial: Some((block, cpl)) }
                }
                None => PrefixHit { blocks, partial: None },
            };
        }
    }

    /// Registers the prompt `tokens` of a prefilled sequence, backed block-by-block by
    /// `blocks` (the sequence's block table, chunk `i` caching
    /// `tokens[i*block_size..(i+1)*block_size]`). Existing nodes with identical content
    /// are reused (touched, not re-referenced); shorter partial nodes subsumed by new
    /// content are pruned.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` has fewer entries than `tokens` needs.
    pub fn insert(&mut self, tokens: &[Token], blocks: &[usize]) -> InsertOutcome {
        assert!(
            blocks.len() * self.block_size >= tokens.len(),
            "insert needs one block per {} tokens: {} tokens, {} blocks",
            self.block_size,
            tokens.len(),
            blocks.len()
        );
        let now = self.tick();
        let bs = self.block_size;
        let mut outcome = InsertOutcome::default();
        let mut parent: Option<usize> = None;
        let mut i = 0usize;
        while i * bs < tokens.len() {
            let end = ((i + 1) * bs).min(tokens.len());
            let chunk = &tokens[i * bs..end];
            let child_ids = self.children_of(parent);
            if chunk.len() == bs {
                if let Some(&c) = child_ids.iter().find(|&&c| self.node(c).content == chunk) {
                    self.node_mut(c).last_touch = now;
                    parent = Some(c);
                    i += 1;
                    continue;
                }
                // Prune partial siblings the new full block subsumes.
                for &c in &child_ids {
                    let n = self.node(c);
                    if n.content.len() < bs
                        && n.children.is_empty()
                        && chunk.starts_with(&n.content)
                    {
                        outcome.released.push(self.remove_node(c));
                    }
                }
                let id = self.add_node(parent, chunk.to_vec(), blocks[i], now);
                outcome.retained.push(blocks[i]);
                parent = Some(id);
                i += 1;
            } else {
                // Partial tail: only index it if no existing child already serves it.
                let covered = child_ids.iter().any(|&c| {
                    let content = &self.node(c).content;
                    content.len() >= chunk.len() && content[..chunk.len()] == *chunk
                });
                if !covered {
                    for &c in &child_ids {
                        let n = self.node(c);
                        if n.content.len() < chunk.len()
                            && n.children.is_empty()
                            && chunk.starts_with(&n.content)
                        {
                            outcome.released.push(self.remove_node(c));
                        }
                    }
                    self.add_node(parent, chunk.to_vec(), blocks[i], now);
                    outcome.retained.push(blocks[i]);
                }
                break;
            }
        }
        outcome
    }

    /// Evicts the least-recently-touched *leaf* whose block satisfies `evictable`
    /// (ties broken by smallest block) and returns its block, or `None` when no leaf
    /// qualifies. Interior nodes become evictable as their subtrees drain, so repeated
    /// calls free whole unreferenced subtrees bottom-up.
    pub fn evict_lru(&mut self, evictable: impl Fn(usize) -> bool) -> Option<usize> {
        let mut best: Option<(u64, usize, usize)> = None; // (last_touch, block, node)
        for (idx, slot) in self.nodes.iter().enumerate() {
            let Some(node) = slot else { continue };
            if !node.children.is_empty() || !evictable(node.block) {
                continue;
            }
            let key = (node.last_touch, node.block);
            let better = match best {
                None => true,
                Some((t, b, _)) => key < (t, b),
            };
            if better {
                best = Some((key.0, key.1, idx));
            }
        }
        best.map(|(_, _, idx)| self.remove_node(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(ids: &[u64]) -> Vec<Token> {
        // Helper: one run per id, each of length 1, so tokens are just ids.
        ids.iter().map(|&id| (id, 0)).collect()
    }

    fn run(id: u64, len: usize) -> TokenRun {
        TokenRun { id, len }
    }

    #[test]
    fn expand_flattens_runs_in_order() {
        let t = expand(&[run(7, 2), run(9, 3)]);
        assert_eq!(t, vec![(7, 0), (7, 1), (9, 0), (9, 1), (9, 2)]);
        assert!(expand(&[]).is_empty());
    }

    #[test]
    fn insert_then_lookup_full_chain() {
        let mut idx = PrefixIndex::new(2);
        let tokens = expand(&[run(1, 6)]);
        let out = idx.insert(&tokens, &[10, 11, 12]);
        assert_eq!(out.retained, vec![10, 11, 12]);
        assert!(out.released.is_empty());
        let hit = idx.lookup(&tokens);
        assert_eq!(hit.blocks, vec![10, 11, 12]);
        assert_eq!(hit.partial, None);
        assert_eq!(hit.tokens(2), 6);
        // A shorter prompt matches a shorter chain.
        let hit = idx.lookup(&tokens[..4]);
        assert_eq!(hit.blocks, vec![10, 11]);
        assert_eq!(hit.partial, None);
    }

    #[test]
    fn reinserting_identical_content_adds_no_nodes() {
        let mut idx = PrefixIndex::new(2);
        let tokens = expand(&[run(1, 4)]);
        idx.insert(&tokens, &[10, 11]);
        let out = idx.insert(&tokens, &[20, 21]);
        assert!(out.retained.is_empty(), "identical chunks are deduplicated");
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn diverging_suffixes_share_the_common_prefix() {
        let mut idx = PrefixIndex::new(2);
        let a = expand(&[run(1, 2), run(2, 2)]);
        let b = expand(&[run(1, 2), run(3, 2)]);
        idx.insert(&a, &[10, 11]);
        let out = idx.insert(&b, &[20, 21]);
        assert_eq!(out.retained, vec![21], "only the diverging block is new");
        let hit = idx.lookup(&b);
        assert_eq!(hit.blocks, vec![10, 21]);
    }

    #[test]
    fn partial_tail_hits_copy_on_write_candidates() {
        let mut idx = PrefixIndex::new(4);
        // 6 tokens: one full block + a 2-token tail.
        let tokens = expand(&[run(1, 6)]);
        idx.insert(&tokens, &[10, 11]);
        // A prompt sharing 5 tokens: full block + 1 token of the tail block.
        let probe = [&tokens[..5], &toks(&[99, 98, 97])[..]].concat();
        let hit = idx.lookup(&probe);
        assert_eq!(hit.blocks, vec![10]);
        assert_eq!(hit.partial, Some((11, 1)));
        assert_eq!(hit.tokens(4), 5);
    }

    #[test]
    fn longer_tail_prunes_the_shorter_partial_node() {
        let mut idx = PrefixIndex::new(4);
        let short = expand(&[run(1, 6)]); // block 10 full, block 11 holds 2 tokens
        idx.insert(&short, &[10, 11]);
        let long = expand(&[run(1, 8)]); // same run, now two full blocks
        let out = idx.insert(&long, &[20, 21]);
        assert_eq!(out.released, vec![11], "subsumed partial is pruned");
        assert_eq!(out.retained, vec![21]);
        let hit = idx.lookup(&long);
        assert_eq!(hit.blocks, vec![10, 21]);
    }

    #[test]
    fn covered_partial_is_not_reindexed() {
        let mut idx = PrefixIndex::new(4);
        let long = expand(&[run(1, 8)]);
        idx.insert(&long, &[10, 11]);
        let short = expand(&[run(1, 6)]);
        let out = idx.insert(&short, &[20, 21]);
        assert!(out.retained.is_empty(), "existing full block covers the shorter tail");
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn evict_lru_prefers_oldest_leaf_and_respects_predicate() {
        let mut idx = PrefixIndex::new(2);
        idx.insert(&expand(&[run(1, 2)]), &[10]);
        idx.insert(&expand(&[run(2, 2)]), &[11]);
        idx.lookup(&expand(&[run(1, 2)])); // refresh block 10
        assert_eq!(idx.evict_lru(|_| true), Some(11), "LRU leaf goes first");
        assert_eq!(idx.evict_lru(|b| b != 10), None, "predicate can veto");
        assert_eq!(idx.evict_lru(|_| true), Some(10));
        assert!(idx.is_empty());
    }

    #[test]
    fn eviction_is_leaf_first() {
        let mut idx = PrefixIndex::new(2);
        idx.insert(&expand(&[run(1, 4)]), &[10, 11]);
        // The interior block 10 is never evicted while its child lives.
        assert_eq!(idx.evict_lru(|_| true), Some(11));
        assert_eq!(idx.evict_lru(|_| true), Some(10));
        assert_eq!(idx.evict_lru(|_| true), None);
    }

    #[test]
    fn blocks_lists_every_indexed_block() {
        let mut idx = PrefixIndex::new(2);
        idx.insert(&expand(&[run(1, 4)]), &[10, 11]);
        idx.insert(&expand(&[run(2, 2)]), &[12]);
        let mut blocks = idx.blocks();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![10, 11, 12]);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        let _ = PrefixIndex::new(0);
    }

    #[test]
    #[should_panic(expected = "one block per")]
    fn insert_with_too_few_blocks_panics() {
        let mut idx = PrefixIndex::new(2);
        idx.insert(&expand(&[run(1, 4)]), &[10]);
    }
}
