//! Paged KV cache for the NEO reproduction.
//!
//! NEO splits the KV cache into two components (§3.1 of the paper): a **GPU-cache** in GPU
//! HBM and a **CPU-cache** in host DRAM. Any prefilled request lives entirely in one of the
//! two — a *GPU-request* or a *CPU-request* — and the scheduler may swap a request between
//! the two pools across iterations. Both caches are paged (fixed-size token blocks) in the
//! style of vLLM's PagedAttention to avoid fragmentation.
//!
//! This crate provides:
//!
//! * [`allocator::BlockAllocator`] — a free-list block allocator with reference counting.
//! * [`blocktable::BlockTable`] — the per-sequence logical-to-physical block mapping.
//! * [`pool::KvPool`] — one device's pool (capacity accounting + allocator).
//! * [`manager::KvCacheManager`] — the multi-tier manager: sequence allocation, growth,
//!   release, GPU↔CPU (and optional disk-tier) swaps with byte accounting, plus the
//!   shared-prefix adoption/insertion hooks.
//! * [`prefix::PrefixIndex`] — a block-granular radix tree over prompt token runs so
//!   requests sharing a prefix reuse cached KV copy-on-write instead of re-prefilling.
//! * [`storage::PagedStorage`] — a real `f32` backing store for the functional attention
//!   kernels in `neo-kernels` (the "PACPU" equivalent), addressed through block tables.
//! * [`swap::SwapPlan`] — layer-wise swap scheduling used to overlap PCIe transfers with
//!   compute.
//!
//! # Example
//!
//! ```
//! use neo_kvcache::manager::{KvCacheManager, KvCacheConfig};
//! use neo_kvcache::pool::Device;
//!
//! let config = KvCacheConfig { block_size: 16, gpu_capacity_tokens: 4096,
//!     cpu_capacity_tokens: 65536, kv_bytes_per_token: 128 * 1024 };
//! let mut mgr = KvCacheManager::new(config);
//! mgr.allocate_sequence(7, 100, Device::Gpu)?;
//! mgr.append_tokens(7, 1)?;
//! let swap = mgr.swap(7, Device::Cpu)?;
//! assert!(swap.bytes > 0);
//! # Ok::<(), neo_kvcache::error::KvCacheError>(())
//! ```

#![forbid(unsafe_code)]

pub mod allocator;
pub mod blocktable;
pub mod error;
pub mod manager;
pub mod pool;
pub mod prefix;
pub mod storage;
pub mod swap;

pub use allocator::BlockAllocator;
pub use blocktable::BlockTable;
pub use error::KvCacheError;
pub use manager::{KvCacheConfig, KvCacheManager, PrefixAdoption, RankOccupancy};
pub use pool::{Device, KvPool};
pub use prefix::{expand, PrefixHit, PrefixIndex, Token, TokenRun};
pub use storage::PagedStorage;
pub use swap::SwapPlan;

/// Default number of tokens per KV block (same granularity as vLLM / the paper's PACPU).
pub const DEFAULT_BLOCK_SIZE: usize = 16;
