//! Error types for the paged KV cache.

use crate::pool::Device;

/// Errors returned by KV cache operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvCacheError {
    /// A pool did not have enough free blocks to satisfy an allocation.
    OutOfMemory {
        /// Device whose pool was exhausted.
        device: Device,
        /// Blocks requested by the failed operation.
        requested_blocks: usize,
        /// Blocks that were actually free.
        available_blocks: usize,
    },
    /// The sequence id is not tracked by the manager.
    UnknownSequence(u64),
    /// The sequence id is already tracked (double allocation).
    DuplicateSequence(u64),
    /// A swap was requested to the device the sequence already lives on.
    AlreadyOnDevice {
        /// The sequence being swapped.
        seq_id: u64,
        /// The device it already resides on.
        device: Device,
    },
    /// A block index was outside the pool it was used with.
    InvalidBlock {
        /// The offending block index.
        block: usize,
        /// Number of blocks in the pool.
        pool_blocks: usize,
    },
}

impl std::fmt::Display for KvCacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvCacheError::OutOfMemory { device, requested_blocks, available_blocks } => write!(
                f,
                "out of {device} KV cache memory: requested {requested_blocks} blocks, \
                 {available_blocks} free"
            ),
            KvCacheError::UnknownSequence(id) => write!(f, "unknown sequence {id}"),
            KvCacheError::DuplicateSequence(id) => {
                write!(f, "sequence {id} already has an allocation")
            }
            KvCacheError::AlreadyOnDevice { seq_id, device } => {
                write!(f, "sequence {seq_id} already resides on {device}")
            }
            KvCacheError::InvalidBlock { block, pool_blocks } => {
                write!(f, "block {block} out of range for pool of {pool_blocks} blocks")
            }
        }
    }
}

impl std::error::Error for KvCacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = KvCacheError::OutOfMemory {
            device: Device::Gpu,
            requested_blocks: 4,
            available_blocks: 1,
        };
        let s = e.to_string();
        assert!(s.contains("out of"));
        assert!(s.contains('4') && s.contains('1'));
        assert!(!s.ends_with('.'));

        assert!(KvCacheError::UnknownSequence(9).to_string().contains('9'));
        assert!(KvCacheError::DuplicateSequence(3).to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<KvCacheError>();
    }
}
