//! Per-sequence block table: the logical-token → physical-block mapping.

use crate::error::KvCacheError;

/// The block table of one sequence.
///
/// Logical token `i` of the sequence lives in physical block `blocks[i / block_size]` at
/// offset `i % block_size`. The table grows as the sequence decodes; the physical blocks
/// themselves come from a [`crate::pool::KvPool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockTable {
    block_size: usize,
    blocks: Vec<usize>,
    num_tokens: usize,
}

impl BlockTable {
    /// Creates an empty table with the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self { block_size, blocks: Vec::new(), num_tokens: 0 }
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of logical tokens stored.
    pub fn num_tokens(&self) -> usize {
        self.num_tokens
    }

    /// Number of physical blocks backing the sequence.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The physical blocks, in logical order.
    pub fn blocks(&self) -> &[usize] {
        &self.blocks
    }

    /// How many *additional* physical blocks are needed to append `n` more tokens.
    pub fn blocks_needed_for_append(&self, n: usize) -> usize {
        let total_needed = (self.num_tokens + n).div_ceil(self.block_size);
        total_needed.saturating_sub(self.blocks.len())
    }

    /// Number of free slots in the final (partially filled) block.
    pub fn slack(&self) -> usize {
        self.blocks.len() * self.block_size - self.num_tokens
    }

    /// Appends `n` tokens backed by `new_blocks` additional physical blocks.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidBlock`] (with `pool_blocks == usize::MAX` as a
    /// sentinel) when the number of provided blocks does not match
    /// [`Self::blocks_needed_for_append`]; the table is unchanged in that case.
    pub fn append(&mut self, n: usize, new_blocks: Vec<usize>) -> Result<(), KvCacheError> {
        let needed = self.blocks_needed_for_append(n);
        if new_blocks.len() != needed {
            return Err(KvCacheError::InvalidBlock {
                block: new_blocks.len(),
                pool_blocks: usize::MAX,
            });
        }
        self.blocks.extend(new_blocks);
        self.num_tokens += n;
        Ok(())
    }

    /// Physical location `(block, offset)` of logical token `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidBlock`] when `idx` is out of range.
    pub fn locate(&self, idx: usize) -> Result<(usize, usize), KvCacheError> {
        if idx >= self.num_tokens {
            return Err(KvCacheError::InvalidBlock { block: idx, pool_blocks: self.num_tokens });
        }
        Ok((self.blocks[idx / self.block_size], idx % self.block_size))
    }

    /// Clears the table and returns the physical blocks that were backing it (for release).
    pub fn take_blocks(&mut self) -> Vec<usize> {
        self.num_tokens = 0;
        std::mem::take(&mut self.blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn append_and_locate() {
        let mut t = BlockTable::new(4);
        assert_eq!(t.blocks_needed_for_append(5), 2);
        t.append(5, vec![10, 11]).unwrap();
        assert_eq!(t.num_tokens(), 5);
        assert_eq!(t.locate(0).unwrap(), (10, 0));
        assert_eq!(t.locate(3).unwrap(), (10, 3));
        assert_eq!(t.locate(4).unwrap(), (11, 0));
        assert!(t.locate(5).is_err());
    }

    #[test]
    fn slack_fills_before_new_blocks() {
        let mut t = BlockTable::new(4);
        t.append(3, vec![7]).unwrap();
        assert_eq!(t.slack(), 1);
        // One more token fits in the slack.
        assert_eq!(t.blocks_needed_for_append(1), 0);
        t.append(1, vec![]).unwrap();
        assert_eq!(t.slack(), 0);
        assert_eq!(t.blocks_needed_for_append(1), 1);
    }

    #[test]
    fn append_with_wrong_block_count_is_rejected() {
        let mut t = BlockTable::new(4);
        assert!(t.append(5, vec![1]).is_err());
        assert_eq!(t.num_tokens(), 0);
        assert_eq!(t.num_blocks(), 0);
    }

    #[test]
    fn take_blocks_empties_the_table() {
        let mut t = BlockTable::new(2);
        t.append(4, vec![1, 2]).unwrap();
        let blocks = t.take_blocks();
        assert_eq!(blocks, vec![1, 2]);
        assert_eq!(t.num_tokens(), 0);
        assert_eq!(t.num_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        let _ = BlockTable::new(0);
    }

    proptest! {
        /// Token count, block count and slack stay mutually consistent across arbitrary
        /// append patterns, and every token remains addressable.
        #[test]
        fn prop_table_consistency(appends in proptest::collection::vec(1usize..20, 1..40)) {
            let block_size = 4;
            let mut t = BlockTable::new(block_size);
            let mut next_block = 0usize;
            for n in appends {
                let needed = t.blocks_needed_for_append(n);
                let blocks: Vec<usize> = (next_block..next_block + needed).collect();
                next_block += needed;
                t.append(n, blocks).unwrap();

                prop_assert_eq!(t.num_blocks(), t.num_tokens().div_ceil(block_size));
                prop_assert!(t.slack() < block_size);
                // All tokens addressable, none beyond the end.
                prop_assert!(t.locate(t.num_tokens().saturating_sub(1)).is_ok());
                prop_assert!(t.locate(t.num_tokens()).is_err());
            }
        }
    }
}
