//! Layer-wise swap scheduling.
//!
//! NEO overlaps the PCIe transfer of newly prefilled KV entries with compute by initiating
//! the transfer of each layer's KV values "immediately after each layer's KV value is
//! computed, rather than deferring this process until the end of the entire iteration"
//! (§3.1). This module models that two-stage pipeline (compute → transfer, with the PCIe
//! link as the second stage) and quantifies how much transfer time is actually *exposed*
//! (not hidden behind compute), which the asymmetric-pipelining executor charges to the
//! iteration.

/// Direction of a KV swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapDirection {
    /// GPU → CPU (offloading newly prefilled or evicted requests).
    Out,
    /// CPU → GPU (bringing a CPU-request back to the GPU).
    In,
}

/// A planned swap of one sequence's KV cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapOp {
    /// Sequence being moved.
    pub seq_id: u64,
    /// Tokens whose KV entries move.
    pub tokens: usize,
    /// Direction of the move.
    pub direction: SwapDirection,
}

/// A set of swaps scheduled for one iteration, with the timing of their overlap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwapPlan {
    ops: Vec<SwapOp>,
}

impl SwapPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a swap to the plan.
    pub fn push(&mut self, op: SwapOp) {
        self.ops.push(op);
    }

    /// The planned operations.
    pub fn ops(&self) -> &[SwapOp] {
        &self.ops
    }

    /// Total tokens moved in the given direction.
    pub fn tokens(&self, direction: SwapDirection) -> usize {
        self.ops.iter().filter(|o| o.direction == direction).map(|o| o.tokens).sum()
    }

    /// Whether the plan contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Completion time of a layer-wise two-stage pipeline with `n_layers` layers, where
    /// each layer takes `compute_per_layer` seconds to produce its output and
    /// `transfer_per_layer` seconds to ship it over PCIe, and transfers are serialized on
    /// the link. Classic pipeline formula: `c + (L-1)·max(c, t) + t`.
    pub fn layerwise_pipeline_time(
        n_layers: usize,
        compute_per_layer: f64,
        transfer_per_layer: f64,
    ) -> f64 {
        if n_layers == 0 {
            return 0.0;
        }
        let l = n_layers as f64;
        compute_per_layer
            + (l - 1.0) * compute_per_layer.max(transfer_per_layer)
            + transfer_per_layer
    }

    /// The transfer time that is **exposed** (adds to iteration latency) when transfers are
    /// overlapped layer-by-layer with compute, compared to compute alone.
    pub fn layerwise_exposed_time(
        n_layers: usize,
        compute_per_layer: f64,
        transfer_per_layer: f64,
    ) -> f64 {
        let total = Self::layerwise_pipeline_time(n_layers, compute_per_layer, transfer_per_layer);
        (total - n_layers as f64 * compute_per_layer).max(0.0)
    }

    /// The transfer time exposed when the whole-iteration transfer is deferred to the end
    /// (the non-overlapped strawman): the entire transfer is on the critical path.
    pub fn deferred_exposed_time(n_layers: usize, transfer_per_layer: f64) -> f64 {
        n_layers as f64 * transfer_per_layer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plan_accumulates_tokens_by_direction() {
        let mut p = SwapPlan::new();
        assert!(p.is_empty());
        p.push(SwapOp { seq_id: 1, tokens: 100, direction: SwapDirection::Out });
        p.push(SwapOp { seq_id: 2, tokens: 50, direction: SwapDirection::Out });
        p.push(SwapOp { seq_id: 3, tokens: 30, direction: SwapDirection::In });
        assert_eq!(p.tokens(SwapDirection::Out), 150);
        assert_eq!(p.tokens(SwapDirection::In), 30);
        assert_eq!(p.ops().len(), 3);
    }

    #[test]
    fn fast_link_hides_almost_all_transfer() {
        // Transfer much faster than compute: only the last layer's transfer is exposed.
        let exposed = SwapPlan::layerwise_exposed_time(32, 1e-3, 1e-5);
        assert!((exposed - 1e-5).abs() < 1e-9, "exposed {exposed}");
    }

    #[test]
    fn slow_link_exposes_most_transfer() {
        // Transfer much slower than compute: pipeline is transfer-bound.
        let exposed = SwapPlan::layerwise_exposed_time(32, 1e-5, 1e-3);
        let deferred = SwapPlan::deferred_exposed_time(32, 1e-3);
        assert!(exposed > 0.9 * deferred);
        assert!(exposed < deferred);
    }

    #[test]
    fn layerwise_never_worse_than_deferred() {
        for &(c, t) in &[(1e-3, 1e-5), (1e-5, 1e-3), (5e-4, 5e-4), (0.0, 1e-4)] {
            let lw = SwapPlan::layerwise_exposed_time(32, c, t);
            let def = SwapPlan::deferred_exposed_time(32, t);
            assert!(lw <= def + 1e-12, "layerwise {lw} vs deferred {def}");
        }
    }

    #[test]
    fn zero_layers_is_zero_time() {
        assert_eq!(SwapPlan::layerwise_pipeline_time(0, 1.0, 1.0), 0.0);
        assert_eq!(SwapPlan::layerwise_exposed_time(0, 1.0, 1.0), 0.0);
    }

    #[test]
    fn empty_plan_moves_nothing_in_either_direction() {
        let p = SwapPlan::default();
        assert!(p.is_empty());
        assert_eq!(p.tokens(SwapDirection::Out), 0);
        assert_eq!(p.tokens(SwapDirection::In), 0);
        assert!(p.ops().is_empty());
    }

    #[test]
    fn single_layer_pipeline_is_compute_plus_transfer() {
        let total = SwapPlan::layerwise_pipeline_time(1, 3e-4, 7e-4);
        assert!((total - 1e-3).abs() < 1e-12);
        // With one layer nothing can be hidden: exposed == transfer.
        let exposed = SwapPlan::layerwise_exposed_time(1, 3e-4, 7e-4);
        assert!((exposed - 7e-4).abs() < 1e-12);
    }

    #[test]
    fn zero_compute_exposes_the_entire_transfer() {
        // Under memory pressure an evicted (zero-compute) sequence's swap has no
        // compute to hide behind — the full deferred cost is on the critical path.
        let exposed = SwapPlan::layerwise_exposed_time(32, 0.0, 1e-4);
        let deferred = SwapPlan::deferred_exposed_time(32, 1e-4);
        assert!((exposed - deferred).abs() < 1e-12);
    }

    #[test]
    fn exposed_time_is_monotone_in_transfer_cost() {
        let mut last = 0.0;
        for t in [1e-6, 1e-5, 1e-4, 1e-3] {
            let e = SwapPlan::layerwise_exposed_time(32, 1e-4, t);
            assert!(e >= last, "exposed time must grow with transfer cost");
            last = e;
        }
    }

    proptest! {
        /// The pipeline formula is bounded below by both pure-compute and pure-transfer
        /// time and above by their sum, and exposed time is non-negative.
        #[test]
        fn prop_pipeline_bounds(layers in 1usize..100, c in 0.0f64..1e-2, t in 0.0f64..1e-2) {
            let total = SwapPlan::layerwise_pipeline_time(layers, c, t);
            let l = layers as f64;
            prop_assert!(total + 1e-15 >= l * c);
            prop_assert!(total + 1e-15 >= l * t);
            prop_assert!(total <= l * c + l * t + 1e-15);
            prop_assert!(SwapPlan::layerwise_exposed_time(layers, c, t) >= 0.0);
        }
    }
}
