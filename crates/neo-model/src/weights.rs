//! Randomly initialised model weights for the functional transformer.

use neo_sim::ModelDesc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::linear::{Linear, RmsNorm};

/// Weights of one transformer layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Pre-attention RMSNorm gain.
    pub input_norm: RmsNorm,
    /// Query projection (`[n_heads * head_dim, hidden]`).
    pub wq: Linear,
    /// Key projection (`[n_kv_heads * head_dim, hidden]`).
    pub wk: Linear,
    /// Value projection (`[n_kv_heads * head_dim, hidden]`).
    pub wv: Linear,
    /// Output projection (`[hidden, n_heads * head_dim]`).
    pub wo: Linear,
    /// Pre-FFN RMSNorm gain.
    pub post_norm: RmsNorm,
    /// SwiGLU gate projection (`[intermediate, hidden]`).
    pub w_gate: Linear,
    /// SwiGLU up projection (`[intermediate, hidden]`).
    pub w_up: Linear,
    /// SwiGLU down projection (`[hidden, intermediate]`).
    pub w_down: Linear,
}

/// All weights of the functional model.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// Architecture this weight set instantiates.
    pub desc: ModelDesc,
    /// Token embedding table, `[vocab, hidden]` row-major.
    pub embed: Vec<f32>,
    /// Transformer layers.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm before the LM head.
    pub final_norm: RmsNorm,
    /// LM head (`[vocab, hidden]`).
    pub lm_head: Linear,
}

fn random_linear(rng: &mut StdRng, rows: usize, cols: usize) -> Linear {
    // Xavier-ish scale keeps activations bounded through many layers.
    let scale = (2.0 / (rows + cols) as f32).sqrt();
    let weight = (0..rows * cols).map(|_| rng.gen_range(-scale..scale)).collect();
    Linear::new(rows, cols, weight)
}

impl ModelWeights {
    /// Builds a randomly initialised weight set for `desc` using the given RNG seed.
    ///
    /// Intended for the tiny/small descriptors; instantiating a 70B descriptor would try to
    /// allocate hundreds of gigabytes.
    pub fn random(desc: &ModelDesc, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = desc.hidden;
        let q_dim = desc.n_heads * desc.head_dim;
        let kv_dim = desc.n_kv_heads * desc.head_dim;

        let layers = (0..desc.n_layers)
            .map(|_| LayerWeights {
                input_norm: RmsNorm::new(vec![1.0; h], 1e-5),
                wq: random_linear(&mut rng, q_dim, h),
                wk: random_linear(&mut rng, kv_dim, h),
                wv: random_linear(&mut rng, kv_dim, h),
                wo: random_linear(&mut rng, h, q_dim),
                post_norm: RmsNorm::new(vec![1.0; h], 1e-5),
                w_gate: random_linear(&mut rng, desc.intermediate, h),
                w_up: random_linear(&mut rng, desc.intermediate, h),
                w_down: random_linear(&mut rng, h, desc.intermediate),
            })
            .collect();

        let embed_scale = (1.0 / h as f32).sqrt();
        let embed = (0..desc.vocab * h).map(|_| rng.gen_range(-embed_scale..embed_scale)).collect();

        Self {
            desc: desc.clone(),
            embed,
            layers,
            final_norm: RmsNorm::new(vec![1.0; h], 1e-5),
            lm_head: random_linear(&mut rng, desc.vocab, h),
        }
    }

    /// The embedding row of token `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the vocabulary.
    pub fn embedding(&self, id: u32) -> &[f32] {
        let id = id as usize;
        assert!(id < self.desc.vocab, "token id {id} outside vocabulary of {}", self.desc.vocab);
        &self.embed[id * self.desc.hidden..(id + 1) * self.desc.hidden]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_weights_have_right_shapes() {
        let desc = ModelDesc::tiny();
        let w = ModelWeights::random(&desc, 1);
        assert_eq!(w.layers.len(), desc.n_layers);
        assert_eq!(w.embed.len(), desc.vocab * desc.hidden);
        let l = &w.layers[0];
        assert_eq!(l.wq.rows(), desc.n_heads * desc.head_dim);
        assert_eq!(l.wk.rows(), desc.n_kv_heads * desc.head_dim);
        assert_eq!(l.wo.cols(), desc.n_heads * desc.head_dim);
        assert_eq!(l.w_down.cols(), desc.intermediate);
        assert_eq!(w.lm_head.rows(), desc.vocab);
    }

    #[test]
    fn same_seed_same_weights_different_seed_different() {
        let desc = ModelDesc::tiny();
        let a = ModelWeights::random(&desc, 7);
        let b = ModelWeights::random(&desc, 7);
        let c = ModelWeights::random(&desc, 8);
        assert_eq!(a.embed, b.embed);
        assert_ne!(a.embed, c.embed);
    }

    #[test]
    fn embedding_lookup_returns_the_row() {
        let desc = ModelDesc::tiny();
        let w = ModelWeights::random(&desc, 2);
        let row = w.embedding(5);
        assert_eq!(row.len(), desc.hidden);
        assert_eq!(row, &w.embed[5 * desc.hidden..6 * desc.hidden]);
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn out_of_vocab_embedding_panics() {
        let desc = ModelDesc::tiny();
        let w = ModelWeights::random(&desc, 3);
        let _ = w.embedding(desc.vocab as u32);
    }
}
