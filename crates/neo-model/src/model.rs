//! The functional decoder-only transformer.
//!
//! [`Model`] runs real forward passes over the paged KV cache: prefill of a prompt chunk,
//! single-sequence decode, and batched decode where GPU-resident and CPU-resident
//! sequences are grouped into separate attention-kernel invocations — the functional
//! analogue of NEO's two sub-batches.

use neo_kernels::decode::paged_decode_attention;
use neo_kernels::prefill::paged_prefill_attention;
use neo_kernels::rope::RopeTable;
use neo_kernels::AttentionConfig;
use neo_kvcache::{Device, KvCacheError};
use neo_sim::ModelDesc;

use crate::cache::PagedKvCache;
use crate::linear::{add_inplace, swiglu};
use crate::weights::ModelWeights;

/// Errors returned by model forward passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The KV cache rejected an operation (OOM, unknown sequence, ...).
    Cache(KvCacheError),
    /// A token id was outside the model's vocabulary.
    TokenOutOfRange {
        /// The offending token.
        token: u32,
        /// The vocabulary size.
        vocab: usize,
    },
    /// An empty prompt was submitted for prefill.
    EmptyPrompt,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Cache(e) => write!(f, "kv cache error: {e}"),
            ModelError::TokenOutOfRange { token, vocab } => {
                write!(f, "token {token} outside vocabulary of {vocab}")
            }
            ModelError::EmptyPrompt => write!(f, "prompt must contain at least one token"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Cache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KvCacheError> for ModelError {
    fn from(e: KvCacheError) -> Self {
        ModelError::Cache(e)
    }
}

/// A functional LLaMa-style model with random weights.
#[derive(Debug, Clone)]
pub struct Model {
    weights: ModelWeights,
    rope: RopeTable,
    attn_cfg: AttentionConfig,
}

impl Model {
    /// Builds a model with randomly initialised weights for `desc`.
    pub fn random(desc: &ModelDesc, seed: u64) -> Self {
        Self::from_weights(ModelWeights::random(desc, seed))
    }

    /// Builds a model from existing weights.
    pub fn from_weights(weights: ModelWeights) -> Self {
        let desc = &weights.desc;
        let rope = RopeTable::new(desc.head_dim, 10000.0);
        let attn_cfg = AttentionConfig::new(desc.n_heads, desc.n_kv_heads, desc.head_dim);
        Self { weights, rope, attn_cfg }
    }

    /// Architecture descriptor of this model.
    pub fn desc(&self) -> &ModelDesc {
        &self.weights.desc
    }

    fn check_tokens(&self, tokens: &[u32]) -> Result<(), ModelError> {
        for &t in tokens {
            if (t as usize) >= self.desc().vocab {
                return Err(ModelError::TokenOutOfRange { token: t, vocab: self.desc().vocab });
            }
        }
        Ok(())
    }

    /// Prefills a new sequence `seq_id` with `tokens`, placing its KV cache on `device`,
    /// and returns the logits predicting the token after the prompt.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyPrompt`] for an empty prompt, [`ModelError::TokenOutOfRange`]
    /// for invalid token ids, or a [`ModelError::Cache`] error (e.g. out of cache memory,
    /// duplicate sequence id).
    pub fn prefill(
        &self,
        seq_id: u64,
        tokens: &[u32],
        cache: &mut PagedKvCache,
        device: Device,
    ) -> Result<Vec<f32>, ModelError> {
        if tokens.is_empty() {
            return Err(ModelError::EmptyPrompt);
        }
        self.check_tokens(tokens)?;
        cache.allocate(seq_id, tokens.len(), device)?;
        let hidden = self.forward_chunk(seq_id, tokens, 0, cache)?;
        Ok(self.logits(&hidden))
    }

    /// Appends one `token` to an existing sequence and returns the logits for the next
    /// token. The sequence's KV cache stays on whichever device it currently occupies.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::TokenOutOfRange`] or a [`ModelError::Cache`] error (unknown
    /// sequence, out of cache memory).
    pub fn decode(
        &self,
        seq_id: u64,
        token: u32,
        cache: &mut PagedKvCache,
    ) -> Result<Vec<f32>, ModelError> {
        self.check_tokens(&[token])?;
        let start = cache.num_tokens(seq_id)?;
        cache.append(seq_id, 1)?;
        let hidden = self.forward_chunk(seq_id, &[token], start, cache)?;
        Ok(self.logits(&hidden))
    }

    /// Decodes one token for every `(seq_id, token)` pair, grouping the attention of
    /// GPU-resident and CPU-resident sequences into separate kernel invocations (the
    /// functional analogue of NEO's batch-0 / batch-1 split). Returns one logit vector per
    /// input pair, in order.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered; sequences processed before the failure keep
    /// their appended token.
    pub fn decode_batch(
        &self,
        items: &[(u64, u32)],
        cache: &mut PagedKvCache,
    ) -> Result<Vec<Vec<f32>>, ModelError> {
        let desc = self.desc().clone();
        let hd = desc.head_dim;
        let q_dim = desc.n_heads * hd;
        let kv_dim = desc.n_kv_heads * hd;

        // Reserve the new slot for every sequence first.
        let mut positions = Vec::with_capacity(items.len());
        for &(seq_id, token) in items {
            self.check_tokens(&[token])?;
            let pos = cache.num_tokens(seq_id)?;
            cache.append(seq_id, 1)?;
            positions.push(pos);
        }

        // Residual streams, one per sequence.
        let mut xs: Vec<Vec<f32>> =
            items.iter().map(|&(_, token)| self.weights.embedding(token).to_vec()).collect();

        for (layer_idx, layer) in self.weights.layers.iter().enumerate() {
            // Linear stage (per sequence) + KV write.
            let mut queries: Vec<Vec<f32>> = Vec::with_capacity(items.len());
            for (i, &(seq_id, _)) in items.iter().enumerate() {
                let h = layer.input_norm.forward(&xs[i]);
                let mut q = layer.wq.forward(&h);
                let mut k = layer.wk.forward(&h);
                let v = layer.wv.forward(&h);
                debug_assert_eq!(q.len(), q_dim);
                debug_assert_eq!(k.len(), kv_dim);
                self.rope.apply_row(&mut q, positions[i]);
                self.rope.apply_row(&mut k, positions[i]);
                cache.write_kv(layer_idx, seq_id, positions[i], &k, &v)?;
                queries.push(q);
            }

            // Attention stage: one kernel invocation per device group.
            let mut attn_out: Vec<Vec<f32>> = vec![vec![0.0; q_dim]; items.len()];
            for device in [Device::Gpu, Device::Cpu] {
                let group: Vec<usize> = (0..items.len())
                    .filter(|&i| cache.device_of(items[i].0).map(|d| d == device).unwrap_or(false))
                    .collect();
                if group.is_empty() {
                    continue;
                }
                let mut q_flat = Vec::with_capacity(group.len() * q_dim);
                let mut seq_lens = Vec::with_capacity(group.len());
                let mut tables = Vec::with_capacity(group.len());
                for &i in &group {
                    q_flat.extend_from_slice(&queries[i]);
                    seq_lens.push(positions[i] + 1);
                    tables.push(cache.block_table(items[i].0)?);
                }
                let mut out_flat = vec![0.0f32; group.len() * q_dim];
                paged_decode_attention(
                    &q_flat,
                    cache.storage(layer_idx, device),
                    &tables,
                    &seq_lens,
                    &self.attn_cfg,
                    &mut out_flat,
                );
                for (gi, &i) in group.iter().enumerate() {
                    attn_out[i].copy_from_slice(&out_flat[gi * q_dim..(gi + 1) * q_dim]);
                }
            }

            // Output projection + FFN (per sequence).
            for (i, x) in xs.iter_mut().enumerate() {
                let proj = layer.wo.forward(&attn_out[i]);
                add_inplace(x, &proj);
                let h2 = layer.post_norm.forward(x);
                let gate = layer.w_gate.forward(&h2);
                let up = layer.w_up.forward(&h2);
                let ffn = layer.w_down.forward(&swiglu(&gate, &up));
                add_inplace(x, &ffn);
            }
        }

        Ok(xs.iter().map(|x| self.logits(x)).collect())
    }

    /// Runs the transformer over a chunk of `tokens` of `seq_id` starting at position
    /// `start_pos` (their KV slots must already be allocated) and returns the final hidden
    /// state of the last token.
    fn forward_chunk(
        &self,
        seq_id: u64,
        tokens: &[u32],
        start_pos: usize,
        cache: &mut PagedKvCache,
    ) -> Result<Vec<f32>, ModelError> {
        let desc = self.desc().clone();
        let n = tokens.len();
        let hd = desc.head_dim;
        let q_dim = desc.n_heads * hd;
        let device = cache.device_of(seq_id)?;

        // Residual stream for every token in the chunk.
        let mut xs: Vec<Vec<f32>> =
            tokens.iter().map(|&t| self.weights.embedding(t).to_vec()).collect();

        for (layer_idx, layer) in self.weights.layers.iter().enumerate() {
            // Linear stage: QKV projections, RoPE, cache writes.
            let mut q_flat = Vec::with_capacity(n * q_dim);
            for (i, x) in xs.iter().enumerate() {
                let pos = start_pos + i;
                let h = layer.input_norm.forward(x);
                let mut q = layer.wq.forward(&h);
                let mut k = layer.wk.forward(&h);
                let v = layer.wv.forward(&h);
                self.rope.apply_row(&mut q, pos);
                self.rope.apply_row(&mut k, pos);
                cache.write_kv(layer_idx, seq_id, pos, &k, &v)?;
                q_flat.extend_from_slice(&q);
            }

            // Attention stage over the paged cache.
            let ctx_len = start_pos + n;
            let mut attn_flat = vec![0.0f32; n * q_dim];
            let table = cache.block_table(seq_id)?;
            if n == 1 {
                paged_decode_attention(
                    &q_flat,
                    cache.storage(layer_idx, device),
                    &[table],
                    &[ctx_len],
                    &self.attn_cfg,
                    &mut attn_flat,
                );
            } else {
                paged_prefill_attention(
                    &q_flat,
                    cache.storage(layer_idx, device),
                    table,
                    ctx_len,
                    n,
                    &self.attn_cfg,
                    &mut attn_flat,
                );
            }

            // Output projection + FFN.
            for (i, x) in xs.iter_mut().enumerate() {
                let proj = layer.wo.forward(&attn_flat[i * q_dim..(i + 1) * q_dim]);
                add_inplace(x, &proj);
                let h2 = layer.post_norm.forward(x);
                let gate = layer.w_gate.forward(&h2);
                let up = layer.w_up.forward(&h2);
                let ffn = layer.w_down.forward(&swiglu(&gate, &up));
                add_inplace(x, &ffn);
            }
        }

        Ok(xs.pop().expect("chunk is non-empty"))
    }

    fn logits(&self, hidden: &[f32]) -> Vec<f32> {
        let normed = self.weights.final_norm.forward(hidden);
        self.weights.lm_head.forward(&normed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::argmax;

    fn setup() -> (Model, PagedKvCache) {
        let desc = ModelDesc::tiny();
        let model = Model::random(&desc, 123);
        let cache = PagedKvCache::new(&desc, 4, 2048, 4096);
        (model, cache)
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn prefill_returns_finite_vocab_sized_logits() {
        let (model, mut cache) = setup();
        let logits = model.prefill(1, &[1, 2, 3, 4, 5], &mut cache, Device::Gpu).unwrap();
        assert_eq!(logits.len(), model.desc().vocab);
        assert!(logits.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn prefill_then_decode_matches_longer_prefill() {
        // Running prefill([a, b, c]) must produce the same next-token logits as
        // prefill([a, b]) followed by decode(c): incremental decoding is exact.
        let (model, mut cache_a) = setup();
        let full = model.prefill(1, &[7, 8, 9], &mut cache_a, Device::Gpu).unwrap();

        let (_, mut cache_b) = setup();
        let model_b = Model::random(&ModelDesc::tiny(), 123);
        model_b.prefill(1, &[7, 8], &mut cache_b, Device::Gpu).unwrap();
        let incremental = model_b.decode(1, 9, &mut cache_b).unwrap();

        assert_close(&full, &incremental, 1e-3);
    }

    #[test]
    fn cpu_resident_sequence_produces_identical_logits() {
        // The accuracy-preservation claim: running attention from the CPU-cache gives the
        // same result as from the GPU-cache.
        let (model, mut gpu_cache) = setup();
        let (_, mut cpu_cache) = setup();
        let a = model.prefill(1, &[3, 1, 4, 1, 5], &mut gpu_cache, Device::Gpu).unwrap();
        let b = model.prefill(1, &[3, 1, 4, 1, 5], &mut cpu_cache, Device::Cpu).unwrap();
        assert_close(&a, &b, 1e-4);
        let da = model.decode(1, 9, &mut gpu_cache).unwrap();
        let db = model.decode(1, 9, &mut cpu_cache).unwrap();
        assert_close(&da, &db, 1e-4);
    }

    #[test]
    fn swapping_mid_generation_does_not_change_output() {
        let (model, mut cache) = setup();
        let (_, mut reference_cache) = setup();

        model.prefill(1, &[10, 20, 30], &mut cache, Device::Gpu).unwrap();
        model.prefill(1, &[10, 20, 30], &mut reference_cache, Device::Gpu).unwrap();

        // Swap the sequence to the CPU-cache (and back) before decoding.
        cache.swap(1, Device::Cpu).unwrap();
        let swapped = model.decode(1, 40, &mut cache).unwrap();
        let stayed = model.decode(1, 40, &mut reference_cache).unwrap();
        assert_close(&swapped, &stayed, 1e-4);
    }

    #[test]
    fn decode_batch_matches_individual_decodes_across_devices() {
        let desc = ModelDesc::tiny();
        let model = Model::random(&desc, 9);

        // Batched path: seq 1 on GPU, seq 2 on CPU.
        let mut batch_cache = PagedKvCache::new(&desc, 4, 2048, 4096);
        model.prefill(1, &[5, 6, 7], &mut batch_cache, Device::Gpu).unwrap();
        model.prefill(2, &[11, 12], &mut batch_cache, Device::Cpu).unwrap();
        let batched = model.decode_batch(&[(1, 8), (2, 13)], &mut batch_cache).unwrap();

        // Individual path.
        let mut solo_cache = PagedKvCache::new(&desc, 4, 2048, 4096);
        model.prefill(1, &[5, 6, 7], &mut solo_cache, Device::Gpu).unwrap();
        model.prefill(2, &[11, 12], &mut solo_cache, Device::Cpu).unwrap();
        let solo1 = model.decode(1, 8, &mut solo_cache).unwrap();
        let solo2 = model.decode(2, 13, &mut solo_cache).unwrap();

        assert_close(&batched[0], &solo1, 1e-3);
        assert_close(&batched[1], &solo2, 1e-3);
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let (model, mut cache_a) = setup();
        let (_, mut cache_b) = setup();
        let gen = |cache: &mut PagedKvCache| {
            let mut logits = model.prefill(1, &[42, 43], cache, Device::Gpu).unwrap();
            let mut out = Vec::new();
            for _ in 0..5 {
                let t = argmax(&logits);
                out.push(t);
                logits = model.decode(1, t, cache).unwrap();
            }
            out
        };
        assert_eq!(gen(&mut cache_a), gen(&mut cache_b));
    }

    #[test]
    fn empty_prompt_is_rejected() {
        let (model, mut cache) = setup();
        assert_eq!(model.prefill(1, &[], &mut cache, Device::Gpu), Err(ModelError::EmptyPrompt));
    }

    #[test]
    fn out_of_vocab_token_is_rejected() {
        let (model, mut cache) = setup();
        let vocab = model.desc().vocab as u32;
        let err = model.prefill(1, &[vocab], &mut cache, Device::Gpu).unwrap_err();
        assert!(matches!(err, ModelError::TokenOutOfRange { .. }));
        assert!(err.to_string().contains("vocabulary"));
    }

    #[test]
    fn cache_oom_surfaces_as_model_error() {
        let desc = ModelDesc::tiny();
        let model = Model::random(&desc, 1);
        let mut tiny_cache = PagedKvCache::new(&desc, 4, 8, 8);
        let err = model.prefill(1, &[1; 32], &mut tiny_cache, Device::Gpu).unwrap_err();
        assert!(matches!(err, ModelError::Cache(KvCacheError::OutOfMemory { .. })));
    }
}
