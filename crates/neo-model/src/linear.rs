//! Dense linear algebra primitives for the functional model.
//!
//! Only what a LLaMa block needs: a row-major dense matrix–vector/matrix product
//! (the "linear stage" of the paper), RMSNorm, and the SiLU activation used by SwiGLU.
//!
//! Matrix–vector products parallelise across output-row chunks sized from the rayon
//! pool width ([`rayon::current_num_threads`]); batched products pick between
//! batch-level parallelism (many inputs: one steal-unit per input row, serial matvec
//! inside) and matvec-level parallelism (few inputs: sequential over rows, each matvec
//! fanned out), so a single decode-step matvec and a wide prefill batch both fill the
//! pool without nesting parallel regions. Products below a minimum multiply-add count
//! stay serial outright — small models' per-token projections must never pay a thread
//! spawn. Every path computes each row's dot product in the same order, so results are
//! bit-identical regardless of pool width or which branch ran.

use rayon::prelude::*;

/// Minimum output rows per parallel matvec chunk; below this the dot products are too
/// cheap to amortize a steal-unit claim (let alone a spawn).
const MIN_ROWS_PER_CHUNK: usize = 16;

/// Minimum multiply-adds before a product fans out at all. Spawning scoped workers
/// costs tens of microseconds; at roughly one multiply-add per nanosecond serially,
/// anything under ~64k elements finishes serially before the spawn would pay off —
/// and `forward` sits on the per-token hot path of every layer, where paying a spawn
/// per tiny projection would make the "parallel" path slower than the old sequential
/// shim.
const MIN_PARALLEL_ELEMS: usize = 64 * 1024;

/// Steal-units targeted per pool worker, matching the pool's own unit granularity.
const CHUNKS_PER_THREAD: usize = 4;

/// Output-row chunk size for a parallel matvec over `rows` output rows.
fn matvec_chunk_rows(rows: usize) -> usize {
    rows.div_ceil(rayon::current_num_threads() * CHUNKS_PER_THREAD).max(MIN_ROWS_PER_CHUNK)
}

/// A dense, row-major weight matrix computing `y = W x` (`W` is `[rows, cols]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    rows: usize,
    cols: usize,
    weight: Vec<f32>,
}

impl Linear {
    /// Creates a linear layer from a row-major weight buffer.
    ///
    /// # Panics
    ///
    /// Panics if `weight.len() != rows * cols` or either dimension is zero.
    pub fn new(rows: usize, cols: usize, weight: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        assert_eq!(weight.len(), rows * cols, "weight buffer has wrong length");
        Self { rows, cols, weight }
    }

    /// Output dimension.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input dimension.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Computes `y = W x` for a single input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "input vector has wrong length");
        let mut y = vec![0.0f32; self.rows];
        self.forward_into(x, &mut y);
        y
    }

    /// Computes `y = W x` into a caller-provided buffer, fanning the output rows out
    /// across the rayon pool in pool-width-sized row chunks (the result is
    /// bit-identical to the serial loop: each row's dot product is unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "input vector has wrong length");
        assert_eq!(y.len(), self.rows, "output vector has wrong length");
        if self.rows * self.cols < MIN_PARALLEL_ELEMS {
            return self.forward_rows_serial(x, 0, y);
        }
        let chunk_rows = matvec_chunk_rows(self.rows);
        y.par_chunks_mut(chunk_rows).enumerate().for_each(|(c, out_chunk)| {
            self.forward_rows_serial(x, c * chunk_rows, out_chunk);
        });
    }

    /// Serial dot products for output rows `[first_row, first_row + y.len())`.
    fn forward_rows_serial(&self, x: &[f32], first_row: usize, y: &mut [f32]) {
        for (dr, out) in y.iter_mut().enumerate() {
            let r = first_row + dr;
            let row = &self.weight[r * self.cols..(r + 1) * self.cols];
            *out = row.iter().zip(x).map(|(w, v)| w * v).sum();
        }
    }

    /// Computes `Y = X Wᵀ` for a batch of `n` row vectors laid out `[n, cols]`, returning
    /// `[n, rows]`.
    ///
    /// With at least one input row per pool worker, parallelism is batch-level (one
    /// steal-unit per input, serial matvec inside); with fewer inputs than workers each
    /// matvec is fanned out over its output rows instead, so small decode batches still
    /// use the whole pool. Both paths produce bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not a multiple of `cols`.
    pub fn forward_batch(&self, x: &[f32]) -> Vec<f32> {
        assert!(x.len() % self.cols == 0, "batch buffer must contain whole rows");
        let n = x.len() / self.cols;
        let mut y = vec![0.0f32; n * self.rows];
        if n * self.rows * self.cols < MIN_PARALLEL_ELEMS {
            for (out, row) in y.chunks_mut(self.rows).zip(x.chunks(self.cols)) {
                self.forward_rows_serial(row, 0, out);
            }
        } else if n >= rayon::current_num_threads() {
            y.par_chunks_mut(self.rows).zip(x.par_chunks(self.cols)).for_each(|(out, row)| {
                self.forward_rows_serial(row, 0, out);
            });
        } else {
            for (out, row) in y.chunks_mut(self.rows).zip(x.chunks(self.cols)) {
                self.forward_into(row, out);
            }
        }
        y
    }
}

/// Root-mean-square layer normalisation: `x * rsqrt(mean(x^2) + eps) * gain`.
#[derive(Debug, Clone, PartialEq)]
pub struct RmsNorm {
    gain: Vec<f32>,
    eps: f32,
}

impl RmsNorm {
    /// Creates an RMSNorm with the given gain vector and epsilon.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is empty.
    pub fn new(gain: Vec<f32>, eps: f32) -> Self {
        assert!(!gain.is_empty(), "gain must not be empty");
        Self { gain, eps }
    }

    /// Normalised size.
    pub fn dim(&self) -> usize {
        self.gain.len()
    }

    /// Applies the normalisation, returning a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.gain.len(), "input has wrong length");
        let mean_sq = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
        let scale = 1.0 / (mean_sq + self.eps).sqrt();
        x.iter().zip(&self.gain).map(|(v, g)| v * scale * g).collect()
    }
}

/// SiLU (swish) activation, `x * sigmoid(x)`, applied element-wise.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Element-wise SwiGLU combine: `silu(gate) * up`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn swiglu(gate: &[f32], up: &[f32]) -> Vec<f32> {
    assert_eq!(gate.len(), up.len(), "gate and up must have the same length");
    gate.iter().zip(up).map(|(&g, &u)| silu(g) * u).collect()
}

/// Adds `rhs` into `lhs` element-wise (residual connection).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_inplace(lhs: &mut [f32], rhs: &[f32]) {
    assert_eq!(lhs.len(), rhs.len(), "residual add requires equal lengths");
    for (a, b) in lhs.iter_mut().zip(rhs) {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_hand_computation() {
        // W = [[1, 2], [3, 4], [5, 6]], x = [1, -1] => y = [-1, -1, -1].
        let w = Linear::new(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(w.forward(&[1.0, -1.0]), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn linear_batch_matches_single() {
        let w = Linear::new(4, 3, (0..12).map(|i| i as f32 * 0.1).collect());
        let x1 = [1.0, 2.0, 3.0];
        let x2 = [-1.0, 0.5, 0.0];
        let batch: Vec<f32> = x1.iter().chain(x2.iter()).copied().collect();
        let out = w.forward_batch(&batch);
        assert_eq!(&out[0..4], &w.forward(&x1)[..]);
        assert_eq!(&out[4..8], &w.forward(&x2)[..]);
    }

    #[test]
    fn identity_linear_is_identity() {
        let mut weight = vec![0.0f32; 9];
        for i in 0..3 {
            weight[i * 3 + i] = 1.0;
        }
        let w = Linear::new(3, 3, weight);
        assert_eq!(w.forward(&[7.0, -2.0, 0.5]), vec![7.0, -2.0, 0.5]);
    }

    #[test]
    fn rmsnorm_produces_unit_rms_with_unit_gain() {
        let n = RmsNorm::new(vec![1.0; 4], 1e-6);
        let y = n.forward(&[2.0, -2.0, 2.0, -2.0]);
        let rms = (y.iter().map(|v| v * v).sum::<f32>() / 4.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rmsnorm_is_scale_invariant_up_to_gain() {
        let n = RmsNorm::new(vec![1.0; 3], 1e-6);
        let a = n.forward(&[1.0, 2.0, 3.0]);
        let b = n.forward(&[10.0, 20.0, 30.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn silu_and_swiglu_behave() {
        assert_eq!(silu(0.0), 0.0);
        assert!(silu(5.0) > 4.9);
        assert!(silu(-5.0) > -0.1 && silu(-5.0) < 0.0);
        let out = swiglu(&[0.0, 10.0], &[3.0, 2.0]);
        assert_eq!(out[0], 0.0);
        assert!((out[1] - 2.0 * silu(10.0)).abs() < 1e-5);
    }

    #[test]
    fn residual_add_accumulates() {
        let mut a = vec![1.0, 2.0];
        add_inplace(&mut a, &[0.5, -2.0]);
        assert_eq!(a, vec![1.5, 0.0]);
    }

    #[test]
    fn matvec_is_bit_identical_across_pool_widths() {
        // 67 x 33 exercises partial chunks; pseudo-random but deterministic weights.
        let weight: Vec<f32> =
            (0u64..67 * 33).map(|i| ((i * 2_654_435_761) % 1000) as f32 * 1e-3).collect();
        let w = Linear::new(67, 33, weight);
        let x: Vec<f32> = (0..33).map(|i| (i as f32 * 0.37).sin()).collect();
        let batch: Vec<f32> = x.iter().chain(x.iter()).copied().collect();
        let at = |n: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
                .install(|| (w.forward(&x), w.forward_batch(&batch)))
        };
        let (y1, b1) = at(1);
        for width in [2, 8] {
            let (y, b) = at(width);
            // Bit-identical: chunking never reorders a row's dot product.
            assert!(y1.iter().zip(&y).all(|(a, c)| a.to_bits() == c.to_bits()));
            assert!(b1.iter().zip(&b).all(|(a, c)| a.to_bits() == c.to_bits()));
        }
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn linear_wrong_input_panics() {
        Linear::new(2, 2, vec![0.0; 4]).forward(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn linear_bad_weight_len_panics() {
        let _ = Linear::new(2, 3, vec![0.0; 5]);
    }
}
