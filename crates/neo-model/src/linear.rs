//! Dense linear algebra primitives for the functional model.
//!
//! Only what a LLaMa block needs: a row-major dense matrix–vector/matrix product
//! (the "linear stage" of the paper), RMSNorm, and the SiLU activation used by SwiGLU.

use rayon::prelude::*;

/// A dense, row-major weight matrix computing `y = W x` (`W` is `[rows, cols]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    rows: usize,
    cols: usize,
    weight: Vec<f32>,
}

impl Linear {
    /// Creates a linear layer from a row-major weight buffer.
    ///
    /// # Panics
    ///
    /// Panics if `weight.len() != rows * cols` or either dimension is zero.
    pub fn new(rows: usize, cols: usize, weight: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        assert_eq!(weight.len(), rows * cols, "weight buffer has wrong length");
        Self { rows, cols, weight }
    }

    /// Output dimension.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input dimension.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Computes `y = W x` for a single input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "input vector has wrong length");
        let mut y = vec![0.0f32; self.rows];
        self.forward_into(x, &mut y);
        y
    }

    /// Computes `y = W x` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "input vector has wrong length");
        assert_eq!(y.len(), self.rows, "output vector has wrong length");
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.weight[r * self.cols..(r + 1) * self.cols];
            *out = row.iter().zip(x).map(|(w, v)| w * v).sum();
        }
    }

    /// Computes `Y = X Wᵀ` for a batch of `n` row vectors laid out `[n, cols]`, returning
    /// `[n, rows]`. Rows are processed in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not a multiple of `cols`.
    pub fn forward_batch(&self, x: &[f32]) -> Vec<f32> {
        assert!(x.len() % self.cols == 0, "batch buffer must contain whole rows");
        let n = x.len() / self.cols;
        let mut y = vec![0.0f32; n * self.rows];
        y.par_chunks_mut(self.rows).zip(x.par_chunks(self.cols)).for_each(|(out, row)| {
            self.forward_into(row, out);
        });
        y
    }
}

/// Root-mean-square layer normalisation: `x * rsqrt(mean(x^2) + eps) * gain`.
#[derive(Debug, Clone, PartialEq)]
pub struct RmsNorm {
    gain: Vec<f32>,
    eps: f32,
}

impl RmsNorm {
    /// Creates an RMSNorm with the given gain vector and epsilon.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is empty.
    pub fn new(gain: Vec<f32>, eps: f32) -> Self {
        assert!(!gain.is_empty(), "gain must not be empty");
        Self { gain, eps }
    }

    /// Normalised size.
    pub fn dim(&self) -> usize {
        self.gain.len()
    }

    /// Applies the normalisation, returning a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.gain.len(), "input has wrong length");
        let mean_sq = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
        let scale = 1.0 / (mean_sq + self.eps).sqrt();
        x.iter().zip(&self.gain).map(|(v, g)| v * scale * g).collect()
    }
}

/// SiLU (swish) activation, `x * sigmoid(x)`, applied element-wise.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Element-wise SwiGLU combine: `silu(gate) * up`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn swiglu(gate: &[f32], up: &[f32]) -> Vec<f32> {
    assert_eq!(gate.len(), up.len(), "gate and up must have the same length");
    gate.iter().zip(up).map(|(&g, &u)| silu(g) * u).collect()
}

/// Adds `rhs` into `lhs` element-wise (residual connection).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_inplace(lhs: &mut [f32], rhs: &[f32]) {
    assert_eq!(lhs.len(), rhs.len(), "residual add requires equal lengths");
    for (a, b) in lhs.iter_mut().zip(rhs) {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_hand_computation() {
        // W = [[1, 2], [3, 4], [5, 6]], x = [1, -1] => y = [-1, -1, -1].
        let w = Linear::new(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(w.forward(&[1.0, -1.0]), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn linear_batch_matches_single() {
        let w = Linear::new(4, 3, (0..12).map(|i| i as f32 * 0.1).collect());
        let x1 = [1.0, 2.0, 3.0];
        let x2 = [-1.0, 0.5, 0.0];
        let batch: Vec<f32> = x1.iter().chain(x2.iter()).copied().collect();
        let out = w.forward_batch(&batch);
        assert_eq!(&out[0..4], &w.forward(&x1)[..]);
        assert_eq!(&out[4..8], &w.forward(&x2)[..]);
    }

    #[test]
    fn identity_linear_is_identity() {
        let mut weight = vec![0.0f32; 9];
        for i in 0..3 {
            weight[i * 3 + i] = 1.0;
        }
        let w = Linear::new(3, 3, weight);
        assert_eq!(w.forward(&[7.0, -2.0, 0.5]), vec![7.0, -2.0, 0.5]);
    }

    #[test]
    fn rmsnorm_produces_unit_rms_with_unit_gain() {
        let n = RmsNorm::new(vec![1.0; 4], 1e-6);
        let y = n.forward(&[2.0, -2.0, 2.0, -2.0]);
        let rms = (y.iter().map(|v| v * v).sum::<f32>() / 4.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rmsnorm_is_scale_invariant_up_to_gain() {
        let n = RmsNorm::new(vec![1.0; 3], 1e-6);
        let a = n.forward(&[1.0, 2.0, 3.0]);
        let b = n.forward(&[10.0, 20.0, 30.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn silu_and_swiglu_behave() {
        assert_eq!(silu(0.0), 0.0);
        assert!(silu(5.0) > 4.9);
        assert!(silu(-5.0) > -0.1 && silu(-5.0) < 0.0);
        let out = swiglu(&[0.0, 10.0], &[3.0, 2.0]);
        assert_eq!(out[0], 0.0);
        assert!((out[1] - 2.0 * silu(10.0)).abs() < 1e-5);
    }

    #[test]
    fn residual_add_accumulates() {
        let mut a = vec![1.0, 2.0];
        add_inplace(&mut a, &[0.5, -2.0]);
        assert_eq!(a, vec![1.5, 0.0]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn linear_wrong_input_panics() {
        Linear::new(2, 2, vec![0.0; 4]).forward(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn linear_bad_weight_len_panics() {
        let _ = Linear::new(2, 3, vec![0.0; 5]);
    }
}
