//! A minimal, functional LLaMa-style transformer over the paged KV cache.
//!
//! The paper's system serves real LLaMa checkpoints on GPUs; this reproduction cannot, so
//! the *functional* path is a small decoder-only transformer with randomly initialised
//! weights that exercises every moving part the serving engine touches: token embedding,
//! RMSNorm, rotary embeddings, grouped-query attention read from the **paged** KV cache
//! (GPU pool or CPU pool), SwiGLU FFN, and the LM head. Its purpose is not language
//! quality but *behavioural fidelity*: prefill vs decode paths, per-layer cache writes,
//! cache swaps that must not change the math, and the same kernels (`neo-kernels`) the
//! offloaded CPU attention uses.
//!
//! The architectural descriptors of the real models (7B/8B/70B) live in
//! [`neo_sim::ModelDesc`] and are shared with the cost model; this crate instantiates real
//! weights only for the tiny test-sized configurations.
//!
//! # Example
//!
//! ```
//! use neo_model::{Model, PagedKvCache};
//! use neo_sim::ModelDesc;
//! use neo_kvcache::Device;
//!
//! let desc = ModelDesc::tiny();
//! let model = Model::random(&desc, 42);
//! let mut cache = PagedKvCache::new(&desc, 16, 1024, 4096);
//! let logits = model.prefill(1, &[3, 17, 9], &mut cache, Device::Gpu)?;
//! assert_eq!(logits.len(), desc.vocab);
//! let next = model.decode(1, 42, &mut cache)?;
//! assert_eq!(next.len(), desc.vocab);
//! # Ok::<(), neo_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod linear;
pub mod model;
pub mod sampling;
pub mod weights;

pub use cache::PagedKvCache;
pub use model::{Model, ModelError};
pub use sampling::{argmax, sample_top_k};
pub use weights::{LayerWeights, ModelWeights};
