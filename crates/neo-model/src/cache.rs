//! The functional two-device paged KV cache: block accounting plus real `f32` storage.
//!
//! [`PagedKvCache`] combines the accounting [`KvCacheManager`] from `neo-kvcache` with one
//! [`PagedStorage`] per transformer layer per device (GPU pool and CPU pool). Swapping a
//! sequence moves both the accounting *and* the actual K/V numbers, so tests can assert
//! that offloading a request to the CPU-cache and back never changes the model's output —
//! the accuracy-preservation claim of the paper.

use neo_kvcache::manager::{KvCacheConfig, KvCacheManager, SwapStats};
use neo_kvcache::{BlockTable, Device, KvCacheError, PagedStorage};
use neo_sim::ModelDesc;

/// Per-layer, per-device paged KV cache with real storage.
#[derive(Debug, Clone)]
pub struct PagedKvCache {
    n_layers: usize,
    manager: KvCacheManager,
    gpu_layers: Vec<PagedStorage>,
    cpu_layers: Vec<PagedStorage>,
}

impl PagedKvCache {
    /// Creates a cache for `desc` with the given block size and per-device capacities
    /// (in tokens).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(
        desc: &ModelDesc,
        block_size: usize,
        gpu_capacity_tokens: usize,
        cpu_capacity_tokens: usize,
    ) -> Self {
        let manager = KvCacheManager::new(KvCacheConfig {
            block_size,
            gpu_capacity_tokens,
            cpu_capacity_tokens,
            kv_bytes_per_token: desc.kv_bytes_per_token(),
        });
        let gpu_blocks = manager.pool(Device::Gpu).num_blocks();
        let cpu_blocks = manager.pool(Device::Cpu).num_blocks();
        let mk =
            |blocks: usize| PagedStorage::new(blocks, block_size, desc.n_kv_heads, desc.head_dim);
        Self {
            n_layers: desc.n_layers,
            gpu_layers: (0..desc.n_layers).map(|_| mk(gpu_blocks)).collect(),
            cpu_layers: (0..desc.n_layers).map(|_| mk(cpu_blocks)).collect(),
            manager,
        }
    }

    /// The underlying accounting manager (read-only).
    pub fn manager(&self) -> &KvCacheManager {
        &self.manager
    }

    /// Allocates room for a new sequence of `n_tokens` tokens on `device`.
    ///
    /// # Errors
    ///
    /// Propagates [`KvCacheError`] from the accounting manager (duplicate id, OOM).
    pub fn allocate(
        &mut self,
        seq_id: u64,
        n_tokens: usize,
        device: Device,
    ) -> Result<(), KvCacheError> {
        self.manager.allocate_sequence(seq_id, n_tokens, device)
    }

    /// Grows a sequence by `n_tokens` on its current device.
    ///
    /// # Errors
    ///
    /// Propagates [`KvCacheError`] (unknown sequence, OOM).
    pub fn append(&mut self, seq_id: u64, n_tokens: usize) -> Result<(), KvCacheError> {
        self.manager.append_tokens(seq_id, n_tokens)
    }

    /// Releases a sequence, returning how many tokens it had cached.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownSequence`] if the id is not tracked.
    pub fn free(&mut self, seq_id: u64) -> Result<usize, KvCacheError> {
        self.manager.free_sequence(seq_id)
    }

    /// Device the sequence currently lives on.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownSequence`] if the id is not tracked.
    pub fn device_of(&self, seq_id: u64) -> Result<Device, KvCacheError> {
        self.manager.device_of(seq_id)
    }

    /// Number of cached tokens of the sequence.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownSequence`] if the id is not tracked.
    pub fn num_tokens(&self, seq_id: u64) -> Result<usize, KvCacheError> {
        self.manager.num_tokens_of(seq_id)
    }

    /// The sequence's block table.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownSequence`] if the id is not tracked.
    pub fn block_table(&self, seq_id: u64) -> Result<&BlockTable, KvCacheError> {
        self.manager.block_table(seq_id)
    }

    /// The physical storage of `layer` on `device`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range, or if `device` is the disk tier — the
    /// functional cache materialises GPU and CPU storage only (the disk tier exists in
    /// the simulation's accounting, not in the numeric kernels).
    pub fn storage(&self, layer: usize, device: Device) -> &PagedStorage {
        assert!(layer < self.n_layers, "layer {layer} out of range");
        match device {
            Device::Gpu => &self.gpu_layers[layer],
            Device::Cpu => &self.cpu_layers[layer],
            Device::Disk => panic!("the functional cache holds no disk storage"),
        }
    }

    /// Writes the K/V vectors of logical token `token_idx` of `seq_id` in `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError`] if the sequence is unknown or the index is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or the vectors have the wrong length.
    pub fn write_kv(
        &mut self,
        layer: usize,
        seq_id: u64,
        token_idx: usize,
        k: &[f32],
        v: &[f32],
    ) -> Result<(), KvCacheError> {
        assert!(layer < self.n_layers, "layer {layer} out of range");
        let device = self.manager.device_of(seq_id)?;
        let (block, slot) = self.manager.block_table(seq_id)?.locate(token_idx)?;
        let storage = match device {
            Device::Gpu => &mut self.gpu_layers[layer],
            Device::Cpu => &mut self.cpu_layers[layer],
            Device::Disk => panic!("the functional cache holds no disk storage"),
        };
        storage.write_token(block, slot, k, v)
    }

    /// Moves a sequence (accounting **and** data, all layers) to the other device.
    ///
    /// # Errors
    ///
    /// Propagates [`KvCacheError`] from the manager; on error nothing is moved.
    pub fn swap(&mut self, seq_id: u64, to: Device) -> Result<SwapStats, KvCacheError> {
        let old_device = self.manager.device_of(seq_id)?;
        let old_table = self.manager.block_table(seq_id)?.clone();
        let stats = self.manager.swap(seq_id, to)?;
        let new_table = self.manager.block_table(seq_id)?.clone();
        // Copy every layer's K/V entries from the old device's blocks (whose contents are
        // still intact — only the accounting released them) into the new blocks.
        for layer in 0..self.n_layers {
            let (src, dst): (&PagedStorage, &mut PagedStorage) = match (old_device, to) {
                (Device::Gpu, Device::Cpu) => {
                    (&self.gpu_layers[layer], &mut self.cpu_layers[layer])
                }
                (Device::Cpu, Device::Gpu) => {
                    (&self.cpu_layers[layer], &mut self.gpu_layers[layer])
                }
                _ => unreachable!("manager rejects same-device swaps"),
            };
            dst.copy_sequence_from(src, &old_table, &new_table)?;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> (ModelDesc, PagedKvCache) {
        let desc = ModelDesc::tiny();
        let cache = PagedKvCache::new(&desc, 4, 64, 256);
        (desc, cache)
    }

    #[test]
    fn allocate_write_read_round_trip() {
        let (desc, mut c) = cache();
        c.allocate(1, 5, Device::Gpu).unwrap();
        let kv_len = desc.n_kv_heads * desc.head_dim;
        let k = vec![1.5f32; kv_len];
        let v = vec![-0.5f32; kv_len];
        c.write_kv(0, 1, 3, &k, &v).unwrap();
        let table = c.block_table(1).unwrap();
        let (b, s) = table.locate(3).unwrap();
        assert_eq!(c.storage(0, Device::Gpu).read_k(b, s).unwrap(), &k[..]);
        assert_eq!(c.storage(0, Device::Gpu).read_v(b, s).unwrap(), &v[..]);
    }

    #[test]
    fn swap_preserves_data_across_all_layers() {
        let (desc, mut c) = cache();
        let kv_len = desc.n_kv_heads * desc.head_dim;
        c.allocate(9, 6, Device::Gpu).unwrap();
        for layer in 0..desc.n_layers {
            for tok in 0..6 {
                let k = vec![(layer * 10 + tok) as f32; kv_len];
                let v = vec![(layer * 10 + tok) as f32 + 0.5; kv_len];
                c.write_kv(layer, 9, tok, &k, &v).unwrap();
            }
        }
        let stats = c.swap(9, Device::Cpu).unwrap();
        assert_eq!(stats.tokens, 6);
        assert_eq!(c.device_of(9).unwrap(), Device::Cpu);
        for layer in 0..desc.n_layers {
            let table = c.block_table(9).unwrap().clone();
            for tok in 0..6 {
                let (b, s) = table.locate(tok).unwrap();
                let k = c.storage(layer, Device::Cpu).read_k(b, s).unwrap();
                assert_eq!(k[0], (layer * 10 + tok) as f32, "layer {layer} token {tok}");
            }
        }
        // And back again.
        c.swap(9, Device::Gpu).unwrap();
        let table = c.block_table(9).unwrap().clone();
        let (b, s) = table.locate(5).unwrap();
        assert_eq!(c.storage(1, Device::Gpu).read_k(b, s).unwrap()[0], 15.0);
    }

    #[test]
    fn append_then_write_new_slot() {
        let (desc, mut c) = cache();
        let kv_len = desc.n_kv_heads * desc.head_dim;
        c.allocate(2, 3, Device::Cpu).unwrap();
        c.append(2, 1).unwrap();
        assert_eq!(c.num_tokens(2).unwrap(), 4);
        c.write_kv(1, 2, 3, &vec![2.0; kv_len], &vec![3.0; kv_len]).unwrap();
    }

    #[test]
    fn free_releases_capacity() {
        let (_, mut c) = cache();
        c.allocate(1, 60, Device::Gpu).unwrap();
        assert!(c.allocate(2, 60, Device::Gpu).is_err());
        assert_eq!(c.free(1).unwrap(), 60);
        c.allocate(2, 60, Device::Gpu).unwrap();
    }

    #[test]
    fn unknown_sequence_errors() {
        let (_, mut c) = cache();
        assert!(c.device_of(404).is_err());
        assert!(c.swap(404, Device::Cpu).is_err());
        assert!(c.write_kv(0, 404, 0, &[0.0; 32], &[0.0; 32]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_layer_panics() {
        let (_, c) = cache();
        let _ = c.storage(99, Device::Gpu);
    }
}
