//! Token sampling from logits.

use rand::Rng;

/// Returns the index of the largest logit (greedy decoding).
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn argmax(logits: &[f32]) -> u32 {
    assert!(!logits.is_empty(), "cannot take the argmax of an empty logit vector");
    let mut best = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best as u32
}

/// Samples a token from the top-`k` logits with softmax weights, using the provided RNG.
///
/// `k` is clamped to the vocabulary size; `k == 1` is equivalent to [`argmax`].
///
/// # Panics
///
/// Panics if `logits` is empty or `k` is zero.
pub fn sample_top_k<R: Rng>(logits: &[f32], k: usize, rng: &mut R) -> u32 {
    assert!(!logits.is_empty(), "cannot sample from an empty logit vector");
    assert!(k > 0, "k must be positive");
    let k = k.min(logits.len());

    let mut indexed: Vec<(usize, f32)> = logits.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
    indexed.truncate(k);

    let max = indexed[0].1;
    let weights: Vec<f32> = indexed.iter().map(|(_, v)| (v - max).exp()).collect();
    let total: f32 = weights.iter().sum();
    let mut draw = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
    for ((idx, _), w) in indexed.iter().zip(&weights) {
        if draw < *w {
            return *idx as u32;
        }
        draw -= w;
    }
    indexed[0].0 as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn argmax_picks_the_peak() {
        assert_eq!(argmax(&[0.1, 3.0, -2.0, 2.9]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn argmax_prefers_first_of_equal_peaks() {
        assert_eq!(argmax(&[1.0, 2.0, 2.0]), 1);
    }

    #[test]
    fn top_1_sampling_is_greedy() {
        let mut rng = StdRng::seed_from_u64(0);
        let logits = [0.0f32, 10.0, -1.0];
        for _ in 0..10 {
            assert_eq!(sample_top_k(&logits, 1, &mut rng), 1);
        }
    }

    #[test]
    fn top_k_sampling_stays_within_top_k() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = [5.0f32, 4.9, -100.0, -100.0, 4.8];
        for _ in 0..100 {
            let t = sample_top_k(&logits, 3, &mut rng);
            assert!(t == 0 || t == 1 || t == 4, "sampled unlikely token {t}");
        }
    }

    #[test]
    fn sampling_is_reproducible_with_same_seed() {
        let logits: Vec<f32> = (0..20).map(|i| (i as f32 * 0.3).sin()).collect();
        let a: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| sample_top_k(&logits, 5, &mut rng)).collect()
        };
        let b: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| sample_top_k(&logits, 5, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_logits_panic() {
        let _ = argmax(&[]);
    }
}
