//! Online and offline serving harnesses plus latency/throughput metrics.
//!
//! The paper's evaluation has two measurement modes:
//!
//! * **Online** (§5.2, Figures 6, 7, 8a): requests arrive over time following a Poisson
//!   process; the metric is the *average per-token latency* (request latency divided by
//!   its output length) as a function of the offered request rate.
//! * **Offline** (§5.4, §5.5, Figures 8b, 9, 10): the whole trace is fed at once; the
//!   metric is token throughput — total tokens processed (input + output) divided by the
//!   total elapsed time — usually reported relative to the GPU-only baseline.
//!
//! [`online::run_online`] and [`offline::run_offline`] drive a [`neo_core::Engine`]
//! (with any scheduler) over a [`neo_workload::Trace`] and collect those metrics.
//!
//! Underneath the online driver sits the event-driven serving loop ([`server::Server`]):
//! requests are submitted individually (returning a [`RequestHandle`]), can be cancelled
//! mid-decode (freeing their KV blocks immediately), and stream their tokens through
//! per-request callbacks — the surface a real client or HTTP front-end builds on. It also
//! measures the two streaming latency metrics the paper's CDF figures need: time to first
//! token (TTFT) and inter-token latency (ITL).
//!
//! # Example
//!
//! ```
//! use neo_core::{Engine, EngineConfig, NeoScheduler};
//! use neo_serve::run_offline;
//! use neo_sim::{CostModel, ModelDesc, Testbed};
//! use neo_workload::{synthetic, ArrivalProcess};
//!
//! let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
//! let engine = Engine::new(cost, EngineConfig::default(), Box::new(NeoScheduler::new()));
//! let trace = synthetic(8, 300, 40, ArrivalProcess::AllAtOnce, 1);
//! let result = run_offline(engine, &trace, 1_000_000);
//! assert_eq!(result.completed, 8);
//! assert!(result.token_throughput > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod metrics;
pub mod offline;
pub mod online;
pub mod server;

pub use metrics::{Cdf, LatencySummary};
pub use offline::{run_offline, OfflineResult};
pub use online::{run_online, run_sessions, OnlineResult, SessionsResult};
pub use server::{
    DropReason, RequestHandle, RequestStatus, Server, ServerReport, TokenCallback, TokenEvent,
};
