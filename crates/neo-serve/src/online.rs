//! Online serving: Poisson arrivals driven through the engine in simulated time.
//!
//! [`run_online`] replays a [`Trace`] through the event-driven [`Server`] loop: each
//! trace entry becomes an arrival event, and the loop admits, schedules, and streams
//! tokens exactly as it would for live clients.

use neo_core::Engine;
use neo_workload::{SessionTrace, Trace};
use serde::{Deserialize, Serialize};

use crate::metrics::{Cdf, LatencySummary};
use crate::server::Server;

/// Result of one online serving run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineResult {
    /// Scheduling policy that produced this result.
    pub scheduler: String,
    /// Offered request rate (requests per second), as recorded by the caller.
    pub request_rate: f64,
    /// Number of requests completed.
    pub completed: usize,
    /// Average per-token latency (each request's latency divided by its output length,
    /// averaged over requests) — the y-axis of Figure 6.
    pub avg_per_token_latency: f64,
    /// Per-token latency summary (p50/p90/p99).
    pub per_token_latency: LatencySummary,
    /// End-to-end latency summary.
    pub request_latency: LatencySummary,
    /// Time-to-first-token summary (p50/p90/p99), measured at token emission by the
    /// serving loop.
    pub ttft: LatencySummary,
    /// Inter-token latency summary: gaps between consecutive streamed tokens of the same
    /// request. `None` when no request produced a second token.
    pub itl: Option<LatencySummary>,
    /// Output-token throughput over the whole run (generated tokens / makespan).
    pub decode_throughput: f64,
    /// Total simulated time of the run.
    pub makespan: f64,
    /// Fraction of iterations that chose CPU offloading (NEO diagnostics).
    pub offload_fraction: f64,
    /// All per-token latency samples (for CDF plots, Figure 7).
    pub per_token_samples: Vec<f64>,
}

impl OnlineResult {
    /// The per-token latency CDF of this run.
    pub fn cdf(&self) -> Cdf {
        Cdf::new(self.per_token_samples.clone())
    }
}

/// Runs the engine over the trace with its real arrival times and collects latency
/// metrics. `request_rate` is recorded in the result for labelling; the arrival times in
/// the trace are authoritative.
///
/// Implemented on the event-driven [`Server`] loop: the trace is fed as a stream of
/// arrival events (see [`Trace::events`]), so this replay takes the exact code path a
/// live client would.
///
/// # Panics
///
/// Panics if the trace is empty or if the run exceeds `max_iterations` without finishing
/// (which indicates a scheduler livelock).
pub fn run_online(
    engine: Engine,
    trace: &Trace,
    request_rate: f64,
    max_iterations: u64,
) -> OnlineResult {
    assert!(!trace.is_empty(), "cannot serve an empty trace");
    let total = trace.len();
    let mut server = Server::new(engine).with_max_iterations(max_iterations);
    for event in trace.events() {
        // neo-lint: allow(panic-hygiene) -- driver entry point documented to panic (see `# Panics`); an inadmissible trace request is a configuration error
        server.submit(event.time, event.prompt_len, event.output_len).unwrap();
    }
    drain_and_summarise(&mut server, total, request_rate)
}

/// Result of one session-workload serving run: the usual online metrics plus the
/// prefix-cache counters that only session workloads exercise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionsResult {
    /// The latency/throughput metrics, identical in meaning to [`run_online`]'s.
    pub online: OnlineResult,
    /// Prompt tokens served from cached KV instead of being prefilled.
    pub prefix_hit_tokens: usize,
    /// Total prompt tokens submitted; `prefix_hit_tokens / prompt_tokens` is the
    /// measured hit rate.
    pub prompt_tokens: usize,
    /// Copy-on-write block splits performed for partial tail-block hits.
    pub cow_splits: usize,
}

impl SessionsResult {
    /// Fraction of submitted prompt tokens served from the prefix cache.
    pub fn hit_rate(&self) -> f64 {
        self.prefix_hit_tokens as f64 / self.prompt_tokens.max(1) as f64
    }
}

/// Runs the engine over a [`SessionTrace`] — requests whose prompts carry identity as
/// token runs — and collects the same metrics as [`run_online`], plus prefix-cache
/// counters. With a prefix-caching engine, turns of the same session (and sessions
/// sharing a system prompt) reuse KV cached by earlier requests; with caching disabled
/// the identities are inert and the run is byte-for-byte a [`run_online`] of the
/// flattened trace.
///
/// # Panics
///
/// Panics if the trace is empty or the run exceeds `max_iterations` without finishing.
pub fn run_sessions(
    engine: Engine,
    trace: &SessionTrace,
    request_rate: f64,
    max_iterations: u64,
) -> SessionsResult {
    assert!(!trace.is_empty(), "cannot serve an empty trace");
    let total = trace.len();
    let prompt_tokens = trace.requests().iter().map(|r| r.prompt_len()).sum();
    let mut server = Server::new(engine).with_max_iterations(max_iterations);
    for request in trace.requests() {
        // neo-lint: allow(panic-hygiene) -- driver entry point documented to panic (see `# Panics`); an inadmissible trace request is a configuration error
        server.submit_with_runs(request.arrival, request.runs.clone(), request.output_len).unwrap();
    }
    let online = drain_and_summarise(&mut server, total, request_rate);
    SessionsResult {
        online,
        prefix_hit_tokens: server.engine().prefix_hit_tokens(),
        prompt_tokens,
        cow_splits: server.engine().cow_splits(),
    }
}

/// Drains the server and assembles the shared [`OnlineResult`] metrics.
fn drain_and_summarise(server: &mut Server, total: usize, request_rate: f64) -> OnlineResult {
    let scheduler = server.engine().scheduler_name().to_string();
    let report = server.run_until_idle();

    let completed = server.engine().completed();
    assert_eq!(completed.len(), total, "all submitted requests must finish");
    let per_token_samples: Vec<f64> =
        completed.iter().filter_map(|r| r.per_token_latency()).collect();
    let request_latencies: Vec<f64> = completed.iter().filter_map(|r| r.latency()).collect();
    let makespan = server.engine().now();
    let decode_tokens = server.engine().total_decode_tokens();

    OnlineResult {
        scheduler,
        request_rate,
        completed: completed.len(),
        avg_per_token_latency: per_token_samples.iter().sum::<f64>()
            / per_token_samples.len().max(1) as f64,
        per_token_latency: LatencySummary::from_samples(&per_token_samples)
            // neo-lint: allow(panic-hygiene) -- the non-empty-trace assert at entry guarantees at least one completed request with samples
            .expect("at least one request"),
        request_latency: LatencySummary::from_samples(&request_latencies)
            // neo-lint: allow(panic-hygiene) -- the non-empty-trace assert at entry guarantees at least one completed request with samples
            .expect("at least one request"),
        // neo-lint: allow(panic-hygiene) -- the non-empty-trace assert at entry guarantees at least one completed request with samples
        ttft: report.ttft.expect("at least one request produced a token"),
        itl: report.itl,
        decode_throughput: decode_tokens as f64 / makespan.max(1e-9),
        makespan,
        offload_fraction: report.offload_fraction,
        per_token_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_baselines::GpuOnlyScheduler;
    use neo_core::config::EngineConfig;
    use neo_core::scheduler::NeoScheduler;
    use neo_sim::{CostModel, ModelDesc, Testbed};
    use neo_workload::{osc_like, ArrivalProcess};

    fn engine(neo: bool) -> Engine {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        let sched: Box<dyn neo_core::Scheduler> = if neo {
            Box::new(NeoScheduler::new())
        } else {
            Box::new(GpuOnlyScheduler::vllm_like())
        };
        Engine::new(cost, EngineConfig::default(), sched)
    }

    fn small_trace(rate: f64) -> Trace {
        osc_like(40, ArrivalProcess::Poisson { rate }, 11)
    }

    #[test]
    fn online_run_completes_and_reports_sane_metrics() {
        let result = run_online(engine(true), &small_trace(2.0), 2.0, 2_000_000);
        assert_eq!(result.completed, 40);
        assert!(result.avg_per_token_latency > 0.0);
        assert!(result.per_token_latency.p50 <= result.per_token_latency.p99);
        assert!(result.makespan > 0.0);
        assert!(result.decode_throughput > 0.0);
        assert_eq!(result.per_token_samples.len(), 40);
        assert_eq!(result.cdf().len(), 40);
        // Streaming metrics cover every request.
        assert_eq!(result.ttft.count, 40);
        assert!(result.ttft.mean > 0.0 && result.ttft.p50 <= result.ttft.p99);
        let itl = result.itl.expect("multi-token outputs");
        assert!(itl.mean > 0.0 && itl.p50 <= itl.p99);
    }

    #[test]
    fn latency_grows_with_request_rate() {
        // Queueing: at higher offered load the same engine shows higher per-token latency.
        let low = run_online(engine(false), &small_trace(0.5), 0.5, 2_000_000);
        let high = run_online(engine(false), &small_trace(20.0), 20.0, 2_000_000);
        assert!(
            high.avg_per_token_latency >= low.avg_per_token_latency,
            "high load {} should not be faster than low load {}",
            high.avg_per_token_latency,
            low.avg_per_token_latency
        );
    }

    #[test]
    fn arrivals_are_respected() {
        // With a very low rate, the engine should spend most wall-clock waiting, and the
        // makespan is dominated by the last arrival.
        let trace = small_trace(0.2);
        let last_arrival = trace.requests().last().unwrap().arrival;
        let result = run_online(engine(false), &trace, 0.2, 2_000_000);
        assert!(result.makespan >= last_arrival);
    }

    #[test]
    fn offload_family_serves_online_traffic() {
        // The event-driven serving loop is policy-agnostic: the pipelined-offloading
        // baselines stream tokens, report TTFT/ITL and drain the trace like any other.
        use neo_baselines::{PipoScheduler, SpecOffloadScheduler};
        let trace = small_trace(1.0);
        let schedulers: [Box<dyn neo_core::Scheduler>; 2] =
            [Box::new(PipoScheduler::new()), Box::new(SpecOffloadScheduler::new())];
        for sched in schedulers {
            let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
            let engine = Engine::new(cost, EngineConfig::default(), sched);
            let result = run_online(engine, &trace, 1.0, 5_000_000);
            assert_eq!(result.completed, 40);
            assert!(result.ttft.mean > 0.0);
            assert!(result.decode_throughput > 0.0);
            assert!(!result.scheduler.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        let _ = run_online(engine(false), &Trace::default(), 1.0, 1000);
    }

    fn caching_engine(prefix_cache: bool) -> Engine {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        let config = EngineConfig { prefix_cache, ..EngineConfig::default() };
        Engine::new(cost, config, Box::new(NeoScheduler::new()))
    }

    fn chat_trace() -> neo_workload::SessionTrace {
        neo_workload::multi_turn_chat(
            &neo_workload::ChatConfig {
                sessions: 8,
                turns: 3,
                system_len: 512,
                user_len: 64,
                output_len: 32,
                shared_system_prob: 1.0,
                session_rate: 1.0,
                turn_gap: 4.0,
            },
            5,
        )
    }

    #[test]
    fn sessions_reuse_prefixes_when_caching_is_on() {
        let trace = chat_trace();
        let cached = run_sessions(caching_engine(true), &trace, 1.0, 2_000_000);
        assert_eq!(cached.online.completed, trace.len());
        // Later turns re-send their session history and all sessions share a system
        // prompt, so the cache must have served a substantial number of prompt tokens.
        assert!(cached.prefix_hit_tokens > 0, "chat turns must hit the cache");
        assert!(cached.hit_rate() > 0.2, "hit rate {}", cached.hit_rate());
        assert!(cached.hit_rate() < 1.0, "new user messages are never cached");
        let plain = run_sessions(caching_engine(false), &trace, 1.0, 2_000_000);
        assert_eq!(plain.prefix_hit_tokens, 0);
        assert_eq!(plain.online.completed, trace.len());
        assert!(
            cached.online.ttft.mean <= plain.online.ttft.mean,
            "prefix caching must not slow first tokens: {} vs {}",
            cached.online.ttft.mean,
            plain.online.ttft.mean
        );
    }

    #[test]
    fn sessions_without_caching_match_the_flat_trace_exactly() {
        // With the prefix cache off, run identities are inert: serving the session
        // trace is the same run as serving its flattened length-only trace.
        let trace = chat_trace();
        let with_runs = run_sessions(caching_engine(false), &trace, 1.0, 2_000_000);
        let flat = run_online(caching_engine(false), &trace.to_trace(), 1.0, 2_000_000);
        assert_eq!(with_runs.online.per_token_samples, flat.per_token_samples);
        assert_eq!(with_runs.online.makespan, flat.makespan);
        assert_eq!(with_runs.online.decode_throughput, flat.decode_throughput);
    }
}
