//! The event-driven serving loop.
//!
//! [`Server`] turns the iteration-level [`neo_core::Engine`] into something a client can
//! sit on top of: requests are *submitted* (individually, at any simulated time — not
//! replayed from a pre-scanned trace), can be *cancelled* mid-flight (their KV blocks are
//! freed immediately, even mid-decode), and *stream* their output tokens through a
//! per-request callback as they are produced.
//!
//! Internally the server runs an event queue in simulated time. Three things drive it:
//!
//! * **arrival events** — a submitted request becomes visible at its arrival time and
//!   enters the admission backlog;
//! * **step-complete** — after every [`neo_core::Engine::step`] the server diffs each
//!   live request's progress and fires one [`TokenEvent`] per newly generated token;
//! * **cancel events** — a scheduled cancellation evicts the request wherever it is
//!   (backlog, waitqueue, or mid-decode).
//!
//! Admission applies backpressure instead of dropping: while the engine reports a full
//! prefill waitqueue ([`neo_core::Engine::can_admit`] is `false`), arrivals wait in the
//! server's FIFO backlog and are admitted as the queue drains. The backlog depth is also
//! surfaced to schedulers via `ScheduleContext::admission_backlog`.
//!
//! [`crate::run_online`] is a thin wrapper over this loop; real clients (or a future HTTP
//! front-end) use [`Server::submit`] / [`Server::cancel`] directly.

use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use neo_core::request::{Request, RequestState};
use neo_core::{AdmitError, Engine, IterationReport};
use neo_kvcache::TokenRun;
use serde::{Deserialize, Serialize};

use crate::metrics::LatencySummary;

/// One streamed output token, delivered to the submitting client's callback.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenEvent {
    /// Request this token belongs to.
    pub request_id: u64,
    /// Zero-based index of the token within the request's output.
    pub index: usize,
    /// Simulated time the token was emitted.
    pub time: f64,
    /// Whether this is the request's final token.
    pub is_last: bool,
}

/// Streaming callback invoked once per emitted token, in emission order.
pub type TokenCallback = Box<dyn FnMut(&TokenEvent)>;

/// Client-side handle to a submitted request, used to query status and to cancel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestHandle {
    id: u64,
}

impl RequestHandle {
    /// The server-assigned request id (also the `request_id` of its [`TokenEvent`]s).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Lifecycle of a request as observed through its [`RequestHandle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestStatus {
    /// Submitted; its arrival time has not been reached yet.
    Scheduled,
    /// Arrived, but held in the server backlog by admission backpressure.
    Backlogged,
    /// Admitted into the engine (waiting, prefilling, or decoding).
    Running {
        /// Output tokens streamed so far.
        generated: usize,
    },
    /// All output tokens produced.
    Finished {
        /// Simulated completion time.
        finish_time: f64,
    },
    /// Cancelled before finishing.
    Cancelled {
        /// Output tokens streamed before the cancellation.
        generated: usize,
    },
    /// Shed by the serving layer before finishing (see [`DropReason`]).
    Dropped {
        /// Why the request was shed.
        reason: DropReason,
        /// Output tokens streamed before the drop.
        generated: usize,
    },
}

/// Why the serving layer shed a request instead of finishing it.
///
/// Unlike a client-initiated [`Server::cancel`], a drop is the *server's* decision: the
/// engine died under the request, its SLO deadline passed, its retry budget ran out, or
/// no engine in the fleet can ever hold it. Dropped requests are terminal — they count
/// as shed (not goodput) in every summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// The engine serving the request fail-stopped, losing its KV.
    EngineFailed,
    /// The request's SLO deadline passed (or a retry could not beat it).
    DeadlineExpired,
    /// The per-request retry budget was exhausted by repeated failovers.
    RetriesExhausted,
    /// No live engine can admit the request (e.g. its context fits no pool).
    NoAdmissibleEngine,
}

impl DropReason {
    /// Stable snake_case label, used as a JSON key in drop breakdowns.
    pub fn label(&self) -> &'static str {
        match self {
            DropReason::EngineFailed => "engine_failed",
            DropReason::DeadlineExpired => "deadline_expired",
            DropReason::RetriesExhausted => "retries_exhausted",
            DropReason::NoAdmissibleEngine => "no_admissible_engine",
        }
    }
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What the serving loop did, summarised when the queue drains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerReport {
    /// Requests that produced their full output.
    pub completed: usize,
    /// Requests cancelled before finishing.
    pub cancelled: usize,
    /// Requests shed by the server (engine failure, deadline, retry exhaustion).
    pub dropped: usize,
    /// Simulated time when the loop drained.
    pub makespan: f64,
    /// Engine iterations executed (including idle quanta).
    pub iterations: u64,
    /// Iterations that executed work.
    pub busy_iterations: u64,
    /// Fraction of busy iterations that offloaded attention to the CPU.
    pub offload_fraction: f64,
    /// Tokens delivered through streaming callbacks (all requests).
    pub streamed_tokens: u64,
    /// Time-to-first-token summary over requests that produced at least one token.
    pub ttft: Option<LatencySummary>,
    /// Inter-token latency summary: gaps between consecutive tokens of the same request,
    /// over requests that produced at least two tokens.
    pub itl: Option<LatencySummary>,
    /// High-water mark of the admission backlog (0 means backpressure never engaged).
    pub max_backlog: usize,
}

/// Internal event kinds, ordered by time on the event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Arrival(u64),
    Cancel(u64),
}

/// A timed event. The `seq` number breaks ties so same-time events are delivered in
/// submission order.
#[derive(Debug, Clone, Copy)]
struct TimedEvent {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for TimedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for TimedEvent {}

impl Ord for TimedEvent {
    // Reversed so the std max-heap pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for TimedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Server-side record of one submitted request.
struct Session {
    arrival: f64,
    prompt_len: usize,
    output_len: usize,
    /// Prompt identity as token runs (empty = opaque prompt, no prefix sharing).
    runs: Vec<TokenRun>,
    state: SessionState,
    callback: Option<TokenCallback>,
    /// Emission time of each streamed token (drives TTFT/ITL metrics).
    token_times: Vec<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SessionState {
    Scheduled,
    Backlogged,
    Running,
    Finished { finish_time: f64 },
    Cancelled,
    Dropped { reason: DropReason },
}

/// The event-driven serving loop over one [`Engine`].
pub struct Server {
    engine: Engine,
    events: BinaryHeap<TimedEvent>,
    sessions: Vec<Session>,
    /// Arrived-but-not-admitted request ids, FIFO.
    backlog: VecDeque<u64>,
    /// Ids currently admitted into the engine; keeps token dispatch O(running
    /// requests) per iteration instead of O(everything ever submitted). Ordered, so
    /// delivery stays deterministic (ascending id = arrival order).
    running: BTreeSet<u64>,
    next_seq: u64,
    max_iterations: u64,
    iterations: u64,
    busy_iterations: u64,
    offload_iterations: u64,
    streamed_tokens: u64,
    max_backlog: usize,
    /// Requests evicted by cancellation (terminal state [`RequestState::Cancelled`]).
    cancelled: Vec<Request>,
    /// Requests shed by the server, with the reason, in drop order.
    dropped: Vec<(u64, DropReason)>,
    /// Admission backlog limit; `None` means backpressure only, never `BacklogFull`.
    max_backlog_limit: Option<usize>,
    /// How much of `engine.completed()` has already been dispatched to callbacks.
    completed_cursor: usize,
    last_report: Option<IterationReport>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("engine", &self.engine)
            .field("now", &self.engine.now())
            .field("submitted", &self.sessions.len())
            .field("backlog", &self.backlog.len())
            .field("pending_events", &self.events.len())
            .finish()
    }
}

impl Server {
    /// Wraps an engine in a serving loop. The engine must be fresh (no requests submitted
    /// directly); all traffic goes through [`Server::submit`].
    ///
    /// # Panics
    ///
    /// Panics if the engine already holds live or completed requests.
    pub fn new(engine: Engine) -> Self {
        assert!(
            engine.is_idle() && engine.completed().is_empty(),
            "the server needs a fresh engine; submit requests through the server"
        );
        Self {
            engine,
            events: BinaryHeap::new(),
            sessions: Vec::new(),
            backlog: VecDeque::new(),
            running: BTreeSet::new(),
            next_seq: 0,
            max_iterations: u64::MAX,
            iterations: 0,
            busy_iterations: 0,
            offload_iterations: 0,
            streamed_tokens: 0,
            max_backlog: 0,
            cancelled: Vec::new(),
            dropped: Vec::new(),
            max_backlog_limit: None,
            completed_cursor: 0,
            last_report: None,
        }
    }

    /// Sets the iteration budget after which the loop panics (livelock guard).
    pub fn with_max_iterations(mut self, max_iterations: u64) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Caps the admission backlog: once `limit` requests are queued server-side,
    /// further submissions fail with [`AdmitError::BacklogFull`] instead of queueing.
    /// The default (no limit) applies backpressure only and never rejects.
    pub fn with_max_backlog(mut self, limit: usize) -> Self {
        self.max_backlog_limit = Some(limit);
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.engine.now()
    }

    /// Read-only view of the underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Current depth of the admission backlog.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Requests this server is responsible for but has not finished: the admission
    /// backlog plus everything live inside the engine (waiting, prefilling, or
    /// decoding). This is the load signal cluster routers compare across engines —
    /// [`Server::backlog_len`] alone undercounts a busy server whose backlog is empty
    /// but whose engine is full.
    pub fn queue_depth(&self) -> usize {
        self.backlog.len() + self.engine.live_requests()
    }

    /// The next simulated time this server has work to do, or `None` when it is
    /// drained: the engine's clock while it is busy (the next iteration starts
    /// immediately), otherwise the earliest pending arrival that will actually create
    /// work (an arrival suppressed by an earlier-or-same-time pending cancel is
    /// inert and never advances the clock — see [`Server::tick`]).
    ///
    /// This is the wake-up seam a cluster clock uses to interleave many servers: call
    /// [`Server::poll`] once simulated time reaches the returned instant.
    pub fn next_activity(&self) -> Option<f64> {
        if self.engine.is_down() {
            // A fail-stopped server can do no work until recovery: reporting activity
            // here would make a cluster clock spin on it forever.
            return None;
        }
        if !self.engine.is_idle() || !self.backlog.is_empty() {
            return Some(self.engine.now());
        }
        // Earliest pending cancel per request id, as (time, seq) — the delivery order
        // of the event heap — so a cancel due before a request's arrival is known to
        // suppress it.
        let mut cancels: std::collections::BTreeMap<u64, (f64, u64)> =
            std::collections::BTreeMap::new();
        for event in self.events.iter() {
            if let EventKind::Cancel(id) = event.kind {
                let key = (event.time, event.seq);
                cancels
                    .entry(id)
                    .and_modify(|existing| {
                        if key < *existing {
                            *existing = key;
                        }
                    })
                    .or_insert(key);
            }
        }
        let mut earliest: Option<f64> = None;
        for event in self.events.iter() {
            if let EventKind::Arrival(id) = event.kind {
                if self.sessions[id as usize].state != SessionState::Scheduled {
                    continue;
                }
                if let Some(&(time, seq)) = cancels.get(&id) {
                    if (time, seq) < (event.time, event.seq) {
                        continue; // suppressed before it lands
                    }
                }
                earliest = Some(earliest.map_or(event.time, |t: f64| t.min(event.time)));
            }
        }
        earliest
    }

    /// Advances the loop through every piece of work that *starts* at or before
    /// `horizon` and returns the number of engine iterations run. Iterations are
    /// atomic: one starting at the horizon runs to completion even if it finishes
    /// past it (the engine clock may end beyond `horizon`, exactly as a real engine
    /// mid-iteration would). A drained server returns 0 immediately.
    pub fn poll(&mut self, horizon: f64) -> u64 {
        let mut steps = 0;
        while self.next_activity().is_some_and(|t| t <= horizon) {
            if !self.tick() {
                break;
            }
            steps += 1;
        }
        steps
    }

    /// Highest admission-backlog depth observed so far.
    pub fn max_backlog(&self) -> usize {
        self.max_backlog
    }

    /// Requests evicted by cancellation, in cancellation order.
    pub fn cancelled(&self) -> &[Request] {
        &self.cancelled
    }

    /// The report of the most recent engine iteration, if any ran.
    pub fn last_iteration(&self) -> Option<IterationReport> {
        self.last_report
    }

    /// Submits a request arriving at simulated time `arrival` (clamped to now if it is in
    /// the past) with no streaming callback.
    ///
    /// # Errors
    ///
    /// * [`AdmitError::EngineDown`] — the engine is fail-stopped (see [`Server::fail`]).
    /// * [`AdmitError::NeverAdmissible`] — the full context (prompt + output) exceeds
    ///   the engine's largest KV pool; admitting it would wedge the waitqueue forever.
    /// * [`AdmitError::BacklogFull`] — the backlog limit set by
    ///   [`Server::with_max_backlog`] is reached.
    ///
    /// # Panics
    ///
    /// Panics if `arrival` is not finite or a length is zero.
    pub fn submit(
        &mut self,
        arrival: f64,
        prompt_len: usize,
        output_len: usize,
    ) -> Result<RequestHandle, AdmitError> {
        self.submit_streaming(arrival, prompt_len, output_len, Vec::new(), None)
    }

    /// Submits a request whose prompt carries identity as [`TokenRun`]s, so a
    /// prefix-caching engine can reuse KV cached from earlier requests that share a
    /// leading run sequence (a fleet-wide system prompt, the history of a chat
    /// session). With prefix caching disabled the runs are ignored; the request
    /// behaves exactly like a [`Server::submit`] of the same lengths.
    ///
    /// See [`Server::submit`] for the errors.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty, a run is empty, or `arrival`/`output_len` are
    /// invalid (see [`Server::submit`]).
    pub fn submit_with_runs(
        &mut self,
        arrival: f64,
        runs: Vec<TokenRun>,
        output_len: usize,
    ) -> Result<RequestHandle, AdmitError> {
        assert!(!runs.is_empty(), "prompt runs must be non-empty");
        let prompt_len = runs.iter().map(|r| r.len).sum();
        self.submit_streaming(arrival, prompt_len, output_len, runs, None)
    }

    /// Submits a request with a streaming callback invoked once per output token, in
    /// emission order. See [`Server::submit`] for the errors and panics.
    pub fn submit_with_callback<F>(
        &mut self,
        arrival: f64,
        prompt_len: usize,
        output_len: usize,
        callback: F,
    ) -> Result<RequestHandle, AdmitError>
    where
        F: FnMut(&TokenEvent) + 'static,
    {
        self.submit_streaming(arrival, prompt_len, output_len, Vec::new(), Some(Box::new(callback)))
    }

    fn submit_streaming(
        &mut self,
        arrival: f64,
        prompt_len: usize,
        output_len: usize,
        runs: Vec<TokenRun>,
        callback: Option<TokenCallback>,
    ) -> Result<RequestHandle, AdmitError> {
        assert!(arrival.is_finite(), "arrival time must be finite");
        assert!(prompt_len > 0, "prompt length must be positive");
        assert!(output_len > 0, "output length must be positive");
        if self.engine.is_down() {
            return Err(AdmitError::EngineDown);
        }
        let required = prompt_len + output_len;
        let capacity = self.engine.max_context_capacity();
        if required > capacity {
            return Err(AdmitError::NeverAdmissible {
                required_tokens: required,
                capacity_tokens: capacity,
            });
        }
        if let Some(limit) = self.max_backlog_limit {
            if self.backlog.len() >= limit {
                return Err(AdmitError::BacklogFull { backlog: self.backlog.len(), limit });
            }
        }
        let arrival = arrival.max(self.engine.now());
        let id = self.sessions.len() as u64;
        self.sessions.push(Session {
            arrival,
            prompt_len,
            output_len,
            runs,
            state: SessionState::Scheduled,
            callback,
            token_times: Vec::new(),
        });
        self.push_event(arrival, EventKind::Arrival(id));
        Ok(RequestHandle { id })
    }

    /// Whether the engine is fail-stopped.
    pub fn is_down(&self) -> bool {
        self.engine.is_down()
    }

    /// Fail-stops the engine: its KV is lost, and every request this server was
    /// responsible for — scheduled, backlogged, or live in the engine — is shed with
    /// [`DropReason::EngineFailed`]. Returns the shed request ids in ascending order,
    /// so a cluster router can re-dispatch them to survivors. Until [`Server::recover`]
    /// the server accepts nothing, reports no next activity, and does no work.
    pub fn fail(&mut self) -> Vec<u64> {
        let _ = self.engine.fail();
        self.backlog.clear();
        self.running.clear();
        let mut orphans = Vec::new();
        for (id, session) in self.sessions.iter_mut().enumerate() {
            match session.state {
                SessionState::Scheduled | SessionState::Backlogged | SessionState::Running => {
                    session.state = SessionState::Dropped { reason: DropReason::EngineFailed };
                    orphans.push(id as u64);
                }
                SessionState::Finished { .. }
                | SessionState::Cancelled
                | SessionState::Dropped { .. } => {}
            }
        }
        self.dropped.extend(orphans.iter().map(|&id| (id, DropReason::EngineFailed)));
        orphans
    }

    /// Brings a fail-stopped engine back into service, empty. Requests shed by
    /// [`Server::fail`] stay shed; new submissions are accepted again.
    pub fn recover(&mut self) {
        self.engine.recover();
    }

    /// Sheds `handle` immediately with a typed reason: the request is evicted wherever
    /// it is (backlog, waitqueue, or mid-decode, freeing its KV) and reaches the
    /// terminal state [`RequestStatus::Dropped`]. Dropping a finished, cancelled, or
    /// already-dropped request is a no-op.
    pub fn drop_now(&mut self, handle: RequestHandle, reason: DropReason) {
        let id = handle.id;
        let state = self.sessions[id as usize].state;
        match state {
            SessionState::Scheduled | SessionState::Backlogged => {
                self.backlog.retain(|&x| x != id);
                self.sessions[id as usize].state = SessionState::Dropped { reason };
                self.dropped.push((id, reason));
            }
            SessionState::Running => {
                // neo-lint: allow(panic-hygiene) -- the session state machine guarantees a live engine-side request; evicting quietly on a miss would corrupt drop accounting
                let _ = self.engine.evict(id).expect("running session is live");
                self.running.remove(&id);
                self.sessions[id as usize].state = SessionState::Dropped { reason };
                self.dropped.push((id, reason));
            }
            SessionState::Finished { .. }
            | SessionState::Cancelled
            | SessionState::Dropped { .. } => {}
        }
    }

    /// Requests shed by this server, with the reason, in drop order.
    pub fn dropped(&self) -> &[(u64, DropReason)] {
        &self.dropped
    }

    /// Schedules a cancellation of `handle` at simulated time `at` (clamped to now).
    /// Cancelling a finished or already-cancelled request is a no-op; cancelling before
    /// the arrival time suppresses the arrival entirely.
    pub fn cancel(&mut self, handle: RequestHandle, at: f64) {
        assert!(at.is_finite(), "cancellation time must be finite");
        self.push_event(at.max(self.engine.now()), EventKind::Cancel(handle.id));
    }

    /// Cancels `handle` at the current simulated time (takes effect before the next
    /// iteration runs).
    pub fn cancel_now(&mut self, handle: RequestHandle) {
        let now = self.engine.now();
        self.cancel(handle, now);
    }

    /// Status of a submitted request.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this server.
    pub fn status(&self, handle: RequestHandle) -> RequestStatus {
        let session = &self.sessions[handle.id as usize];
        match session.state {
            SessionState::Scheduled => RequestStatus::Scheduled,
            SessionState::Backlogged => RequestStatus::Backlogged,
            SessionState::Running => {
                RequestStatus::Running { generated: session.token_times.len() }
            }
            SessionState::Finished { finish_time } => RequestStatus::Finished { finish_time },
            SessionState::Cancelled => {
                RequestStatus::Cancelled { generated: session.token_times.len() }
            }
            SessionState::Dropped { reason } => {
                RequestStatus::Dropped { reason, generated: session.token_times.len() }
            }
        }
    }

    fn push_event(&mut self, time: f64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(TimedEvent { time, seq, kind });
    }

    /// Delivers every event due at or before the current simulated time.
    fn deliver_due_events(&mut self) {
        let now = self.engine.now();
        while self.events.peek().is_some_and(|e| e.time <= now) {
            let Some(event) = self.events.pop() else { break };
            match event.kind {
                EventKind::Arrival(id) => self.deliver_arrival(id),
                EventKind::Cancel(id) => self.deliver_cancel(id),
            }
        }
    }

    fn deliver_arrival(&mut self, id: u64) {
        let session = &mut self.sessions[id as usize];
        if session.state != SessionState::Scheduled {
            return; // cancelled before arrival
        }
        session.state = SessionState::Backlogged;
        self.backlog.push_back(id);
        self.max_backlog = self.max_backlog.max(self.backlog.len());
    }

    fn deliver_cancel(&mut self, id: u64) {
        let state = self.sessions[id as usize].state;
        match state {
            SessionState::Scheduled | SessionState::Backlogged => {
                self.backlog.retain(|&x| x != id);
                let session = &mut self.sessions[id as usize];
                session.state = SessionState::Cancelled;
                // Build the terminal record the engine would have returned had the
                // request been admitted.
                let mut request =
                    Request::new(id, session.arrival, session.prompt_len, session.output_len);
                request.state = RequestState::Cancelled;
                self.cancelled.push(request);
            }
            SessionState::Running => {
                // neo-lint: allow(panic-hygiene) -- the session state machine guarantees a live engine-side request; cancelling quietly on a miss would corrupt cancel accounting
                let request = self.engine.evict(id).expect("running session is live");
                self.running.remove(&id);
                self.sessions[id as usize].state = SessionState::Cancelled;
                self.cancelled.push(request);
            }
            SessionState::Finished { .. }
            | SessionState::Cancelled
            | SessionState::Dropped { .. } => {}
        }
    }

    /// Admits backlogged requests in FIFO order while the engine has admission room.
    fn admit_from_backlog(&mut self) {
        while self.engine.can_admit() {
            let Some(id) = self.backlog.pop_front() else { break };
            let session = &mut self.sessions[id as usize];
            session.state = SessionState::Running;
            self.running.insert(id);
            self.engine
                .submit(Request::with_runs(
                    id,
                    session.arrival,
                    session.prompt_len,
                    session.output_len,
                    session.runs.clone(),
                ))
                // neo-lint: allow(panic-hygiene) -- admission capacity and down-state were checked before enqueueing; losing a validated submission quietly would wedge the session as Scheduled forever
                .expect("submission was validated against capacity and down-state");
        }
    }

    /// Fires streaming callbacks for every token emitted by the last iteration.
    fn dispatch_tokens(&mut self) {
        let now = self.engine.now();
        // Newly retired requests first: their sessions flip to Finished, and the cursor
        // keeps this scan O(new completions).
        let completed = self.engine.completed();
        let mut due: Vec<(u64, usize, bool, f64)> = completed[self.completed_cursor..]
            .iter()
            .map(|r| (r.id, r.generated, true, r.finish_time.unwrap_or(now)))
            .collect();
        self.completed_cursor = completed.len();
        for &(id, ..) in &due {
            self.running.remove(&id);
        }
        // Then every still-running request with new tokens.
        for &id in &self.running {
            if let Some(request) = self.engine.request(id) {
                if request.generated > self.sessions[id as usize].token_times.len() {
                    due.push((id, request.generated, false, now));
                }
            }
        }
        // Deterministic delivery order: by id (= submission/arrival order).
        due.sort_unstable_by_key(|&(id, ..)| id);
        for (id, generated, finished, finish_time) in due {
            let session = &mut self.sessions[id as usize];
            for index in session.token_times.len()..generated {
                session.token_times.push(now);
                self.streamed_tokens += 1;
                let event = TokenEvent {
                    request_id: id,
                    index,
                    time: now,
                    is_last: finished && index + 1 == generated,
                };
                if let Some(callback) = session.callback.as_mut() {
                    callback(&event);
                }
            }
            if finished {
                session.state = SessionState::Finished { finish_time };
            }
        }
    }

    /// Advances the loop by one engine iteration, delivering due events, applying
    /// admission, and streaming freshly emitted tokens. Returns `false` once every
    /// submitted request has finished (or been cancelled) and no events remain.
    ///
    /// # Panics
    ///
    /// Panics if the iteration budget set by [`Server::with_max_iterations`] is exceeded
    /// (scheduler livelock).
    pub fn tick(&mut self) -> bool {
        loop {
            self.deliver_due_events();
            self.admit_from_backlog();
            if !self.engine.is_idle() {
                break;
            }
            // An idle engine always has admission room, so the backlog is empty here.
            debug_assert!(self.backlog.is_empty());
            let Some(next) = self.events.peek().copied() else { return false };
            // Only an arrival of a still-scheduled request can create engine work, so
            // only that advances the clock. Everything else pending while idle is
            // inert — a cancel whose target already drained, or an arrival suppressed
            // by an earlier cancel — and is delivered immediately so it cannot drag
            // the makespan (and every throughput metric derived from it) out to its
            // timestamp.
            let creates_work = matches!(
                next.kind,
                EventKind::Arrival(id)
                    if self.sessions[id as usize].state == SessionState::Scheduled
            );
            if creates_work {
                self.engine.advance_to(next.time.max(self.engine.now()));
            } else {
                // `next` is a copy of the head event; drop the original and act on it.
                let _ = self.events.pop();
                match next.kind {
                    EventKind::Arrival(id) => self.deliver_arrival(id),
                    EventKind::Cancel(id) => self.deliver_cancel(id),
                }
            }
        }
        self.engine.set_admission_backlog(self.backlog.len());
        let report = self.engine.step();
        self.iterations += 1;
        assert!(
            self.iterations < self.max_iterations,
            "serving loop exceeded {} iterations with {} of {} requests finished",
            self.max_iterations,
            self.engine.completed().len(),
            self.sessions.len()
        );
        if !report.idle {
            self.busy_iterations += 1;
            if report.cpu_offloaded > 0 {
                self.offload_iterations += 1;
            }
        }
        self.last_report = Some(report);
        self.dispatch_tokens();
        true
    }

    /// Runs the loop until it drains, then summarises it.
    pub fn run_until_idle(&mut self) -> ServerReport {
        while self.tick() {}
        self.report()
    }

    /// Summarises the loop so far (normally read after [`Server::run_until_idle`]).
    pub fn report(&self) -> ServerReport {
        let mut ttfts = Vec::new();
        let mut gaps = Vec::new();
        for session in &self.sessions {
            if let Some(&first) = session.token_times.first() {
                ttfts.push(first - session.arrival);
            }
            gaps.extend(session.token_times.windows(2).map(|w| w[1] - w[0]));
        }
        ServerReport {
            completed: self.engine.completed().len(),
            cancelled: self.cancelled.len(),
            dropped: self.dropped.len(),
            makespan: self.engine.now(),
            iterations: self.iterations,
            busy_iterations: self.busy_iterations,
            offload_fraction: self.offload_iterations as f64 / self.busy_iterations.max(1) as f64,
            streamed_tokens: self.streamed_tokens,
            ttft: LatencySummary::from_samples(&ttfts),
            itl: LatencySummary::from_samples(&gaps),
            max_backlog: self.max_backlog,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    use neo_baselines::GpuOnlyScheduler;
    use neo_core::config::EngineConfig;
    use neo_core::scheduler::NeoScheduler;
    use neo_sim::{CostModel, ModelDesc, Testbed};

    fn engine() -> Engine {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        Engine::new(cost, EngineConfig::default(), Box::new(NeoScheduler::new()))
    }

    fn engine_with(config: EngineConfig) -> Engine {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        Engine::new(cost, config, Box::new(GpuOnlyScheduler::vllm_like()))
    }

    #[test]
    fn single_request_streams_every_token_once() {
        let mut server = Server::new(engine());
        let seen: Rc<RefCell<Vec<TokenEvent>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let handle = server
            .submit_with_callback(0.0, 200, 24, move |e| {
                sink.borrow_mut().push(*e);
            })
            .unwrap();
        let report = server.run_until_idle();
        assert_eq!(report.completed, 1);
        let events = seen.borrow();
        assert_eq!(events.len(), 24);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.index, i, "tokens arrive exactly once, in order");
            assert_eq!(e.request_id, handle.id());
            assert_eq!(e.is_last, i == 23);
        }
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(matches!(server.status(handle), RequestStatus::Finished { .. }));
        assert_eq!(report.streamed_tokens, 24);
    }

    #[test]
    fn ttft_and_itl_are_positive_and_consistent() {
        let mut server = Server::new(engine());
        for i in 0..8 {
            server.submit(i as f64 * 0.3, 300, 20).unwrap();
        }
        let report = server.run_until_idle();
        assert_eq!(report.completed, 8);
        let ttft = report.ttft.expect("all requests produced tokens");
        let itl = report.itl.expect("outputs longer than one token");
        assert_eq!(ttft.count, 8);
        assert!(ttft.mean > 0.0);
        assert_eq!(itl.count, 8 * 19);
        assert!(itl.mean > 0.0);
        assert!(itl.p50 <= itl.p99);
    }

    #[test]
    fn cancellation_mid_decode_frees_kv_and_stops_streaming() {
        let mut server = Server::new(engine());
        let long = server.submit(0.0, 400, 5_000).unwrap();
        let short = server.submit(0.0, 400, 30).unwrap();
        // Run until the long request has streamed a few tokens.
        while server.sessions[long.id() as usize].token_times.len() < 3 {
            assert!(server.tick());
        }
        assert_eq!(server.engine().kv().num_sequences(), 2);
        server.cancel_now(long);
        assert!(server.tick());
        assert_eq!(
            server.engine().kv().num_sequences(),
            1,
            "cancelled KV blocks must be freed immediately"
        );
        let streamed_at_cancel = match server.status(long) {
            RequestStatus::Cancelled { generated } => generated,
            other => panic!("expected cancelled, got {other:?}"),
        };
        let report = server.run_until_idle();
        assert_eq!(report.completed, 1);
        assert_eq!(report.cancelled, 1);
        assert_eq!(
            server.sessions[long.id() as usize].token_times.len(),
            streamed_at_cancel,
            "no tokens stream after cancellation"
        );
        assert!(server.cancelled()[0].is_cancelled());
        assert_eq!(server.engine().kv().num_sequences(), 0);
        assert!(matches!(server.status(short), RequestStatus::Finished { .. }));
    }

    #[test]
    fn cancel_before_arrival_suppresses_the_request() {
        let mut server = Server::new(engine());
        let a = server.submit(5.0, 100, 10).unwrap();
        let b = server.submit(0.0, 100, 10).unwrap();
        server.cancel(a, 1.0);
        let report = server.run_until_idle();
        assert_eq!(report.completed, 1);
        assert_eq!(report.cancelled, 1);
        assert!(matches!(server.status(a), RequestStatus::Cancelled { generated: 0 }));
        assert!(matches!(server.status(b), RequestStatus::Finished { .. }));
        // Neither the suppressed arrival at t=5 nor the cancel at t=1 is real work, so
        // the clock must stop when the last real request drains.
        assert!(report.makespan < 1.0, "inert events must not inflate makespan");
        // Double-cancel and cancel-after-finish are no-ops.
        server.cancel_now(a);
        server.cancel_now(b);
        assert!(!server.tick());
        assert_eq!(server.cancelled().len(), 1);
    }

    #[test]
    fn late_noop_cancel_does_not_inflate_makespan() {
        // A timeout-style cancellation scheduled far in the future must not drag the
        // makespan out to its timestamp once the request has already finished.
        let mut server = Server::new(engine());
        let h = server.submit(0.0, 100, 10).unwrap();
        server.cancel(h, 300.0);
        let report = server.run_until_idle();
        assert_eq!(report.completed, 1);
        assert_eq!(report.cancelled, 0);
        assert!(matches!(server.status(h), RequestStatus::Finished { .. }));
        assert!(
            report.makespan < 10.0,
            "makespan {} must reflect the real work, not the dead cancel event",
            report.makespan
        );
    }

    #[test]
    fn backpressure_delays_but_never_drops() {
        let config = EngineConfig { max_waiting_requests: 2, ..EngineConfig::default() };
        let mut server = Server::new(engine_with(config));
        let handles: Vec<RequestHandle> =
            (0..24).map(|_| server.submit(0.0, 600, 12).unwrap()).collect();
        // Deliver the arrivals: only 2 fit the waitqueue, the rest must queue server-side.
        assert!(server.tick());
        assert!(server.max_backlog() >= 20, "backpressure must engage");
        let report = server.run_until_idle();
        assert_eq!(report.completed, 24, "backpressure delays requests, never drops them");
        assert_eq!(report.cancelled, 0);
        assert!(report.max_backlog >= 20);
        for h in handles {
            assert!(matches!(server.status(h), RequestStatus::Finished { .. }));
        }
    }

    #[test]
    fn events_fire_in_time_order_even_when_submitted_out_of_order() {
        let mut server = Server::new(engine());
        let late = server.submit(2.0, 100, 4).unwrap();
        let early = server.submit(0.5, 100, 4).unwrap();
        let report = server.run_until_idle();
        assert_eq!(report.completed, 2);
        let first_late = server.sessions[late.id() as usize].token_times[0];
        let first_early = server.sessions[early.id() as usize].token_times[0];
        assert!(first_early < first_late, "the earlier arrival streams first");
        assert!(report.makespan >= 2.0);
    }

    #[test]
    fn queue_depth_counts_backlog_and_live_engine_requests() {
        let config = EngineConfig { max_waiting_requests: 2, ..EngineConfig::default() };
        let mut server = Server::new(engine_with(config));
        assert_eq!(server.queue_depth(), 0);
        for _ in 0..6 {
            server.submit(0.0, 400, 8).unwrap();
        }
        assert!(server.tick());
        // Two admitted into the engine, four held in the server backlog: the router
        // signal must count both.
        assert_eq!(server.queue_depth(), server.backlog_len() + server.engine().live_requests());
        assert!(server.queue_depth() >= 6 - 1, "nothing finished after one iteration");
        let _ = server.run_until_idle();
        assert_eq!(server.queue_depth(), 0);
    }

    #[test]
    fn next_activity_tracks_arrivals_and_busy_engine_clock() {
        let mut server = Server::new(engine());
        assert_eq!(server.next_activity(), None);
        server.submit(3.0, 100, 4).unwrap();
        server.submit(7.0, 100, 4).unwrap();
        assert_eq!(server.next_activity(), Some(3.0), "idle server wakes at the next arrival");
        assert!(server.tick());
        let busy = server.next_activity().expect("engine is busy");
        assert_eq!(busy, server.now(), "a busy engine can start its next iteration now");
        let _ = server.run_until_idle();
        assert_eq!(server.next_activity(), None);
    }

    #[test]
    fn next_activity_ignores_arrivals_suppressed_by_earlier_cancels() {
        let mut server = Server::new(engine());
        let doomed = server.submit(5.0, 100, 4).unwrap();
        server.cancel(doomed, 1.0);
        // The only pending arrival is suppressed by the earlier cancel: waking at 5.0
        // would only deliver inert events, so the server reports no activity.
        assert_eq!(server.next_activity(), None);
        let live = server.submit(8.0, 100, 4).unwrap();
        assert_eq!(server.next_activity(), Some(8.0));
        let report = server.run_until_idle();
        assert_eq!(report.completed, 1);
        assert!(matches!(server.status(doomed), RequestStatus::Cancelled { generated: 0 }));
        assert!(matches!(server.status(live), RequestStatus::Finished { .. }));
    }

    #[test]
    fn poll_runs_only_work_starting_at_or_before_the_horizon() {
        let mut server = Server::new(engine());
        server.submit(0.0, 200, 6).unwrap();
        server.submit(50.0, 200, 6).unwrap();
        let steps = server.poll(10.0);
        assert!(steps > 0, "the t=0 request runs inside the horizon");
        assert_eq!(server.engine().completed().len(), 1);
        assert_eq!(
            server.next_activity(),
            Some(50.0),
            "the t=50 arrival is untouched by an earlier poll"
        );
        // Iterations are atomic: a poll exactly at an arrival runs its first
        // iteration even though it finishes past the horizon.
        let steps = server.poll(50.0);
        assert!(steps >= 1);
        assert!(server.now() >= 50.0);
        let _ = server.run_until_idle();
        assert_eq!(server.poll(f64::MAX), 0, "a drained server has nothing to poll");
    }

    #[test]
    fn idle_server_reports_empty_drain() {
        let mut server = Server::new(engine());
        assert!(!server.tick());
        let report = server.report();
        assert_eq!(report.completed, 0);
        assert_eq!(report.iterations, 0);
        assert!(report.ttft.is_none());
        assert!(report.itl.is_none());
    }

    #[test]
    #[should_panic(expected = "fresh engine")]
    fn used_engine_is_rejected() {
        let mut e = engine();
        e.submit(Request::new(0, 0.0, 10, 2)).unwrap();
        let _ = Server::new(e);
    }

    #[test]
    fn never_admissible_submission_is_rejected_typed() {
        let mut server = Server::new(engine());
        let capacity = server.engine().max_context_capacity();
        let err = server.submit(0.0, capacity, 1).unwrap_err();
        assert!(matches!(err, AdmitError::NeverAdmissible { .. }));
        assert!(!server.tick(), "a rejected request leaves no work behind");
        assert_eq!(server.report().dropped, 0, "rejected is not dropped: it never entered");
    }

    #[test]
    fn backlog_limit_rejects_once_full() {
        // A tight engine waitqueue forces arrivals to pool in the server backlog; with a
        // backlog limit configured, submissions past it are rejected, not queued.
        let config = EngineConfig { max_waiting_requests: 2, ..EngineConfig::default() };
        let mut server = Server::new(engine_with(config)).with_max_backlog(10);
        for _ in 0..20 {
            server.submit(0.0, 600, 12).unwrap();
        }
        assert!(server.tick(), "arrivals land; 2 admitted, 18 pool in the backlog");
        assert!(server.backlog_len() >= 10);
        let err = server.submit(server.now(), 600, 12).unwrap_err();
        assert!(matches!(err, AdmitError::BacklogFull { limit: 10, .. }));
        let report = server.run_until_idle();
        assert_eq!(report.completed, 20, "accepted requests still all finish");
        assert_eq!(report.cancelled, 0);
    }

    #[test]
    fn down_server_reports_no_activity_and_rejects_submissions() {
        let mut server = Server::new(engine());
        server.submit(0.0, 200, 40).unwrap();
        server.submit(0.0, 200, 40).unwrap();
        // Stream a few tokens so the failure lands mid-decode.
        while server.engine().completed().is_empty() && server.streamed_tokens < 3 {
            assert!(server.tick());
        }
        assert!(!server.is_down());
        let orphans = server.fail();
        assert!(server.is_down());
        assert_eq!(orphans, vec![0, 1], "both live requests are orphaned, id-sorted");
        assert_eq!(
            server.next_activity(),
            None,
            "a down server must report no next activity, not spin"
        );
        assert_eq!(server.poll(f64::MAX), 0, "polling a down server does nothing");
        assert_eq!(server.submit(server.now(), 100, 4), Err(AdmitError::EngineDown));
        for &id in &orphans {
            assert!(matches!(
                server.status(RequestHandle { id }),
                RequestStatus::Dropped { reason: DropReason::EngineFailed, .. }
            ));
        }
        let report = server.report();
        assert_eq!(report.dropped, 2);
        assert_eq!(report.completed, 0);
        // Recovery restores service from empty.
        server.recover();
        assert!(!server.is_down());
        let h = server.submit(server.now(), 100, 4).unwrap();
        let report = server.run_until_idle();
        assert_eq!(report.completed, 1);
        assert!(matches!(server.status(h), RequestStatus::Finished { .. }));
        assert_eq!(report.dropped, 2, "orphans stay shed after recovery");
    }

    #[test]
    fn drop_now_sheds_mid_decode_and_frees_kv() {
        let mut server = Server::new(engine());
        let victim = server.submit(0.0, 400, 5_000).unwrap();
        let survivor = server.submit(0.0, 400, 30).unwrap();
        while server.sessions[victim.id() as usize].token_times.len() < 3 {
            assert!(server.tick());
        }
        assert_eq!(server.engine().kv().num_sequences(), 2);
        server.drop_now(victim, DropReason::DeadlineExpired);
        assert_eq!(server.engine().kv().num_sequences(), 1, "dropped KV is freed immediately");
        assert!(matches!(
            server.status(victim),
            RequestStatus::Dropped { reason: DropReason::DeadlineExpired, generated: 3 }
        ));
        // Dropping again (or dropping a finished request) is a no-op.
        server.drop_now(victim, DropReason::RetriesExhausted);
        let report = server.run_until_idle();
        assert_eq!(report.completed, 1);
        assert_eq!(report.dropped, 1);
        assert_eq!(server.dropped(), &[(victim.id(), DropReason::DeadlineExpired)]);
        server.drop_now(survivor, DropReason::DeadlineExpired);
        assert_eq!(server.report().dropped, 1, "finished requests cannot be dropped");
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn iteration_budget_panics_on_livelock() {
        let mut server = Server::new(engine()).with_max_iterations(3);
        server.submit(0.0, 5_000, 500).unwrap();
        let _ = server.run_until_idle();
    }
}
