//! Latency and throughput metrics.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over latency samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (order does not matter).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|s| s.is_finite());
        samples.sort_by(|a, b| a.total_cmp(b));
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile (`q` in `[0, 1]`), or `None` for an empty CDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let below = self.sorted.partition_point(|&s| s <= x);
        below as f64 / self.sorted.len() as f64
    }

    /// `(value, cumulative_fraction)` points for plotting, one per sample.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted.iter().enumerate().map(|(i, &v)| (v, (i + 1) as f64 / n as f64)).collect()
    }

    /// Mean of the samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
    }
}

/// Summary of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of requests measured.
    pub count: usize,
    /// Mean latency in seconds.
    pub mean: f64,
    /// Median (p50) latency.
    pub p50: f64,
    /// 90th percentile latency.
    pub p90: f64,
    /// 99th percentile latency.
    pub p99: f64,
    /// Maximum observed latency.
    pub max: f64,
}

impl LatencySummary {
    /// Summarises a set of latency samples; returns `None` when empty.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        let cdf = Cdf::new(samples.to_vec());
        if cdf.is_empty() {
            return None;
        }
        Some(Self {
            count: cdf.len(),
            mean: cdf.mean()?,
            p50: cdf.quantile(0.5)?,
            p90: cdf.quantile(0.9)?,
            p99: cdf.quantile(0.99)?,
            max: cdf.quantile(1.0)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_distribution() {
        let cdf = Cdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(cdf.len(), 100);
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        let median = cdf.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() <= 1.0);
    }

    #[test]
    fn fraction_below_is_monotone() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_below(0.5), 0.0);
        assert_eq!(cdf.fraction_below(2.0), 0.5);
        assert_eq!(cdf.fraction_below(10.0), 1.0);
        let points = cdf.points();
        assert_eq!(points.len(), 4);
        assert_eq!(points.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_cdf_is_handled() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.mean(), None);
        assert_eq!(cdf.fraction_below(1.0), 0.0);
        assert!(LatencySummary::from_samples(&[]).is_none());
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let cdf = Cdf::new(vec![1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn summary_orders_percentiles() {
        let samples: Vec<f64> = (1..=1000).map(|i| (i as f64).sqrt()).collect();
        let s = LatencySummary::from_samples(&samples).unwrap();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert!(s.mean > 0.0);
        assert_eq!(s.count, 1000);
    }
}
