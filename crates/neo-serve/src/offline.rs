//! Offline (batch) throughput: feed the whole trace at once and measure token throughput.

use neo_core::request::Request;
use neo_core::Engine;
use neo_workload::Trace;
use serde::{Deserialize, Serialize};

/// Result of one offline throughput run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OfflineResult {
    /// Number of requests completed.
    pub completed: usize,
    /// Total simulated time to drain the trace (makespan), in seconds.
    pub makespan: f64,
    /// Token throughput: (input + output tokens) / makespan — the metric of §5.5.
    pub token_throughput: f64,
    /// Output-token throughput: output tokens / makespan.
    pub decode_throughput: f64,
    /// Request throughput: requests / makespan.
    pub request_throughput: f64,
    /// Fraction of non-idle iterations that offloaded attention to the CPU.
    pub offload_fraction: f64,
    /// Fraction of non-idle iterations that ran in asymmetric (two-sub-batch) mode.
    pub asymmetric_fraction: f64,
}

/// Runs the engine over the trace with all requests submitted at time zero.
///
/// # Panics
///
/// Panics if the trace is empty or the run exceeds `max_iterations` (scheduler livelock).
pub fn run_offline(mut engine: Engine, trace: &Trace, max_iterations: u64) -> OfflineResult {
    assert!(!trace.is_empty(), "cannot run an empty trace");
    for (i, r) in trace.requests().iter().enumerate() {
        // neo-lint: allow(panic-hygiene) -- driver entry point documented to panic (see `# Panics`); an inadmissible trace request is a configuration error
        engine.submit(Request::new(i as u64, 0.0, r.prompt_len, r.output_len)).unwrap();
    }
    let total = trace.len();

    let mut iterations = 0u64;
    let mut busy = 0u64;
    let mut offloaded = 0u64;
    let mut asymmetric = 0u64;
    while !engine.is_idle() {
        let report = engine.step();
        if !report.idle {
            busy += 1;
            if report.cpu_offloaded > 0 {
                offloaded += 1;
            }
            if report.mode == neo_core::ExecutionMode::Asymmetric {
                asymmetric += 1;
            }
        }
        iterations += 1;
        assert!(
            iterations < max_iterations,
            "offline run exceeded {max_iterations} iterations with {} of {} requests done",
            engine.completed().len(),
            total
        );
    }
    assert_eq!(engine.completed().len(), total, "all requests must finish");

    let makespan = engine.now().max(1e-9);
    let input_tokens: u64 = engine.completed().iter().map(|r| r.prompt_len as u64).sum();
    let output_tokens: u64 = engine.completed().iter().map(|r| r.output_len as u64).sum();
    OfflineResult {
        completed: total,
        makespan,
        token_throughput: (input_tokens + output_tokens) as f64 / makespan,
        decode_throughput: output_tokens as f64 / makespan,
        request_throughput: total as f64 / makespan,
        offload_fraction: offloaded as f64 / busy.max(1) as f64,
        asymmetric_fraction: asymmetric as f64 / busy.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_baselines::GpuOnlyScheduler;
    use neo_core::config::EngineConfig;
    use neo_core::scheduler::NeoScheduler;
    use neo_sim::{CostModel, ModelDesc, Testbed};
    use neo_workload::{synthetic, ArrivalProcess};

    fn t4_engine(neo: bool) -> Engine {
        let cost = CostModel::new(ModelDesc::llama2_7b(), Testbed::g4dn_4xlarge(), 1);
        let sched: Box<dyn neo_core::Scheduler> = if neo {
            Box::new(NeoScheduler::new())
        } else {
            Box::new(GpuOnlyScheduler::swiftllm_like())
        };
        Engine::new(cost, EngineConfig::default(), sched)
    }

    fn a10g_engine(neo: bool) -> Engine {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        let sched: Box<dyn neo_core::Scheduler> = if neo {
            Box::new(NeoScheduler::new())
        } else {
            Box::new(GpuOnlyScheduler::swiftllm_like())
        };
        Engine::new(cost, EngineConfig::default(), sched)
    }

    #[test]
    fn offline_metrics_are_consistent() {
        let trace = synthetic(60, 200, 50, ArrivalProcess::AllAtOnce, 3);
        let r = run_offline(a10g_engine(true), &trace, 2_000_000);
        assert_eq!(r.completed, 60);
        assert!(r.makespan > 0.0);
        assert!(r.token_throughput > r.decode_throughput);
        assert!((r.request_throughput - 60.0 / r.makespan).abs() < 1e-9);
        assert!(r.offload_fraction >= 0.0 && r.offload_fraction <= 1.0);
    }

    #[test]
    fn neo_beats_gpu_only_on_memory_constrained_t4() {
        // The headline mechanism: on the 16 GB T4 serving LLaMa-2-7B, the GPU can hold
        // only a handful of requests' KV; NEO's CPU offload lifts throughput
        // substantially (the paper reports up to 7.5x on this testbed).
        let trace = synthetic(96, 200, 80, ArrivalProcess::AllAtOnce, 5);
        let gpu_only = run_offline(t4_engine(false), &trace, 5_000_000);
        let neo = run_offline(t4_engine(true), &trace, 5_000_000);
        let gain = neo.token_throughput / gpu_only.token_throughput;
        assert!(
            gain > 1.2,
            "NEO should clearly beat GPU-only on the T4: gain {gain:.2} (neo {:.1} vs gpu {:.1} tok/s)",
            neo.token_throughput,
            gpu_only.token_throughput
        );
        assert!(neo.offload_fraction > 0.0);
    }

    #[test]
    fn neo_does_not_lose_badly_when_memory_is_plentiful() {
        // With ample GPU memory (A10G + small workload) NEO falls back to GPU-only-like
        // behaviour and stays within a few percent of the baseline (§5.4).
        let trace = synthetic(40, 100, 20, ArrivalProcess::AllAtOnce, 6);
        let gpu_only = run_offline(a10g_engine(false), &trace, 2_000_000);
        let neo = run_offline(a10g_engine(true), &trace, 2_000_000);
        let ratio = neo.token_throughput / gpu_only.token_throughput;
        assert!(ratio > 0.9, "NEO must not collapse when offloading does not help: {ratio:.2}");
    }

    #[test]
    fn offload_family_drains_the_same_trace() {
        // The pipelined-offloading baselines run through the identical driver: every
        // policy drains the trace, and PIPO's offload fraction is total (its KV never
        // lives on the GPU) while SpecOffload's is partial (it serves GPU-first and only
        // speculates CPU work under pressure).
        use neo_baselines::{PipoScheduler, SpecOffloadScheduler};
        let trace = synthetic(48, 300, 40, ArrivalProcess::AllAtOnce, 9);
        let cost = || CostModel::new(ModelDesc::llama2_7b(), Testbed::g4dn_4xlarge(), 1);

        let pipo_engine =
            Engine::new(cost(), EngineConfig::default(), Box::new(PipoScheduler::new()));
        let pipo = run_offline(pipo_engine, &trace, 5_000_000);
        assert_eq!(pipo.completed, 48);
        assert!(pipo.offload_fraction > 0.9, "PIPO decodes are always offloaded");

        let spec_engine =
            Engine::new(cost(), EngineConfig::default(), Box::new(SpecOffloadScheduler::new()));
        let spec = run_offline(spec_engine, &trace, 5_000_000);
        assert_eq!(spec.completed, 48);
        assert!(spec.offload_fraction > 0.0, "memory pressure must trigger speculation");
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        let _ = run_offline(a10g_engine(false), &Trace::default(), 100);
    }
}
