//! Discrete-event simulation core: components, wake-ups, and a task-graph runner.
//!
//! The closed-form overlap terms in [`crate::transfer`] and `neo_kvcache::SwapPlan`
//! describe *steady-state* pipelines: one formula per regime, no notion of which engine
//! was busy when. This module provides the finer-grained alternative the ROADMAP's
//! cluster and pipelining items build on: everything that evolves over time — a GPU
//! compute stream, the CPU attention workers, each per-rank PCIe link direction — is a
//! [`Component`] with its own clock, driven by an [`EventEngine`] that pops wake-ups
//! from a min-heap keyed `(next_tick, ComponentId)`. Transfer/compute overlap then
//! *falls out of event ordering* instead of being assumed by a formula.
//!
//! # Determinism and fuzzed execution order
//!
//! Correctness of a discrete-event simulation is all about event ordering, so the
//! engine is deterministic by construction: same components, same shared state, same
//! tie-break mode ⇒ bit-identical execution. Components that wake at the *same* tick
//! are dispatched in [`TieBreak::ById`] order by default. A well-formed component must
//! not depend on that order — its state transitions must derive from simulated time and
//! shared state only — and [`TieBreak::Fuzzed`] exists precisely to shake out
//! violations: it permutes same-tick dispatch order with a seeded xorshift while
//! leaving everything else untouched, so any output difference across seeds is an
//! ordering race in a component.
//!
//! # The task-graph runner
//!
//! Most uses of the engine in this workspace share one shape: a DAG of jobs (layer
//! compute, per-layer KV transfer chunks, CPU attention stages) executed FIFO on a
//! small set of serial resources (the GPU stream, the CPU pool, each PCIe direction).
//! [`TaskGraph`] captures that shape once: build jobs with durations, resources and
//! dependencies, then [`TaskGraph::simulate`] runs them through the event engine and
//! returns per-job finish times, the makespan, and (optionally) the exact
//! `(tick, component, event)` trace.
//!
//! ```
//! use neo_sim::event::{TaskGraph, TieBreak};
//!
//! // A 2-stage double-buffered pipeline: transfer (resource 1) feeds compute
//! // (resource 0), layer by layer.
//! let mut g = TaskGraph::new(2);
//! let t0 = g.push("xfer0", 1, 2.0, &[]);
//! let c0 = g.push("comp0", 0, 1.0, &[t0]);
//! let t1 = g.push("xfer1", 1, 2.0, &[]);
//! let _c1 = g.push("comp1", 0, 1.0, &[t1, c0]);
//! let run = g.simulate(TieBreak::ById, false);
//! // The link serializes the transfers; the second compute waits for its buffer.
//! assert_eq!(run.makespan, 5.0);
//! ```

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// Identifies a component within one [`EventEngine`] (its registration index).
pub type ComponentId = usize;

/// Anything that evolves over simulated time.
///
/// A component advertises when it next wants to run ([`Component::next_tick`], `None`
/// while it is asleep waiting on shared state) and advances its own state when the
/// engine dispatches it ([`Component::tick`]). All inter-component interaction goes
/// through the shared state `S`; after every dispatch the engine re-polls every
/// component's `next_tick`, so mutating shared state is how one component wakes
/// another.
///
/// **Ordering contract:** a component's behaviour must depend only on `now` and the
/// shared state, never on the dispatch order of other components woken at the same
/// tick. [`TieBreak::Fuzzed`] exists to catch violations.
pub trait Component<S> {
    /// The component's registration index in its engine.
    fn id(&self) -> ComponentId;
    /// Human-readable name, used in event traces.
    fn name(&self) -> &str;
    /// The next simulated time this component needs to run given the shared state, or
    /// `None` to sleep until another component's tick changes that state.
    fn next_tick(&self, shared: &S) -> Option<f64>;
    /// Advances the component to `now`, mutating shared state as needed, and returns
    /// its new wake-up time (which must agree with a subsequent [`Component::next_tick`]
    /// poll).
    fn tick(&mut self, now: f64, shared: &mut S) -> Option<f64>;
    /// Short description of what the last [`Component::tick`] did, recorded in traces.
    fn event_label(&self) -> String {
        String::new()
    }
}

/// How the engine orders components woken at the same tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Deterministic: ascending [`ComponentId`] (the pinned reference order).
    ById,
    /// Seeded permutation of same-tick dispatch order. Execution stays fully
    /// deterministic *given the seed*; outputs of well-formed components are
    /// bit-identical across seeds, so differing outputs expose an ordering race.
    Fuzzed {
        /// Seed of the xorshift generator ranking same-tick wake-ups.
        seed: u64,
    },
}

impl TieBreak {
    /// Builds the tie-break mode used throughout tests and CI: deterministic for
    /// `seed == 0`, fuzzed otherwise. This is the convention the
    /// `NEO_EVENT_FUZZ_SEED` environment variable (CI seed matrix) follows.
    pub fn from_seed(seed: u64) -> Self {
        if seed == 0 {
            TieBreak::ById
        } else {
            TieBreak::Fuzzed { seed }
        }
    }
}

/// One dispatched event, as recorded by an engine with tracing enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Simulated time of the dispatch.
    pub tick: f64,
    /// Component that ran.
    pub component: ComponentId,
    /// The component's [`Component::name`] at dispatch time.
    pub name: String,
    /// The component's [`Component::event_label`] after the tick.
    pub event: String,
}

/// A heap entry: `time` is the wake-up tick, `rank` the tie-break key among same-time
/// entries, `id` the component. The derived ordering is inverted so Rust's max-heap
/// pops the minimum `(time, rank, id)` first.
#[derive(Debug, Clone, Copy)]
struct WakeUp {
    time: f64,
    rank: u64,
    id: ComponentId,
}

impl PartialEq for WakeUp {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.rank == other.rank && self.id == other.id
    }
}

impl Eq for WakeUp {}

impl Ord for WakeUp {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.rank.cmp(&self.rank))
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for WakeUp {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// SplitMix64: a tiny, high-quality mixer for tie-break ranks. Deterministic in its
/// input, so fuzzed runs are reproducible from the seed alone.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The discrete-event driver: a min-heap of component wake-ups keyed
/// `(next_tick, ComponentId)` (with the configured tie-break rank in between).
///
/// After every dispatch the engine re-polls each component's
/// [`Component::next_tick`] against its currently scheduled wake-up and pushes fresh
/// heap entries for any that changed; stale entries are discarded lazily on pop. This
/// keeps the heap correct even when one component's tick re-schedules another through
/// the shared state.
pub struct EventEngine<S> {
    components: Vec<Box<dyn Component<S>>>,
    shared: S,
    now: f64,
    heap: BinaryHeap<WakeUp>,
    /// The wake-up time each component currently has queued (lazy-deletion marker).
    scheduled: Vec<Option<f64>>,
    tie_break: TieBreak,
    /// Monotone counter salting fuzzed ranks so re-scheduling the same component at
    /// the same tick still reshuffles.
    pushes: u64,
    processed: u64,
    trace: Option<Vec<EventRecord>>,
}

impl<S> EventEngine<S> {
    /// Creates an engine at time zero over the given shared state.
    pub fn new(shared: S, tie_break: TieBreak) -> Self {
        Self {
            components: Vec::new(),
            shared,
            now: 0.0,
            heap: BinaryHeap::new(),
            scheduled: Vec::new(),
            tie_break,
            pushes: 0,
            processed: 0,
            trace: None,
        }
    }

    /// Enables `(tick, component, event)` trace recording.
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(Vec::new());
        self
    }

    /// Registers a component; its [`Component::id`] must equal the returned index.
    ///
    /// # Panics
    ///
    /// Panics if the component's `id()` does not match its registration index.
    pub fn add_component(&mut self, component: Box<dyn Component<S>>) -> ComponentId {
        let id = self.components.len();
        assert_eq!(component.id(), id, "component id must equal its registration index");
        self.components.push(component);
        self.scheduled.push(None);
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The shared state.
    pub fn shared(&self) -> &S {
        &self.shared
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// The recorded trace (empty unless built [`EventEngine::with_trace`]).
    pub fn trace(&self) -> &[EventRecord] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Consumes the engine, returning the shared state and the recorded trace.
    pub fn into_parts(self) -> (S, Vec<EventRecord>) {
        (self.shared, self.trace.unwrap_or_default())
    }

    fn rank_for(&mut self, id: ComponentId) -> u64 {
        self.pushes += 1;
        match self.tie_break {
            TieBreak::ById => id as u64,
            TieBreak::Fuzzed { seed } => {
                splitmix64(seed ^ (id as u64).wrapping_mul(0xA24B_AED4_963E_E407) ^ self.pushes)
            }
        }
    }

    /// Re-polls every component and (re-)queues those whose wake-up changed.
    fn sync_wakeups(&mut self) {
        for id in 0..self.components.len() {
            let next = self.components[id].next_tick(&self.shared);
            if next != self.scheduled[id] {
                self.scheduled[id] = next;
                if let Some(time) = next {
                    assert!(
                        time.is_finite() && time + 1e-12 >= self.now,
                        "component {id} scheduled a wake-up in the past ({time} < {})",
                        self.now
                    );
                    let rank = self.rank_for(id);
                    self.heap.push(WakeUp { time, rank, id });
                }
            }
        }
    }

    /// Dispatches the next due event, advancing simulated time to it. Returns `false`
    /// when no component has a pending wake-up.
    pub fn step_event(&mut self) -> bool {
        self.sync_wakeups();
        while let Some(wake) = self.heap.pop() {
            // Lazy deletion: the entry is live only if it matches the component's
            // currently scheduled wake-up.
            if self.scheduled[wake.id] != Some(wake.time) {
                continue;
            }
            debug_assert!(wake.time + 1e-12 >= self.now, "event heap went backwards");
            self.now = self.now.max(wake.time);
            // Clear the marker so sync re-queues the component at whatever its tick
            // returns (even the same instant again).
            self.scheduled[wake.id] = None;
            let next = self.components[wake.id].tick(self.now, &mut self.shared);
            debug_assert_eq!(
                next,
                self.components[wake.id].next_tick(&self.shared),
                "tick() and next_tick() disagree for component {}",
                wake.id
            );
            self.processed += 1;
            if let Some(trace) = self.trace.as_mut() {
                trace.push(EventRecord {
                    tick: self.now,
                    component: wake.id,
                    name: self.components[wake.id].name().to_owned(),
                    event: self.components[wake.id].event_label(),
                });
            }
            return true;
        }
        false
    }

    /// Runs until no component has a pending wake-up, returning the final time.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_events` events are dispatched (runaway guard: a
    /// component re-scheduling itself at the same tick forever).
    pub fn run(&mut self, max_events: u64) -> f64 {
        let start = self.processed;
        while self.step_event() {
            assert!(
                self.processed - start <= max_events,
                "event engine exceeded {max_events} events — a component is livelocked"
            );
        }
        self.now
    }

    /// The time of the earliest pending wake-up across all components, after
    /// re-polling them against the current shared state (`None` when every component
    /// is asleep). This is the scheduling seam cluster drivers use to interleave an
    /// engine with external clocks without dispatching anything.
    pub fn next_event_time(&mut self) -> Option<f64> {
        self.sync_wakeups();
        self.scheduled
            .iter()
            .flatten()
            .copied()
            .fold(None, |acc: Option<f64>, t| Some(acc.map_or(t, |a| a.min(t))))
    }

    /// Dispatches every event due at or before `horizon`, then advances the clock to
    /// `horizon` (an idle stretch still moves simulated time). Returns the number of
    /// events dispatched.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not finite, lies in the past, or more than
    /// `max_events` events are dispatched before reaching it.
    pub fn run_until(&mut self, horizon: f64, max_events: u64) -> u64 {
        assert!(
            horizon.is_finite() && horizon + 1e-12 >= self.now,
            "run_until horizon {horizon} must be finite and not before now ({})",
            self.now
        );
        let start = self.processed;
        while self.next_event_time().is_some_and(|t| t <= horizon) {
            self.step_event();
            assert!(
                self.processed - start <= max_events,
                "event engine exceeded {max_events} events before {horizon} — \
                 a component is livelocked"
            );
        }
        self.now = self.now.max(horizon);
        self.processed - start
    }
}

// ---------------------------------------------------------------------------
// Serial links
// ---------------------------------------------------------------------------

/// A serial FIFO link: one transfer occupies the wire at a time, each for
/// `bytes / bandwidth` seconds, and every delivery lands one propagation `latency`
/// after its transfer drains. This is the inter-node primitive cluster components
/// price frontend→engine hops with; the per-rank PCIe directions in
/// [`crate::transfer`] stay closed-form.
///
/// Pricing is deterministic and order-dependent only on the call order of
/// [`SerialLine::delivery`] — callers must offer transfers in a deterministic order
/// (the cluster router offers them in routing order).
#[derive(Debug, Clone, PartialEq)]
pub struct SerialLine {
    /// Propagation latency added after a transfer drains, in seconds.
    latency: f64,
    /// Wire bandwidth in bytes per second.
    bytes_per_s: f64,
    /// Time the wire finishes its last accepted transfer.
    free_at: f64,
}

impl SerialLine {
    /// A link with the given propagation latency (seconds) and bandwidth (bytes/s).
    ///
    /// # Panics
    ///
    /// Panics if the latency is negative/not finite or the bandwidth is not positive.
    pub fn new(latency: f64, bytes_per_s: f64) -> Self {
        assert!(latency.is_finite() && latency >= 0.0, "latency must be finite and >= 0");
        assert!(
            bytes_per_s.is_finite() && bytes_per_s > 0.0,
            "bandwidth must be finite and positive"
        );
        Self { latency, bytes_per_s, free_at: 0.0 }
    }

    /// Accepts a transfer of `bytes` that becomes ready to send at `ready`, and
    /// returns its delivery time: the wire serializes transfers FIFO in call order,
    /// and the payload lands `latency` after its slot drains.
    ///
    /// # Panics
    ///
    /// Panics if `ready` is not finite or `bytes` is negative/not finite.
    pub fn delivery(&mut self, ready: f64, bytes: f64) -> f64 {
        assert!(ready.is_finite(), "ready time must be finite");
        assert!(bytes.is_finite() && bytes >= 0.0, "transfer size must be finite and >= 0");
        let start = self.free_at.max(ready);
        self.free_at = start + bytes / self.bytes_per_s;
        self.free_at + self.latency
    }

    /// Time the wire finishes its last accepted transfer (0 before any transfer).
    pub fn free_at(&self) -> f64 {
        self.free_at
    }

    /// Current propagation latency, in seconds.
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Current wire bandwidth, in bytes per second.
    pub fn bytes_per_s(&self) -> f64 {
        self.bytes_per_s
    }

    /// Re-rates the wire in place — a fault injector modelling congestion or a flaky
    /// cable cuts bandwidth and adds latency mid-simulation. In-flight transfers keep
    /// the delivery times they were quoted (`free_at` is preserved); only transfers
    /// accepted after the call see the new rates.
    ///
    /// # Panics
    ///
    /// Same domain checks as [`SerialLine::new`].
    pub fn reconfigure(&mut self, latency: f64, bytes_per_s: f64) {
        assert!(latency.is_finite() && latency >= 0.0, "latency must be finite and >= 0");
        assert!(
            bytes_per_s.is_finite() && bytes_per_s > 0.0,
            "bandwidth must be finite and positive"
        );
        self.latency = latency;
        self.bytes_per_s = bytes_per_s;
    }
}

// ---------------------------------------------------------------------------
// Task-graph runner
// ---------------------------------------------------------------------------

/// Identifies a serial resource (GPU stream, CPU pool, one PCIe link direction).
pub type ResourceId = usize;

/// Identifies a job within a [`TaskGraph`].
pub type JobId = usize;

/// One job: runs for `duration` seconds on `resource` once every dependency finished.
#[derive(Debug, Clone)]
struct JobSpec {
    name: String,
    resource: ResourceId,
    duration: f64,
}

/// A DAG of jobs over serial resources, executed by the event engine.
///
/// Each resource runs one job at a time; among ready jobs it picks the lowest
/// [`JobId`] first (FIFO in construction order), which makes execution independent of
/// same-tick dispatch order — the property the fuzzed tie-break verifies.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    jobs: Vec<JobSpec>,
    deps: Vec<Vec<JobId>>,
    resource_names: Vec<String>,
}

/// Outcome of simulating a [`TaskGraph`].
#[derive(Debug, Clone)]
pub struct TaskGraphRun {
    /// Time the last job finished (0 for an empty graph).
    pub makespan: f64,
    /// Per-job finish times, indexed by [`JobId`].
    pub finish_times: Vec<f64>,
    /// Per-resource busy time (sum of executed job durations).
    pub busy: Vec<f64>,
    /// The dispatch trace, when requested.
    pub trace: Vec<EventRecord>,
}

impl TaskGraph {
    /// An empty graph over `n_resources` serial resources named `r0`, `r1`, ….
    pub fn new(n_resources: usize) -> Self {
        Self::named(&(0..n_resources).map(|r| format!("r{r}")).collect::<Vec<_>>())
    }

    /// An empty graph whose resources carry the given names (shown as the component
    /// names in event traces).
    pub fn named<S: AsRef<str>>(resource_names: &[S]) -> Self {
        Self {
            jobs: Vec::new(),
            deps: Vec::new(),
            resource_names: resource_names.iter().map(|s| s.as_ref().to_owned()).collect(),
        }
    }

    /// Adds a job and returns its id. Dependencies must already exist (so the graph is
    /// acyclic by construction); zero-duration jobs are allowed.
    ///
    /// # Panics
    ///
    /// Panics if the resource is out of range, a dependency id is not smaller than the
    /// new job's id, or the duration is negative/not finite.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        resource: ResourceId,
        duration: f64,
        deps: &[JobId],
    ) -> JobId {
        assert!(resource < self.resource_names.len(), "resource {resource} out of range");
        assert!(duration.is_finite() && duration >= 0.0, "job duration must be finite and >= 0");
        let id = self.jobs.len();
        for &d in deps {
            assert!(d < id, "dependency {d} of job {id} must be an earlier job");
        }
        self.jobs.push(JobSpec { name: name.into(), resource, duration });
        self.deps.push(deps.to_vec());
        id
    }

    /// Number of jobs in the graph.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the graph holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Executes the graph on the event engine and returns finish times, per-resource
    /// busy time and the makespan. `trace` enables `(tick, component, event)`
    /// recording.
    pub fn simulate(&self, tie_break: TieBreak, trace: bool) -> TaskGraphRun {
        let n_jobs = self.jobs.len();
        let n_resources = self.resource_names.len();
        let mut board = Board {
            durations: self.jobs.iter().map(|j| j.duration).collect(),
            names: self.jobs.iter().map(|j| j.name.clone()).collect(),
            resources: self.jobs.iter().map(|j| j.resource).collect(),
            dependents: vec![Vec::new(); n_jobs],
            remaining: self.deps.iter().map(|d| d.len()).collect(),
            enabled_at: vec![f64::NAN; n_jobs],
            ready: vec![BTreeSet::new(); n_resources],
            finish: vec![f64::NAN; n_jobs],
            done: vec![false; n_jobs],
        };
        for (id, deps) in self.deps.iter().enumerate() {
            for &d in deps {
                board.dependents[d].push(id);
            }
        }
        for id in 0..n_jobs {
            if board.remaining[id] == 0 {
                board.enabled_at[id] = 0.0;
                board.ready[board.resources[id]].insert(id);
            }
        }
        let mut engine = EventEngine::new(board, tie_break);
        if trace {
            engine = engine.with_trace();
        }
        for r in 0..n_resources {
            engine
                .add_component(Box::new(ResourceComponent::new(r, self.resource_names[r].clone())));
        }
        // Each job produces at most two events (start, finish; possibly fused), plus
        // slack for same-tick re-wakes.
        engine.run(4 * n_jobs as u64 + 8);
        let busy: Vec<f64> = (0..n_resources)
            .map(|r| self.jobs.iter().filter(|j| j.resource == r).map(|j| j.duration).sum())
            .collect();
        let (board, trace) = engine.into_parts();
        assert!(
            board.done.iter().all(|&d| d),
            "task graph deadlocked: a job's dependencies never completed"
        );
        let makespan = board.finish.iter().copied().fold(0.0_f64, f64::max);
        TaskGraphRun { makespan, finish_times: board.finish, busy, trace }
    }
}

/// Shared state of a task-graph simulation.
struct Board {
    durations: Vec<f64>,
    names: Vec<String>,
    resources: Vec<ResourceId>,
    dependents: Vec<Vec<JobId>>,
    remaining: Vec<usize>,
    /// Time each job's last dependency finished (NaN until enabled).
    enabled_at: Vec<f64>,
    /// Ready jobs per resource, ordered by job id (FIFO in construction order).
    ready: Vec<BTreeSet<JobId>>,
    finish: Vec<f64>,
    done: Vec<bool>,
}

/// A serial execution resource: runs one ready job at a time, FIFO by job id.
struct ResourceComponent {
    id: ResourceId,
    name: String,
    /// The running job and its finish time.
    running: Option<(JobId, f64)>,
    /// When the resource last became free.
    free_at: f64,
    last_event: String,
}

impl ResourceComponent {
    fn new(id: ResourceId, name: String) -> Self {
        Self { id, name, running: None, free_at: 0.0, last_event: String::new() }
    }

    /// The time the next ready job could start on this resource, if any.
    fn next_start(&self, board: &Board) -> Option<f64> {
        board.ready[self.id].iter().next().map(|&job| board.enabled_at[job].max(self.free_at))
    }
}

impl Component<Board> for ResourceComponent {
    fn id(&self) -> ComponentId {
        self.id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_tick(&self, board: &Board) -> Option<f64> {
        match self.running {
            Some((_, finish)) => Some(finish),
            None => self.next_start(board),
        }
    }

    fn tick(&mut self, now: f64, board: &mut Board) -> Option<f64> {
        self.last_event.clear();
        // Complete the running job if its finish time has arrived.
        if let Some((job, finish)) = self.running {
            if now >= finish {
                self.running = None;
                self.free_at = finish;
                board.finish[job] = finish;
                board.done[job] = true;
                for i in 0..board.dependents[job].len() {
                    let dep = board.dependents[job][i];
                    board.remaining[dep] -= 1;
                    if board.remaining[dep] == 0 {
                        board.enabled_at[dep] = finish;
                        board.ready[board.resources[dep]].insert(dep);
                    }
                }
                self.last_event = format!("finish {}", board.names[job]);
            }
        }
        // Start the next ready job if the resource is free and the job's enable time
        // has arrived (completion and the next start may share a tick).
        if self.running.is_none() {
            if let Some(&job) = board.ready[self.id].iter().next() {
                let start = board.enabled_at[job].max(self.free_at);
                if start <= now {
                    board.ready[self.id].remove(&job);
                    let finish = now + board.durations[job];
                    self.running = Some((job, finish));
                    if !self.last_event.is_empty() {
                        self.last_event.push_str("; ");
                    }
                    self.last_event.push_str(&format!("start {}", board.names[job]));
                }
            }
        }
        self.next_tick(board)
    }

    fn event_label(&self) -> String {
        self.last_event.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A component that wakes every `period` seconds `n` times and appends its id to a
    /// shared log.
    struct Beeper {
        id: ComponentId,
        period: f64,
        remaining: usize,
        next: f64,
    }

    impl Component<Vec<(f64, ComponentId)>> for Beeper {
        fn id(&self) -> ComponentId {
            self.id
        }
        fn name(&self) -> &str {
            "beeper"
        }
        fn next_tick(&self, _shared: &Vec<(f64, ComponentId)>) -> Option<f64> {
            (self.remaining > 0).then_some(self.next)
        }
        fn tick(&mut self, now: f64, shared: &mut Vec<(f64, ComponentId)>) -> Option<f64> {
            shared.push((now, self.id));
            self.remaining -= 1;
            self.next = now + self.period;
            self.next_tick(shared)
        }
    }

    fn beeper(id: ComponentId, period: f64, n: usize) -> Box<Beeper> {
        Box::new(Beeper { id, period, remaining: n, next: period })
    }

    #[test]
    fn events_dispatch_in_time_order() {
        let mut engine = EventEngine::new(Vec::new(), TieBreak::ById);
        engine.add_component(beeper(0, 3.0, 2));
        engine.add_component(beeper(1, 2.0, 3));
        let end = engine.run(100);
        assert_eq!(end, 6.0);
        let log = engine.shared().clone();
        assert_eq!(log, vec![(2.0, 1), (3.0, 0), (4.0, 1), (6.0, 0), (6.0, 1)]);
        assert_eq!(engine.events_processed(), 5);
    }

    #[test]
    fn same_tick_ties_break_by_id_by_default() {
        let mut engine = EventEngine::new(Vec::new(), TieBreak::ById);
        engine.add_component(beeper(0, 1.0, 4));
        engine.add_component(beeper(1, 1.0, 4));
        engine.run(100);
        for pair in engine.shared().chunks(2) {
            assert_eq!(pair[0].0, pair[1].0);
            assert!(pair[0].1 < pair[1].1, "ById must dispatch component 0 first");
        }
    }

    #[test]
    fn fuzzed_tie_break_permutes_order_but_not_times() {
        // Across seeds the *set* of (time, id) pairs is identical; at least one seed
        // flips some same-tick pair relative to ById.
        let run = |tie: TieBreak| {
            let mut engine = EventEngine::new(Vec::new(), tie);
            for id in 0..4 {
                engine.add_component(beeper(id, 1.0, 8));
            }
            engine.run(1_000);
            engine.shared().clone()
        };
        let reference = run(TieBreak::ById);
        let mut saw_reorder = false;
        for seed in 1..=16 {
            let fuzzed = run(TieBreak::Fuzzed { seed });
            let mut sorted_ref = reference.clone();
            let mut sorted_fuzz = fuzzed.clone();
            sorted_ref.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            sorted_fuzz.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            assert_eq!(sorted_ref, sorted_fuzz, "seed {seed} changed times, not just order");
            if fuzzed != reference {
                saw_reorder = true;
            }
        }
        assert!(saw_reorder, "fuzzing never produced a different same-tick order");
    }

    #[test]
    fn fuzzed_runs_are_reproducible_from_the_seed() {
        let run = |seed: u64| {
            let mut engine = EventEngine::new(Vec::new(), TieBreak::Fuzzed { seed });
            for id in 0..3 {
                engine.add_component(beeper(id, 0.5, 5));
            }
            engine.run(1_000);
            engine.shared().clone()
        };
        assert_eq!(run(7), run(7));
        assert_eq!(TieBreak::from_seed(0), TieBreak::ById);
        assert_eq!(TieBreak::from_seed(9), TieBreak::Fuzzed { seed: 9 });
    }

    #[test]
    fn trace_records_tick_component_event() {
        let mut engine = EventEngine::new(Vec::new(), TieBreak::ById).with_trace();
        engine.add_component(beeper(0, 1.5, 2));
        engine.run(100);
        let trace = engine.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].tick, 1.5);
        assert_eq!(trace[1].tick, 3.0);
        assert_eq!(trace[0].component, 0);
        assert_eq!(trace[0].name, "beeper");
    }

    #[test]
    #[should_panic(expected = "livelocked")]
    fn runaway_component_trips_the_event_guard() {
        struct Stuck;
        impl Component<()> for Stuck {
            fn id(&self) -> ComponentId {
                0
            }
            fn name(&self) -> &str {
                "stuck"
            }
            fn next_tick(&self, _: &()) -> Option<f64> {
                Some(1.0)
            }
            fn tick(&mut self, _now: f64, _: &mut ()) -> Option<f64> {
                Some(1.0) // never advances
            }
        }
        let mut engine = EventEngine::new((), TieBreak::ById);
        engine.add_component(Box::new(Stuck));
        engine.run(16);
    }

    #[test]
    #[should_panic(expected = "registration index")]
    fn mismatched_component_id_is_rejected() {
        let mut engine: EventEngine<()> = EventEngine::new((), TieBreak::ById);
        struct Wrong;
        impl Component<()> for Wrong {
            fn id(&self) -> ComponentId {
                7
            }
            fn name(&self) -> &str {
                "wrong"
            }
            fn next_tick(&self, _: &()) -> Option<f64> {
                None
            }
            fn tick(&mut self, _: f64, _: &mut ()) -> Option<f64> {
                None
            }
        }
        engine.add_component(Box::new(Wrong));
    }

    #[test]
    fn next_event_time_peeks_without_dispatching() {
        let mut engine = EventEngine::new(Vec::new(), TieBreak::ById);
        engine.add_component(beeper(0, 3.0, 2));
        engine.add_component(beeper(1, 2.0, 1));
        assert_eq!(engine.next_event_time(), Some(2.0));
        assert_eq!(engine.events_processed(), 0);
        engine.run(100);
        assert_eq!(engine.next_event_time(), None);
    }

    #[test]
    fn run_until_stops_at_the_horizon_and_advances_idle_time() {
        let mut engine = EventEngine::new(Vec::new(), TieBreak::ById);
        engine.add_component(beeper(0, 2.0, 3));
        // Events at 2 and 4 are due by 4.5; the one at 6 is not.
        assert_eq!(engine.run_until(4.5, 100), 2);
        assert_eq!(engine.now(), 4.5, "idle stretch advances the clock to the horizon");
        assert_eq!(engine.shared().len(), 2);
        assert_eq!(engine.run_until(10.0, 100), 1);
        assert_eq!(engine.now(), 10.0);
        // A horizon with nothing pending still moves time forward.
        assert_eq!(engine.run_until(12.0, 100), 0);
        assert_eq!(engine.now(), 12.0);
    }

    #[test]
    #[should_panic(expected = "not before now")]
    fn run_until_rejects_horizons_in_the_past() {
        let mut engine = EventEngine::new(Vec::new(), TieBreak::ById);
        engine.add_component(beeper(0, 1.0, 2));
        engine.run(100);
        engine.run_until(0.5, 100);
    }

    // -- serial line --------------------------------------------------------

    #[test]
    fn idle_serial_line_delivers_after_transfer_plus_latency() {
        let mut line = SerialLine::new(0.5, 100.0);
        // 200 bytes at 100 B/s = 2 s on the wire, landing 0.5 s later.
        assert_eq!(line.delivery(1.0, 200.0), 3.5);
        assert_eq!(line.free_at(), 3.0);
    }

    #[test]
    fn serial_line_serializes_back_to_back_transfers_fifo() {
        let mut line = SerialLine::new(0.1, 10.0);
        let first = line.delivery(0.0, 20.0); // wire 0..2
        let second = line.delivery(0.0, 10.0); // queued: wire 2..3
        assert_eq!(first, 2.1);
        assert_eq!(second, 3.1);
        // A transfer ready after the wire drains is not delayed by the earlier ones.
        assert_eq!(line.delivery(10.0, 10.0), 11.1);
    }

    #[test]
    fn zero_byte_transfer_costs_only_latency() {
        let mut line = SerialLine::new(0.25, 1.0);
        assert_eq!(line.delivery(4.0, 0.0), 4.25);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn serial_line_rejects_zero_bandwidth() {
        let _ = SerialLine::new(0.0, 0.0);
    }

    #[test]
    fn reconfigure_rerates_new_transfers_but_keeps_quoted_deliveries() {
        let mut line = SerialLine::new(0.5, 100.0);
        assert_eq!(line.delivery(0.0, 200.0), 2.5); // wire busy 0..2
                                                    // Degrade mid-flight: bandwidth cut 10x, latency doubled.
        line.reconfigure(1.0, 10.0);
        assert_eq!(line.latency(), 1.0);
        assert_eq!(line.bytes_per_s(), 10.0);
        assert_eq!(line.free_at(), 2.0, "the in-flight transfer keeps its quoted slot");
        // The next transfer queues behind the old slot but drains at the new rate.
        assert_eq!(line.delivery(0.0, 10.0), 2.0 + 1.0 + 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn reconfigure_rejects_zero_bandwidth() {
        let mut line = SerialLine::new(0.0, 1.0);
        line.reconfigure(0.0, 0.0);
    }

    // -- task graph ---------------------------------------------------------

    #[test]
    fn serial_chain_sums_durations() {
        let mut g = TaskGraph::new(1);
        let a = g.push("a", 0, 1.0, &[]);
        let b = g.push("b", 0, 2.0, &[a]);
        let _c = g.push("c", 0, 3.0, &[b]);
        let run = g.simulate(TieBreak::ById, false);
        assert_eq!(run.makespan, 6.0);
        assert_eq!(run.finish_times, vec![1.0, 3.0, 6.0]);
        assert_eq!(run.busy, vec![6.0]);
    }

    #[test]
    fn independent_jobs_on_distinct_resources_run_in_parallel() {
        let mut g = TaskGraph::new(2);
        g.push("a", 0, 4.0, &[]);
        g.push("b", 1, 3.0, &[]);
        let run = g.simulate(TieBreak::ById, false);
        assert_eq!(run.makespan, 4.0);
    }

    #[test]
    fn one_resource_serializes_fifo_by_job_id() {
        let mut g = TaskGraph::new(1);
        g.push("a", 0, 1.0, &[]);
        g.push("b", 0, 1.0, &[]);
        g.push("c", 0, 1.0, &[]);
        let run = g.simulate(TieBreak::ById, false);
        assert_eq!(run.finish_times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn double_buffered_pipeline_matches_the_closed_form_when_hidden() {
        // t <= c: transfers hide behind compute; total = fill + L*c, exactly the
        // closed-form double_buffered_time.
        let layers = 8;
        let (c, t) = (2.0, 1.0);
        let mut g = TaskGraph::new(2);
        let mut prev_compute: Option<JobId> = None;
        let mut computes = Vec::new();
        for i in 0..layers {
            // Double-buffer depth 2: transfer i waits for compute i-2 to release its
            // buffer; the link itself serializes transfers.
            let mut tdeps: Vec<JobId> = Vec::new();
            if i >= 2 {
                tdeps.push(computes[i - 2]);
            }
            let xfer = g.push(format!("xfer{i}"), 1, t, &tdeps);
            let mut cdeps = vec![xfer];
            if let Some(p) = prev_compute {
                cdeps.push(p);
            }
            let comp = g.push(format!("comp{i}"), 0, c, &cdeps);
            computes.push(comp);
            prev_compute = Some(comp);
        }
        let run = g.simulate(TieBreak::ById, false);
        let closed = crate::transfer::double_buffered_time(layers, c, t);
        assert!((run.makespan - closed).abs() < 1e-12, "event {} closed {closed}", run.makespan);
    }

    #[test]
    fn transfer_bound_pipeline_is_finer_than_the_closed_form() {
        // t > c: the event-ordered pipeline finishes at L*t + c; the closed form
        // charges t + L*t (steady-state cadence), a slight overcount. The event engine
        // must sit at or below the closed form, within one stage time.
        let layers = 8;
        let (c, t) = (1.0, 3.0);
        let mut g = TaskGraph::new(2);
        let mut computes: Vec<JobId> = Vec::new();
        for i in 0..layers {
            let mut tdeps: Vec<JobId> = Vec::new();
            if i >= 2 {
                tdeps.push(computes[i - 2]);
            }
            let xfer = g.push(format!("xfer{i}"), 1, t, &tdeps);
            let mut cdeps = vec![xfer];
            if let Some(&p) = computes.last() {
                cdeps.push(p);
            }
            computes.push(g.push(format!("comp{i}"), 0, c, &cdeps));
        }
        let run = g.simulate(TieBreak::ById, false);
        assert_eq!(run.makespan, layers as f64 * t + c);
        let closed = crate::transfer::double_buffered_time(layers, c, t);
        assert!(run.makespan <= closed);
        assert!(closed - run.makespan <= t);
    }

    #[test]
    fn fuzzed_order_leaves_task_graph_results_bit_identical() {
        // A graph with plenty of same-tick ties: 3 resources, layered fan-out.
        let mut g = TaskGraph::new(3);
        let mut prev: Vec<JobId> = Vec::new();
        for layer in 0..6 {
            let mut next = Vec::new();
            for r in 0..3 {
                next.push(g.push(format!("j{layer}-{r}"), r, 1.0, &prev));
            }
            prev = next;
        }
        let reference = g.simulate(TieBreak::ById, false);
        for seed in [1, 2, 3, 0xDEAD_BEEF] {
            let fuzzed = g.simulate(TieBreak::Fuzzed { seed }, false);
            assert_eq!(reference.finish_times, fuzzed.finish_times, "seed {seed}");
            assert_eq!(reference.makespan, fuzzed.makespan);
        }
    }

    #[test]
    fn zero_duration_jobs_complete_at_their_enable_time() {
        let mut g = TaskGraph::new(1);
        let a = g.push("a", 0, 2.0, &[]);
        let b = g.push("b", 0, 0.0, &[a]);
        let run = g.simulate(TieBreak::ById, false);
        assert_eq!(run.finish_times[b], 2.0);
    }

    #[test]
    fn empty_graph_has_zero_makespan() {
        let g = TaskGraph::new(2);
        assert!(g.is_empty());
        let run = g.simulate(TieBreak::ById, false);
        assert_eq!(run.makespan, 0.0);
        assert!(run.finish_times.is_empty());
    }

    #[test]
    fn trace_captures_starts_and_finishes() {
        let mut g = TaskGraph::new(2);
        let a = g.push("load", 1, 1.0, &[]);
        g.push("work", 0, 2.0, &[a]);
        let run = g.simulate(TieBreak::ById, true);
        let events: Vec<(f64, &str)> =
            run.trace.iter().map(|r| (r.tick, r.event.as_str())).collect();
        assert_eq!(
            events,
            vec![
                (0.0, "start load"),
                (1.0, "finish load"),
                (1.0, "start work"),
                (3.0, "finish work"),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "earlier job")]
    fn forward_dependency_is_rejected() {
        let mut g = TaskGraph::new(1);
        g.push("a", 0, 1.0, &[3]);
    }
}
