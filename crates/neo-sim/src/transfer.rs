//! Transfer/compute overlap models for pipelined offloading.
//!
//! The pipelined-offloading family (PIPO, and more generally any scheduler that streams
//! KV or weights over PCIe while the GPU computes) hides transfers behind compute with
//! *double buffering*: while the GPU processes layer `i` out of buffer A, the DMA engine
//! fills buffer B with layer `i + 1`'s data. With per-stage compute time `c` and per-stage
//! transfer time `t`, an `L`-stage pipeline then takes
//!
//! ```text
//! T = t + L × max(c, t)
//! ```
//!
//! — the first transfer cannot be hidden (the pipeline fill), and from then on each stage
//! advances at the pace of the slower of the two engines. When `t ≤ c` the transfers are
//! fully hidden after the fill; when `t > c` the pipeline is *transfer-bound* and the GPU
//! stalls `t − c` per stage. These helpers quantify both regimes so schedulers can reason
//! about how much offloaded state a double-buffered pipeline sustains.

/// Total wall-clock time of an `n_stages`-deep pipeline with per-stage compute time
/// `compute` and per-stage transfer time `transfer`, under double buffering.
///
/// Returns `n_stages × compute` when there is nothing to transfer, and
/// `transfer + n_stages × max(compute, transfer)` otherwise (pipeline fill plus the
/// steady-state stage cadence). A zero-stage pipeline does no work — and fills no
/// buffer — so it costs exactly zero regardless of the per-stage times.
pub fn double_buffered_time(n_stages: usize, compute: f64, transfer: f64) -> f64 {
    if n_stages == 0 {
        return 0.0;
    }
    let stages = n_stages as f64;
    if transfer <= 0.0 {
        return stages * compute.max(0.0);
    }
    transfer + stages * compute.max(transfer)
}

/// The part of the transfer traffic a double-buffered pipeline cannot hide behind
/// compute: `double_buffered_time − n_stages × compute`.
///
/// Zero-ish (just the pipeline fill) when `transfer ≤ compute`; grows linearly with the
/// per-stage transfer excess once the pipeline is transfer-bound.
pub fn double_buffered_exposed(n_stages: usize, compute: f64, transfer: f64) -> f64 {
    (double_buffered_time(n_stages, compute, transfer) - n_stages as f64 * compute.max(0.0))
        .max(0.0)
}

/// Whether a double-buffered pipeline with these stage times is transfer-bound (the DMA
/// engine, not the compute engine, sets the stage cadence).
pub fn transfer_bound(compute: f64, transfer: f64) -> bool {
    transfer > compute
}

/// Largest per-stage transfer time that stays fully hidden behind a per-stage compute
/// time of `compute` (the break-even point of [`transfer_bound`]).
pub fn hideable_transfer_budget(compute: f64) -> f64 {
    compute.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_transfer_is_pure_compute() {
        assert_eq!(double_buffered_time(10, 2.0, 0.0), 20.0);
        assert_eq!(double_buffered_exposed(10, 2.0, 0.0), 0.0);
    }

    #[test]
    fn hidden_transfer_costs_only_the_fill() {
        // t < c: steady state runs at compute pace; only the first transfer is exposed.
        let total = double_buffered_time(32, 4.0, 1.0);
        assert!((total - (1.0 + 32.0 * 4.0)).abs() < 1e-12);
        assert!((double_buffered_exposed(32, 4.0, 1.0) - 1.0).abs() < 1e-12);
        assert!(!transfer_bound(4.0, 1.0));
    }

    #[test]
    fn transfer_bound_pipeline_runs_at_transfer_pace() {
        // t > c: every stage advances at the transfer cadence.
        let total = double_buffered_time(32, 1.0, 4.0);
        assert!((total - (4.0 + 32.0 * 4.0)).abs() < 1e-12);
        let exposed = double_buffered_exposed(32, 1.0, 4.0);
        assert!((exposed - (4.0 + 32.0 * 3.0)).abs() < 1e-12);
        assert!(transfer_bound(1.0, 4.0));
    }

    #[test]
    fn budget_is_the_break_even_point() {
        let c = 2.5;
        let b = hideable_transfer_budget(c);
        assert!(!transfer_bound(c, b));
        assert!(transfer_bound(c, b + 1e-9));
        assert_eq!(hideable_transfer_budget(-1.0), 0.0);
    }

    #[test]
    fn exposed_never_negative() {
        assert!(double_buffered_exposed(0, 0.0, 0.0) >= 0.0);
        assert!(double_buffered_exposed(5, 10.0, 0.1) >= 0.0);
    }

    #[test]
    fn zero_stage_pipeline_is_free() {
        // A zero-stage pipeline never fills a buffer: no fill cost, no exposure.
        assert_eq!(double_buffered_time(0, 2.0, 4.0), 0.0);
        assert_eq!(double_buffered_time(0, 0.0, 4.0), 0.0);
        assert_eq!(double_buffered_exposed(0, 2.0, 4.0), 0.0);
    }
}
