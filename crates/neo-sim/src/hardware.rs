//! Datasheet-level hardware specifications for every testbed evaluated in the paper.
//!
//! Table 1 of the paper lists three testbeds: AWS `g5.nxlarge` (A10G GPU + EPYC 7R32
//! host), AWS `g4dn.4xlarge` (T4 GPU + Xeon Platinum 8259CL host) and a local 8×H100 HGX
//! server (Xeon Platinum 8462Y+ host, 4 NUMA nodes). The performance behaviour NEO
//! exploits — a small GPU/CPU *memory-bandwidth* gap despite a huge *compute* gap — is
//! entirely captured by the numbers in this module.

use serde::{Deserialize, Serialize};

/// Specification of a single GPU device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A10G"`.
    pub name: String,
    /// HBM/GDDR capacity in bytes.
    pub mem_bytes: u64,
    /// Peak memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Peak dense fp16/bf16 tensor throughput in FLOP/s.
    pub flops: f64,
    /// Fraction of peak FLOPs achievable on realistic GEMM shapes (model FLOPs utilisation).
    pub compute_efficiency: f64,
    /// Fraction of peak bandwidth achievable by attention/GEMM kernels.
    pub bandwidth_efficiency: f64,
    /// Fixed per-kernel launch overhead in seconds (paper §3.1 notes Python launch cost).
    pub kernel_launch_overhead: f64,
}

/// Specification of the host CPU (the offload target).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing name, e.g. `"EPYC 7R32"`.
    pub name: String,
    /// Number of physical cores available to the instance.
    pub cores: usize,
    /// Host DRAM capacity in bytes.
    pub mem_bytes: u64,
    /// Sustainable memory bandwidth in bytes/s (the quantity Figure 10a sweeps).
    pub mem_bw: f64,
    /// Aggregate SIMD FLOP/s across all cores.
    pub flops: f64,
    /// Fraction of peak bandwidth the paged-attention CPU kernel achieves.
    pub bandwidth_efficiency: f64,
    /// Per-batch software overhead of dispatching the CPU kernel (seconds).
    pub dispatch_overhead: f64,
}

/// PCIe link between the GPU and the host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieSpec {
    /// Host-to-device bandwidth in bytes/s.
    pub bw_h2d: f64,
    /// Device-to-host bandwidth in bytes/s.
    pub bw_d2h: f64,
    /// Per-transfer latency in seconds.
    pub latency: f64,
}

/// Local NVMe/SSD used as the cold third KV tier (CPU-cache overflow).
///
/// Modeled like [`PcieSpec`] with direction-split bandwidth plus a per-transfer latency;
/// unlike PCIe the drive is shared by the whole tensor-parallel group, so the cost model
/// charges full (not per-rank) KV bytes against it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Sequential read bandwidth in bytes/s (disk → host, promotion path).
    pub bw_read: f64,
    /// Sequential write bandwidth in bytes/s (host → disk, demotion path).
    pub bw_write: f64,
    /// Per-transfer latency in seconds (submission + device).
    pub latency: f64,
    /// Bytes of the drive budgeted for demoted KV cache.
    pub capacity_bytes: u64,
}

/// GPU-to-GPU interconnect used for tensor parallelism (NVLink on the HGX testbed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterconnectSpec {
    /// Per-GPU all-reduce bus bandwidth in bytes/s.
    pub bw: f64,
    /// Per-collective latency in seconds.
    pub latency: f64,
}

/// A complete testbed: one or more identical GPUs, the host CPU, and the links between them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Testbed {
    /// Instance / machine name, e.g. `"g5.4xlarge"`.
    pub name: String,
    /// GPU model installed in the machine.
    pub gpu: GpuSpec,
    /// Number of GPUs used for serving (tensor-parallel degree is bounded by this).
    pub num_gpus: usize,
    /// Host CPU available for offloading.
    pub cpu: CpuSpec,
    /// PCIe link per GPU.
    pub pcie: PcieSpec,
    /// Local NVMe used as the cold KV tier.
    pub disk: DiskSpec,
    /// GPU-GPU interconnect, if more than one GPU.
    pub interconnect: Option<InterconnectSpec>,
    /// Fraction of host DRAM the serving engine may use as CPU KV cache.
    pub cpu_cache_fraction: f64,
    /// Fraction of GPU memory usable for KV cache after weights and activations
    /// (mirrors vLLM's `gpu_memory_utilization`).
    pub gpu_mem_utilization: f64,
}

impl GpuSpec {
    /// NVIDIA T4: 16 GB GDDR6, 300 GB/s, 65 TFLOPS fp16 (the `g4dn` GPU).
    pub fn t4() -> Self {
        Self {
            name: "T4".to_string(),
            mem_bytes: 16 * GIB,
            mem_bw: 300e9,
            flops: 65e12,
            compute_efficiency: 0.45,
            bandwidth_efficiency: 0.75,
            kernel_launch_overhead: 8e-6,
        }
    }

    /// NVIDIA A10G: 24 GB GDDR6, 600 GB/s, 125 TFLOPS fp16 (the `g5` GPU).
    pub fn a10g() -> Self {
        Self {
            name: "A10G".to_string(),
            mem_bytes: 24 * GIB,
            mem_bw: 600e9,
            flops: 125e12,
            compute_efficiency: 0.5,
            bandwidth_efficiency: 0.8,
            kernel_launch_overhead: 8e-6,
        }
    }

    /// NVIDIA H100 SXM: 80 GB HBM3, 3.35 TB/s, ~990 TFLOPS bf16.
    pub fn h100() -> Self {
        Self {
            name: "H100".to_string(),
            mem_bytes: 80 * GIB,
            mem_bw: 3350e9,
            flops: 990e12,
            compute_efficiency: 0.55,
            bandwidth_efficiency: 0.8,
            kernel_launch_overhead: 6e-6,
        }
    }
}

const GIB: u64 = 1024 * 1024 * 1024;

impl CpuSpec {
    /// EPYC 7R32 slice on a `g5.nxlarge` instance: `2n` physical cores and `16n` GB DRAM.
    ///
    /// The paper observes (§5.5) that g5.2xlarge ≈ g5.4xlarge in peak memory bandwidth,
    /// g5.8xlarge has about 2× the bandwidth of g5.4xlarge, and g5.16xlarge about 2× of
    /// g5.8xlarge; the figures below follow that progression.
    pub fn epyc_7r32_g5(n: usize) -> Self {
        let bw = match n {
            0..=2 => 42e9,
            3..=4 => 48e9,
            5..=8 => 96e9,
            _ => 190e9,
        };
        Self {
            name: format!("EPYC 7R32 ({} cores)", 2 * n),
            cores: 2 * n,
            mem_bytes: 16 * n as u64 * GIB,
            mem_bw: bw,
            // ~36 GFLOP/s per core of sustained AVX2 fp32 FMA at ~2.8 GHz.
            flops: 2.0 * n as f64 * 36e9,
            bandwidth_efficiency: 0.7,
            dispatch_overhead: 30e-6,
        }
    }

    /// Xeon Platinum 8259CL slice on `g4dn.4xlarge`: 8 physical cores, 64 GB DRAM.
    pub fn xeon_8259cl_g4dn() -> Self {
        Self {
            name: "Xeon Platinum 8259CL (8 cores)".to_string(),
            cores: 8,
            mem_bytes: 64 * GIB,
            mem_bw: 40e9,
            flops: 8.0 * 40e9,
            bandwidth_efficiency: 0.7,
            dispatch_overhead: 30e-6,
        }
    }

    /// One NUMA node of the HGX host (Xeon Platinum 8462Y+). The paper confines the
    /// 2-GPU experiments to a single NUMA node (1/4 of the 2 TB DRAM and bandwidth).
    pub fn xeon_8462y_numa_node() -> Self {
        Self {
            name: "Xeon Platinum 8462Y+ (1 NUMA node, 16 cores)".to_string(),
            cores: 16,
            mem_bytes: 512 * GIB,
            mem_bw: 140e9,
            flops: 16.0 * 80e9,
            bandwidth_efficiency: 0.7,
            dispatch_overhead: 25e-6,
        }
    }

    /// AWS Graviton4 socket (537.6 GB/s per socket, per WikiChip) — used for the
    /// "more powerful CPUs" discussion in the paper's abstract.
    pub fn graviton4() -> Self {
        Self {
            name: "Graviton4 (96 cores)".to_string(),
            cores: 96,
            mem_bytes: 768 * GIB,
            mem_bw: 537.6e9,
            flops: 96.0 * 45e9,
            bandwidth_efficiency: 0.7,
            dispatch_overhead: 25e-6,
        }
    }
}

impl PcieSpec {
    /// PCIe 3.0 x16 (T4 instances).
    pub fn gen3_x16() -> Self {
        Self { bw_h2d: 12e9, bw_d2h: 12e9, latency: 10e-6 }
    }

    /// PCIe 4.0 x16 (A10G instances).
    pub fn gen4_x16() -> Self {
        Self { bw_h2d: 24e9, bw_d2h: 24e9, latency: 10e-6 }
    }

    /// PCIe 5.0 x16 (H100 SXM hosts).
    pub fn gen5_x16() -> Self {
        Self { bw_h2d: 48e9, bw_d2h: 48e9, latency: 8e-6 }
    }
}

impl DiskSpec {
    /// Instance-store NVMe of the AWS `g4dn.4xlarge` (225 GB, PCIe 3.0-era drive).
    pub fn g4dn_nvme() -> Self {
        Self { bw_read: 2.2e9, bw_write: 1.1e9, latency: 80e-6, capacity_bytes: 225 * GIB }
    }

    /// Instance-store NVMe of the AWS `g5.xlarge` family (250 GB, PCIe 4.0-era drive).
    pub fn g5_nvme() -> Self {
        Self { bw_read: 3.5e9, bw_write: 1.8e9, latency: 60e-6, capacity_bytes: 250 * GIB }
    }

    /// Datacenter-class NVMe of the HGX H100 host (3.84 TB, PCIe 5.0-era drive).
    pub fn hgx_nvme() -> Self {
        Self { bw_read: 7.0e9, bw_write: 4.5e9, latency: 40e-6, capacity_bytes: 3840 * GIB }
    }
}

impl InterconnectSpec {
    /// NVLink 4 (H100 SXM): 450 GB/s effective all-reduce bus bandwidth per GPU.
    pub fn nvlink4() -> Self {
        Self { bw: 450e9, latency: 12e-6 }
    }
}

impl Testbed {
    /// AWS `g5.nxlarge`: one A10G GPU plus a `2n`-core EPYC 7R32 host slice.
    ///
    /// `n` must be one of 2, 4, 8, 16 (the sizes used in Figure 10a). `n = 4` is the
    /// default testbed for all other A10G experiments.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn g5_xlarge(n: usize) -> Self {
        assert!(n > 0, "g5 instance size must be positive");
        Self {
            name: format!("g5.{n}xlarge"),
            gpu: GpuSpec::a10g(),
            num_gpus: 1,
            cpu: CpuSpec::epyc_7r32_g5(n),
            pcie: PcieSpec::gen4_x16(),
            disk: DiskSpec::g5_nvme(),
            interconnect: None,
            cpu_cache_fraction: 0.6,
            gpu_mem_utilization: 0.9,
        }
    }

    /// AWS `g4dn.4xlarge`: one T4 GPU plus an 8-core Xeon 8259CL host slice.
    pub fn g4dn_4xlarge() -> Self {
        Self {
            name: "g4dn.4xlarge".to_string(),
            gpu: GpuSpec::t4(),
            num_gpus: 1,
            cpu: CpuSpec::xeon_8259cl_g4dn(),
            pcie: PcieSpec::gen3_x16(),
            disk: DiskSpec::g4dn_nvme(),
            interconnect: None,
            cpu_cache_fraction: 0.6,
            gpu_mem_utilization: 0.9,
        }
    }

    /// HGX H100 server restricted to `num_gpus` GPUs and a single CPU NUMA node,
    /// matching the paper's 2-GPU LLaMa-3.1-70B experiments.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero or greater than 8.
    pub fn hgx_h100(num_gpus: usize) -> Self {
        assert!((1..=8).contains(&num_gpus), "HGX has 1..=8 GPUs");
        Self {
            name: format!("hgx-{num_gpus}xH100"),
            gpu: GpuSpec::h100(),
            num_gpus,
            cpu: CpuSpec::xeon_8462y_numa_node(),
            pcie: PcieSpec::gen5_x16(),
            disk: DiskSpec::hgx_nvme(),
            interconnect: if num_gpus > 1 { Some(InterconnectSpec::nvlink4()) } else { None },
            cpu_cache_fraction: 0.5,
            gpu_mem_utilization: 0.9,
        }
    }

    /// A hypothetical A10G testbed with a Graviton4-class host, used for the
    /// "with more powerful CPUs, up to 79.3% gain" discussion.
    pub fn a10g_graviton4() -> Self {
        Self {
            name: "a10g+graviton4".to_string(),
            gpu: GpuSpec::a10g(),
            num_gpus: 1,
            cpu: CpuSpec::graviton4(),
            pcie: PcieSpec::gen4_x16(),
            disk: DiskSpec::g5_nvme(),
            interconnect: None,
            cpu_cache_fraction: 0.6,
            gpu_mem_utilization: 0.9,
        }
    }

    /// Total GPU memory across all GPUs in the testbed.
    pub fn total_gpu_mem(&self) -> u64 {
        self.gpu.mem_bytes * self.num_gpus as u64
    }

    /// Bytes of host DRAM available for the CPU KV cache.
    pub fn cpu_cache_bytes(&self) -> u64 {
        (self.cpu.mem_bytes as f64 * self.cpu_cache_fraction) as u64
    }

    /// Effective GPU memory bandwidth (datasheet × kernel efficiency), per GPU.
    pub fn gpu_eff_bw(&self) -> f64 {
        self.gpu.mem_bw * self.gpu.bandwidth_efficiency
    }

    /// Effective GPU compute (datasheet × MFU), per GPU.
    pub fn gpu_eff_flops(&self) -> f64 {
        self.gpu.flops * self.gpu.compute_efficiency
    }

    /// Effective CPU memory bandwidth available to the attention kernel.
    pub fn cpu_eff_bw(&self) -> f64 {
        self.cpu.mem_bw * self.cpu.bandwidth_efficiency
    }
}

impl std::fmt::Display for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}x{} ({} GB, {:.0} GB/s) + {} ({} GB, {:.0} GB/s)",
            self.name,
            self.num_gpus,
            self.gpu.name,
            self.gpu.mem_bytes / GIB,
            self.gpu.mem_bw / 1e9,
            self.cpu.name,
            self.cpu.mem_bytes / GIB,
            self.cpu.mem_bw / 1e9,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_hardware_shapes() {
        let g5 = Testbed::g5_xlarge(4);
        assert_eq!(g5.cpu.cores, 8);
        assert_eq!(g5.cpu.mem_bytes, 64 * GIB);
        assert_eq!(g5.gpu.name, "A10G");

        let g4 = Testbed::g4dn_4xlarge();
        assert_eq!(g4.cpu.cores, 8);
        assert_eq!(g4.cpu.mem_bytes, 64 * GIB);
        assert_eq!(g4.gpu.name, "T4");

        let hgx = Testbed::hgx_h100(2);
        assert_eq!(hgx.num_gpus, 2);
        assert!(hgx.interconnect.is_some());
    }

    #[test]
    fn g5_bandwidth_progression_matches_paper() {
        // §5.5: 2x ≈ 4x, 8x ≈ 2 * 4x, 16x ≈ 2 * 8x.
        let b2 = CpuSpec::epyc_7r32_g5(2).mem_bw;
        let b4 = CpuSpec::epyc_7r32_g5(4).mem_bw;
        let b8 = CpuSpec::epyc_7r32_g5(8).mem_bw;
        let b16 = CpuSpec::epyc_7r32_g5(16).mem_bw;
        assert!((b4 - b2) / b4 < 0.2, "2x and 4x should be close");
        assert!(b8 / b4 > 1.7 && b8 / b4 < 2.3);
        assert!(b16 / b8 > 1.7 && b16 / b8 < 2.3);
    }

    #[test]
    fn memory_bandwidth_gap_much_smaller_than_compute_gap() {
        // §2.2: A10G vs host — compute gap ~100x, bandwidth gap ~3-10x.
        let tb = Testbed::g5_xlarge(4);
        let compute_gap = tb.gpu.flops / tb.cpu.flops;
        let bw_gap = tb.gpu.mem_bw / tb.cpu.mem_bw;
        assert!(compute_gap > 50.0, "compute gap {compute_gap}");
        assert!(bw_gap < 20.0, "bandwidth gap {bw_gap}");
        assert!(compute_gap / bw_gap > 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn g5_zero_size_panics() {
        let _ = Testbed::g5_xlarge(0);
    }

    #[test]
    #[should_panic(expected = "HGX")]
    fn hgx_too_many_gpus_panics() {
        let _ = Testbed::hgx_h100(9);
    }

    #[test]
    fn display_is_informative() {
        let s = Testbed::g5_xlarge(4).to_string();
        assert!(s.contains("A10G") && s.contains("g5.4xlarge"));
    }

    #[test]
    fn effective_numbers_below_peak() {
        for tb in [Testbed::g5_xlarge(4), Testbed::g4dn_4xlarge(), Testbed::hgx_h100(2)] {
            assert!(tb.gpu_eff_bw() < tb.gpu.mem_bw);
            assert!(tb.gpu_eff_flops() < tb.gpu.flops);
            assert!(tb.cpu_eff_bw() < tb.cpu.mem_bw);
        }
    }
}
