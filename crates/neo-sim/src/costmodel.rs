//! Per-operator cost primitives for a model running on a testbed.
//!
//! The NEO scheduler (§3.2 of the paper) estimates each iteration's duration as
//!
//! ```text
//! T ≈ L × ( max{Tl0, Tca1} + max{Tl1 + Tga0, Tca0} )
//! ```
//!
//! where `Tl` is the per-layer linear-stage time of a sub-batch on the GPU, `Tga` the
//! per-layer GPU attention time and `Tca` the per-layer CPU attention time. This module
//! provides those per-layer primitives (plus memory-capacity accounting, PCIe swap times
//! and tensor-parallel all-reduce) from the roofline model; the combination into the
//! iteration formula lives in `neo-core`.

use serde::{Deserialize, Serialize};

use crate::hardware::Testbed;
use crate::model_desc::ModelDesc;
use crate::roofline::{OpWork, Roofline};

/// Memory budget of a single tensor-parallel rank (one GPU of the group).
///
/// Model weights, activations and every token's KV cache are sharded `1/tp` per rank, so
/// capacity questions ("can the group hold another token?") reduce to the *tightest*
/// rank's budget. [`CostModel::rank_budget`] derives this view; group-level helpers like
/// [`CostModel::gpu_kv_capacity_tokens`] take the minimum over ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankBudget {
    /// Rank index within the tensor-parallel group (`0..tp`).
    pub rank: usize,
    /// Total HBM/GDDR of this rank's GPU in bytes.
    pub mem_bytes: u64,
    /// Bytes the serving engine may use on this rank (`mem_bytes × gpu_mem_utilization`).
    pub usable_bytes: u64,
    /// Bytes of this rank's model-weight shard.
    pub weight_bytes: u64,
    /// Bytes reserved on this rank for peak activations of the largest batch.
    pub activation_bytes: u64,
    /// Bytes of one token's KV shard on this rank.
    pub kv_bytes_per_token: usize,
    /// Tokens whose KV shard fits in this rank's remaining budget.
    pub kv_capacity_tokens: usize,
}

impl RankBudget {
    /// Bytes left for KV cache after weights and activations (zero when the shard does
    /// not fit at all).
    pub fn kv_budget_bytes(&self) -> u64 {
        (self.usable_bytes as i64 - self.weight_bytes as i64 - self.activation_bytes as i64).max(0)
            as u64
    }

    /// Bytes of KV shard `n_tokens` tokens occupy on this rank.
    pub fn kv_bytes_for_tokens(&self, n_tokens: usize) -> u64 {
        n_tokens as u64 * self.kv_bytes_per_token as u64
    }
}

/// Sustained DRAM read bandwidth a single CPU core can extract (bytes/s). The effective
/// CPU attention bandwidth is capped at `cores × PER_CORE_STREAM_BW` so that small
/// instances (e.g. g5.2xlarge with 4 cores) cannot saturate the socket bandwidth, matching
/// the observation behind Figure 10a.
const PER_CORE_STREAM_BW: f64 = 16e9;

/// Cost model for one (model, testbed, tensor-parallel degree) combination.
///
/// All `*_time_*` methods return **seconds for a single transformer layer** unless stated
/// otherwise, matching the per-layer formulation of the paper's scheduler.
#[derive(Debug, Clone)]
pub struct CostModel {
    model: ModelDesc,
    testbed: Testbed,
    tp: usize,
    gpu: Roofline,
    cpu: Roofline,
    /// Largest number of batched tokens the engine will ever schedule; activations for
    /// this many tokens are reserved when computing the GPU KV budget.
    max_batch_tokens: usize,
    /// Fraction of the tensor-parallel all-reduce hidden behind compute (0.0 = fully
    /// exposed, as in a simple TP implementation; production engines overlap part of it).
    allreduce_overlap: f64,
}

impl CostModel {
    /// Creates a cost model.
    ///
    /// `tp` is the tensor-parallel degree (1 for single-GPU testbeds).
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero, exceeds the number of GPUs in the testbed, or is greater
    /// than 1 on a testbed without a GPU-GPU interconnect (the per-layer all-reduces and
    /// the LM-head all-gather would otherwise be silently priced as free).
    pub fn new(model: ModelDesc, testbed: Testbed, tp: usize) -> Self {
        assert!(tp >= 1, "tensor-parallel degree must be at least 1");
        assert!(tp <= testbed.num_gpus, "tensor-parallel degree exceeds GPU count");
        assert!(
            tp == 1 || testbed.interconnect.is_some(),
            "tensor parallelism requires a GPU-GPU interconnect: testbed {:?} has none \
             but tp = {tp} (the collectives would be priced as free)",
            testbed.name
        );
        let gpu = Roofline::new(
            testbed.gpu_eff_flops(),
            testbed.gpu_eff_bw(),
            testbed.gpu.kernel_launch_overhead,
        );
        let cpu_bw = testbed.cpu_eff_bw().min(testbed.cpu.cores as f64 * PER_CORE_STREAM_BW);
        let cpu = Roofline::new(testbed.cpu.flops, cpu_bw, testbed.cpu.dispatch_overhead);
        Self { model, testbed, tp, gpu, cpu, max_batch_tokens: 8192, allreduce_overlap: 0.0 }
    }

    /// Overrides the number of batched tokens reserved for activations (default 8192).
    pub fn with_max_batch_tokens(mut self, tokens: usize) -> Self {
        self.max_batch_tokens = tokens.max(1);
        self
    }

    /// Sets the fraction of the tensor-parallel all-reduce hidden behind compute
    /// (clamped to `[0, 1]`). Production engines such as vLLM overlap part of the
    /// collective; the SwiftLLM-like baseline does not (Figure 10b's 2-GPU gap).
    pub fn with_allreduce_overlap(mut self, fraction: f64) -> Self {
        self.allreduce_overlap = fraction.clamp(0.0, 1.0);
        self
    }

    /// The model this cost model describes.
    pub fn model(&self) -> &ModelDesc {
        &self.model
    }

    /// The testbed this cost model describes.
    pub fn testbed(&self) -> &Testbed {
        &self.testbed
    }

    /// Tensor-parallel degree.
    pub fn tp(&self) -> usize {
        self.tp
    }

    /// GPU roofline used for operator estimates.
    pub fn gpu_roofline(&self) -> Roofline {
        self.gpu
    }

    /// CPU roofline used for operator estimates.
    pub fn cpu_roofline(&self) -> Roofline {
        self.cpu
    }

    // ------------------------------------------------------------------
    // Memory accounting
    // ------------------------------------------------------------------

    /// Bytes of model weights resident on each GPU (weights are sharded across the
    /// tensor-parallel group).
    pub fn weight_bytes_per_gpu(&self) -> u64 {
        self.model.weight_bytes() / self.tp as u64
    }

    /// Bytes of KV cache one token occupies on each GPU (KV heads are sharded).
    pub fn kv_bytes_per_token_per_gpu(&self) -> usize {
        self.model.kv_bytes_per_token() / self.tp
    }

    /// Bytes of KV cache one token occupies across the whole tensor-parallel group
    /// (i.e. the host-side size when the token is offloaded).
    pub fn kv_bytes_per_token(&self) -> usize {
        self.model.kv_bytes_per_token()
    }

    /// Memory budget of one tensor-parallel rank (see [`RankBudget`]).
    ///
    /// All ranks of the modelled testbeds are identical GPUs, so every rank currently
    /// reports the same budget; the per-rank view exists so capacity decisions are framed
    /// as "the tightest rank admits it" rather than a group-level average, which is the
    /// correct shape once ranks differ (MIG slices, asymmetric reservations).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= tp`.
    pub fn rank_budget(&self, rank: usize) -> RankBudget {
        assert!(rank < self.tp, "rank {rank} out of range for tp = {}", self.tp);
        let mem_bytes = self.testbed.gpu.mem_bytes;
        let mut budget = RankBudget {
            rank,
            mem_bytes,
            usable_bytes: (mem_bytes as f64 * self.testbed.gpu_mem_utilization) as u64,
            weight_bytes: self.weight_bytes_per_gpu(),
            activation_bytes: self.model.activation_bytes(self.max_batch_tokens) / self.tp as u64,
            kv_bytes_per_token: self.kv_bytes_per_token_per_gpu(),
            kv_capacity_tokens: 0,
        };
        budget.kv_capacity_tokens =
            (budget.kv_budget_bytes() / budget.kv_bytes_per_token as u64) as usize;
        budget
    }

    /// Memory budgets of every rank in the tensor-parallel group, in rank order.
    pub fn rank_budgets(&self) -> Vec<RankBudget> {
        (0..self.tp).map(|r| self.rank_budget(r)).collect()
    }

    /// Number of tokens the GPU KV cache can hold across the tensor-parallel group after
    /// reserving weights and peak activations.
    ///
    /// Every token's KV is sharded over all ranks, so the group holds a token only if the
    /// *tightest* rank still has room for its shard: this is the minimum of the per-rank
    /// [`RankBudget::kv_capacity_tokens`]. It is the quantity that collapses on
    /// memory-constrained GPUs (16 GB T4 serving a 13 GB LLaMa-2-7B keeps only a sliver
    /// for KV), which is exactly the regime where the paper reports up to 7.5× gains.
    pub fn gpu_kv_capacity_tokens(&self) -> usize {
        (0..self.tp)
            .map(|r| self.rank_budget(r).kv_capacity_tokens)
            .min()
            // neo-lint: allow(panic-hygiene) -- CostModel::new validates tp >= 1, so the range is never empty; a default capacity would silently change every schedule
            .expect("tp >= 1, so there is at least one rank")
    }

    /// Number of tokens the CPU (host DRAM) KV cache can hold.
    pub fn cpu_kv_capacity_tokens(&self) -> usize {
        (self.testbed.cpu_cache_bytes() / self.kv_bytes_per_token() as u64) as usize
    }

    /// Number of tokens the disk (NVMe) KV tier can hold.
    pub fn disk_kv_capacity_tokens(&self) -> usize {
        (self.testbed.disk.capacity_bytes / self.kv_bytes_per_token() as u64) as usize
    }

    // ------------------------------------------------------------------
    // Per-layer GPU times
    // ------------------------------------------------------------------

    /// Per-layer time of the full linear stage (pre-projection + post-projection + FFN)
    /// for a batch of `n_tokens` tokens on the GPU: `Tl = Tpr + Tpo`.
    pub fn linear_time_gpu(&self, n_tokens: usize) -> f64 {
        self.pre_projection_time_gpu(n_tokens) + self.post_projection_time_gpu(n_tokens)
    }

    /// Per-layer time of the pre-projection (QKV GEMM) for `n_tokens` tokens: `Tpr`.
    pub fn pre_projection_time_gpu(&self, n_tokens: usize) -> f64 {
        if n_tokens == 0 {
            return 0.0;
        }
        let frac = self.model.pre_projection_flops_per_token()
            / self.model.linear_flops_per_token_per_layer();
        let work = OpWork::new(
            n_tokens as f64 * self.model.pre_projection_flops_per_token() / self.tp as f64,
            frac * self.model.linear_weight_bytes_per_layer() as f64 / self.tp as f64
                + self.model.activation_bytes(n_tokens) as f64 * frac / self.tp as f64,
        );
        self.gpu.time(work)
    }

    /// Per-layer time of the post-projection + FFN for `n_tokens` tokens: `Tpo`,
    /// including the tensor-parallel all-reduce when `tp > 1`.
    pub fn post_projection_time_gpu(&self, n_tokens: usize) -> f64 {
        if n_tokens == 0 {
            return 0.0;
        }
        let frac = self.model.post_projection_flops_per_token()
            / self.model.linear_flops_per_token_per_layer();
        let work = OpWork::new(
            n_tokens as f64 * self.model.post_projection_flops_per_token() / self.tp as f64,
            frac * self.model.linear_weight_bytes_per_layer() as f64 / self.tp as f64
                + self.model.activation_bytes(n_tokens) as f64 * frac / self.tp as f64,
        );
        self.gpu.time(work) + self.allreduce_time(n_tokens)
    }

    /// Per-layer GPU attention time for a mixed sub-batch: prefill chunks described by
    /// `(new_tokens, total_context)` pairs plus decode tokens whose cached context lengths
    /// sum to `decode_ctx_total` over `decode_reqs` requests: `Tga`.
    pub fn gpu_attn_time(
        &self,
        prefill_chunks: &[(usize, usize)],
        decode_ctx_total: usize,
        decode_reqs: usize,
    ) -> f64 {
        if prefill_chunks.is_empty() && decode_reqs == 0 {
            return 0.0;
        }
        let mut work = OpWork::default();
        for &(new_tokens, ctx_total) in prefill_chunks {
            work = work.combine(&OpWork::new(
                self.model.prefill_attn_flops(new_tokens, ctx_total) / self.tp as f64,
                // Prefill attention streams the (new) KV once plus activations.
                (ctx_total * self.model.kv_bytes_per_token_per_layer()) as f64 / self.tp as f64,
            ));
        }
        if decode_reqs > 0 {
            work = work.combine(&OpWork::new(
                self.model.decode_attn_flops(decode_ctx_total) / self.tp as f64,
                self.model.decode_attn_bytes(decode_ctx_total) as f64 / self.tp as f64,
            ));
        }
        self.gpu.time(work)
    }

    /// Per-layer GPU decode-attention time when only decode requests are present.
    pub fn gpu_decode_attn_time(&self, ctx_total: usize, n_reqs: usize) -> f64 {
        self.gpu_attn_time(&[], ctx_total, n_reqs)
    }

    // ------------------------------------------------------------------
    // Per-layer CPU times
    // ------------------------------------------------------------------

    /// Per-layer CPU decode-attention time for `n_reqs` offloaded requests whose cached
    /// context lengths sum to `ctx_total`: `Tca`.
    ///
    /// CPU attention is executed over *all* KV heads on the host regardless of the GPU
    /// tensor-parallel degree (the host actors partition heads but share one NUMA node's
    /// bandwidth, §4 of the paper).
    pub fn cpu_decode_attn_time(&self, ctx_total: usize, n_reqs: usize) -> f64 {
        if n_reqs == 0 || ctx_total == 0 {
            return 0.0;
        }
        let work = OpWork::new(
            self.model.decode_attn_flops(ctx_total),
            self.model.decode_attn_bytes(ctx_total) as f64,
        );
        // Q/K/V transfer down (device→host) + O transfer up (host→device) for the
        // offloaded tokens of this layer. Each rank ships only its own `1/tp` head shard
        // over its own PCIe link, so the per-link bytes divide by `tp`; the two legs of
        // the round trip are issued back to back, so the link latency is paid once.
        let down =
            n_reqs as f64 * self.model.qkv_down_bytes_per_token_per_layer() as f64 / self.tp as f64;
        let up =
            n_reqs as f64 * self.model.o_up_bytes_per_token_per_layer() as f64 / self.tp as f64;
        let transfer = down / self.testbed.pcie.bw_d2h
            + up / self.testbed.pcie.bw_h2d
            + self.testbed.pcie.latency;
        self.cpu.time(work) + transfer
    }

    // ------------------------------------------------------------------
    // PCIe swap times
    // ------------------------------------------------------------------

    /// Time to swap the KV cache of `n_tokens` tokens out to the host for a single layer
    /// (used when swap-out is overlapped layer by layer with compute, §3.1).
    ///
    /// KV heads are sharded over the tensor-parallel group and every rank has its own
    /// PCIe link, so each rank moves only `1/tp` of the bytes in parallel with the
    /// others: the wall-clock is the per-rank (device→host) transfer time.
    pub fn swap_out_time_per_layer(&self, n_tokens: usize) -> f64 {
        if n_tokens == 0 {
            return 0.0;
        }
        let bytes_per_rank =
            (n_tokens * self.model.kv_bytes_per_token_per_layer()) as f64 / self.tp as f64;
        bytes_per_rank / self.testbed.pcie.bw_d2h + self.testbed.pcie.latency
    }

    /// Time to swap the full-model KV cache of `n_tokens` tokens out to the host.
    pub fn swap_out_time_total(&self, n_tokens: usize) -> f64 {
        self.swap_out_time_per_layer(n_tokens) * self.model.n_layers as f64
    }

    /// Time to swap the KV cache of `n_tokens` tokens from the host into the GPU, for a
    /// single layer.
    ///
    /// As with [`CostModel::swap_out_time_per_layer`], each rank pulls only its own
    /// `1/tp` KV shard over its own (host→device) link, in parallel with the others.
    pub fn swap_in_time_per_layer(&self, n_tokens: usize) -> f64 {
        if n_tokens == 0 {
            return 0.0;
        }
        let bytes_per_rank =
            (n_tokens * self.model.kv_bytes_per_token_per_layer()) as f64 / self.tp as f64;
        bytes_per_rank / self.testbed.pcie.bw_h2d + self.testbed.pcie.latency
    }

    /// Time to swap the full-model KV cache of `n_tokens` tokens into the GPU.
    pub fn swap_in_time_total(&self, n_tokens: usize) -> f64 {
        self.swap_in_time_per_layer(n_tokens) * self.model.n_layers as f64
    }

    /// Time to demote the full-model KV cache of `n_tokens` tokens from host DRAM to
    /// the disk tier (one sequential write).
    ///
    /// Unlike PCIe swaps there is no per-rank split: host-resident KV is the *full*
    /// (un-sharded) cache and the testbeds have a single NVMe shared by the whole
    /// tensor-parallel group, so all bytes cross one link. The transfer is a single
    /// whole-sequence write (demotion is not layer-pipelined), hence one latency term.
    pub fn disk_write_time_total(&self, n_tokens: usize) -> f64 {
        if n_tokens == 0 {
            return 0.0;
        }
        let bytes = (n_tokens * self.kv_bytes_per_token()) as f64;
        bytes / self.testbed.disk.bw_write + self.testbed.disk.latency
    }

    /// Time to promote the full-model KV cache of `n_tokens` tokens from the disk tier
    /// back into host DRAM (one sequential read; same single-link model as
    /// [`CostModel::disk_write_time_total`]).
    pub fn disk_read_time_total(&self, n_tokens: usize) -> f64 {
        if n_tokens == 0 {
            return 0.0;
        }
        let bytes = (n_tokens * self.kv_bytes_per_token()) as f64;
        bytes / self.testbed.disk.bw_read + self.testbed.disk.latency
    }

    // ------------------------------------------------------------------
    // Collectives and non-layer stages
    // ------------------------------------------------------------------

    /// Per-layer tensor-parallel all-reduce time for `n_tokens` tokens (two all-reduces of
    /// the hidden activations per layer). Zero when `tp == 1`.
    pub fn allreduce_time(&self, n_tokens: usize) -> f64 {
        if self.tp <= 1 || n_tokens == 0 {
            return 0.0;
        }
        let ic = self
            .testbed
            .interconnect
            // neo-lint: allow(panic-hygiene) -- CostModel::new rejects tp > 1 without an interconnect, so this is unreachable; a default bandwidth would silently corrupt the cost model
            .expect("CostModel::new rejects tp > 1 without an interconnect");
        let bytes = (n_tokens * self.model.hidden * self.model.dtype_bytes) as f64;
        let ring_factor = 2.0 * (self.tp as f64 - 1.0) / self.tp as f64;
        2.0 * (ring_factor * bytes / ic.bw + ic.latency) * (1.0 - self.allreduce_overlap)
    }

    /// Time of the pre-layer (embedding) and post-layer (final norm + LM head + sampling)
    /// stages for a batch with `n_tokens` total tokens and `n_seqs` sequences needing
    /// sampling. This is **not** per layer; it is incurred once per iteration.
    ///
    /// Under tensor parallelism the LM head is vocab-sharded: each rank computes
    /// `vocab / tp` logits and the full distribution is assembled with an all-gather
    /// over the interconnect before sampling ([`CostModel::lm_head_allgather_time`]).
    pub fn pre_post_layer_time(&self, n_tokens: usize, n_seqs: usize) -> f64 {
        if n_tokens == 0 {
            return 0.0;
        }
        // Only sequences producing a next token run the LM head in modern engines.
        let head_tokens = n_seqs.max(1);
        let work = OpWork::new(
            self.model.lm_head_flops(head_tokens) / self.tp as f64,
            (self.model.vocab * self.model.hidden * self.model.dtype_bytes) as f64 / self.tp as f64,
        );
        let embed =
            (n_tokens * self.model.hidden * self.model.dtype_bytes) as f64 / self.gpu.bandwidth;
        self.gpu.time(work)
            + embed
            + self.lm_head_allgather_time(head_tokens)
            + self.python_overhead(n_seqs)
    }

    /// Time of the all-gather assembling the vocab-sharded LM-head logits of `head_tokens`
    /// sampled tokens across the tensor-parallel group. Zero when `tp == 1`.
    ///
    /// A ring all-gather delivers `(tp - 1) / tp` of the full logit tensor over each
    /// rank's interconnect link.
    pub fn lm_head_allgather_time(&self, head_tokens: usize) -> f64 {
        if self.tp <= 1 || head_tokens == 0 {
            return 0.0;
        }
        let ic = self
            .testbed
            .interconnect
            // neo-lint: allow(panic-hygiene) -- CostModel::new rejects tp > 1 without an interconnect, so this is unreachable; a default bandwidth would silently corrupt the cost model
            .expect("CostModel::new rejects tp > 1 without an interconnect");
        let bytes = (head_tokens * self.model.vocab * self.model.dtype_bytes) as f64;
        let ring_factor = (self.tp as f64 - 1.0) / self.tp as f64;
        ring_factor * bytes / ic.bw + ic.latency
    }

    /// Per-iteration scheduling / Python / launch overhead outside the transformer layers.
    fn python_overhead(&self, n_seqs: usize) -> f64 {
        40e-6 + n_seqs as f64 * 0.3e-6
    }

    /// Convenience: per-layer linear-stage time split as `(Tpr, Tpo)`.
    pub fn linear_split_gpu(&self, n_tokens: usize) -> (f64, f64) {
        (self.pre_projection_time_gpu(n_tokens), self.post_projection_time_gpu(n_tokens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::PcieSpec;

    fn a10g_8b() -> CostModel {
        CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1)
    }

    fn t4_7b() -> CostModel {
        CostModel::new(ModelDesc::llama2_7b(), Testbed::g4dn_4xlarge(), 1)
    }

    fn h100_70b() -> CostModel {
        CostModel::new(ModelDesc::llama3_70b(), Testbed::hgx_h100(2), 2)
    }

    #[test]
    fn t4_kv_capacity_is_tiny() {
        // 16 GB T4 minus ~13 GB of LLaMa-2-7B weights leaves very little KV room;
        // this is the regime of the paper's 7.5x gains.
        let cap = t4_7b().gpu_kv_capacity_tokens();
        assert!(cap < 6000, "T4 KV capacity should be small, got {cap}");
    }

    #[test]
    fn a10g_kv_capacity_moderate() {
        let cap = a10g_8b().gpu_kv_capacity_tokens();
        assert!(cap > 20_000 && cap < 80_000, "A10G KV capacity {cap}");
    }

    #[test]
    fn h100_pair_holds_70b() {
        let cm = h100_70b();
        assert!(cm.weight_bytes_per_gpu() < cm.testbed().gpu.mem_bytes);
        let cap = cm.gpu_kv_capacity_tokens();
        assert!(cap > 10_000, "2xH100 should still hold some KV, got {cap}");
    }

    #[test]
    fn cpu_cache_larger_than_gpu_cache() {
        for cm in [a10g_8b(), t4_7b()] {
            assert!(cm.cpu_kv_capacity_tokens() > cm.gpu_kv_capacity_tokens());
        }
    }

    #[test]
    fn disk_tier_is_the_largest_and_slowest() {
        for cm in [a10g_8b(), t4_7b(), h100_70b()] {
            assert!(cm.disk_kv_capacity_tokens() > cm.cpu_kv_capacity_tokens());
            // Moving the same tokens to disk costs more than PCIe swap-out: the drive
            // is slower than the link and not layer-pipelined per rank.
            let n = 1000;
            assert!(cm.disk_write_time_total(n) > cm.swap_out_time_total(n));
            // Reads are faster than writes on every modelled drive.
            assert!(cm.disk_read_time_total(n) < cm.disk_write_time_total(n));
        }
    }

    #[test]
    fn disk_times_scale_with_bytes_not_tp() {
        // Disk traffic is full KV bytes over one shared drive: tp does not shrink it.
        let tp1 = CostModel::new(ModelDesc::llama3_70b(), Testbed::hgx_h100(2), 1);
        let tp2 = h100_70b();
        assert!((tp1.disk_write_time_total(500) - tp2.disk_write_time_total(500)).abs() < 1e-12);
        assert!(tp2.swap_out_time_total(500) < tp1.swap_out_time_total(500));
        assert_eq!(tp1.disk_write_time_total(0), 0.0);
        assert_eq!(tp1.disk_read_time_total(0), 0.0);
    }

    #[test]
    fn linear_time_saturates_with_batch() {
        // Tokens/s improves as the batch grows (weight loading amortised), then flattens.
        let cm = a10g_8b();
        let tps = |n: usize| n as f64 / cm.linear_time_gpu(n);
        assert!(tps(64) > tps(8) * 2.0);
        let large = tps(4096);
        let larger = tps(8192);
        assert!(larger / large < 1.3, "should be near compute roof");
    }

    #[test]
    fn cpu_attention_slower_than_gpu_but_not_absurdly() {
        let cm = a10g_8b();
        let ctx_total = 100 * 500; // 100 requests with 500 ctx tokens each
        let g = cm.gpu_decode_attn_time(ctx_total, 100);
        let c = cm.cpu_decode_attn_time(ctx_total, 100);
        let ratio = c / g;
        // §2.2: bandwidth gap (not compute gap) governs the ratio; expect ~5-20x.
        assert!(ratio > 2.0 && ratio < 40.0, "CPU/GPU attention ratio {ratio}");
    }

    #[test]
    fn decode_attention_time_linear_in_context() {
        let cm = a10g_8b();
        let t1 = cm.cpu_decode_attn_time(10_000, 50);
        let t2 = cm.cpu_decode_attn_time(20_000, 50);
        let ratio = t2 / t1;
        assert!(ratio > 1.7 && ratio < 2.3, "ratio {ratio}");
    }

    #[test]
    fn zero_work_is_zero_time() {
        let cm = a10g_8b();
        assert_eq!(cm.linear_time_gpu(0), 0.0);
        assert_eq!(cm.cpu_decode_attn_time(0, 0), 0.0);
        assert_eq!(cm.gpu_attn_time(&[], 0, 0), 0.0);
        assert_eq!(cm.swap_out_time_per_layer(0), 0.0);
        assert_eq!(cm.pre_post_layer_time(0, 0), 0.0);
    }

    #[test]
    fn allreduce_only_with_tp() {
        let single = a10g_8b();
        assert_eq!(single.allreduce_time(128), 0.0);
        let multi = h100_70b();
        assert!(multi.allreduce_time(128) > 0.0);
    }

    #[test]
    fn swap_total_is_layers_times_per_layer() {
        let cm = a10g_8b();
        let per = cm.swap_out_time_per_layer(100);
        let total = cm.swap_out_time_total(100);
        let l = cm.model().n_layers as f64;
        assert!((total - per * l).abs() < 1e-9);
    }

    #[test]
    fn tp_reduces_per_gpu_weights() {
        let cm = h100_70b();
        let single = CostModel::new(ModelDesc::llama3_70b(), Testbed::hgx_h100(1), 1);
        assert!(cm.weight_bytes_per_gpu() < single.weight_bytes_per_gpu());
    }

    #[test]
    #[should_panic(expected = "exceeds GPU count")]
    fn tp_larger_than_gpus_panics() {
        let _ = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 2);
    }

    #[test]
    #[should_panic(expected = "requires a GPU-GPU interconnect")]
    fn tp_without_interconnect_is_rejected() {
        // A 2-GPU box with no NVLink/PCIe-P2P model must not price collectives as free.
        let mut testbed = Testbed::hgx_h100(2);
        testbed.interconnect = None;
        let _ = CostModel::new(ModelDesc::llama3_70b(), testbed, 2);
    }

    #[test]
    fn tp_halves_per_rank_swap_times() {
        let tp2 = h100_70b();
        let tp1 = CostModel::new(ModelDesc::llama3_70b(), Testbed::hgx_h100(1), 1);
        let lat = tp2.testbed().pcie.latency;
        for n in [100usize, 1000, 10_000] {
            let bw1 = tp1.swap_out_time_per_layer(n) - lat;
            let bw2 = tp2.swap_out_time_per_layer(n) - lat;
            assert!((bw2 - bw1 / 2.0).abs() < 1e-15, "swap-out bytes must halve at tp=2");
            let in1 = tp1.swap_in_time_per_layer(n) - lat;
            let in2 = tp2.swap_in_time_per_layer(n) - lat;
            assert!((in2 - in1 / 2.0).abs() < 1e-15, "swap-in bytes must halve at tp=2");
        }
    }

    #[test]
    fn per_rank_swap_time_monotone_in_tp() {
        let mut last = f64::INFINITY;
        for tp in [1usize, 2, 4, 8] {
            let cm = CostModel::new(ModelDesc::llama3_70b(), Testbed::hgx_h100(tp.max(2)), tp);
            let t = cm.swap_out_time_per_layer(5000);
            assert!(t <= last, "per-rank swap time must not increase with tp");
            last = t;
        }
    }

    #[test]
    fn rank_budgets_back_the_group_capacity() {
        for cm in [a10g_8b(), h100_70b()] {
            let budgets = cm.rank_budgets();
            assert_eq!(budgets.len(), cm.tp());
            let min = budgets.iter().map(|b| b.kv_capacity_tokens).min().unwrap();
            assert_eq!(cm.gpu_kv_capacity_tokens(), min, "group capacity is the tightest rank");
            for (i, b) in budgets.iter().enumerate() {
                assert_eq!(b.rank, i);
                assert_eq!(b.kv_bytes_per_token, cm.kv_bytes_per_token_per_gpu());
                assert_eq!(b.weight_bytes, cm.weight_bytes_per_gpu());
                assert!(b.kv_budget_bytes() <= b.usable_bytes);
                assert_eq!(b.kv_bytes_for_tokens(10), 10 * b.kv_bytes_per_token as u64);
            }
        }
    }

    #[test]
    fn lm_head_allgather_only_with_tp() {
        assert_eq!(a10g_8b().lm_head_allgather_time(64), 0.0);
        let multi = h100_70b();
        assert_eq!(multi.lm_head_allgather_time(0), 0.0);
        assert!(multi.lm_head_allgather_time(64) > 0.0);
        // And it is charged inside the non-layer stage.
        let tokens_only = multi.lm_head_allgather_time(64);
        let with = multi.pre_post_layer_time(64, 64);
        assert!(with > tokens_only);
    }

    #[test]
    fn qkvo_round_trip_charges_each_leg_at_its_own_direction() {
        // An asymmetric link (fast h2d, slow d2h) must price the Q/K/V down-leg at the
        // d2h bandwidth — the pre-fix code charged the whole round trip at h2d.
        let mut testbed = Testbed::g5_xlarge(4);
        testbed.pcie = PcieSpec { bw_h2d: 24e9, bw_d2h: 6e9, latency: 10e-6 };
        let asym = CostModel::new(ModelDesc::llama3_8b(), testbed, 1);
        let sym = a10g_8b();
        let m = ModelDesc::llama3_8b();
        let n_reqs = 100usize;
        let delta =
            asym.cpu_decode_attn_time(50_000, n_reqs) - sym.cpu_decode_attn_time(50_000, n_reqs);
        // The compute part is identical; the difference is exactly the down-leg priced at
        // 6 GB/s instead of 24 GB/s.
        let down = n_reqs as f64 * m.qkv_down_bytes_per_token_per_layer() as f64;
        let expected = down / 6e9 - down / 24e9;
        assert!((delta - expected).abs() < 1e-12, "delta {delta} vs expected {expected}");
    }

    #[test]
    fn prefill_attention_dominates_long_prompts() {
        let cm = a10g_8b();
        let short = cm.gpu_attn_time(&[(128, 128)], 0, 0);
        let long = cm.gpu_attn_time(&[(2048, 2048)], 0, 0);
        assert!(long > short * 10.0);
    }

    #[test]
    fn with_max_batch_tokens_changes_capacity() {
        let small = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1)
            .with_max_batch_tokens(1024);
        let big = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1)
            .with_max_batch_tokens(16384);
        assert!(small.gpu_kv_capacity_tokens() > big.gpu_kv_capacity_tokens());
    }
}
