//! Hardware models, cost models and simulation primitives for the NEO reproduction.
//!
//! The original NEO system ([Jiang et al., MLSys 2025]) runs on real GPUs (T4, A10G, H100)
//! and offloads decoding attention to the local host CPU. This crate provides the
//! *performance substrate* of our reproduction:
//!
//! * [`hardware`] — datasheet-level specifications of every testbed in Table 1 of the
//!   paper (GPU memory size / bandwidth / FLOPS, CPU memory bandwidth / FLOPS, PCIe and
//!   NVLink links).
//! * [`model_desc`] — architectural descriptors of the evaluated models (LLaMa-2-7B,
//!   LLaMa-3.1-8B, LLaMa-3.1-70B) from which per-token FLOP and byte counts are derived.
//! * [`roofline`] — the roofline execution-time estimator (`max(compute, memory)` + launch
//!   overhead) used to model each operator on each device.
//! * [`costmodel`] — per-operator cost primitives (linear stage, GPU/CPU decode attention,
//!   prefill attention, PCIe swaps, tensor-parallel collectives) combined by the scheduler
//!   into the paper's iteration-time formula. Tensor parallelism is first-class: PCIe
//!   terms are priced per rank (`1/tp` of the bytes over each rank's own link) and
//!   [`costmodel::RankBudget`] exposes per-rank KV capacity so group-level decisions
//!   respect the tightest rank.
//! * [`profiler`] — the offline-profiling + piecewise-linear-interpolation layer the paper's
//!   load-aware scheduler uses instead of an exact analytical model (§3.2).
//! * [`transfer`] — double-buffered transfer/compute overlap terms used by the
//!   pipelined-offloading baselines (PIPO-style KV streaming) to reason about how much
//!   PCIe traffic hides behind per-layer compute.
//! * [`clock`] — a simulation clock and event trace used by the serving harness.
//! * [`event`] — the discrete-event core: a [`event::Component`] trait driven by an
//!   [`event::EventEngine`] over a min-heap of wake-ups keyed `(next_tick, ComponentId)`,
//!   with deterministic or seeded-fuzzed same-tick ordering, plus a [`event::TaskGraph`]
//!   runner that executes job DAGs (layer compute, per-direction PCIe chunks) on serial
//!   resources so overlap falls out of event ordering instead of closed forms.
//!
//! # Example: per-operator costs
//!
//! ```
//! use neo_sim::hardware::Testbed;
//! use neo_sim::model_desc::ModelDesc;
//! use neo_sim::costmodel::CostModel;
//!
//! // A10G instance (g5.4xlarge) serving LLaMa-3.1-8B, as in Figure 6b of the paper.
//! let testbed = Testbed::g5_xlarge(4);
//! let model = ModelDesc::llama3_8b();
//! let cost = CostModel::new(model, testbed, 1);
//! // Per-layer linear-stage time for a 256-token batch is strictly positive and finite.
//! let t = cost.linear_time_gpu(256);
//! assert!(t > 0.0 && t.is_finite());
//! ```
//!
//! # Example: transfer/compute overlap
//!
//! A double-buffered pipeline hides PCIe traffic behind compute until the per-stage
//! transfer exceeds the per-stage compute, at which point the pipeline is transfer-bound:
//!
//! ```
//! use neo_sim::transfer::{double_buffered_time, transfer_bound};
//!
//! let layers = 32;
//! let compute = 1e-3; // seconds per layer
//! // A hidden transfer costs only the pipeline fill...
//! assert!(double_buffered_time(layers, compute, 0.5e-3) < layers as f64 * compute * 1.1);
//! // ...while a transfer-bound pipeline runs at the DMA engine's pace.
//! assert!(transfer_bound(compute, 2e-3));
//! assert!(double_buffered_time(layers, compute, 2e-3) > layers as f64 * 2e-3);
//! ```
//!
//! [Jiang et al., MLSys 2025]: https://arxiv.org/abs/2411.01142

#![forbid(unsafe_code)]

pub mod clock;
pub mod costmodel;
pub mod event;
pub mod hardware;
pub mod model_desc;
pub mod profiler;
pub mod roofline;
pub mod transfer;

pub use clock::SimClock;
pub use costmodel::{CostModel, RankBudget};
pub use event::{
    Component, ComponentId, EventEngine, EventRecord, SerialLine, TaskGraph, TaskGraphRun, TieBreak,
};
pub use hardware::{CpuSpec, GpuSpec, InterconnectSpec, PcieSpec, Testbed};
pub use model_desc::ModelDesc;
pub use profiler::{Interpolator1d, ProfiledCostModel};
