//! Simulation clock and event trace.
//!
//! The serving harness in `neo-serve` advances time iteration by iteration: the scheduler
//! forms a batch, the cost model produces the iteration's duration, and the clock moves
//! forward. This module provides the clock plus an optional bounded event trace used by
//! tests and the figure harnesses to inspect what the engine did.

use serde::{Deserialize, Serialize};

/// Monotonically advancing simulated time, in seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock by `dt` seconds and returns the new time.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or not finite — a negative iteration time always
    /// indicates a cost-model bug and must not be silently absorbed.
    pub fn advance(&mut self, dt: f64) -> f64 {
        assert!(dt.is_finite() && dt >= 0.0, "clock must advance by a non-negative amount");
        self.now += dt;
        self.now
    }

    /// Moves the clock directly to `t`, which must not be in the past.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn advance_to(&mut self, t: f64) -> f64 {
        assert!(t + 1e-12 >= self.now, "cannot move the clock backwards");
        self.now = self.now.max(t);
        self.now
    }
}

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimEvent {
    /// Simulated time at which the event occurred.
    pub time: f64,
    /// Event category (e.g. `"iteration"`, `"swap_out"`, `"admit"`).
    pub kind: String,
    /// Free-form detail string.
    pub detail: String,
}

/// A bounded in-memory trace of simulation events.
///
/// The trace keeps at most `capacity` most-recent events so long simulations do not
/// accumulate unbounded memory.
#[derive(Debug, Clone)]
pub struct EventTrace {
    events: std::collections::VecDeque<SimEvent>,
    capacity: usize,
    dropped: usize,
}

impl EventTrace {
    /// Creates a trace retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self { events: std::collections::VecDeque::new(), capacity: capacity.max(1), dropped: 0 }
    }

    /// Records an event at time `time`.
    pub fn record(&mut self, time: f64, kind: impl Into<String>, detail: impl Into<String>) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(SimEvent { time, kind: kind.into(), detail: detail.into() });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SimEvent> {
        self.events.iter()
    }

    /// Number of events evicted because the trace was full.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Default for EventTrace {
    fn default() -> Self {
        Self::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.5);
        c.advance(0.0);
        c.advance(2.5);
        assert!((c.now() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn advance_to_is_clamped_to_future() {
        let mut c = SimClock::new();
        c.advance(10.0);
        c.advance_to(10.0);
        c.advance_to(12.0);
        assert_eq!(c.now(), 12.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_advance_panics() {
        SimClock::new().advance(-1.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_to_past_panics() {
        let mut c = SimClock::new();
        c.advance(5.0);
        c.advance_to(1.0);
    }

    #[test]
    fn trace_bounds_memory() {
        let mut t = EventTrace::new(3);
        for i in 0..10 {
            t.record(i as f64, "iteration", format!("{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let times: Vec<f64> = t.events().map(|e| e.time).collect();
        assert_eq!(times, vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn empty_trace_reports_empty() {
        let t = EventTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
