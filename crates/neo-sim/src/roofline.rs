//! Roofline execution-time estimation.
//!
//! Every operator in the cost model is estimated as the maximum of its compute time and
//! its memory time plus a fixed launch/dispatch overhead — the classic roofline model.
//! Decoding attention has arithmetic intensity of only a few FLOPs per byte, so on both
//! the GPU and the CPU it sits firmly on the memory-bound side of the roofline (§2.2 of
//! the paper); the linear stages are compute-bound at large batch sizes and weight-load
//! (memory) bound at small batch sizes, which is exactly why batching raises throughput.

/// Work performed by one operator invocation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpWork {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
}

impl OpWork {
    /// Creates a work descriptor from FLOPs and bytes.
    pub fn new(flops: f64, bytes: f64) -> Self {
        Self { flops, bytes }
    }

    /// Arithmetic intensity in FLOPs per byte. Returns `f64::INFINITY` when no bytes move.
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }

    /// Component-wise sum of two work descriptors.
    pub fn combine(&self, other: &OpWork) -> OpWork {
        OpWork { flops: self.flops + other.flops, bytes: self.bytes + other.bytes }
    }
}

/// A device roofline: effective compute and bandwidth ceilings plus a launch overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Effective FLOP/s ceiling.
    pub flops: f64,
    /// Effective bytes/s ceiling.
    pub bandwidth: f64,
    /// Fixed overhead added to every estimate (kernel launch, dispatch), in seconds.
    pub overhead: f64,
}

impl Roofline {
    /// Creates a roofline from effective ceilings.
    ///
    /// # Panics
    ///
    /// Panics if either ceiling is not strictly positive.
    pub fn new(flops: f64, bandwidth: f64, overhead: f64) -> Self {
        assert!(flops > 0.0, "flops ceiling must be positive");
        assert!(bandwidth > 0.0, "bandwidth ceiling must be positive");
        assert!(overhead >= 0.0, "overhead must be non-negative");
        Self { flops, bandwidth, overhead }
    }

    /// Execution time of `work` on this device, in seconds.
    pub fn time(&self, work: OpWork) -> f64 {
        let compute = work.flops / self.flops;
        let memory = work.bytes / self.bandwidth;
        compute.max(memory) + self.overhead
    }

    /// Execution time without the fixed overhead (useful when several logical operators
    /// are fused into one kernel launch).
    pub fn time_no_overhead(&self, work: OpWork) -> f64 {
        (work.flops / self.flops).max(work.bytes / self.bandwidth)
    }

    /// The arithmetic intensity (FLOPs/byte) at which this device transitions from
    /// memory-bound to compute-bound.
    pub fn ridge_point(&self) -> f64 {
        self.flops / self.bandwidth
    }

    /// Whether `work` is memory-bandwidth bound on this device.
    pub fn is_memory_bound(&self, work: OpWork) -> bool {
        work.intensity() < self.ridge_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Roofline {
        // A10G-like effective numbers.
        Roofline::new(60e12, 480e9, 8e-6)
    }

    fn cpu() -> Roofline {
        Roofline::new(0.3e12, 35e9, 30e-6)
    }

    #[test]
    fn decode_attention_is_memory_bound_everywhere() {
        // 1 decode token over 1000 ctx tokens of LLaMa-8B-like KV: ~0.5 MB read, ~2 MFLOP.
        let work = OpWork::new(2.0e6, 0.5e6);
        assert!(gpu().is_memory_bound(work));
        assert!(cpu().is_memory_bound(work));
    }

    #[test]
    fn large_gemm_is_compute_bound_on_gpu() {
        // 4096x4096x4096 GEMM: 137 GFLOP over ~100 MB.
        let work = OpWork::new(137e9, 100e6);
        assert!(!gpu().is_memory_bound(work));
    }

    #[test]
    fn time_is_monotone_in_work() {
        let r = gpu();
        let t1 = r.time(OpWork::new(1e9, 1e6));
        let t2 = r.time(OpWork::new(2e9, 2e6));
        assert!(t2 > t1);
    }

    #[test]
    fn overhead_is_additive() {
        let r = gpu();
        let w = OpWork::new(1e9, 1e6);
        assert!((r.time(w) - r.time_no_overhead(w) - r.overhead).abs() < 1e-12);
    }

    #[test]
    fn ridge_point_separates_regimes() {
        let r = gpu();
        let ridge = r.ridge_point();
        assert!(r.is_memory_bound(OpWork::new(ridge * 0.5, 1.0)));
        assert!(!r.is_memory_bound(OpWork::new(ridge * 2.0, 1.0)));
    }

    #[test]
    fn combine_adds_components() {
        let a = OpWork::new(1.0, 2.0);
        let b = OpWork::new(3.0, 4.0);
        let c = a.combine(&b);
        assert_eq!(c.flops, 4.0);
        assert_eq!(c.bytes, 6.0);
    }

    #[test]
    fn zero_bytes_has_infinite_intensity() {
        assert!(OpWork::new(1.0, 0.0).intensity().is_infinite());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_flops_ceiling_panics() {
        let _ = Roofline::new(0.0, 1.0, 0.0);
    }
}
