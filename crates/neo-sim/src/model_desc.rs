//! Architectural descriptors of the evaluated LLM models.
//!
//! Scheduling and cost estimation in NEO only depend on the *shape* of the model —
//! number of layers, attention heads (query and KV), head dimension, hidden and FFN sizes
//! and element width — because those determine how many bytes of KV cache a token
//! occupies and how many FLOPs each stage of a transformer layer performs. This module
//! captures exactly that information for the three models evaluated in the paper
//! (LLaMa-2-7B, LLaMa-3.1-8B and LLaMa-3.1-70B) plus tiny configurations used by the
//! functional tests.

use serde::{Deserialize, Serialize};

/// Architectural description of a decoder-only (LLaMa-style) transformer.
///
/// All derived quantities (weight bytes, KV bytes per token, FLOPs per token) are computed
/// from these fields; the struct itself carries no weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelDesc {
    /// Human-readable model name, e.g. `"llama-3.1-8b"`.
    pub name: String,
    /// Number of transformer layers.
    pub n_layers: usize,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Number of query attention heads.
    pub n_heads: usize,
    /// Number of key/value heads (less than `n_heads` under grouped-query attention).
    pub n_kv_heads: usize,
    /// Dimension of each attention head. `hidden == n_heads * head_dim` for LLaMa models.
    pub head_dim: usize,
    /// FFN intermediate dimension (SwiGLU uses three `hidden × intermediate` matrices).
    pub intermediate: usize,
    /// Vocabulary size (drives the embedding and LM-head cost).
    pub vocab: usize,
    /// Bytes per weight / activation element (2 for fp16/bf16 as served in the paper).
    pub dtype_bytes: usize,
}

impl ModelDesc {
    /// LLaMa-2-7B, served on the T4 testbed in the paper (Figure 6c, Figure 9c).
    pub fn llama2_7b() -> Self {
        Self {
            name: "llama-2-7b".to_string(),
            n_layers: 32,
            hidden: 4096,
            n_heads: 32,
            n_kv_heads: 32,
            head_dim: 128,
            intermediate: 11008,
            vocab: 32000,
            dtype_bytes: 2,
        }
    }

    /// LLaMa-3.1-8B, served on the A10G testbed in the paper (Figures 6b, 7, 9b, 10).
    pub fn llama3_8b() -> Self {
        Self {
            name: "llama-3.1-8b".to_string(),
            n_layers: 32,
            hidden: 4096,
            n_heads: 32,
            n_kv_heads: 8,
            head_dim: 128,
            intermediate: 14336,
            vocab: 128256,
            dtype_bytes: 2,
        }
    }

    /// LLaMa-3.1-70B, served on the 2×H100 testbed in the paper (Figures 6a, 8, 9a).
    pub fn llama3_70b() -> Self {
        Self {
            name: "llama-3.1-70b".to_string(),
            n_layers: 80,
            hidden: 8192,
            n_heads: 64,
            n_kv_heads: 8,
            head_dim: 128,
            intermediate: 28672,
            vocab: 128256,
            dtype_bytes: 2,
        }
    }

    /// A tiny model used by functional tests and examples (runs real math quickly).
    pub fn tiny() -> Self {
        Self {
            name: "tiny".to_string(),
            n_layers: 2,
            hidden: 64,
            n_heads: 4,
            n_kv_heads: 2,
            head_dim: 16,
            intermediate: 128,
            vocab: 256,
            dtype_bytes: 4,
        }
    }

    /// A small-but-not-trivial model for integration tests (GQA, several layers).
    pub fn small() -> Self {
        Self {
            name: "small".to_string(),
            n_layers: 4,
            hidden: 256,
            n_heads: 8,
            n_kv_heads: 4,
            head_dim: 32,
            intermediate: 512,
            vocab: 1024,
            dtype_bytes: 4,
        }
    }

    /// Dimension of the concatenated KV vectors appended to the cache per token
    /// (`2 × n_kv_heads × head_dim` elements).
    pub fn kv_elems_per_token_per_layer(&self) -> usize {
        2 * self.n_kv_heads * self.head_dim
    }

    /// Bytes of KV cache one token occupies in one layer.
    pub fn kv_bytes_per_token_per_layer(&self) -> usize {
        self.kv_elems_per_token_per_layer() * self.dtype_bytes
    }

    /// Bytes of KV cache one token occupies across all layers.
    ///
    /// This is the unit the paper's memory accounting works in: e.g. LLaMa-3.1-8B stores
    /// 128 KiB per token in fp16.
    pub fn kv_bytes_per_token(&self) -> usize {
        self.kv_bytes_per_token_per_layer() * self.n_layers
    }

    /// Total parameter bytes (weights only, no KV cache or activations).
    pub fn weight_bytes(&self) -> u64 {
        let per_layer = self.linear_weight_elems_per_layer() as u64;
        let embed = (self.vocab * self.hidden) as u64;
        // Embedding + LM head (not tied in LLaMa-3) + final norm (negligible).
        (per_layer * self.n_layers as u64 + 2 * embed) * self.dtype_bytes as u64
    }

    /// Number of weight elements touched by the linear stages of a single layer
    /// (QKV projection, output projection, SwiGLU FFN).
    pub fn linear_weight_elems_per_layer(&self) -> usize {
        let qkv = self.hidden * (self.n_heads + 2 * self.n_kv_heads) * self.head_dim;
        let out = self.n_heads * self.head_dim * self.hidden;
        let ffn = 3 * self.hidden * self.intermediate;
        qkv + out + ffn
    }

    /// Bytes of weights loaded by the linear stages of a single layer.
    pub fn linear_weight_bytes_per_layer(&self) -> u64 {
        (self.linear_weight_elems_per_layer() * self.dtype_bytes) as u64
    }

    /// FLOPs performed by the linear stages of one layer for one token
    /// (2 FLOPs per multiply-accumulate).
    pub fn linear_flops_per_token_per_layer(&self) -> f64 {
        2.0 * self.linear_weight_elems_per_layer() as f64
    }

    /// FLOPs of the pre-projection (QKV) part of one layer for one token.
    pub fn pre_projection_flops_per_token(&self) -> f64 {
        2.0 * (self.hidden * (self.n_heads + 2 * self.n_kv_heads) * self.head_dim) as f64
    }

    /// FLOPs of the post-projection + FFN part of one layer for one token.
    pub fn post_projection_flops_per_token(&self) -> f64 {
        self.linear_flops_per_token_per_layer() - self.pre_projection_flops_per_token()
    }

    /// FLOPs of decoding attention for one token attending over `ctx` cached tokens,
    /// in one layer (QKᵀ and attention-weighted V, over all query heads).
    pub fn decode_attn_flops(&self, ctx: usize) -> f64 {
        4.0 * (ctx * self.n_heads * self.head_dim) as f64
    }

    /// Bytes of KV cache read by decoding attention for one token attending over `ctx`
    /// cached tokens, in one layer. This is the quantity that makes decode attention
    /// memory-bandwidth bound (§2.2 of the paper).
    pub fn decode_attn_bytes(&self, ctx: usize) -> u64 {
        (ctx * self.kv_bytes_per_token_per_layer()) as u64
    }

    /// FLOPs of causal prefill (self-)attention over a chunk of `new_tokens` tokens whose
    /// total context (cached + new) is `ctx_total`, in one layer.
    pub fn prefill_attn_flops(&self, new_tokens: usize, ctx_total: usize) -> f64 {
        // Each new token attends to on average (ctx_total - new_tokens/2) positions.
        let avg_ctx = ctx_total as f64 - new_tokens as f64 / 2.0;
        4.0 * new_tokens as f64 * avg_ctx.max(1.0) * (self.n_heads * self.head_dim) as f64
    }

    /// FLOPs of the pre-layer stage (token embedding lookup ≈ free) and post-layer stage
    /// (final norm + LM head) for `n` tokens.
    pub fn lm_head_flops(&self, n: usize) -> f64 {
        2.0 * (n * self.hidden * self.vocab) as f64
    }

    /// Bytes occupied by runtime activations for a batch of `n` tokens (a conservative
    /// estimate covering residual streams, QKV and FFN intermediates for one layer at a
    /// time, double-buffered).
    pub fn activation_bytes(&self, n: usize) -> u64 {
        let per_token = 2
            * (2 * self.hidden
                + 2 * self.intermediate
                + (self.n_heads + 2 * self.n_kv_heads) * self.head_dim);
        (n * per_token * self.dtype_bytes) as u64
    }

    /// Bytes of the *down-leg* (device→host) of one CPU-offloaded decode token per layer:
    /// the Q vector for all query heads plus the freshly produced K/V entries that join
    /// the host-resident cache.
    pub fn qkv_down_bytes_per_token_per_layer(&self) -> u64 {
        let q = self.n_heads * self.head_dim;
        let kv = 2 * self.n_kv_heads * self.head_dim;
        ((q + kv) * self.dtype_bytes) as u64
    }

    /// Bytes of the *up-leg* (host→device) of one CPU-offloaded decode token per layer:
    /// the attention output `O` (one vector per query head) returning to the GPU for the
    /// output projection.
    pub fn o_up_bytes_per_token_per_layer(&self) -> u64 {
        (self.n_heads * self.head_dim * self.dtype_bytes) as u64
    }

    /// Bytes of Q/K/V vectors that must cross PCIe per CPU-offloaded decode token per layer
    /// (Q for all query heads plus the new K/V entries), and of the attention output `O`
    /// coming back: the sum of both directional legs.
    pub fn qkvo_transfer_bytes_per_token_per_layer(&self) -> u64 {
        self.qkv_down_bytes_per_token_per_layer() + self.o_up_bytes_per_token_per_layer()
    }
}

impl std::fmt::Display for ModelDesc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} layers, hidden {}, {}q/{}kv heads)",
            self.name, self.n_layers, self.hidden, self.n_heads, self.n_kv_heads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_bytes_are_in_expected_range() {
        // ~7B params * 2 bytes ≈ 13-14 GB.
        let w7 = ModelDesc::llama2_7b().weight_bytes() as f64 / 1e9;
        assert!(w7 > 12.0 && w7 < 15.0, "7B weights {w7} GB");
        // 8B ≈ 15-17 GB.
        let w8 = ModelDesc::llama3_8b().weight_bytes() as f64 / 1e9;
        assert!(w8 > 14.0 && w8 < 18.0, "8B weights {w8} GB");
        // 70B ≈ 135-145 GB.
        let w70 = ModelDesc::llama3_70b().weight_bytes() as f64 / 1e9;
        assert!(w70 > 130.0 && w70 < 150.0, "70B weights {w70} GB");
    }

    #[test]
    fn kv_bytes_per_token_matches_known_values() {
        // LLaMa-2-7B (MHA): 2 * 32 heads * 128 dim * 2 bytes * 32 layers = 512 KiB / token.
        assert_eq!(ModelDesc::llama2_7b().kv_bytes_per_token(), 512 * 1024);
        // LLaMa-3.1-8B (GQA 8 kv heads): 2 * 8 * 128 * 2 * 32 = 128 KiB / token.
        assert_eq!(ModelDesc::llama3_8b().kv_bytes_per_token(), 128 * 1024);
    }

    #[test]
    fn gqa_reduces_kv_but_not_linear_flops() {
        let mha = ModelDesc::llama2_7b();
        let gqa = ModelDesc::llama3_8b();
        assert!(gqa.kv_bytes_per_token_per_layer() < mha.kv_bytes_per_token_per_layer());
        // Query-head count equal, so decode attention FLOPs per ctx token are equal.
        assert_eq!(mha.decode_attn_flops(100), gqa.decode_attn_flops(100));
        // But bytes read differ by the GQA ratio (4x).
        assert_eq!(mha.decode_attn_bytes(100), 4 * gqa.decode_attn_bytes(100));
    }

    #[test]
    fn prefill_flops_grow_quadratically() {
        let m = ModelDesc::llama3_8b();
        let f1 = m.prefill_attn_flops(100, 100);
        let f2 = m.prefill_attn_flops(200, 200);
        // Roughly 4x for 2x the length.
        let ratio = f2 / f1;
        assert!(ratio > 3.5 && ratio < 4.5, "ratio {ratio}");
    }

    #[test]
    fn decode_attn_scales_linearly_with_context() {
        let m = ModelDesc::llama3_70b();
        assert_eq!(m.decode_attn_bytes(2000), 2 * m.decode_attn_bytes(1000));
        assert!((m.decode_attn_flops(2000) - 2.0 * m.decode_attn_flops(1000)).abs() < 1e-6);
    }

    #[test]
    fn qkvo_legs_sum_to_the_round_trip() {
        // The directional split must conserve the historical round-trip total: for
        // LLaMa-3.1-8B, Q (32×128) + K/V (2×8×128) down and O (32×128) up, 2 bytes each.
        let m = ModelDesc::llama3_8b();
        assert_eq!(m.qkv_down_bytes_per_token_per_layer(), (4096 + 2048) * 2);
        assert_eq!(m.o_up_bytes_per_token_per_layer(), 4096 * 2);
        for m in [ModelDesc::llama2_7b(), ModelDesc::llama3_8b(), ModelDesc::llama3_70b()] {
            assert_eq!(
                m.qkvo_transfer_bytes_per_token_per_layer(),
                m.qkv_down_bytes_per_token_per_layer() + m.o_up_bytes_per_token_per_layer()
            );
        }
    }

    #[test]
    fn display_contains_name() {
        let s = ModelDesc::tiny().to_string();
        assert!(s.contains("tiny"));
    }

    #[test]
    fn pre_plus_post_projection_equals_linear_total() {
        let m = ModelDesc::llama3_8b();
        let total = m.pre_projection_flops_per_token() + m.post_projection_flops_per_token();
        assert!((total - m.linear_flops_per_token_per_layer()).abs() < 1.0);
    }
}
