//! Offline profiling and piecewise-linear interpolation.
//!
//! The paper's load-aware scheduler does not evaluate an analytical cost model at run time.
//! Instead, NEO "does offline profiling for typical input/output lengths and uses linear
//! interpolation to approximate the values for other lengths" (§3.2). This module
//! reproduces that structure: a [`ProfiledCostModel`] samples the exact [`CostModel`] on a
//! grid of batch sizes / context lengths once ("profiling"), optionally perturbs the
//! samples with a deterministic error to emulate measurement noise, and then answers
//! scheduler queries purely by interpolation — including the slight inaccuracy the paper
//! blames for occasional sub-optimal scheduling decisions (§5.4).

use crate::costmodel::CostModel;

/// Piecewise-linear interpolator over a sorted one-dimensional grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Interpolator1d {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Interpolator1d {
    /// Builds an interpolator from `(x, y)` samples.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two samples are given or if the `x` values are not strictly
    /// increasing.
    pub fn new(samples: &[(f64, f64)]) -> Self {
        assert!(samples.len() >= 2, "need at least two profiling samples");
        for w in samples.windows(2) {
            assert!(w[1].0 > w[0].0, "profiling grid must be strictly increasing");
        }
        Self {
            xs: samples.iter().map(|s| s.0).collect(),
            ys: samples.iter().map(|s| s.1).collect(),
        }
    }

    /// Evaluates the interpolant at `x`, extrapolating linearly beyond the grid ends.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        // Find the segment; clamp to the first/last for extrapolation.
        let i = match self.xs.iter().position(|&g| g >= x) {
            Some(0) => 0,
            Some(i) => i - 1,
            None => n - 2,
        };
        let i = i.min(n - 2);
        let (x0, x1) = (self.xs[i], self.xs[i + 1]);
        let (y0, y1) = (self.ys[i], self.ys[i + 1]);
        let t = (x - x0) / (x1 - x0);
        y0 + t * (y1 - y0)
    }

    /// The grid's x-range.
    pub fn domain(&self) -> (f64, f64) {
        // neo-lint: allow(panic-hygiene) -- the constructor asserts a non-empty strictly-increasing grid; a default range would silently flatten every interpolated cost
        (self.xs[0], *self.xs.last().expect("non-empty grid"))
    }
}

/// The cost queries the scheduler issues every iteration, answered by interpolation.
///
/// A trait so the scheduler can run against either the exact [`CostModel`] (oracle) or the
/// profiled/interpolated variant, mirroring the real system's reliance on offline profiles.
pub trait IterationCost: Send + Sync {
    /// Per-layer linear-stage time (`Tl`) of a sub-batch with `n_tokens` tokens.
    fn linear_time(&self, n_tokens: usize) -> f64;
    /// Per-layer GPU attention time (`Tga`) of a sub-batch with the given prefill chunks
    /// and decode context total.
    fn gpu_attn_time(
        &self,
        prefill: &[(usize, usize)],
        decode_ctx: usize,
        decode_reqs: usize,
    ) -> f64;
    /// Per-layer CPU attention time (`Tca`) of `n_reqs` offloaded requests totalling
    /// `ctx_total` cached tokens.
    fn cpu_attn_time(&self, ctx_total: usize, n_reqs: usize) -> f64;
    /// Per-layer KV swap-out time for `n_tokens` freshly prefilled tokens. Per-rank
    /// wall-clock: under tensor parallelism each rank moves its own `1/tp` KV shard over
    /// its own PCIe link in parallel with the others.
    fn swap_out_time(&self, n_tokens: usize) -> f64;
    /// Per-layer KV swap-in time for `n_tokens` tokens brought back to the GPU (per-rank
    /// wall-clock, like [`IterationCost::swap_out_time`]).
    fn swap_in_time(&self, n_tokens: usize) -> f64;
    /// Non-layer (embedding + LM head + sampling) time for the iteration.
    fn pre_post_time(&self, n_tokens: usize, n_seqs: usize) -> f64;
    /// Number of transformer layers (to scale per-layer times).
    fn n_layers(&self) -> usize;
    /// Tensor-parallel degree of the modelled deployment (1 on single-GPU testbeds).
    /// PCIe terms returned by the `swap_*`/`cpu_attn` queries are already per-rank; this
    /// accessor lets consumers reason about group-level traffic when they need it.
    fn tp(&self) -> usize {
        1
    }
}

impl IterationCost for CostModel {
    fn linear_time(&self, n_tokens: usize) -> f64 {
        self.linear_time_gpu(n_tokens)
    }
    fn gpu_attn_time(
        &self,
        prefill: &[(usize, usize)],
        decode_ctx: usize,
        decode_reqs: usize,
    ) -> f64 {
        CostModel::gpu_attn_time(self, prefill, decode_ctx, decode_reqs)
    }
    fn cpu_attn_time(&self, ctx_total: usize, n_reqs: usize) -> f64 {
        self.cpu_decode_attn_time(ctx_total, n_reqs)
    }
    fn swap_out_time(&self, n_tokens: usize) -> f64 {
        self.swap_out_time_per_layer(n_tokens)
    }
    fn swap_in_time(&self, n_tokens: usize) -> f64 {
        self.swap_in_time_per_layer(n_tokens)
    }
    fn pre_post_time(&self, n_tokens: usize, n_seqs: usize) -> f64 {
        self.pre_post_layer_time(n_tokens, n_seqs)
    }
    fn n_layers(&self) -> usize {
        self.model().n_layers
    }
    fn tp(&self) -> usize {
        CostModel::tp(self)
    }
}

/// A cost model that answers queries by interpolating an offline-profiled grid, like the
/// real NEO scheduler.
#[derive(Debug, Clone)]
pub struct ProfiledCostModel {
    exact: CostModel,
    linear: Interpolator1d,
    gpu_decode_attn: Interpolator1d,
    cpu_attn: Interpolator1d,
    prefill_attn: Interpolator1d,
    /// Relative error injected into interpolated answers (e.g. 0.05 = ±5%), emulating
    /// profiling noise. The sign alternates deterministically with the query size.
    noise: f64,
}

impl ProfiledCostModel {
    /// Grid of batch-token counts profiled for the linear stage.
    const TOKEN_GRID: [usize; 10] = [1, 8, 32, 64, 128, 256, 512, 1024, 2048, 8192];
    /// Grid of total-context-token counts profiled for attention.
    const CTX_GRID: [usize; 10] =
        [64, 512, 2048, 8192, 16384, 32768, 65536, 131_072, 262_144, 1_048_576];
    /// Grid of prompt lengths profiled for prefill attention.
    const PREFILL_GRID: [usize; 8] = [16, 64, 128, 256, 512, 1024, 2048, 8192];

    /// Profiles `exact` on the built-in grids with no injected noise.
    pub fn new(exact: CostModel) -> Self {
        Self::with_noise(exact, 0.0)
    }

    /// Profiles `exact` and injects a deterministic relative error of magnitude `noise`
    /// into every interpolated answer.
    pub fn with_noise(exact: CostModel, noise: f64) -> Self {
        let linear = Interpolator1d::new(
            &Self::TOKEN_GRID
                .iter()
                .map(|&n| (n as f64, exact.linear_time_gpu(n)))
                .collect::<Vec<_>>(),
        );
        let gpu_decode_attn = Interpolator1d::new(
            &Self::CTX_GRID
                .iter()
                .map(|&c| (c as f64, exact.gpu_decode_attn_time(c, (c / 256).max(1))))
                .collect::<Vec<_>>(),
        );
        let cpu_attn = Interpolator1d::new(
            &Self::CTX_GRID
                .iter()
                .map(|&c| (c as f64, exact.cpu_decode_attn_time(c, (c / 256).max(1))))
                .collect::<Vec<_>>(),
        );
        let prefill_attn = Interpolator1d::new(
            &Self::PREFILL_GRID
                .iter()
                .map(|&l| (l as f64, CostModel::gpu_attn_time(&exact, &[(l, l)], 0, 0)))
                .collect::<Vec<_>>(),
        );
        Self { exact, linear, gpu_decode_attn, cpu_attn, prefill_attn, noise }
    }

    /// The exact cost model this profile was built from (memory accounting still uses it).
    pub fn exact(&self) -> &CostModel {
        &self.exact
    }

    fn perturb(&self, value: f64, seed: usize) -> f64 {
        if self.noise == 0.0 {
            return value;
        }
        // Deterministic pseudo-error in [-noise, +noise] keyed by the query size.
        let phase = ((seed as f64 * 0.618_033_988_75).fract() - 0.5) * 2.0;
        value * (1.0 + self.noise * phase)
    }
}

impl IterationCost for ProfiledCostModel {
    fn linear_time(&self, n_tokens: usize) -> f64 {
        if n_tokens == 0 {
            return 0.0;
        }
        self.perturb(self.linear.eval(n_tokens as f64).max(0.0), n_tokens)
    }

    fn gpu_attn_time(
        &self,
        prefill: &[(usize, usize)],
        decode_ctx: usize,
        decode_reqs: usize,
    ) -> f64 {
        let mut t = 0.0;
        for &(new_tokens, _ctx) in prefill {
            if new_tokens > 0 {
                t += self.perturb(self.prefill_attn.eval(new_tokens as f64).max(0.0), new_tokens);
            }
        }
        if decode_reqs > 0 && decode_ctx > 0 {
            t += self.perturb(self.gpu_decode_attn.eval(decode_ctx as f64).max(0.0), decode_ctx);
        }
        t
    }

    fn cpu_attn_time(&self, ctx_total: usize, n_reqs: usize) -> f64 {
        if n_reqs == 0 || ctx_total == 0 {
            return 0.0;
        }
        self.perturb(self.cpu_attn.eval(ctx_total as f64).max(0.0), ctx_total)
    }

    fn swap_out_time(&self, n_tokens: usize) -> f64 {
        self.exact.swap_out_time_per_layer(n_tokens)
    }

    fn swap_in_time(&self, n_tokens: usize) -> f64 {
        self.exact.swap_in_time_per_layer(n_tokens)
    }

    fn pre_post_time(&self, n_tokens: usize, n_seqs: usize) -> f64 {
        self.exact.pre_post_layer_time(n_tokens, n_seqs)
    }

    fn n_layers(&self) -> usize {
        self.exact.model().n_layers
    }

    fn tp(&self) -> usize {
        self.exact.tp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::Testbed;
    use crate::model_desc::ModelDesc;

    fn profiled() -> ProfiledCostModel {
        ProfiledCostModel::new(CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1))
    }

    #[test]
    fn interpolation_is_exact_at_grid_points() {
        let interp = Interpolator1d::new(&[(0.0, 0.0), (1.0, 2.0), (3.0, 6.0)]);
        assert_eq!(interp.eval(0.0), 0.0);
        assert_eq!(interp.eval(1.0), 2.0);
        assert_eq!(interp.eval(3.0), 6.0);
    }

    #[test]
    fn interpolation_is_linear_between_points() {
        let interp = Interpolator1d::new(&[(0.0, 0.0), (10.0, 100.0)]);
        assert!((interp.eval(5.0) - 50.0).abs() < 1e-12);
        assert!((interp.eval(2.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn extrapolation_continues_the_last_segment() {
        let interp = Interpolator1d::new(&[(0.0, 0.0), (1.0, 1.0), (2.0, 3.0)]);
        // Slope of the last segment is 2.
        assert!((interp.eval(3.0) - 5.0).abs() < 1e-12);
        // Slope of the first segment is 1.
        assert!((interp.eval(-1.0) + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_grid_panics() {
        let _ = Interpolator1d::new(&[(1.0, 0.0), (0.5, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_grid_panics() {
        let _ = Interpolator1d::new(&[(1.0, 0.0)]);
    }

    #[test]
    fn profiled_close_to_exact_inside_domain() {
        let p = profiled();
        let exact = p.exact().clone();
        for n in [16usize, 100, 300, 700, 1500, 4000] {
            let a = p.linear_time(n);
            let b = exact.linear_time_gpu(n);
            let rel = (a - b).abs() / b;
            assert!(rel < 0.35, "linear_time({n}): profiled {a}, exact {b}, rel {rel}");
        }
        for c in [1000usize, 10_000, 50_000, 200_000] {
            let a = p.cpu_attn_time(c, (c / 256).max(1));
            let b = exact.cpu_decode_attn_time(c, (c / 256).max(1));
            let rel = (a - b).abs() / b;
            assert!(rel < 0.35, "cpu_attn_time({c}): rel {rel}");
        }
    }

    #[test]
    fn noise_perturbs_but_stays_bounded() {
        let exact = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        let noisy = ProfiledCostModel::with_noise(exact.clone(), 0.1);
        let clean = ProfiledCostModel::new(exact);
        for n in [64usize, 123, 777, 3000] {
            let a = noisy.linear_time(n);
            let b = clean.linear_time(n);
            assert!(a > 0.0);
            assert!((a - b).abs() / b <= 0.1 + 1e-9);
        }
    }

    #[test]
    fn zero_queries_are_zero() {
        let p = profiled();
        assert_eq!(p.linear_time(0), 0.0);
        assert_eq!(p.cpu_attn_time(0, 0), 0.0);
        assert_eq!(p.gpu_attn_time(&[], 0, 0), 0.0);
    }

    #[test]
    fn n_layers_passthrough() {
        assert_eq!(profiled().n_layers(), 32);
    }
}
