//! Shared helpers for the NEO benchmark and figure harnesses.
