//! Sub-batches and scheduling decisions.
//!
//! One NEO iteration executes up to two *sub-batches*. Batch-0 carries every prefill chunk
//! and every GPU-resident decode plus a handful of CPU-resident decodes; batch-1 carries
//! the bulk of the CPU-resident decodes and has an almost empty linear stage. The
//! [`ScheduleDecision`] additionally lists the KV swaps the engine must apply before
//! executing the iteration.

use neo_kvcache::Device;

use crate::ExecutionMode;

/// One prefill chunk scheduled in batch-0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillItem {
    /// Request being prefilled.
    pub req: u64,
    /// Number of new prompt tokens processed this iteration.
    pub new_tokens: usize,
    /// Total context (already-prefilled + new tokens) after this chunk.
    pub ctx_after: usize,
    /// Device the generated KV cache will reside on. `Device::Cpu` means the chunk's KV is
    /// swapped out (layer-wise) during the iteration.
    pub target: Device,
}

/// One sub-batch of an iteration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubBatch {
    /// Prefill chunks (only ever present in batch-0).
    pub prefills: Vec<PrefillItem>,
    /// Decode requests whose attention runs on the GPU, identified by request id and
    /// current context length (tokens of KV read by attention this iteration).
    pub gpu_decodes: Vec<(u64, usize)>,
    /// Decode requests whose attention runs on the CPU.
    pub cpu_decodes: Vec<(u64, usize)>,
}

impl SubBatch {
    /// Creates an empty sub-batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the sub-batch contains no work at all.
    pub fn is_empty(&self) -> bool {
        self.prefills.is_empty() && self.gpu_decodes.is_empty() && self.cpu_decodes.is_empty()
    }

    /// Number of *new* tokens processed by the linear stages of this sub-batch
    /// (prefill chunk tokens plus one per decode request).
    pub fn linear_tokens(&self) -> usize {
        self.prefills.iter().map(|p| p.new_tokens).sum::<usize>()
            + self.gpu_decodes.len()
            + self.cpu_decodes.len()
    }

    /// Number of sequences that will produce an output token this iteration
    /// (decodes plus prefills that complete their prompt).
    pub fn sequences(&self) -> usize {
        self.gpu_decodes.len() + self.cpu_decodes.len() + self.prefills.len()
    }

    /// `(new_tokens, ctx_after)` pairs of the prefill chunks, as the cost model expects.
    pub fn prefill_chunks(&self) -> Vec<(usize, usize)> {
        self.prefills.iter().map(|p| (p.new_tokens, p.ctx_after)).collect()
    }

    /// Total context tokens read by GPU decode attention.
    pub fn gpu_decode_ctx(&self) -> usize {
        self.gpu_decodes.iter().map(|&(_, c)| c).sum()
    }

    /// Total context tokens read by CPU decode attention.
    pub fn cpu_decode_ctx(&self) -> usize {
        self.cpu_decodes.iter().map(|&(_, c)| c).sum()
    }

    /// Tokens of freshly produced KV that must be swapped out to the CPU cache
    /// (prefill chunks whose target is the CPU).
    pub fn swap_out_tokens(&self) -> usize {
        self.prefills.iter().filter(|p| p.target == Device::Cpu).map(|p| p.new_tokens).sum()
    }

    /// Ids of every request touched by this sub-batch.
    pub fn request_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .prefills
            .iter()
            .map(|p| p.req)
            .chain(self.gpu_decodes.iter().map(|&(id, _)| id))
            .chain(self.cpu_decodes.iter().map(|&(id, _)| id))
            .collect();
        ids.sort_unstable();
        ids
    }
}

/// The complete decision a scheduler produces for one iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleDecision {
    /// Whether to run GPU-only or asymmetric two-sub-batch pipelining.
    pub mode: ExecutionMode,
    /// Batch-0 (GPU-heavy sub-batch).
    pub batch0: SubBatch,
    /// Batch-1 (CPU-heavy sub-batch); empty in GPU-only mode.
    pub batch1: SubBatch,
    /// GPU-resident decode requests whose whole KV cache must be swapped out to the CPU
    /// before this iteration runs (to make room on the GPU).
    pub swap_out: Vec<u64>,
    /// CPU-resident decode requests whose KV cache is brought back to the GPU before this
    /// iteration runs.
    pub swap_in: Vec<u64>,
    /// Running requests to preempt: their KV cache is released and they return to the
    /// prefill waitqueue for recomputation (vLLM-style eviction under memory pressure,
    /// used when neither the GPU-cache nor the CPU-cache can hold them).
    pub preempt: Vec<u64>,
    /// CPU-resident requests whose KV cache is demoted to the disk tier before this
    /// iteration runs (to make room in the CPU cache). Empty unless the disk tier is
    /// enabled ([`crate::EngineConfig::disk_tier`]).
    pub demote_disk: Vec<u64>,
    /// Disk-resident requests whose KV cache is promoted back to the CPU cache before
    /// this iteration runs. Disk-resident requests cannot decode until promoted.
    pub promote_disk: Vec<u64>,
}

impl Default for ScheduleDecision {
    fn default() -> Self {
        Self::idle()
    }
}

impl ScheduleDecision {
    /// An empty GPU-only decision (the engine idles one scheduling quantum).
    pub fn idle() -> Self {
        Self {
            mode: ExecutionMode::GpuOnly,
            batch0: SubBatch::new(),
            batch1: SubBatch::new(),
            swap_out: Vec::new(),
            swap_in: Vec::new(),
            preempt: Vec::new(),
            demote_disk: Vec::new(),
            promote_disk: Vec::new(),
        }
    }

    /// Whether the decision schedules no work at all (no batches, no swaps, no tier
    /// moves, no preemptions).
    pub fn is_idle(&self) -> bool {
        self.batch0.is_empty()
            && self.batch1.is_empty()
            && self.swap_out.is_empty()
            && self.swap_in.is_empty()
            && self.preempt.is_empty()
            && self.demote_disk.is_empty()
            && self.promote_disk.is_empty()
    }

    /// Total sequences producing an output token this iteration (the paper's batch size
    /// `x`).
    pub fn batch_size(&self) -> usize {
        self.batch0.sequences() + self.batch1.sequences()
    }

    /// Total new tokens processed by linear stages across both sub-batches.
    pub fn total_linear_tokens(&self) -> usize {
        self.batch0.linear_tokens() + self.batch1.linear_tokens()
    }

    /// Ids of every request scheduled to run (not counting pure swaps).
    pub fn scheduled_ids(&self) -> Vec<u64> {
        let mut ids = self.batch0.request_ids();
        ids.extend(self.batch1.request_ids());
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> SubBatch {
        SubBatch {
            prefills: vec![
                PrefillItem { req: 1, new_tokens: 100, ctx_after: 100, target: Device::Gpu },
                PrefillItem { req: 2, new_tokens: 50, ctx_after: 80, target: Device::Cpu },
            ],
            gpu_decodes: vec![(3, 500), (4, 200)],
            cpu_decodes: vec![(5, 1000)],
        }
    }

    #[test]
    fn token_and_sequence_accounting() {
        let b = sample_batch();
        assert_eq!(b.linear_tokens(), 100 + 50 + 2 + 1);
        assert_eq!(b.sequences(), 5);
        assert_eq!(b.gpu_decode_ctx(), 700);
        assert_eq!(b.cpu_decode_ctx(), 1000);
        assert_eq!(b.swap_out_tokens(), 50);
        assert_eq!(b.prefill_chunks(), vec![(100, 100), (50, 80)]);
        assert_eq!(b.request_ids(), vec![1, 2, 3, 4, 5]);
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_batch_is_empty() {
        let b = SubBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.linear_tokens(), 0);
        assert_eq!(b.sequences(), 0);
        assert_eq!(b.swap_out_tokens(), 0);
    }

    #[test]
    fn idle_decision_reports_idle() {
        let d = ScheduleDecision::idle();
        assert!(d.is_idle());
        assert_eq!(d.batch_size(), 0);
        let mut with_swap = ScheduleDecision::idle();
        with_swap.swap_in.push(7);
        assert!(!with_swap.is_idle());
        // Pure tier moves also count as work: the engine must apply them.
        let mut with_demote = ScheduleDecision::idle();
        with_demote.demote_disk.push(8);
        assert!(!with_demote.is_idle());
        let mut with_promote = ScheduleDecision::idle();
        with_promote.promote_disk.push(9);
        assert!(!with_promote.is_idle());
    }

    #[test]
    fn decision_aggregates_both_batches() {
        let d = ScheduleDecision {
            mode: ExecutionMode::Asymmetric,
            batch0: sample_batch(),
            batch1: SubBatch {
                prefills: vec![],
                gpu_decodes: vec![],
                cpu_decodes: vec![(9, 300), (10, 400)],
            },
            swap_out: vec![],
            swap_in: vec![],
            preempt: vec![],
            demote_disk: vec![],
            promote_disk: vec![],
        };
        assert_eq!(d.batch_size(), 7);
        assert_eq!(d.total_linear_tokens(), 153 + 2);
        assert_eq!(d.scheduled_ids(), vec![1, 2, 3, 4, 5, 9, 10]);
    }

    #[test]
    fn mode_display() {
        assert_eq!(ExecutionMode::GpuOnly.to_string(), "gpu-only");
        assert_eq!(ExecutionMode::Asymmetric.to_string(), "asymmetric");
    }
}
