//! The load-aware scheduler (§3.2 of the paper) and the scheduler interface.
//!
//! [`NeoScheduler`] follows the paper's six-step per-iteration procedure:
//!
//! 1. initialise two empty sub-batch schedules;
//! 2. schedule GPU decode requests, swapping requests out (or in) so the GPU-cache can
//!    hold all new KV entries (*Maximizing GPU*);
//! 3. admit prefill requests from the waitqueue into batch-0 until the activation/token
//!    budget is exhausted, keeping the generated KV on the GPU when it fits and marking it
//!    for swap-out otherwise (*Maximizing GPU*);
//! 4. place CPU decode requests into batch-0 or batch-1 while maintaining
//!    `Tca0 ≤ Tl1 + Tga0` and `Tca1 ≤ Tl0` (*Balancing*, *Hiding CPU*);
//! 5. shed prefill chunks that would force a swap-out, as long as the inequalities keep
//!    holding (*Balancing*);
//! 6. build the GPU-only alternative (batch-0 without the CPU decodes added in step 4) and
//!    greedily pick whichever schedule has the higher estimated throughput (*Greedy*).
//!
//! `NeoScheduler` — like every baseline in `neo-baselines` — is written as a
//! [`SchedulerPolicy`] (the phase-decomposed policy seam in [`crate::policy`]): the six
//! steps map onto the trait's phases as batch formation (step 2), admission (step 3),
//! offload split (steps 4–5) and mode selection (step 6). The blanket impl turns any
//! policy into a [`Scheduler`], which is the engine-facing object-safe interface.

use std::collections::BTreeMap;

use neo_kvcache::Device;
use neo_sim::profiler::IterationCost;

use crate::batch::{ScheduleDecision, SubBatch};
use crate::config::EngineConfig;
use crate::pipeline::{balanced, estimate_asymmetric, estimate_gpu_only};
use crate::policy::{IterationPlan, SchedulerPolicy};
use crate::request::Request;
use crate::ExecutionMode;

/// Everything a scheduler may look at when forming one iteration's schedule.
///
/// Note that [`Request::output_len`] is ground truth the real system would not have; the
/// provided schedulers never read it.
pub struct ScheduleContext<'a> {
    /// Cost model (typically the profiled/interpolated one) used for time estimates.
    pub cost: &'a dyn IterationCost,
    /// Engine configuration.
    pub config: &'a EngineConfig,
    /// All live requests by id.
    pub requests: &'a BTreeMap<u64, Request>,
    /// Prefill waitqueue (arrival order). Includes partially prefilled requests.
    pub waiting: &'a [u64],
    /// GPU decoding runqueue.
    pub gpu_run: &'a [u64],
    /// CPU decoding runqueue.
    pub cpu_run: &'a [u64],
    /// Disk-resident requests (demoted from the CPU cache). They cannot decode until
    /// promoted back; always empty unless [`EngineConfig::disk_tier`] is enabled.
    pub disk_run: &'a [u64],
    /// Free tokens in the GPU KV pool.
    pub gpu_free_tokens: usize,
    /// Free tokens in the CPU KV pool.
    pub cpu_free_tokens: usize,
    /// Free tokens in the disk KV tier (0 when the tier is disabled).
    pub disk_free_tokens: usize,
    /// Total size of the GPU KV pool, in tokens. Lets admission distinguish "the GPU
    /// is busy right now" from "this prompt can *never* fit the GPU": a fresh request
    /// whose whole prompt exceeds this must build its KV on the CPU from the first
    /// chunk, because partially-prefilled requests are pinned to their device.
    pub gpu_capacity_tokens: usize,
    /// Device each partially-prefilled request's KV currently resides on (absent for
    /// requests that have not started prefill).
    pub prefill_device: &'a BTreeMap<u64, Device>,
    /// Requests the serving layer has accepted but is holding back because the engine
    /// reported admission backpressure ([`crate::Engine::can_admit`] was `false`).
    /// Advisory load signal: none of the bundled policies act on it yet, but load-aware
    /// schedulers (and the pipelined-offloading baselines planned in the roadmap) can use
    /// it to see queueing pressure beyond the waitqueue.
    pub admission_backlog: usize,
}

impl ScheduleContext<'_> {
    /// Current context length (cached tokens) of a request.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown; schedulers only receive ids present in `requests`.
    pub fn context_len(&self, id: u64) -> usize {
        self.requests[&id].context_len()
    }

    /// Remaining prompt tokens of a request.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn remaining_prefill(&self, id: u64) -> usize {
        self.requests[&id].remaining_prefill()
    }
}

/// A per-iteration scheduling policy.
pub trait Scheduler: Send {
    /// Produces the schedule for the next iteration.
    fn schedule(&mut self, ctx: &ScheduleContext<'_>) -> ScheduleDecision;

    /// Human-readable policy name (used in reports and figures).
    fn name(&self) -> &'static str;
}

/// NEO's load-aware scheduler.
#[derive(Debug, Default, Clone)]
pub struct NeoScheduler {
    iterations: u64,
}

impl NeoScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of schedules produced so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }
}

impl SchedulerPolicy for NeoScheduler {
    fn policy_name(&self) -> &'static str {
        "neo"
    }

    /// Step 2 of §3.2: schedule GPU decode requests; each needs one new KV slot on the
    /// GPU. Under pressure the longest-context requests are swapped out (or preempted
    /// when the CPU cache is full too); with ample free memory CPU-requests are pulled
    /// back in, smallest context first. The mechanics are
    /// [`IterationPlan::form_gpu_first_batches`], shared with the SpecOffload baseline.
    fn form_batches(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        self.iterations += 1;
        plan.form_gpu_first_batches(ctx);
    }

    /// Step 3: admit prefill requests into batch-0 under the token budget. The generated
    /// KV stays on the GPU when it fits, otherwise it is marked for the CPU cache
    /// (layer-wise swap-out); partially prefilled requests must stay on whichever device
    /// their earlier chunks landed on.
    fn admit(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        plan.admit_prefills(ctx, |plan, id, chunk| {
            let target = match ctx.prefill_device.get(&id) {
                Some(&d) => d,
                // A prompt that exceeds the *whole* GPU pool can never finish a GPU
                // prefill: once its first chunk lands there the request is pinned to
                // the device, stalls when the pool fills, and livelocks against the
                // deadlock-breaking preemption. Send it to the CPU cache from the
                // first chunk — this is state-independent, so the choice is the same
                // on an idle and on a loaded engine.
                None if ctx.requests[&id].prompt_len > ctx.gpu_capacity_tokens => Device::Cpu,
                None if plan.gpu_free >= chunk as i64 => Device::Gpu,
                None => Device::Cpu,
            };
            match target {
                // No room to continue this request's prefill on its device: stop.
                Device::Gpu if plan.gpu_free >= chunk as i64 => Some(Device::Gpu),
                Device::Cpu if plan.cpu_free >= chunk as i64 => Some(Device::Cpu),
                _ => None,
            }
        });
    }

    /// Steps 4 and 5: place CPU decode requests while the balancing inequalities hold,
    /// then shed prefill chunks that force swap-outs while balance keeps holding.
    fn split_offload(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
        let cost = ctx.cost;
        let cfg = ctx.config;

        // Step 4: CPU-resident candidates (minus swapped-in and disk-demoted, plus
        // freshly swapped-out). A request demoted to disk this iteration has no
        // CPU-resident KV to decode from.
        let mut cpu_candidates: Vec<(u64, usize)> = ctx
            .cpu_run
            .iter()
            .filter(|id| !plan.swap_in.contains(id) && !plan.demote_disk.contains(id))
            .map(|&id| (id, ctx.context_len(id)))
            .collect();
        cpu_candidates.extend(plan.swap_out.iter().map(|&id| (id, ctx.context_len(id))));
        cpu_candidates.sort_by_key(|&(_, c)| c);

        // Degenerate case: nothing at all runs on the GPU this iteration (no prefills, no
        // GPU decodes). The balancing inequalities would then forbid every CPU decode
        // (`Tca ≤ Tl0 = 0`), starving CPU-resident requests forever; run them as a plain
        // CPU batch instead — there is no GPU work to hide them behind anyway.
        if plan.batch0.is_empty() && !cpu_candidates.is_empty() {
            for (id, c) in cpu_candidates.drain(..) {
                if plan.batch1.sequences() >= cfg.max_batch_seqs {
                    break;
                }
                plan.batch1.cpu_decodes.push((id, c));
            }
        }
        for (id, c) in cpu_candidates {
            if plan.batch0.sequences() + plan.batch1.sequences() >= 2 * cfg.max_batch_seqs {
                break;
            }
            // Try batch-1 first (it exists to absorb CPU attention under Tl0's shadow).
            plan.batch1.cpu_decodes.push((id, c));
            if balanced(cost, &plan.batch0, &plan.batch1, cfg.balance_slack) {
                continue;
            }
            plan.batch1.cpu_decodes.pop();

            plan.batch0.cpu_decodes.push((id, c));
            if balanced(cost, &plan.batch0, &plan.batch1, cfg.balance_slack) {
                continue;
            }
            plan.batch0.cpu_decodes.pop();
            // Violates both inequalities: leave it for the next iteration (Hiding CPU).
        }

        // Step 5: shed prefill chunks that force swap-outs while balance still holds.
        // Only applies when there is CPU attention to balance against — if no CPU decodes
        // are scheduled, a CPU-targeted prefill is the only way the request can make
        // progress under GPU memory pressure and must not be shed (otherwise it would
        // starve forever).
        let has_cpu_work =
            !plan.batch0.cpu_decodes.is_empty() || !plan.batch1.cpu_decodes.is_empty();
        if has_cpu_work {
            while let Some(pos) = plan.batch0.prefills.iter().rposition(|p| p.target == Device::Cpu)
            {
                let removed = plan.batch0.prefills.remove(pos);
                if balanced(cost, &plan.batch0, &plan.batch1, cfg.balance_slack) {
                    continue; // removal kept the pipeline balanced; keep it removed
                }
                // Removing it unbalanced the pipeline (the CPU work no longer hides behind
                // the linear stage): put it back and stop shedding.
                plan.batch0.prefills.insert(pos, removed);
                break;
            }
        }
    }

    /// Step 6: greedy choice between the asymmetric and GPU-only schedules by estimated
    /// throughput.
    fn select_mode(&mut self, ctx: &ScheduleContext<'_>, plan: IterationPlan) -> ScheduleDecision {
        let cost = ctx.cost;
        let cfg = ctx.config;
        let swap_out_tokens: usize = plan.swap_out.iter().map(|&id| ctx.context_len(id)).sum();
        let swap_in_tokens: usize = plan.swap_in.iter().map(|&id| ctx.context_len(id)).sum();

        let mut asym = plan.into_decision();
        asym.mode = ExecutionMode::Asymmetric;
        let asym_est = estimate_asymmetric(
            cost,
            &asym,
            swap_out_tokens,
            swap_in_tokens,
            cfg.layerwise_swap_overlap,
        );

        // GPU-only alternative: batch-0 without the CPU decodes added in step 4.
        let mut gpu_only_batch0 = asym.batch0.clone();
        gpu_only_batch0.cpu_decodes.clear();
        let gpu_only = ScheduleDecision {
            mode: ExecutionMode::GpuOnly,
            batch0: gpu_only_batch0,
            batch1: SubBatch::new(),
            swap_out: asym.swap_out.clone(),
            swap_in: asym.swap_in.clone(),
            preempt: asym.preempt.clone(),
            demote_disk: asym.demote_disk.clone(),
            promote_disk: asym.promote_disk.clone(),
        };
        let gpu_est = estimate_gpu_only(
            cost,
            &gpu_only.batch0,
            swap_out_tokens,
            swap_in_tokens,
            cfg.layerwise_swap_overlap,
        );

        if asym_est.throughput() > gpu_est.throughput() {
            asym
        } else {
            gpu_only
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::stage_times;
    use neo_sim::{CostModel, ModelDesc, Testbed};

    fn cost() -> CostModel {
        CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1)
    }

    struct Fixture {
        requests: BTreeMap<u64, Request>,
        waiting: Vec<u64>,
        gpu_run: Vec<u64>,
        cpu_run: Vec<u64>,
        prefill_device: BTreeMap<u64, Device>,
        gpu_free: usize,
        cpu_free: usize,
        config: EngineConfig,
    }

    impl Fixture {
        fn new() -> Self {
            Self {
                requests: BTreeMap::new(),
                waiting: vec![],
                gpu_run: vec![],
                cpu_run: vec![],
                prefill_device: BTreeMap::new(),
                gpu_free: 20_000,
                cpu_free: 200_000,
                config: EngineConfig::default(),
            }
        }

        fn add_waiting(&mut self, id: u64, prompt: usize) {
            self.requests.insert(id, Request::new(id, 0.0, prompt, 64));
            self.waiting.push(id);
        }

        fn add_running(&mut self, id: u64, ctx: usize, device: Device) {
            let mut r = Request::new(id, 0.0, ctx.max(1), 64);
            r.advance_prefill(r.prompt_len);
            self.requests.insert(id, r);
            match device {
                Device::Gpu => self.gpu_run.push(id),
                Device::Cpu => self.cpu_run.push(id),
                Device::Disk => unreachable!("tests place requests on GPU or CPU"),
            }
        }

        fn schedule(&self, cost: &CostModel) -> ScheduleDecision {
            let ctx = ScheduleContext {
                cost,
                config: &self.config,
                requests: &self.requests,
                waiting: &self.waiting,
                gpu_run: &self.gpu_run,
                cpu_run: &self.cpu_run,
                disk_run: &[],
                gpu_free_tokens: self.gpu_free,
                cpu_free_tokens: self.cpu_free,
                disk_free_tokens: 0,
                gpu_capacity_tokens: self.gpu_free,
                prefill_device: &self.prefill_device,
                admission_backlog: 0,
            };
            NeoScheduler::new().schedule(&ctx)
        }
    }

    #[test]
    fn empty_system_yields_idle_decision() {
        let fx = Fixture::new();
        let d = fx.schedule(&cost());
        assert!(d.is_idle());
    }

    #[test]
    fn waiting_requests_are_prefilled() {
        let mut fx = Fixture::new();
        fx.add_waiting(1, 300);
        fx.add_waiting(2, 400);
        let d = fx.schedule(&cost());
        let prefilled: Vec<u64> = d.batch0.prefills.iter().map(|p| p.req).collect();
        assert!(prefilled.contains(&1) && prefilled.contains(&2));
        // Plenty of GPU memory: both target the GPU, no swaps.
        assert!(d.batch0.prefills.iter().all(|p| p.target == Device::Gpu));
        assert!(d.swap_out.is_empty());
    }

    #[test]
    fn prefill_respects_token_budget() {
        let mut fx = Fixture::new();
        fx.config.max_batch_tokens = 512;
        fx.config.prefill_chunk = 512;
        for id in 0..10 {
            fx.add_waiting(id, 400);
        }
        let d = fx.schedule(&cost());
        assert!(d.batch0.linear_tokens() <= 512, "budget exceeded: {}", d.batch0.linear_tokens());
    }

    #[test]
    fn gpu_decodes_all_scheduled_when_memory_allows() {
        let mut fx = Fixture::new();
        for id in 0..50 {
            fx.add_running(id, 500, Device::Gpu);
        }
        let d = fx.schedule(&cost());
        assert_eq!(d.batch0.gpu_decodes.len(), 50);
        assert!(d.swap_out.is_empty());
    }

    #[test]
    fn gpu_memory_pressure_triggers_swap_out() {
        let mut fx = Fixture::new();
        fx.gpu_free = 10; // almost no room for new KV slots
        for id in 0..50 {
            fx.add_running(id, 500, Device::Gpu);
        }
        let d = fx.schedule(&cost());
        assert!(!d.swap_out.is_empty(), "must shed some GPU requests");
        // Shed requests either decode from the CPU cache this iteration or idle, but they
        // are never still counted as GPU decodes.
        for id in &d.swap_out {
            assert!(!d.batch0.gpu_decodes.iter().any(|&(i, _)| i == *id));
        }
    }

    #[test]
    fn ample_gpu_memory_triggers_swap_in() {
        let mut fx = Fixture::new();
        fx.gpu_free = 50_000;
        for id in 0..5 {
            fx.add_running(id, 300, Device::Cpu);
        }
        let d = fx.schedule(&cost());
        assert!(!d.swap_in.is_empty(), "idle GPU memory should pull CPU requests back");
    }

    #[test]
    fn cpu_decodes_are_balanced_against_linear_stage() {
        let mut fx = Fixture::new();
        // A healthy GPU batch providing a long linear stage...
        for id in 0..40 {
            fx.add_running(id, 800, Device::Gpu);
        }
        fx.add_waiting(1000, 1500);
        // ...and many CPU-resident requests; only some can hide under the linear stage.
        for id in 100..400 {
            fx.add_running(id, 800, Device::Cpu);
        }
        let d = fx.schedule(&cost());
        assert_eq!(d.mode, ExecutionMode::Asymmetric);
        let scheduled_cpu = d.batch0.cpu_decodes.len() + d.batch1.cpu_decodes.len();
        assert!(scheduled_cpu > 0, "some CPU requests must be scheduled");
        assert!(scheduled_cpu < 300, "not all CPU requests can hide under the GPU stage");
        // The balancing inequalities hold for the emitted schedule.
        let cm = cost();
        let s0 = stage_times(&cm, &d.batch0);
        let s1 = stage_times(&cm, &d.batch1);
        let tol = 1.0 + fx.config.balance_slack + 0.05;
        assert!(s1.tca <= s0.tl * tol, "Tca1 {} vs Tl0 {}", s1.tca, s0.tl);
        assert!(s0.tca <= (s1.tl + s0.tga) * tol, "Tca0 {} vs Tl1+Tga0 {}", s0.tca, s1.tl + s0.tga);
    }

    #[test]
    fn greedy_never_picks_worse_than_gpu_only() {
        // With no CPU work at all, the decision must effectively be the GPU-only batch.
        let mut fx = Fixture::new();
        for id in 0..20 {
            fx.add_running(id, 400, Device::Gpu);
        }
        let d = fx.schedule(&cost());
        assert!(d.batch1.cpu_decodes.is_empty());
        assert!(d.batch0.cpu_decodes.is_empty());
    }

    #[test]
    fn scheduler_reports_name_and_counts_iterations() {
        let mut s = NeoScheduler::new();
        assert_eq!(s.name(), "neo");
        let fx = Fixture::new();
        let ctx = ScheduleContext {
            cost: &cost(),
            config: &fx.config,
            requests: &fx.requests,
            waiting: &fx.waiting,
            gpu_run: &fx.gpu_run,
            cpu_run: &fx.cpu_run,
            disk_run: &[],
            gpu_free_tokens: fx.gpu_free,
            cpu_free_tokens: fx.cpu_free,
            disk_free_tokens: 0,
            gpu_capacity_tokens: fx.gpu_free,
            prefill_device: &fx.prefill_device,
            admission_backlog: 0,
        };
        let _ = s.schedule(&ctx);
        let _ = s.schedule(&ctx);
        assert_eq!(s.iterations(), 2);
    }

    #[test]
    fn partially_prefilled_request_stays_on_its_device() {
        let mut fx = Fixture::new();
        fx.config.prefill_chunk = 128;
        let mut r = Request::new(7, 0.0, 600, 32);
        r.advance_prefill(128);
        fx.requests.insert(7, r);
        fx.waiting.push(7);
        fx.prefill_device.insert(7, Device::Cpu);
        let d = fx.schedule(&cost());
        let item = d.batch0.prefills.iter().find(|p| p.req == 7).expect("request scheduled");
        assert_eq!(item.target, Device::Cpu);
        assert_eq!(item.ctx_after, 128 + item.new_tokens);
    }
}
