//! NEO core: the paper's contribution.
//!
//! This crate implements the two mechanisms that define NEO (Jiang et al., MLSys 2025):
//!
//! * **Asymmetric GPU–CPU pipelining** (§3.1) — every iteration runs two complementary
//!   sub-batches. *Batch-0* carries all prefill chunks, all GPU-resident decode requests
//!   and a few CPU-resident ones; *batch-1* carries the bulk of the CPU-resident decode
//!   requests. The GPU linear stages of one sub-batch overlap with the CPU attention of
//!   the other; newly produced KV destined for the CPU-cache is swapped out layer by
//!   layer, overlapped with compute. [`pipeline`] turns a candidate schedule into the
//!   paper's iteration-time estimate
//!   `T ≈ L·(max{Tl0, Tca1} + max{Tl1 + Tga0, Tca0})`.
//! * **Load-aware scheduling** (§3.2) — [`scheduler::NeoScheduler`] follows the paper's
//!   six-step per-iteration procedure (schedule GPU decodes, admit prefills, place CPU
//!   decodes under the balancing inequalities, shed prefills that force swap-outs, then
//!   greedily pick the better of the asymmetric and GPU-only schedules by estimated
//!   throughput).
//!
//! The crate also defines the request state machine ([`request`]), the sub-batch
//! abstraction ([`batch`]), the engine configuration ([`config`]), the [`Scheduler`]
//! trait (so the baselines in `neo-baselines` plug into the same engine), and the
//! iteration-level execution engine ([`engine::Engine`]) that applies scheduling
//! decisions to the paged KV cache and advances simulated time using the cost models
//! from `neo-sim`.
//!
//! Iteration time is charged through one of two overlap models
//! ([`config::OverlapModel`]): the paper's closed forms ([`pipeline`], the default and
//! pinned reference) or event-ordered execution of the decision's job graph
//! ([`event_overlap`]), where GPU compute, CPU attention and the two PCIe link
//! directions run as discrete-event components on `neo_sim::event::EventEngine` and
//! overlap falls out of event ordering.
//!
//! # Example
//!
//! ```
//! use neo_core::config::EngineConfig;
//! use neo_core::engine::Engine;
//! use neo_core::request::Request;
//! use neo_core::scheduler::NeoScheduler;
//! use neo_sim::{CostModel, ModelDesc, Testbed};
//!
//! let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
//! let config = EngineConfig::default();
//! let mut engine = Engine::new(cost, config, Box::new(NeoScheduler::new()));
//! engine.submit(Request::new(0, 0.0, 128, 32)).unwrap();
//! while !engine.is_idle() {
//!     engine.step();
//! }
//! assert_eq!(engine.completed().len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod admit;
pub mod batch;
pub mod config;
pub mod engine;
pub mod event_overlap;
pub mod pipeline;
pub mod policy;
pub mod request;
pub mod scheduler;

pub use admit::AdmitError;
pub use batch::{PrefillItem, ScheduleDecision, SubBatch};
pub use config::{EngineConfig, OverlapModel};
pub use engine::{Engine, IterationReport};
pub use event_overlap::{estimate_decision_event, trace_decision_event};
pub use pipeline::IterationEstimate;
pub use policy::{IterationPlan, SchedulerPolicy};
pub use request::{Request, RequestState};
pub use scheduler::{NeoScheduler, ScheduleContext, Scheduler};

/// Execution mode chosen for one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Plain GPU-only execution (what SwiftLLM/vLLM would do).
    GpuOnly,
    /// NEO's two-sub-batch asymmetric pipelining.
    Asymmetric,
    /// PIPO-style pipelined KV streaming: attention of CPU-resident decodes runs on the
    /// GPU over KV streamed in layer by layer, double-buffered with compute.
    Streamed,
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionMode::GpuOnly => write!(f, "gpu-only"),
            ExecutionMode::Asymmetric => write!(f, "asymmetric"),
            ExecutionMode::Streamed => write!(f, "streamed"),
        }
    }
}
