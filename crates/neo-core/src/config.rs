//! Engine and scheduler configuration.

use serde::{Deserialize, Serialize};

/// Which overlap model the engine charges iteration time from.
///
/// Both paths price the same [`crate::batch::ScheduleDecision`] with the same cost
/// model; they differ only in how compute/transfer overlap is derived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlapModel {
    /// The paper's closed-form iteration formulas ([`crate::pipeline`]). This is the
    /// default and the pinned reference: every figure driver regenerates bit-identically
    /// under it.
    #[default]
    ClosedForm,
    /// Event-ordered execution of the decision's job graph
    /// ([`crate::event_overlap`]): GPU, CPU and the two PCIe link directions run as
    /// discrete-event components and overlap falls out of event ordering. Agrees with
    /// the closed forms exactly for single-direction swap traffic and within one stage
    /// time otherwise (never slower than the closed form).
    EventOrdered,
}

/// Configuration shared by the engine and all schedulers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Maximum number of *new* tokens (prefill chunks + one per decode) a single sub-batch
    /// may contain; bounds activation memory and iteration latency.
    pub max_batch_tokens: usize,
    /// Maximum number of sequences a single sub-batch may contain.
    pub max_batch_seqs: usize,
    /// Prefill chunk size used when a prompt does not fit the remaining token budget of an
    /// iteration (also used by the vLLM-like baseline's chunked prefill).
    pub prefill_chunk: usize,
    /// Fraction of free GPU KV tokens above which the scheduler tries to swap CPU-requests
    /// back to the GPU ("ample space" in step 2 of §3.2).
    pub swap_in_watermark: f64,
    /// Relative slack allowed when enforcing the balancing inequalities
    /// `Tca0 ≤ Tl1 + Tga0` and `Tca1 ≤ Tl0` (0.0 = strict).
    pub balance_slack: f64,
    /// Relative error injected into the profiled cost model the scheduler consults
    /// (0.0 = oracle profiling). Mirrors §5.4's "inevitable inaccuracy of the offline
    /// performance profiling".
    pub profile_noise: f64,
    /// Whether the engine models layer-wise swap overlap (true, NEO) or charges the whole
    /// transfer at the end of the iteration (false, the strawman in §3.1).
    pub layerwise_swap_overlap: bool,
    /// Admission backpressure threshold: once this many requests sit in the prefill
    /// waitqueue the engine reports itself as saturated ([`crate::Engine::can_admit`]
    /// returns `false`) and the serving layer holds further arrivals in its own backlog
    /// instead of submitting them. Requests are *delayed*, never dropped. The default is
    /// high enough that the paper-figure workloads are unaffected.
    pub max_waiting_requests: usize,
    /// How iteration time is derived from a decision: the paper's closed forms
    /// (default, pinned reference) or event-ordered execution of the decision's job
    /// graph.
    pub overlap_model: OverlapModel,
    /// Same-tick dispatch order of the event-ordered path: `0` (default) dispatches
    /// ties in component-id order; any other value seeds a fuzzed permutation used to
    /// shake out ordering races (see [`neo_sim::event::TieBreak::from_seed`]). The
    /// closed-form path ignores this.
    pub event_tie_break_seed: u64,
    /// Whether the shared-prefix KV cache is enabled: prompt blocks of prefilled GPU
    /// sequences are indexed by token-run identity and later requests adopt matching
    /// prefixes copy-on-write instead of re-prefilling them. Off by default; with no
    /// shared prefixes in the trace the enabled cache is bit-identical to off
    /// (pay-for-what-you-use).
    pub prefix_cache: bool,
    /// Whether the disk/NVMe KV tier is enabled: when the CPU cache fills, the scheduler
    /// demotes CPU-resident sequences to disk (priced by the cost model's NVMe terms)
    /// instead of preempting them, and promotes them back under a free-space hysteresis.
    /// Off by default.
    pub disk_tier: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch_tokens: 2048,
            max_batch_seqs: 256,
            prefill_chunk: 512,
            swap_in_watermark: 0.25,
            balance_slack: 0.05,
            profile_noise: 0.0,
            layerwise_swap_overlap: true,
            max_waiting_requests: 1024,
            overlap_model: OverlapModel::ClosedForm,
            event_tie_break_seed: 0,
            prefix_cache: false,
            disk_tier: false,
        }
    }
}

impl EngineConfig {
    /// Validates the configuration, returning a list of human-readable problems
    /// (empty when valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.max_batch_tokens == 0 {
            problems.push("max_batch_tokens must be positive".to_string());
        }
        if self.max_batch_seqs == 0 {
            problems.push("max_batch_seqs must be positive".to_string());
        }
        if self.prefill_chunk == 0 {
            problems.push("prefill_chunk must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.swap_in_watermark) {
            problems.push("swap_in_watermark must be within [0, 1]".to_string());
        }
        if self.balance_slack < 0.0 {
            problems.push("balance_slack must be non-negative".to_string());
        }
        if self.profile_noise < 0.0 || self.profile_noise > 0.5 {
            problems.push("profile_noise must be within [0, 0.5]".to_string());
        }
        if self.max_waiting_requests == 0 {
            problems.push("max_waiting_requests must be positive".to_string());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(EngineConfig::default().validate().is_empty());
    }

    #[test]
    fn invalid_fields_are_reported_individually() {
        let bad = EngineConfig {
            max_batch_tokens: 0,
            max_batch_seqs: 0,
            prefill_chunk: 0,
            swap_in_watermark: 2.0,
            balance_slack: -1.0,
            profile_noise: 0.9,
            layerwise_swap_overlap: true,
            max_waiting_requests: 0,
            overlap_model: OverlapModel::EventOrdered,
            event_tie_break_seed: 3,
            prefix_cache: true,
            disk_tier: true,
        };
        let problems = bad.validate();
        assert_eq!(problems.len(), 7);
    }

    #[test]
    fn kv_hierarchy_features_default_off_and_round_trip() {
        let c = EngineConfig::default();
        assert!(!c.prefix_cache);
        assert!(!c.disk_tier);
        let on = EngineConfig { prefix_cache: true, disk_tier: true, ..EngineConfig::default() };
        assert!(on.validate().is_empty(), "feature flags are always valid");
        let json = serde_json::to_string(&on).unwrap();
        let back: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(on, back);
    }

    #[test]
    fn overlap_model_defaults_to_the_closed_form_reference() {
        let c = EngineConfig::default();
        assert_eq!(c.overlap_model, OverlapModel::ClosedForm);
        assert_eq!(c.event_tie_break_seed, 0);
        // Any seed is a valid configuration; validation has nothing to reject.
        let fuzzed = EngineConfig {
            overlap_model: OverlapModel::EventOrdered,
            event_tie_break_seed: u64::MAX,
            ..EngineConfig::default()
        };
        assert!(fuzzed.validate().is_empty());
    }

    #[test]
    fn overlap_model_serde_round_trip() {
        let c = EngineConfig {
            overlap_model: OverlapModel::EventOrdered,
            event_tie_break_seed: 42,
            ..EngineConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn serde_round_trip() {
        let c = EngineConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
