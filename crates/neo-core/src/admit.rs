//! Typed admission errors.
//!
//! Submission used to be infallible: a request whose prompt exceeds every KV pool
//! parked in the waitqueue forever, and a serving layer in front of a dead engine had
//! no way to learn it beyond silence. [`AdmitError`] makes both failure modes a typed,
//! serialisable value the caller can branch on — the cluster router re-routes a
//! [`AdmitError::NeverAdmissible`] request to an engine that *can* hold it (or sheds
//! it with a typed reason), and treats [`AdmitError::EngineDown`] as a failover
//! trigger instead of a wedge.

use serde::{Deserialize, Error, Serialize, Value};

/// Why a request was refused at submission.
///
/// Returned by [`crate::Engine::submit`] and `neo_serve::Server::submit`. Every
/// variant is a *caller* problem or a *fleet* problem — never a transient engine
/// state: a request refused as [`AdmitError::NeverAdmissible`] will be refused by the
/// same engine forever, so retrying locally is useless and the caller must re-route
/// or shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The request's full context (prompt + output tokens) exceeds the engine's
    /// largest KV pool. A sequence's KV lives wholly on one device (swap moves whole
    /// sequences), so a context that fits neither the GPU nor the CPU pool can never
    /// finish: admitting it would wedge the waitqueue.
    NeverAdmissible {
        /// KV tokens the request needs at completion (prompt + output).
        required_tokens: usize,
        /// Largest single-pool capacity of the refusing engine, in tokens.
        capacity_tokens: usize,
    },
    /// The serving layer's admission backlog is at its configured limit.
    BacklogFull {
        /// Current backlog depth.
        backlog: usize,
        /// Configured limit.
        limit: usize,
    },
    /// The engine is fail-stopped (see [`crate::Engine::fail`]) and accepts nothing
    /// until recovery.
    EngineDown,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::NeverAdmissible { required_tokens, capacity_tokens } => write!(
                f,
                "request needs {required_tokens} KV tokens but the largest pool holds \
                 {capacity_tokens}: never admissible"
            ),
            AdmitError::BacklogFull { backlog, limit } => {
                write!(f, "admission backlog full ({backlog} of {limit})")
            }
            AdmitError::EngineDown => write!(f, "engine is down"),
        }
    }
}

impl std::error::Error for AdmitError {}

// The serde-shim derives cover named-field structs and unit-variant enums only, so the
// data-carrying variants get hand-written impls: an internally tagged object
// (`{"kind": ..., ...payload}`), the layout `serde(tag = "kind")` would produce.
impl Serialize for AdmitError {
    fn to_value(&self) -> Value {
        let kind = |k: &str| (String::from("kind"), Value::Str(String::from(k)));
        match self {
            AdmitError::NeverAdmissible { required_tokens, capacity_tokens } => {
                Value::Object(vec![
                    kind("never_admissible"),
                    (String::from("required_tokens"), required_tokens.to_value()),
                    (String::from("capacity_tokens"), capacity_tokens.to_value()),
                ])
            }
            AdmitError::BacklogFull { backlog, limit } => Value::Object(vec![
                kind("backlog_full"),
                (String::from("backlog"), backlog.to_value()),
                (String::from("limit"), limit.to_value()),
            ]),
            AdmitError::EngineDown => Value::Object(vec![kind("engine_down")]),
        }
    }
}

impl Deserialize for AdmitError {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| Error::custom(format!("AdmitError: missing field {name:?}")))
        };
        let kind = String::from_value(field("kind")?).map_err(|e| e.in_field("kind"))?;
        match kind.as_str() {
            "never_admissible" => Ok(AdmitError::NeverAdmissible {
                required_tokens: usize::from_value(field("required_tokens")?)?,
                capacity_tokens: usize::from_value(field("capacity_tokens")?)?,
            }),
            "backlog_full" => Ok(AdmitError::BacklogFull {
                backlog: usize::from_value(field("backlog")?)?,
                limit: usize::from_value(field("limit")?)?,
            }),
            "engine_down" => Ok(AdmitError::EngineDown),
            other => Err(Error::custom(format!("unknown AdmitError kind {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_variant() {
        let e = AdmitError::NeverAdmissible { required_tokens: 9000, capacity_tokens: 3000 };
        assert!(e.to_string().contains("never admissible"));
        assert!(e.to_string().contains("9000"));
        let e = AdmitError::BacklogFull { backlog: 5, limit: 5 };
        assert!(e.to_string().contains("backlog full"));
        assert!(AdmitError::EngineDown.to_string().contains("down"));
    }

    #[test]
    fn round_trips_through_serde() {
        for e in [
            AdmitError::NeverAdmissible { required_tokens: 10, capacity_tokens: 3 },
            AdmitError::BacklogFull { backlog: 1, limit: 1 },
            AdmitError::EngineDown,
        ] {
            let json = serde_json::to_string(&e).unwrap();
            let back: AdmitError = serde_json::from_str(&json).unwrap();
            assert_eq!(e, back);
        }
    }
}
