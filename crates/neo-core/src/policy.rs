//! The pluggable scheduler-policy seam.
//!
//! Every scheduling policy in this workspace — NEO itself and each baseline in
//! `neo-baselines` — is expressed as a [`SchedulerPolicy`]: a per-iteration pipeline of
//! three phases over a mutable [`IterationPlan`], followed by a mode-selection step that
//! turns the plan into the [`ScheduleDecision`] the engine executes:
//!
//! 1. **Batch formation** ([`SchedulerPolicy::form_batches`]) — place the already-running
//!    decode requests into the sub-batches, deciding any whole-sequence swaps or
//!    preemptions needed to make their new KV slots fit.
//! 2. **Admission** ([`SchedulerPolicy::admit`]) — pull prefill chunks from the waitqueue
//!    under the iteration token budget and pick the device their KV will land on.
//! 3. **Offload split** ([`SchedulerPolicy::split_offload`]) — decide which decodes run
//!    off-GPU this iteration and how they distribute over the two sub-batches (NEO's
//!    balancing inequalities, SpecOffload's speculative expansion, …). Policies with a
//!    static split (GPU-only, FastDecode+, PIPO) leave the default no-op.
//! 4. **Mode selection** ([`SchedulerPolicy::select_mode`]) — choose the execution mode
//!    and emit the final decision (NEO's greedy asymmetric-vs-GPU-only choice lives
//!    here); the default passes the plan through unchanged.
//!
//! A blanket `impl<P: SchedulerPolicy> Scheduler for P` drives the phases in order, so
//! any policy plugs into [`crate::Engine`] unchanged — adding a new baseline is
//! implementing this trait, nothing else. The phase decomposition is what the
//! scheduler-equivalence tests in `tests/scheduler_policy.rs` pin down.

use neo_kvcache::Device;

use crate::batch::{PrefillItem, ScheduleDecision, SubBatch};
use crate::scheduler::{ScheduleContext, Scheduler};
use crate::ExecutionMode;

/// The mutable working state a policy's phases build an iteration schedule in.
///
/// Mirrors the fields of the final [`ScheduleDecision`] plus running free-token counters
/// for both KV pools, so each phase sees the memory consequences of the phases before it.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationPlan {
    /// Execution mode the decision will carry (defaults to [`ExecutionMode::GpuOnly`]).
    pub mode: ExecutionMode,
    /// Batch-0 (GPU-heavy sub-batch; the only one that may carry prefills).
    pub batch0: SubBatch,
    /// Batch-1 (CPU-heavy sub-batch).
    pub batch1: SubBatch,
    /// Whole-sequence GPU→CPU swaps to apply before the iteration.
    pub swap_out: Vec<u64>,
    /// Whole-sequence CPU→GPU swaps to apply before the iteration.
    pub swap_in: Vec<u64>,
    /// Requests to preempt (KV discarded, re-queued for recomputation).
    pub preempt: Vec<u64>,
    /// CPU-resident requests to demote to the disk tier before the iteration (frees
    /// their CPU cache room). Only populated when [`crate::config::EngineConfig::disk_tier`]
    /// is on.
    pub demote_disk: Vec<u64>,
    /// Disk-resident requests to promote back to the CPU cache before the iteration.
    pub promote_disk: Vec<u64>,
    /// Free tokens remaining in the GPU KV pool, net of this plan's claims. Signed so
    /// phases can detect (and then resolve) overcommitment.
    pub gpu_free: i64,
    /// Free tokens remaining in the CPU KV pool, net of this plan's claims.
    pub cpu_free: i64,
    /// Free tokens remaining in the disk KV tier, net of this plan's claims.
    pub disk_free: i64,
}

impl IterationPlan {
    /// Creates an empty plan whose free-token counters start from the context's pools.
    pub fn new(ctx: &ScheduleContext<'_>) -> Self {
        Self {
            mode: ExecutionMode::GpuOnly,
            batch0: SubBatch::new(),
            batch1: SubBatch::new(),
            swap_out: Vec::new(),
            swap_in: Vec::new(),
            preempt: Vec::new(),
            demote_disk: Vec::new(),
            promote_disk: Vec::new(),
            gpu_free: ctx.gpu_free_tokens as i64,
            cpu_free: ctx.cpu_free_tokens as i64,
            disk_free: ctx.disk_free_tokens as i64,
        }
    }

    /// Remaining new-token budget of batch-0 under the configured per-iteration cap.
    pub fn token_budget(&self, ctx: &ScheduleContext<'_>) -> usize {
        ctx.config.max_batch_tokens.saturating_sub(self.batch0.linear_tokens())
    }

    /// Sequences currently scheduled across both sub-batches.
    pub fn sequences(&self) -> usize {
        self.batch0.sequences() + self.batch1.sequences()
    }

    /// Admits prefill chunks from the waitqueue into batch-0 under the iteration token
    /// budget, charging the free-token counters as it goes.
    ///
    /// `target_for` is asked, per candidate, where the chunk's KV should land given the
    /// plan so far and the chunk size; returning `None` stops admission (the policy's
    /// budget or memory rule fired). Chunks are capped at
    /// [`crate::EngineConfig::prefill_chunk`]; partially prefilled requests keep arriving
    /// until their prompt is done. Policies with bespoke admission rules (e.g. the
    /// SwiftLLM-like whole-prompt baseline) write their own loop instead.
    pub fn admit_prefills(
        &mut self,
        ctx: &ScheduleContext<'_>,
        mut target_for: impl FnMut(&Self, u64, usize) -> Option<Device>,
    ) {
        let cfg = ctx.config;
        let mut token_budget = self.token_budget(ctx);
        for &id in ctx.waiting {
            if token_budget == 0 || self.batch0.sequences() >= cfg.max_batch_seqs {
                break;
            }
            let remaining = ctx.remaining_prefill(id);
            if remaining == 0 {
                continue;
            }
            let chunk = remaining.min(token_budget).min(cfg.prefill_chunk.max(1));
            let Some(target) = target_for(self, id, chunk) else { break };
            match target {
                Device::Gpu => self.gpu_free -= chunk as i64,
                Device::Cpu => self.cpu_free -= chunk as i64,
                Device::Disk => unreachable!("prefills never target the disk tier"),
            }
            let already = ctx.requests[&id].prefilled;
            self.batch0.prefills.push(PrefillItem {
                req: id,
                new_tokens: chunk,
                ctx_after: already + chunk,
                target,
            });
            token_budget -= chunk;
        }
    }

    /// GPU-first decode batch formation (step 2 of §3.2), shared by `NeoScheduler` and
    /// the SpecOffload baseline: every GPU-resident decode claims one new KV slot in
    /// batch-0. Under memory pressure the longest-context requests are swapped out to
    /// the host cache (or preempted entirely when the CPU cache is full too); with free
    /// memory above [`crate::EngineConfig::swap_in_watermark`], CPU-resident requests
    /// are pulled back to the GPU, smallest context first, and decode from batch-0 this
    /// iteration.
    pub fn form_gpu_first_batches(&mut self, ctx: &ScheduleContext<'_>) {
        let cfg = ctx.config;
        let gpu_capacity = ctx.gpu_free_tokens; // free tokens we may still claim

        let mut gpu_decodes: Vec<(u64, usize)> =
            ctx.gpu_run.iter().map(|&id| (id, ctx.context_len(id))).collect();
        self.gpu_free -= gpu_decodes.len() as i64;

        if self.gpu_free < 0 {
            // Swap out the longest-context requests until the new tokens fit; their KV
            // moves to the CPU cache and they decode on the CPU this iteration.
            gpu_decodes.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            while self.gpu_free < 0 {
                let Some((id, c)) = gpu_decodes.first().copied() else { break };
                gpu_decodes.remove(0);
                if self.cpu_free < (c + 1) as i64 && ctx.config.disk_tier {
                    // The CPU cache is full: demote its largest-context residents to the
                    // disk tier (cheaper than discarding KV outright) until the swap-out
                    // fits or nothing demotable remains.
                    let mut victims: Vec<(u64, usize)> = ctx
                        .cpu_run
                        .iter()
                        .filter(|v| !self.demote_disk.contains(v))
                        .map(|&v| (v, ctx.context_len(v)))
                        .collect();
                    victims.sort_by_key(|&(_, vc)| std::cmp::Reverse(vc));
                    for (vid, vc) in victims {
                        if self.cpu_free >= (c + 1) as i64 {
                            break;
                        }
                        if self.disk_free < vc as i64 {
                            continue;
                        }
                        self.demote_disk.push(vid);
                        self.disk_free -= vc as i64;
                        self.cpu_free += vc as i64;
                    }
                }
                if self.cpu_free < (c + 1) as i64 {
                    // The CPU cache cannot hold it either: preempt the request entirely
                    // (vLLM-style recompute later) so the rest of the batch can progress.
                    self.preempt.push(id);
                } else {
                    self.swap_out.push(id);
                    self.cpu_free -= (c + 1) as i64;
                }
                // Its block reservation (c tokens) and its new-token slot are returned.
                self.gpu_free += (c + 1) as i64;
            }
        } else {
            // Ample space: swap CPU-requests back to the GPU, smallest context first.
            let watermark = (cfg.swap_in_watermark * gpu_capacity as f64) as i64;
            if self.gpu_free > watermark {
                let mut candidates: Vec<(u64, usize)> =
                    ctx.cpu_run.iter().map(|&id| (id, ctx.context_len(id))).collect();
                candidates.sort_by_key(|&(_, c)| c);
                for (id, c) in candidates {
                    if self.gpu_free - (c + 1) as i64 <= watermark {
                        break;
                    }
                    self.swap_in.push(id);
                    self.gpu_free -= (c + 1) as i64;
                    self.cpu_free += c as i64;
                    // Swapped-in requests decode from the GPU cache this iteration.
                    gpu_decodes.push((id, c));
                }
            }
        }
        self.batch0.gpu_decodes = gpu_decodes;

        // Disk promotion, with hysteresis: when no demotion happened this iteration and
        // the CPU cache has at least twice the room the smallest disk-resident request
        // needs, bring it back (one per iteration, so promotion never thrashes against
        // the demotions above). When nothing is left on the CPU tier the hysteresis is
        // waived — no future CPU release could ever widen the gap, so demanding double
        // the room would park a large context on disk forever.
        if ctx.config.disk_tier && self.demote_disk.is_empty() {
            let smallest = ctx
                .disk_run
                .iter()
                .map(|&id| (ctx.context_len(id), id))
                .min()
                .map(|(c, id)| (id, c));
            if let Some((id, c)) = smallest {
                let needed = (c + 1) as i64;
                let threshold = if ctx.cpu_run.is_empty() { needed } else { 2 * needed };
                if self.cpu_free >= threshold {
                    self.promote_disk.push(id);
                    self.cpu_free -= c as i64;
                    self.disk_free += c as i64;
                }
            }
        }
    }

    /// Finalises the plan into the decision the engine will execute.
    pub fn into_decision(self) -> ScheduleDecision {
        ScheduleDecision {
            mode: self.mode,
            batch0: self.batch0,
            batch1: self.batch1,
            swap_out: self.swap_out,
            swap_in: self.swap_in,
            preempt: self.preempt,
            demote_disk: self.demote_disk,
            promote_disk: self.promote_disk,
        }
    }
}

/// A per-iteration scheduling policy, decomposed into the phases every policy shares.
///
/// Implementing this trait is all a new scheduler needs: the blanket
/// [`Scheduler`] impl drives the phases and the engine, serving drivers, and figure
/// harnesses consume the policy through `Box<dyn Scheduler>` as before.
pub trait SchedulerPolicy: Send {
    /// Human-readable policy name (used in reports and figures).
    fn policy_name(&self) -> &'static str;

    /// Phase 1 — batch formation: place running decode requests, decide swaps and
    /// preemptions needed to fit their new KV slots.
    fn form_batches(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan);

    /// Phase 2 — admission: pull prefill chunks from the waitqueue under the token
    /// budget and choose the device their KV lands on.
    fn admit(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan);

    /// Phase 3 — offload split: decide which decodes run off-GPU and how they spread
    /// over the sub-batches. Default: keep the split from phase 1 (static policies).
    fn split_offload(&mut self, _ctx: &ScheduleContext<'_>, _plan: &mut IterationPlan) {}

    /// Phase 4 — mode selection: turn the finished plan into the decision, picking the
    /// execution mode. Default: emit the plan as-is.
    fn select_mode(&mut self, _ctx: &ScheduleContext<'_>, plan: IterationPlan) -> ScheduleDecision {
        plan.into_decision()
    }
}

impl<P: SchedulerPolicy> Scheduler for P {
    fn schedule(&mut self, ctx: &ScheduleContext<'_>) -> ScheduleDecision {
        let mut plan = IterationPlan::new(ctx);
        self.form_batches(ctx, &mut plan);
        self.admit(ctx, &mut plan);
        self.split_offload(ctx, &mut plan);
        let decision = self.select_mode(ctx, plan);
        if decision.is_idle() {
            if let Some(victim) = stalled_prefill_victim(ctx) {
                let mut unblock = ScheduleDecision::idle();
                unblock.preempt.push(victim);
                return unblock;
            }
            ScheduleDecision::idle()
        } else {
            decision
        }
    }

    fn name(&self) -> &'static str {
        self.policy_name()
    }
}

/// Detects a prefill deadlock and picks the preemption victim that breaks it.
///
/// An idle decision while requests sit in the waitqueue means every phase found
/// nothing runnable — which can only persist when partially-prefilled requests pin KV
/// to a full device: each is stuck behind the others' partial chunks (its remaining
/// chunks must stay on the device its earlier chunks landed on), and with nothing
/// running, no completion will ever free memory. No phase of any bundled policy
/// preempts *waiting* requests, so without intervention the engine idles forever.
///
/// The victim is the *newest* KV-holding request in the (arrival-ordered) waitqueue —
/// the classic recompute-preemption choice: the head of the queue keeps its partial
/// KV and therefore makes monotone progress once memory frees, guaranteeing the
/// deadlock cannot re-form around the same request. Preempting by size instead (free
/// the most memory first) looks attractive but livelocks: the repeatedly-victimised
/// large request re-prefills the same chunks forever while never being the one whose
/// completion releases memory.
fn stalled_prefill_victim(ctx: &ScheduleContext<'_>) -> Option<u64> {
    let mut victim = None;
    for &id in ctx.waiting {
        if ctx.context_len(id) > 0 {
            victim = Some(id);
        }
    }
    victim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::request::Request;
    use neo_sim::{CostModel, ModelDesc, Testbed};
    use std::collections::BTreeMap;

    /// A minimal policy used to exercise the phase driver: admits prefills to the GPU and
    /// decodes whatever runs there.
    struct TrivialPolicy {
        phases_seen: Vec<&'static str>,
    }

    impl SchedulerPolicy for TrivialPolicy {
        fn policy_name(&self) -> &'static str {
            "trivial"
        }
        fn form_batches(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
            self.phases_seen.push("form");
            for &id in ctx.gpu_run {
                plan.batch0.gpu_decodes.push((id, ctx.context_len(id)));
                plan.gpu_free -= 1;
            }
        }
        fn admit(&mut self, ctx: &ScheduleContext<'_>, plan: &mut IterationPlan) {
            self.phases_seen.push("admit");
            plan.admit_prefills(ctx, |plan, _id, chunk| {
                (plan.gpu_free >= chunk as i64).then_some(Device::Gpu)
            });
        }
        fn split_offload(&mut self, _ctx: &ScheduleContext<'_>, _plan: &mut IterationPlan) {
            self.phases_seen.push("split");
        }
    }

    struct Fixture {
        requests: BTreeMap<u64, Request>,
        waiting: Vec<u64>,
        gpu_run: Vec<u64>,
        cpu_run: Vec<u64>,
        disk_run: Vec<u64>,
        disk_free: usize,
        prefill_device: BTreeMap<u64, Device>,
        config: EngineConfig,
    }

    impl Fixture {
        fn new() -> Self {
            Self {
                requests: BTreeMap::new(),
                waiting: vec![],
                gpu_run: vec![],
                cpu_run: vec![],
                disk_run: vec![],
                disk_free: 0,
                prefill_device: BTreeMap::new(),
                config: EngineConfig::default(),
            }
        }

        fn ctx<'a>(&'a self, cost: &'a CostModel) -> ScheduleContext<'a> {
            ScheduleContext {
                cost,
                config: &self.config,
                requests: &self.requests,
                waiting: &self.waiting,
                gpu_run: &self.gpu_run,
                cpu_run: &self.cpu_run,
                disk_run: &self.disk_run,
                gpu_free_tokens: 10_000,
                cpu_free_tokens: 100_000,
                disk_free_tokens: self.disk_free,
                gpu_capacity_tokens: 10_000,
                prefill_device: &self.prefill_device,
                admission_backlog: 0,
            }
        }
    }

    fn cost() -> CostModel {
        CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1)
    }

    #[test]
    fn driver_runs_phases_in_order() {
        let mut fx = Fixture::new();
        fx.requests.insert(1, Request::new(1, 0.0, 200, 10));
        fx.waiting.push(1);
        let cm = cost();
        let mut p = TrivialPolicy { phases_seen: vec![] };
        let d = p.schedule(&fx.ctx(&cm));
        assert_eq!(p.phases_seen, vec!["form", "admit", "split"]);
        assert_eq!(d.batch0.prefills.len(), 1);
        assert_eq!(Scheduler::name(&p), "trivial");
    }

    #[test]
    fn empty_plan_normalises_to_idle() {
        let fx = Fixture::new();
        let cm = cost();
        let mut p = TrivialPolicy { phases_seen: vec![] };
        let d = p.schedule(&fx.ctx(&cm));
        assert!(d.is_idle());
        assert_eq!(d, ScheduleDecision::idle());
    }

    #[test]
    fn prefill_deadlock_is_broken_by_preempting_the_newest_partial() {
        // Two partially-prefilled requests pin KV to a full GPU; nothing runs, nothing
        // can be admitted. The phase driver must preempt the newest one (id 2, last in
        // the waitqueue) instead of idling forever, protecting the head's progress.
        let mut fx = Fixture::new();
        let mut small = Request::new(1, 0.0, 400, 10);
        small.advance_prefill(100);
        let mut large = Request::new(2, 0.0, 600, 10);
        large.advance_prefill(300);
        fx.requests.insert(1, small);
        fx.requests.insert(2, large);
        fx.waiting.extend([1, 2]);
        fx.prefill_device.insert(1, Device::Gpu);
        fx.prefill_device.insert(2, Device::Gpu);
        let cm = cost();
        let ctx = ScheduleContext { gpu_free_tokens: 0, cpu_free_tokens: 0, ..fx.ctx(&cm) };
        let mut p = TrivialPolicy { phases_seen: vec![] };
        let d = p.schedule(&ctx);
        assert!(!d.is_idle(), "the deadlock-breaking decision must not be idle");
        assert_eq!(d.preempt, vec![2]);
        assert!(d.batch0.is_empty() && d.batch1.is_empty());
    }

    #[test]
    fn idle_without_held_kv_stays_idle() {
        // A waitqueue whose requests hold no KV yet is not a deadlock — admission may
        // simply be budget-limited this iteration; the driver must not preempt.
        let mut fx = Fixture::new();
        fx.requests.insert(1, Request::new(1, 0.0, 200, 10));
        fx.waiting.push(1);
        let cm = cost();
        let ctx = ScheduleContext { gpu_free_tokens: 0, cpu_free_tokens: 0, ..fx.ctx(&cm) };
        let mut p = TrivialPolicy { phases_seen: vec![] };
        let d = p.schedule(&ctx);
        assert!(d.is_idle());
    }

    #[test]
    fn admit_prefills_respects_budget_and_charges_memory() {
        let mut fx = Fixture::new();
        fx.config.max_batch_tokens = 600;
        fx.config.prefill_chunk = 512;
        for id in 0..4 {
            fx.requests.insert(id, Request::new(id, 0.0, 500, 10));
            fx.waiting.push(id);
        }
        let cm = cost();
        let ctx = fx.ctx(&cm);
        let mut plan = IterationPlan::new(&ctx);
        plan.admit_prefills(&ctx, |_, _, _| Some(Device::Gpu));
        assert!(plan.batch0.linear_tokens() <= 600);
        assert_eq!(plan.gpu_free, 10_000 - plan.batch0.linear_tokens() as i64);
    }

    #[test]
    fn admit_prefills_stops_when_target_declines() {
        let mut fx = Fixture::new();
        for id in 0..3 {
            fx.requests.insert(id, Request::new(id, 0.0, 100, 10));
            fx.waiting.push(id);
        }
        let cm = cost();
        let ctx = fx.ctx(&cm);
        let mut plan = IterationPlan::new(&ctx);
        let mut admitted = 0;
        plan.admit_prefills(&ctx, |_, _, _| {
            admitted += 1;
            (admitted <= 2).then_some(Device::Cpu)
        });
        assert_eq!(plan.batch0.prefills.len(), 2);
        assert_eq!(plan.cpu_free, 100_000 - 200);
    }

    fn running(id: u64, ctx_len: usize) -> Request {
        let mut r = Request::new(id, 0.0, ctx_len.max(1), 64);
        r.advance_prefill(r.prompt_len);
        r
    }

    #[test]
    fn cpu_pressure_demotes_to_disk_instead_of_preempting() {
        // A GPU decode must be shed, but the CPU cache is too full to take it. With the
        // disk tier on, the largest CPU resident is demoted to make room; without it,
        // the shed request is preempted outright.
        let mut fx = Fixture::new();
        fx.config.disk_tier = true;
        fx.disk_free = 100_000;
        fx.requests.insert(1, running(1, 500));
        fx.gpu_run.push(1);
        fx.requests.insert(2, running(2, 900));
        fx.cpu_run.push(2);
        let cm = cost();
        let ctx = ScheduleContext { gpu_free_tokens: 0, cpu_free_tokens: 100, ..fx.ctx(&cm) };
        let mut plan = IterationPlan::new(&ctx);
        plan.form_gpu_first_batches(&ctx);
        assert_eq!(plan.demote_disk, vec![2], "largest CPU resident is demoted");
        assert_eq!(plan.swap_out, vec![1], "the shed decode now fits the CPU cache");
        assert!(plan.preempt.is_empty());
        assert_eq!(plan.disk_free, 100_000 - 900);

        // Same pressure without the tier: preemption, exactly as before.
        fx.config.disk_tier = false;
        let ctx = ScheduleContext { gpu_free_tokens: 0, cpu_free_tokens: 100, ..fx.ctx(&cm) };
        let mut plan = IterationPlan::new(&ctx);
        plan.form_gpu_first_batches(&ctx);
        assert!(plan.demote_disk.is_empty());
        assert_eq!(plan.preempt, vec![1]);
    }

    #[test]
    fn ample_cpu_room_promotes_the_smallest_disk_resident() {
        let mut fx = Fixture::new();
        fx.config.disk_tier = true;
        fx.disk_free = 50_000;
        fx.requests.insert(1, running(1, 800));
        fx.requests.insert(2, running(2, 300));
        fx.disk_run.extend([1, 2]);
        let cm = cost();
        let ctx = fx.ctx(&cm); // cpu_free 100_000: plenty of room
        let mut plan = IterationPlan::new(&ctx);
        plan.form_gpu_first_batches(&ctx);
        assert_eq!(plan.promote_disk, vec![2], "smallest context first, one per iteration");
        assert_eq!(plan.disk_free, 50_000 + 300);
        assert_eq!(plan.cpu_free, 100_000 - 300);
    }

    #[test]
    fn empty_cpu_tier_waives_the_promotion_hysteresis() {
        // A parked context needing more than half the remaining CPU room would fail the
        // 2x hysteresis forever when nothing on the CPU tier will ever free space; with
        // the run queue empty a bare fit promotes it (the starvation guard).
        let mut fx = Fixture::new();
        fx.config.disk_tier = true;
        fx.disk_free = 50_000;
        fx.requests.insert(1, running(1, 800));
        fx.disk_run.push(1);
        let cm = cost();
        // 900 free: less than 2 * (800 + 1), but the context fits and the CPU is empty.
        let ctx = ScheduleContext { cpu_free_tokens: 900, ..fx.ctx(&cm) };
        let mut plan = IterationPlan::new(&ctx);
        plan.form_gpu_first_batches(&ctx);
        assert_eq!(plan.promote_disk, vec![1], "bare fit promotes when the CPU is idle");

        // With a CPU resident the hysteresis still applies at the same free level.
        fx.requests.insert(2, running(2, 100));
        fx.cpu_run.push(2);
        let ctx = ScheduleContext { cpu_free_tokens: 900, ..fx.ctx(&cm) };
        let mut plan = IterationPlan::new(&ctx);
        plan.form_gpu_first_batches(&ctx);
        assert!(plan.promote_disk.is_empty(), "hysteresis holds while CPU work remains");
    }

    #[test]
    fn disabled_disk_tier_never_moves_anything() {
        let mut fx = Fixture::new();
        fx.requests.insert(1, running(1, 300));
        fx.disk_run.push(1); // impossible in practice, but the policy must still ignore it
        let cm = cost();
        let ctx = fx.ctx(&cm);
        let mut plan = IterationPlan::new(&ctx);
        plan.form_gpu_first_batches(&ctx);
        assert!(plan.promote_disk.is_empty());
        assert!(plan.demote_disk.is_empty());
    }

    #[test]
    fn plan_tracks_token_budget() {
        let fx = Fixture::new();
        let cm = cost();
        let ctx = fx.ctx(&cm);
        let mut plan = IterationPlan::new(&ctx);
        assert_eq!(plan.token_budget(&ctx), fx.config.max_batch_tokens);
        plan.batch0.gpu_decodes.push((9, 100));
        assert_eq!(plan.token_budget(&ctx), fx.config.max_batch_tokens - 1);
        assert_eq!(plan.sequences(), 1);
    }
}
