//! The iteration-level execution engine.
//!
//! [`Engine`] owns the request queues, the paged KV cache accounting and the simulation
//! clock. Every [`Engine::step`] asks the configured [`Scheduler`] for a decision, applies
//! the KV swaps and prefill admissions it requested, "executes" the iteration by charging
//! its duration from the exact cost model (the scheduler only ever saw the
//! profiled/interpolated model, like the real system), generates output tokens, retires
//! finished requests and advances the clock.
//!
//! The same engine executes NEO and every baseline policy, so throughput/latency
//! comparisons only reflect scheduling differences — mirroring how the paper implements
//! FastDecode+ on top of NEO's own runtime.

use std::collections::BTreeMap;

use neo_kvcache::manager::{KvCacheConfig, KvCacheManager};
use neo_kvcache::{expand, Device, TokenRun};
use neo_sim::profiler::ProfiledCostModel;
use neo_sim::{CostModel, SimClock};

use crate::admit::AdmitError;
use crate::config::{EngineConfig, OverlapModel};
use crate::event_overlap::estimate_decision_event;
use crate::pipeline::{estimate_decision, IterationEstimate};
use crate::request::{Request, RequestState};
use crate::scheduler::{ScheduleContext, Scheduler};
use crate::ExecutionMode;

/// Time charged for a scheduling quantum in which nothing could run.
const IDLE_QUANTUM: f64 = 1e-3;

/// Tokens per KV block used by the engine's cache accounting.
const BLOCK_SIZE: usize = 16;

/// Namespace bit for the synthetic token runs given to requests submitted without a
/// workload-provided prompt identity. Each such prompt gets a run unique to its request
/// id, so it can be indexed by the prefix cache but never matches another prompt.
/// Workload generators must keep their run ids below this bit.
const OPAQUE_RUN_NS: u64 = 1 << 63;

/// Summary of one executed iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationReport {
    /// Iteration index (1-based).
    pub iteration: u64,
    /// Simulated time at which the iteration started.
    pub start_time: f64,
    /// Iteration duration in seconds.
    pub duration: f64,
    /// Execution mode chosen by the scheduler.
    pub mode: ExecutionMode,
    /// Sequences that produced an output token.
    pub batch_size: usize,
    /// Prompt tokens prefilled this iteration.
    pub prefill_tokens: usize,
    /// Output tokens generated this iteration.
    pub decode_tokens: usize,
    /// Decode requests whose attention ran on the CPU.
    pub cpu_offloaded: usize,
    /// Requests swapped GPU→CPU before the iteration.
    pub swapped_out: usize,
    /// Requests swapped CPU→GPU before the iteration.
    pub swapped_in: usize,
    /// Requests demoted CPU→disk before the iteration (0 unless the disk tier is on).
    pub demoted_disk: usize,
    /// Requests promoted disk→CPU before the iteration.
    pub promoted_disk: usize,
    /// Whether the iteration was an idle quantum (no work executed).
    pub idle: bool,
}

/// The iteration-level serving engine.
pub struct Engine {
    cost: CostModel,
    sched_cost: ProfiledCostModel,
    config: EngineConfig,
    scheduler: Box<dyn Scheduler>,
    kv: KvCacheManager,
    clock: SimClock,
    requests: BTreeMap<u64, Request>,
    waiting: Vec<u64>,
    gpu_run: Vec<u64>,
    cpu_run: Vec<u64>,
    disk_run: Vec<u64>,
    prefill_device: BTreeMap<u64, Device>,
    completed: Vec<Request>,
    iterations: u64,
    total_decode_tokens: u64,
    total_prefill_tokens: u64,
    admission_backlog: usize,
    /// Fail-stopped: every submission is refused until [`Engine::recover`].
    down: bool,
    /// CPU-resident sequence whose wedged append the engine just freed room for (see
    /// [`Engine::break_cpu_exact_fit_wedge`]). While set, new CPU-targeted prefill
    /// allocations are held back so the freed blocks actually reach the stuck append
    /// instead of being re-taken by the policy's next admission; cleared as soon as the
    /// sequence appends or leaves the engine.
    cpu_append_reserved: Option<u64>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("scheduler", &self.scheduler.name())
            .field("now", &self.clock.now())
            .field("waiting", &self.waiting.len())
            .field("gpu_run", &self.gpu_run.len())
            .field("cpu_run", &self.cpu_run.len())
            .field("completed", &self.completed.len())
            .finish()
    }
}

impl Engine {
    /// Creates an engine for the given cost model (hardware + model), configuration and
    /// scheduling policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`EngineConfig::validate`]).
    pub fn new(cost: CostModel, config: EngineConfig, scheduler: Box<dyn Scheduler>) -> Self {
        let problems = config.validate();
        assert!(problems.is_empty(), "invalid engine config: {}", problems.join("; "));
        // Reserve activations for exactly the number of tokens this engine will ever
        // batch, so the GPU KV budget matches the configured batching limit. The GPU
        // pool is sized from the tightest tensor-parallel rank: a token is admitted only
        // if every rank can hold its KV shard.
        let cost = cost.with_max_batch_tokens(config.max_batch_tokens);
        let disk_capacity = if config.disk_tier { cost.disk_kv_capacity_tokens() } else { 0 };
        let kv = KvCacheManager::with_features(
            KvCacheConfig {
                block_size: BLOCK_SIZE,
                gpu_capacity_tokens: cost.gpu_kv_capacity_tokens(),
                cpu_capacity_tokens: cost.cpu_kv_capacity_tokens(),
                kv_bytes_per_token: cost.kv_bytes_per_token(),
            },
            config.prefix_cache,
            disk_capacity,
        );
        let sched_cost = ProfiledCostModel::with_noise(cost.clone(), config.profile_noise);
        Self {
            cost,
            sched_cost,
            config,
            scheduler,
            kv,
            clock: SimClock::new(),
            requests: BTreeMap::new(),
            waiting: Vec::new(),
            gpu_run: Vec::new(),
            cpu_run: Vec::new(),
            disk_run: Vec::new(),
            prefill_device: BTreeMap::new(),
            completed: Vec::new(),
            iterations: 0,
            total_decode_tokens: 0,
            total_prefill_tokens: 0,
            admission_backlog: 0,
            down: false,
            cpu_append_reserved: None,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Moves the clock forward to `t` (used by the serving loop to jump to the next
    /// arrival when the engine is idle).
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: f64) {
        self.clock.advance_to(t);
    }

    /// Submits a new request; on success it joins the prefill waitqueue.
    ///
    /// Refuses (typed, never by silent wedge) requests this engine can never serve:
    /// a context that fits in none of its KV pools ([`AdmitError::NeverAdmissible`] —
    /// see [`Engine::max_context_capacity`]) and anything while the engine is
    /// fail-stopped ([`AdmitError::EngineDown`]).
    ///
    /// # Panics
    ///
    /// Panics if a request with the same id is already live or completed — duplicate
    /// ids are a caller bug, not an admission outcome.
    pub fn submit(&mut self, request: Request) -> Result<(), AdmitError> {
        assert!(
            !self.requests.contains_key(&request.id)
                && !self.completed.iter().any(|r| r.id == request.id),
            "duplicate request id {}",
            request.id
        );
        if self.down {
            return Err(AdmitError::EngineDown);
        }
        let required = request.total_tokens();
        let capacity = self.max_context_capacity();
        if required > capacity {
            return Err(AdmitError::NeverAdmissible {
                required_tokens: required,
                capacity_tokens: capacity,
            });
        }
        let id = request.id;
        self.waiting.push(id);
        self.requests.insert(id, request);
        if self.config.prefix_cache {
            self.adopt_prefix_on_submit(id);
        }
        Ok(())
    }

    /// Tries to serve the head of a newly submitted request's prompt from the
    /// shared-prefix cache. On a hit the matching span is marked prefilled immediately
    /// (adopted copy-on-write from the cache, pinning the request's remaining prefill to
    /// the GPU); only the uncached remainder — always at least one token — is left for
    /// the prefill scheduler. Requests without a workload-provided prompt identity get a
    /// unique synthetic token run: they can be indexed but never match another prompt,
    /// so with zero sharing in the trace the cache changes nothing by construction.
    /// Requests whose total context exceeds the GPU pool are skipped — adopted blocks
    /// are GPU-resident and such requests may need to live on the CPU.
    fn adopt_prefix_on_submit(&mut self, id: u64) {
        let Some(req) = self.requests.get_mut(&id) else { return };
        if req.total_tokens() > self.kv.config().gpu_capacity_tokens {
            return;
        }
        if req.prompt_runs.is_empty() {
            req.prompt_runs = vec![TokenRun { id: OPAQUE_RUN_NS | id, len: req.prompt_len }];
        }
        let runs = req.prompt_runs.clone();
        let max_tokens = req.prompt_len - 1;
        let tokens = expand(&runs);
        // `submit` inserted a fresh id one call above, so adoption cannot fail;
        // treating a failure as a cache miss keeps this path panic-free.
        let Ok(adoption) = self.kv.adopt_prefix(id, &tokens, max_tokens) else { return };
        if adoption.cached_tokens > 0 {
            let Some(req) = self.requests.get_mut(&id) else { return };
            req.advance_prefill(adoption.cached_tokens);
            self.prefill_device.insert(id, Device::Gpu);
        }
    }

    /// The largest total context (prompt + output tokens) a single request can ever
    /// hold on this engine. A sequence's KV lives wholly on one device (swaps move
    /// whole sequences), so the binding limit is the *larger* of the two pools, not
    /// their sum: a request above this can never finish and is refused at
    /// [`Engine::submit`].
    pub fn max_context_capacity(&self) -> usize {
        let config = self.kv.config();
        config.gpu_capacity_tokens.max(config.cpu_capacity_tokens)
    }

    /// Fail-stops the engine: every live request is evicted (its KV is lost, exactly
    /// as a crashed process loses device and host memory) and returned in id order,
    /// marked [`RequestState::Cancelled`]; until [`Engine::recover`] the engine
    /// refuses submissions ([`AdmitError::EngineDown`]) and reports no admission room.
    /// Already-completed requests stay archived — the failure loses state, not
    /// history.
    pub fn fail(&mut self) -> Vec<Request> {
        self.down = true;
        let mut ids: Vec<u64> = self.requests.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().filter_map(|id| self.evict(id)).collect()
    }

    /// Brings a fail-stopped engine back: it restarts empty (the failure discarded
    /// all KV and queue state) and admits requests again.
    pub fn recover(&mut self) {
        self.down = false;
    }

    /// Whether the engine is fail-stopped (see [`Engine::fail`]).
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Whether no request is waiting or running.
    pub fn is_idle(&self) -> bool {
        self.requests.is_empty()
    }

    /// Whether the prefill waitqueue has room for another admission.
    ///
    /// This is the engine's admission-backpressure signal: when the waitqueue already
    /// holds [`EngineConfig::max_waiting_requests`] requests, a serving loop should hold
    /// further arrivals in its own backlog (delaying, never dropping them) instead of
    /// calling [`Engine::submit`]. A fail-stopped engine has no admission room at all.
    pub fn can_admit(&self) -> bool {
        !self.down && self.waiting.len() < self.config.max_waiting_requests
    }

    /// Tells the engine how many accepted-but-not-yet-admitted requests the serving layer
    /// is holding back. Purely advisory: it is surfaced to schedulers through
    /// [`ScheduleContext::admission_backlog`] so load-aware policies can see pressure
    /// beyond the waitqueue.
    pub fn set_admission_backlog(&mut self, backlog: usize) {
        self.admission_backlog = backlog;
    }

    /// A live (submitted, not yet finished or evicted) request by id.
    pub fn request(&self, id: u64) -> Option<&Request> {
        self.requests.get(&id)
    }

    /// Evicts a live request mid-flight (serving-layer cancellation): its KV blocks are
    /// freed immediately — even mid-decode — it is removed from every queue, and it is
    /// returned marked [`RequestState::Cancelled`]. Returns `None` if the id is not live
    /// (never submitted, already finished, or already evicted); finished requests stay in
    /// [`Engine::completed`].
    pub fn evict(&mut self, id: u64) -> Option<Request> {
        let mut request = self.requests.remove(&id)?;
        self.release_execution_state(id);
        self.waiting.retain(|&x| x != id);
        request.state = RequestState::Cancelled;
        Some(request)
    }

    /// Frees a request's KV cache and removes it from the run queues and prefill
    /// tracking. The waitqueue is each caller's business: preemption re-queues the
    /// request there, while retirement and eviction drop it.
    fn release_execution_state(&mut self, id: u64) {
        let _ = self.kv.free_sequence(id);
        self.gpu_run.retain(|&x| x != id);
        self.cpu_run.retain(|&x| x != id);
        self.disk_run.retain(|&x| x != id);
        self.prefill_device.remove(&id);
        if self.cpu_append_reserved == Some(id) {
            self.cpu_append_reserved = None;
        }
    }

    /// Number of live (not yet finished) requests.
    pub fn live_requests(&self) -> usize {
        self.requests.len()
    }

    /// Requests that have finished, in completion order.
    pub fn completed(&self) -> &[Request] {
        &self.completed
    }

    /// Total output tokens generated so far.
    pub fn total_decode_tokens(&self) -> u64 {
        self.total_decode_tokens
    }

    /// Total prompt tokens prefilled so far.
    pub fn total_prefill_tokens(&self) -> u64 {
        self.total_prefill_tokens
    }

    /// Number of iterations executed (including idle quanta).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Name of the scheduling policy driving this engine.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Exact cost model of the underlying hardware/model pair.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Read-only view of the KV cache accounting.
    pub fn kv(&self) -> &KvCacheManager {
        &self.kv
    }

    /// Static memory budget of each tensor-parallel rank. The engine's GPU KV pool is
    /// sized from the *tightest* rank's budget (see
    /// [`CostModel::gpu_kv_capacity_tokens`]), so admission and swap decisions derived
    /// from `gpu_free_tokens` respect every rank's capacity.
    pub fn rank_budgets(&self) -> Vec<neo_sim::RankBudget> {
        self.cost.rank_budgets()
    }

    /// Live per-rank occupancy of the GPU KV pool (token counts shared by all ranks,
    /// byte counts sharded `1/tp`).
    pub fn rank_occupancy(&self) -> Vec<neo_kvcache::RankOccupancy> {
        self.kv.rank_occupancy(self.cost.tp())
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cumulative prompt tokens served from the shared-prefix cache instead of being
    /// prefilled (0 unless [`EngineConfig::prefix_cache`] is on).
    pub fn prefix_hit_tokens(&self) -> usize {
        self.kv.prefix_hit_tokens()
    }

    /// Cumulative copy-on-write block splits performed for partial prefix hits.
    pub fn cow_splits(&self) -> usize {
        self.kv.cow_splits()
    }

    /// Requests currently demoted to the disk tier.
    pub fn disk_resident(&self) -> usize {
        self.disk_run.len()
    }

    /// Executes one iteration and returns its report.
    pub fn step(&mut self) -> IterationReport {
        self.iterations += 1;
        let start_time = self.clock.now();

        let decision = {
            let ctx = ScheduleContext {
                cost: &self.sched_cost,
                config: &self.config,
                requests: &self.requests,
                waiting: &self.waiting,
                gpu_run: &self.gpu_run,
                cpu_run: &self.cpu_run,
                disk_run: &self.disk_run,
                gpu_free_tokens: self.kv.free_tokens(Device::Gpu),
                cpu_free_tokens: self.kv.free_tokens(Device::Cpu),
                disk_free_tokens: self.kv.free_tokens(Device::Disk),
                gpu_capacity_tokens: self.kv.config().gpu_capacity_tokens,
                prefill_device: &self.prefill_device,
                admission_backlog: self.admission_backlog,
            };
            self.scheduler.schedule(&ctx)
        };

        if decision.is_idle() {
            self.clock.advance(IDLE_QUANTUM);
            return IterationReport {
                iteration: self.iterations,
                start_time,
                duration: IDLE_QUANTUM,
                mode: ExecutionMode::GpuOnly,
                batch_size: 0,
                prefill_tokens: 0,
                decode_tokens: 0,
                cpu_offloaded: 0,
                swapped_out: 0,
                swapped_in: 0,
                demoted_disk: 0,
                promoted_disk: 0,
                idle: true,
            };
        }

        // Apply preemptions first: the victim's KV cache is discarded and it rejoins the
        // prefill waitqueue for recomputation.
        for &id in &decision.preempt {
            if !self.requests.contains_key(&id) {
                continue;
            }
            self.release_execution_state(id);
            let Some(request) = self.requests.get_mut(&id) else { continue };
            request.preempt();
            if !self.waiting.contains(&id) {
                self.waiting.push(id);
            }
        }

        // Disk demotions free CPU cache room before the swap-outs that need it. Demoted
        // requests stay `RunningCpu` (the disk tier is an extension of the host cache);
        // they just cannot decode until promoted back.
        let mut demote_tokens = 0usize;
        let mut demoted_disk = 0usize;
        for &id in &decision.demote_disk {
            if self.kv.swap(id, Device::Disk).is_ok() {
                demote_tokens += self.requests[&id].context_len();
                move_id(&mut self.cpu_run, &mut self.disk_run, id);
                demoted_disk += 1;
            }
        }

        // Apply whole-sequence swaps first (they free / claim GPU memory for this
        // iteration) and track the tokens they move for the time estimate.
        let mut swap_out_tokens = 0usize;
        let mut swapped_out = 0usize;
        for &id in &decision.swap_out {
            if self.kv.swap(id, Device::Cpu).is_ok() {
                swap_out_tokens += self.requests[&id].context_len();
                move_id(&mut self.gpu_run, &mut self.cpu_run, id);
                if let Some(r) = self.requests.get_mut(&id) {
                    r.state = RequestState::RunningCpu;
                }
                swapped_out += 1;
            }
        }
        let mut swap_in_tokens = 0usize;
        let mut swapped_in = 0usize;
        for &id in &decision.swap_in {
            if self.kv.swap(id, Device::Gpu).is_ok() {
                swap_in_tokens += self.requests[&id].context_len();
                move_id(&mut self.cpu_run, &mut self.gpu_run, id);
                if let Some(r) = self.requests.get_mut(&id) {
                    r.state = RequestState::RunningGpu;
                }
                swapped_in += 1;
            }
        }

        // Disk promotions claim the CPU room the scheduler verified was free.
        let mut promote_tokens = 0usize;
        let mut promoted_disk = 0usize;
        for &id in &decision.promote_disk {
            if self.kv.swap(id, Device::Cpu).is_ok() {
                promote_tokens += self.requests[&id].context_len();
                move_id(&mut self.disk_run, &mut self.cpu_run, id);
                promoted_disk += 1;
            }
        }

        // "Execute": charge the iteration's duration from the exact cost model, via the
        // configured overlap model (closed forms are the pinned reference; the
        // event-ordered path derives the overlap from event ordering instead).
        let estimate: IterationEstimate = match self.config.overlap_model {
            OverlapModel::ClosedForm => estimate_decision(
                &self.cost,
                &decision,
                swap_out_tokens,
                swap_in_tokens,
                self.config.layerwise_swap_overlap,
            ),
            OverlapModel::EventOrdered => estimate_decision_event(
                &self.cost,
                &decision,
                swap_out_tokens,
                swap_in_tokens,
                self.config.layerwise_swap_overlap,
                neo_sim::event::TieBreak::from_seed(self.config.event_tie_break_seed),
            ),
        };
        // NVMe traffic does not share the PCIe swap path's layer-wise overlap machinery:
        // disk demotions/promotions are charged serially on top of the iteration.
        let disk_time = self.cost.disk_write_time_total(demote_tokens)
            + self.cost.disk_read_time_total(promote_tokens);
        let end_time = self.clock.advance((estimate.total_time + disk_time).max(1e-6));

        // Prefill progress.
        let mut prefill_tokens = 0usize;
        let mut decode_tokens = 0usize;
        for item in &decision.batch0.prefills {
            let allocated = if self.requests[&item.req].prefilled == 0 {
                // While a wedged CPU append holds a reservation, hold new CPU-targeted
                // allocations back so the blocks the breaker just freed reach the stuck
                // sequence instead of this admission (which would re-wedge forever).
                if item.target == Device::Cpu
                    && self.cpu_append_reserved.is_some_and(|r| r != item.req)
                {
                    continue;
                }
                self.prefill_device.insert(item.req, item.target);
                self.kv.allocate_sequence(item.req, item.new_tokens, item.target).is_ok()
            } else {
                self.kv.append_tokens(item.req, item.new_tokens).is_ok()
            };
            if !allocated {
                continue; // cache full at block granularity; retried next iteration
            }
            prefill_tokens += item.new_tokens;
            let Some(request) = self.requests.get_mut(&item.req) else { continue };
            request.advance_prefill(item.new_tokens);
            if request.prefill_complete() {
                // The prefill iteration also emits the first output token.
                request.advance_decode(end_time);
                decode_tokens += 1;
                let finished = request.is_finished();
                let runs = request.prompt_runs.clone();
                // Register the finished prompt's blocks in the prefix cache *before*
                // possibly retiring the request, so even one-token answers leave their
                // prompt behind for later requests to adopt.
                if self.config.prefix_cache && item.target == Device::Gpu && !runs.is_empty() {
                    let _ = self.kv.insert_prefix(item.req, &expand(&runs));
                }
                self.waiting.retain(|&w| w != item.req);
                self.prefill_device.remove(&item.req);
                if finished {
                    self.retire(item.req, item.target);
                } else if let Some(request) = self.requests.get_mut(&item.req) {
                    match item.target {
                        Device::Gpu => {
                            request.state = RequestState::RunningGpu;
                            self.gpu_run.push(item.req);
                        }
                        Device::Cpu => {
                            request.state = RequestState::RunningCpu;
                            self.cpu_run.push(item.req);
                        }
                        Device::Disk => unreachable!("prefills never target the disk tier"),
                    }
                }
            }
        }

        // Decode progress (both sub-batches, GPU and CPU attention alike).
        let cpu_offloaded = decision.batch0.cpu_decodes.len() + decision.batch1.cpu_decodes.len();
        let decode_ids: Vec<u64> = decision
            .batch0
            .gpu_decodes
            .iter()
            .chain(decision.batch0.cpu_decodes.iter())
            .chain(decision.batch1.gpu_decodes.iter())
            .chain(decision.batch1.cpu_decodes.iter())
            .map(|&(id, _)| id)
            .collect();
        let mut stuck_cpu: Vec<u64> = Vec::new();
        for id in decode_ids {
            let Some(request) = self.requests.get(&id) else { continue };
            if !request.prefill_complete() || request.is_finished() {
                continue;
            }
            if self.kv.append_tokens(id, 1).is_err() {
                // No block available; the request idles this iteration. Track
                // CPU-resident failures for the exact-fit wedge breaker below.
                if matches!(self.kv.device_of(id), Ok(Device::Cpu)) {
                    stuck_cpu.push(id);
                }
                continue;
            }
            if self.cpu_append_reserved == Some(id) {
                self.cpu_append_reserved = None;
            }
            let Some(request) = self.requests.get_mut(&id) else { continue };
            request.advance_decode(end_time);
            decode_tokens += 1;
            if request.is_finished() {
                let device = self.kv.device_of(id).unwrap_or(Device::Gpu);
                self.retire(id, device);
            }
        }

        // CPU-exact-fit wedge breaker. A CPU-resident context that exactly fills the
        // host pool cannot append its next block, and with no other progress in the
        // iteration nothing will ever free host room on its own: the engine livelocks
        // (ROADMAP, surfaced while pinning the PR-9 golden trace at tiny
        // `cpu_cache_fraction`). When an iteration moved *nothing* — no prefill or
        // decode token, no swap, no demotion/promotion, no preemption — and a
        // CPU-resident decode failed its append, free host room by hand: demote the
        // stuck sequence to the disk tier when it has room, else preempt the newest
        // other CPU-resident sequence (it recomputes from the waitqueue). Ordinary
        // transient append failures never take this path: some other request
        // progressed, and its retirement eventually frees the pool.
        let progressed = prefill_tokens > 0
            || decode_tokens > 0
            || swapped_out > 0
            || swapped_in > 0
            || demoted_disk > 0
            || promoted_disk > 0
            || !decision.preempt.is_empty();
        if !progressed {
            if let Some(&stuck) = stuck_cpu.first() {
                self.break_cpu_exact_fit_wedge(stuck);
            }
        }

        self.total_prefill_tokens += prefill_tokens as u64;
        self.total_decode_tokens += decode_tokens as u64;

        IterationReport {
            iteration: self.iterations,
            start_time,
            duration: end_time - start_time,
            mode: decision.mode,
            batch_size: decision.batch_size(),
            prefill_tokens,
            decode_tokens,
            cpu_offloaded,
            swapped_out,
            swapped_in,
            demoted_disk,
            promoted_disk,
            idle: false,
        }
    }

    /// Frees host-cache room for a CPU-resident sequence whose append is wedged on an
    /// exactly-full pool (see the call site in [`Engine::step`]). Prefers demoting the
    /// stuck sequence itself to the disk tier — it stays resident and decodes again once
    /// promoted — and falls back to preempting the newest *other* CPU-resident sequence.
    /// A victim always exists: a sequence holding every host block while needing more
    /// would have been refused at submit as `NeverAdmissible`.
    fn break_cpu_exact_fit_wedge(&mut self, stuck: u64) {
        if self.kv.swap(stuck, Device::Disk).is_ok() {
            move_id(&mut self.cpu_run, &mut self.disk_run, stuck);
            return;
        }
        let Some(victim) = self.cpu_run.iter().rev().find(|&&v| v != stuck).copied() else {
            return;
        };
        self.release_execution_state(victim);
        // The freed blocks are spoken for: hold new CPU prefill admissions (including the
        // victim's own recompute) back until the stuck sequence lands its append.
        self.cpu_append_reserved = Some(stuck);
        let Some(request) = self.requests.get_mut(&victim) else { return };
        request.preempt();
        if !self.waiting.contains(&victim) {
            self.waiting.push(victim);
        }
    }

    /// Removes a finished request from every queue, frees its KV cache and archives it.
    fn retire(&mut self, id: u64, _device: Device) {
        self.release_execution_state(id);
        self.waiting.retain(|&x| x != id);
        if let Some(r) = self.requests.remove(&id) {
            self.completed.push(r);
        }
    }

    /// Runs iterations until every submitted request has finished or `max_iterations` is
    /// reached, returning the number of iterations executed.
    pub fn run_to_completion(&mut self, max_iterations: u64) -> u64 {
        let mut n = 0;
        while !self.is_idle() && n < max_iterations {
            self.step();
            n += 1;
        }
        n
    }
}

fn move_id(from: &mut Vec<u64>, to: &mut Vec<u64>, id: u64) {
    from.retain(|&x| x != id);
    if !to.contains(&id) {
        to.push(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ScheduleDecision;
    use crate::scheduler::NeoScheduler;
    use neo_sim::{ModelDesc, Testbed};

    fn engine(testbed: Testbed, model: ModelDesc) -> Engine {
        let tp = if testbed.num_gpus > 1 { 2 } else { 1 };
        let cost = CostModel::new(model, testbed, tp);
        Engine::new(cost, EngineConfig::default(), Box::new(NeoScheduler::new()))
    }

    fn a10g_engine() -> Engine {
        engine(Testbed::g5_xlarge(4), ModelDesc::llama3_8b())
    }

    #[test]
    fn single_request_completes_with_correct_counts() {
        let mut e = a10g_engine();
        e.submit(Request::new(1, 0.0, 100, 20)).unwrap();
        let iters = e.run_to_completion(10_000);
        assert!(iters < 10_000, "request did not finish");
        assert_eq!(e.completed().len(), 1);
        let r = &e.completed()[0];
        assert_eq!(r.generated, 20);
        assert_eq!(r.prefilled, 100);
        assert!(r.latency().unwrap() > 0.0);
        // KV fully released.
        assert_eq!(e.kv().num_sequences(), 0);
        assert_eq!(e.total_decode_tokens(), 20);
        assert_eq!(e.total_prefill_tokens(), 100);
    }

    #[test]
    fn many_requests_all_complete_and_conserve_tokens() {
        let mut e = a10g_engine();
        let n = 40;
        for id in 0..n {
            e.submit(Request::new(id, 0.0, 200 + (id as usize % 7) * 50, 16 + (id as usize % 5)))
                .unwrap();
        }
        e.run_to_completion(200_000);
        assert_eq!(e.completed().len(), n as usize);
        let expected_decode: u64 = e.completed().iter().map(|r| r.output_len as u64).sum();
        let expected_prefill: u64 = e.completed().iter().map(|r| r.prompt_len as u64).sum();
        assert_eq!(e.total_decode_tokens(), expected_decode);
        assert_eq!(e.total_prefill_tokens(), expected_prefill);
        assert_eq!(e.kv().num_sequences(), 0);
        assert_eq!(e.live_requests(), 0);
    }

    #[test]
    fn time_advances_monotonically_across_steps() {
        let mut e = a10g_engine();
        for id in 0..5 {
            e.submit(Request::new(id, 0.0, 300, 10)).unwrap();
        }
        let mut last = 0.0;
        while !e.is_idle() {
            let report = e.step();
            assert!(report.duration > 0.0);
            assert!(e.now() > last);
            last = e.now();
        }
    }

    #[test]
    fn idle_engine_charges_idle_quantum() {
        let mut e = a10g_engine();
        let before = e.now();
        let report = e.step();
        assert!(report.idle);
        assert!((e.now() - before - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn memory_constrained_t4_offloads_to_cpu() {
        // The T4 + LLaMa-2-7B setting from the paper: almost no GPU KV room, so a bursty
        // batch must spill to the CPU cache.
        let mut e = engine(Testbed::g4dn_4xlarge(), ModelDesc::llama2_7b());
        for id in 0..64 {
            e.submit(Request::new(id, 0.0, 300, 40)).unwrap();
        }
        let mut used_cpu = false;
        let mut finished_iterations = 0;
        while !e.is_idle() && finished_iterations < 100_000 {
            let report = e.step();
            if report.cpu_offloaded > 0 || report.swapped_out > 0 {
                used_cpu = true;
            }
            finished_iterations += 1;
        }
        assert_eq!(e.completed().len(), 64);
        assert!(used_cpu, "memory pressure on the T4 must trigger CPU offloading");
    }

    #[test]
    fn duplicate_submission_panics() {
        let mut e = a10g_engine();
        e.submit(Request::new(1, 0.0, 10, 5)).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = e.submit(Request::new(1, 0.0, 10, 5));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn advance_to_jumps_the_clock() {
        let mut e = a10g_engine();
        e.advance_to(5.0);
        assert_eq!(e.now(), 5.0);
        e.submit(Request::new(1, 5.0, 50, 4)).unwrap();
        e.run_to_completion(10_000);
        let r = &e.completed()[0];
        assert!(r.finish_time.unwrap() > 5.0);
        assert!(r.latency().unwrap() < 5.0, "latency measured from arrival, not from zero");
    }

    #[test]
    fn per_token_latency_reasonable_on_a10g() {
        // Sanity band: a lightly loaded A10G serving LLaMa-3.1-8B should produce tokens at
        // tens of milliseconds each, not microseconds or minutes.
        let mut e = a10g_engine();
        e.submit(Request::new(1, 0.0, 500, 50)).unwrap();
        e.run_to_completion(10_000);
        let ptl = e.completed()[0].per_token_latency().unwrap();
        assert!(ptl > 1e-3 && ptl < 1.0, "per-token latency {ptl}");
    }

    #[test]
    fn evicting_a_decoding_request_frees_its_kv_blocks() {
        let mut e = a10g_engine();
        e.submit(Request::new(1, 0.0, 100, 400)).unwrap();
        e.submit(Request::new(2, 0.0, 100, 400)).unwrap();
        // Step until both requests hold KV and are decoding.
        while e.kv().num_sequences() < 2 {
            e.step();
        }
        let gpu_free_before = e.kv().free_tokens(Device::Gpu);
        let evicted = e.evict(1).expect("request 1 is live");
        assert!(evicted.is_cancelled());
        assert!(evicted.generated < evicted.output_len, "evicted mid-decode");
        assert_eq!(e.kv().num_sequences(), 1, "the cancelled KV must be freed immediately");
        assert!(e.kv().free_tokens(Device::Gpu) > gpu_free_before);
        assert!(e.request(1).is_none());
        assert_eq!(e.live_requests(), 1);
        // The eviction never surfaces in completed(), and the survivor still finishes.
        e.run_to_completion(100_000);
        assert_eq!(e.completed().len(), 1);
        assert_eq!(e.completed()[0].id, 2);
        assert_eq!(e.kv().num_sequences(), 0);
    }

    #[test]
    fn evicting_unknown_or_finished_requests_returns_none() {
        let mut e = a10g_engine();
        e.submit(Request::new(7, 0.0, 50, 4)).unwrap();
        e.run_to_completion(10_000);
        assert_eq!(e.completed().len(), 1);
        assert!(e.evict(7).is_none(), "finished requests are not evictable");
        assert!(e.evict(99).is_none());
    }

    #[test]
    fn evicting_a_waiting_request_works_before_prefill() {
        let mut e = a10g_engine();
        e.submit(Request::new(3, 0.0, 100, 10)).unwrap();
        let evicted = e.evict(3).expect("waiting request is live");
        assert_eq!(evicted.prefilled, 0);
        assert!(e.is_idle());
        assert_eq!(e.kv().num_sequences(), 0);
    }

    #[test]
    fn admission_backpressure_reflects_the_waitqueue() {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        let config = EngineConfig { max_waiting_requests: 2, ..EngineConfig::default() };
        let mut e = Engine::new(cost, config, Box::new(NeoScheduler::new()));
        assert!(e.can_admit());
        e.submit(Request::new(1, 0.0, 50, 4)).unwrap();
        assert!(e.can_admit());
        e.submit(Request::new(2, 0.0, 50, 4)).unwrap();
        assert!(!e.can_admit(), "waitqueue at max_waiting_requests means backpressure");
        // Prefilling drains the waitqueue and lifts the backpressure.
        while !e.can_admit() {
            e.step();
        }
        e.set_admission_backlog(3); // advisory; next step surfaces it to the scheduler
        e.run_to_completion(10_000);
        assert_eq!(e.completed().len(), 2);
    }

    #[test]
    fn rank_views_track_the_tp_group() {
        let mut e = engine(Testbed::hgx_h100(2), ModelDesc::llama3_70b());
        let budgets = e.rank_budgets();
        assert_eq!(budgets.len(), 2);
        // The GPU pool was sized from the tightest rank.
        assert_eq!(
            e.kv().config().gpu_capacity_tokens,
            budgets.iter().map(|b| b.kv_capacity_tokens).min().unwrap()
        );
        e.submit(Request::new(1, 0.0, 200, 10)).unwrap();
        e.step();
        let ranks = e.rank_occupancy();
        assert_eq!(ranks.len(), 2);
        assert!(ranks[0].used_tokens > 0, "prefill must occupy KV");
        assert_eq!(ranks[0].used_bytes, ranks[1].used_bytes);
        // Each of the two ranks holds half of the group's KV bytes.
        assert_eq!(
            ranks[0].used_bytes,
            ranks[0].used_tokens as u64 * e.cost_model().kv_bytes_per_token() as u64 / 2
        );
    }

    #[test]
    fn debug_format_mentions_scheduler() {
        let e = a10g_engine();
        let s = format!("{e:?}");
        assert!(s.contains("neo"));
    }

    #[test]
    fn never_admissible_request_is_rejected_typed() {
        let mut e = a10g_engine();
        let capacity = e.max_context_capacity();
        let err = e.submit(Request::new(1, 0.0, capacity + 1, 1)).unwrap_err();
        assert_eq!(
            err,
            crate::AdmitError::NeverAdmissible {
                required_tokens: capacity + 2,
                capacity_tokens: capacity,
            }
        );
        assert!(e.is_idle(), "a rejected request must not enter the waitqueue");
        // A request that exactly fills the largest pool is admissible.
        e.submit(Request::new(2, 0.0, capacity - 1, 1)).unwrap();
    }

    #[test]
    fn fail_evicts_everything_and_recover_restores_service() {
        let mut e = a10g_engine();
        e.submit(Request::new(1, 0.0, 200, 40)).unwrap();
        e.submit(Request::new(2, 0.0, 200, 40)).unwrap();
        for _ in 0..3 {
            e.step();
        }
        assert!(!e.is_down());
        let lost = e.fail();
        assert!(e.is_down());
        assert_eq!(lost.len(), 2, "both live requests are evicted on fail-stop");
        assert!(lost.windows(2).all(|w| w[0].id < w[1].id), "eviction order is id-sorted");
        assert_eq!(e.kv().num_sequences(), 0, "KV is lost on fail-stop");
        assert_eq!(e.live_requests(), 0);
        assert!(!e.can_admit());
        assert_eq!(e.submit(Request::new(3, 0.0, 50, 4)), Err(crate::AdmitError::EngineDown));
        // A down engine still advances time idly but does no work.
        let report = e.step();
        assert!(report.idle);
        e.recover();
        assert!(!e.is_down());
        e.submit(Request::new(3, 0.0, 50, 4)).unwrap();
        e.run_to_completion(10_000);
        assert_eq!(e.completed().len(), 1);
    }

    #[test]
    fn shared_prefix_is_adopted_instead_of_reprefilled() {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        let config = EngineConfig { prefix_cache: true, ..EngineConfig::default() };
        let mut e = Engine::new(cost, config, Box::new(NeoScheduler::new()));
        let shared = TokenRun { id: 1, len: 512 };
        let r1 = Request::with_runs(1, 0.0, 600, 8, vec![shared, TokenRun { id: 101, len: 88 }]);
        e.submit(r1).unwrap();
        e.run_to_completion(10_000);
        assert_eq!(e.prefix_hit_tokens(), 0, "first request has nothing to adopt");
        // The second request shares the 512-token head; all 32 of its full blocks are
        // adopted from the cache, so only the remainder is prefilled.
        let r2 = Request::with_runs(2, 0.0, 600, 8, vec![shared, TokenRun { id: 102, len: 88 }]);
        e.submit(r2).unwrap();
        assert_eq!(e.prefix_hit_tokens(), 512);
        assert_eq!(e.request(2).unwrap().prefilled, 512);
        let prefill_before = e.total_prefill_tokens();
        e.run_to_completion(10_000);
        assert_eq!(e.completed().len(), 2);
        assert_eq!(
            e.total_prefill_tokens() - prefill_before,
            88,
            "only the uncached tail is prefilled"
        );
        assert_eq!(e.completed()[1].generated, 8);
        assert_eq!(e.kv().num_sequences(), 0, "prefix blocks live in the index, not in seqs");
    }

    #[test]
    fn partial_prefix_hits_split_copy_on_write() {
        let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
        let config = EngineConfig { prefix_cache: true, ..EngineConfig::default() };
        let mut e = Engine::new(cost, config, Box::new(NeoScheduler::new()));
        // 100 = 6 full blocks + a 4-token partial tail at block size 16.
        let shared = TokenRun { id: 5, len: 100 };
        e.submit(Request::with_runs(1, 0.0, 150, 4, vec![shared, TokenRun { id: 201, len: 50 }]))
            .unwrap();
        e.run_to_completion(10_000);
        e.submit(Request::with_runs(2, 0.0, 150, 4, vec![shared, TokenRun { id: 202, len: 50 }]))
            .unwrap();
        // 96 full-block tokens shared plus the 4-token tail copied into a private block.
        assert_eq!(e.prefix_hit_tokens(), 100);
        assert_eq!(e.cow_splits(), 1);
        e.run_to_completion(10_000);
        assert_eq!(e.completed().len(), 2);
    }

    #[test]
    fn prefix_cache_with_unique_prompts_matches_disabled_run_exactly() {
        // Zero sharing: every iteration report must be identical with the cache on and
        // off — the pay-for-what-you-use property the results regeneration relies on.
        let run = |prefix_cache: bool| -> Vec<IterationReport> {
            let cost = CostModel::new(ModelDesc::llama2_7b(), Testbed::g4dn_4xlarge(), 1);
            let config = EngineConfig { prefix_cache, ..EngineConfig::default() };
            let mut e = Engine::new(cost, config, Box::new(NeoScheduler::new()));
            for id in 0..48 {
                e.submit(Request::new(id, 0.0, 200 + (id as usize % 9) * 40, 12)).unwrap();
            }
            let mut reports = Vec::new();
            while !e.is_idle() && reports.len() < 100_000 {
                reports.push(e.step());
            }
            assert_eq!(e.completed().len(), 48);
            reports
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(off, on, "share-free trace must be bit-identical under the cache");
    }

    #[test]
    fn disk_tier_absorbs_cpu_cache_overflow() {
        // Shrink the host cache so the T4 burst overflows it; with the disk tier on the
        // overflow demotes instead of preempting, and everything still finishes.
        let mut testbed = Testbed::g4dn_4xlarge();
        testbed.cpu_cache_fraction = 0.012;
        let cost = CostModel::new(ModelDesc::llama2_7b(), testbed, 1);
        let config = EngineConfig { disk_tier: true, ..EngineConfig::default() };
        let mut e = Engine::new(cost, config, Box::new(NeoScheduler::new()));
        assert!(e.kv().pool(Device::Disk).capacity_tokens() > 0);
        for id in 0..48 {
            e.submit(Request::new(id, 0.0, 400, 48)).unwrap();
        }
        let mut demoted = 0usize;
        let mut promoted = 0usize;
        let mut iters = 0usize;
        while !e.is_idle() && iters < 200_000 {
            let r = e.step();
            demoted += r.demoted_disk;
            promoted += r.promoted_disk;
            iters += 1;
        }
        assert_eq!(e.completed().len(), 48);
        assert!(demoted > 0, "the overflow must reach the disk tier");
        assert!(promoted > 0, "demoted requests must come back to finish decoding");
        assert_eq!(e.disk_resident(), 0);
        assert_eq!(e.kv().num_sequences(), 0);
    }

    /// Deliberately wedge-prone scripted policy for the CPU-exact-fit regression test:
    /// prefills every waiting request straight into the CPU cache and decodes every
    /// CPU-resident request, with no free-room reservation and no preemption. Any
    /// single-file policy PR could ship a scheduler like this, so the *engine* must
    /// survive it.
    struct CpuGreedyPolicy;

    impl Scheduler for CpuGreedyPolicy {
        fn schedule(&mut self, ctx: &ScheduleContext<'_>) -> ScheduleDecision {
            let mut d = ScheduleDecision::idle();
            for &id in ctx.waiting {
                let new_tokens = ctx.remaining_prefill(id);
                if new_tokens == 0 {
                    continue;
                }
                d.batch0.prefills.push(crate::batch::PrefillItem {
                    req: id,
                    new_tokens,
                    ctx_after: ctx.context_len(id) + new_tokens,
                    target: Device::Cpu,
                });
            }
            for &id in ctx.cpu_run {
                d.batch1.cpu_decodes.push((id, ctx.context_len(id)));
            }
            if !d.batch1.is_empty() {
                d.mode = ExecutionMode::Asymmetric;
            }
            d
        }

        fn name(&self) -> &'static str {
            "cpu-greedy"
        }
    }

    #[test]
    fn cpu_exact_fit_append_wedge_recovers_without_disk_tier() {
        // Regression test for the CPU-exact-fit decode wedge (ROADMAP, carried from
        // PR 9): with the disk tier OFF, a CPU-resident context that lands exactly on
        // a block boundary with zero free host blocks cannot append, and a scheduler
        // without its own free-room reservation never frees host room — the engine
        // used to livelock. At cpu_cache_fraction=0.0005 the T4 host pool holds 4
        // blocks; two 31-token prompts fill all of them after prefill, and both hit
        // the failing append at context 33. The wedge breaker in `Engine::step` must
        // preempt one sequence *and* hold its recompute back (`cpu_append_reserved`)
        // so the survivor — not the victim's re-prefill — takes the freed blocks.
        let mut testbed = Testbed::g4dn_4xlarge();
        testbed.cpu_cache_fraction = 0.0005;
        let cost = CostModel::new(ModelDesc::llama2_7b(), testbed, 1);
        assert_eq!(
            cost.cpu_kv_capacity_tokens() / BLOCK_SIZE,
            4,
            "fixture needs an exactly-fillable 4-block host pool"
        );
        let mut e = Engine::new(cost, EngineConfig::default(), Box::new(CpuGreedyPolicy));
        assert_eq!(e.kv().pool(Device::Disk).capacity_tokens(), 0, "disk tier must be off");
        e.submit(Request::new(0, 0.0, 31, 30)).unwrap();
        e.submit(Request::new(1, 0.0, 31, 30)).unwrap();
        let iters = e.run_to_completion(10_000);
        assert!(iters < 10_000, "engine wedged: {} of 2 finished", e.completed().len());
        assert_eq!(e.completed().len(), 2);
        for r in e.completed() {
            assert_eq!(r.generated, 30);
        }
        assert_eq!(e.kv().num_sequences(), 0);
    }

    #[test]
    fn disabled_disk_tier_has_zero_capacity() {
        let e = a10g_engine();
        assert_eq!(e.kv().pool(Device::Disk).capacity_tokens(), 0);
        assert_eq!(e.prefix_hit_tokens(), 0);
        assert_eq!(e.cow_splits(), 0);
        assert_eq!(e.disk_resident(), 0);
    }

    #[test]
    fn oversized_prompt_completes_on_idle_t4_via_cpu() {
        // Regression test for the fleet_mix clamp: an 8192-token prompt exceeds the T4's
        // GPU pool (~3.1k tokens with default batching), so a fresh submission to an
        // *idle* engine used to start prefilling on the GPU, wedge mid-prefill, and
        // livelock through the deadlock-breaker. The scheduler now targets the CPU pool
        // from the first chunk whenever the prompt alone cannot fit the GPU pool.
        let mut e = engine(Testbed::g4dn_4xlarge(), ModelDesc::llama2_7b());
        assert!(
            8192 > e.kv().config().gpu_capacity_tokens,
            "fixture must actually exceed the GPU pool"
        );
        e.submit(Request::new(1, 0.0, 8192, 16)).unwrap();
        let iters = e.run_to_completion(50_000);
        assert!(iters < 50_000, "oversized prompt must not livelock");
        assert_eq!(e.completed().len(), 1);
        assert_eq!(e.completed()[0].generated, 16);
    }
}
