//! Inference request state machine.

use neo_kvcache::TokenRun;
use serde::{Deserialize, Serialize};

/// Lifecycle state of a request inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestState {
    /// Waiting in the prefill waitqueue; no KV cache allocated yet.
    Waiting,
    /// Being prefilled (chunked prefill may take several iterations).
    Prefilling,
    /// Decoding with its KV cache resident on the GPU (a "GPU-request").
    RunningGpu,
    /// Decoding with its KV cache resident on the CPU (a "CPU-request").
    RunningCpu,
    /// All output tokens produced; KV cache released.
    Finished,
    /// Cancelled by the serving layer before finishing; KV cache released. Terminal, like
    /// [`RequestState::Finished`], but the request never counts as completed.
    Cancelled,
}

/// One inference request and its progress.
///
/// `output_len` is the ground-truth number of output tokens the request will produce
/// (drawn by the workload generator). The *scheduler* never reads it — real systems do not
/// know output lengths in advance; only the engine uses it to decide when the request has
/// finished, emulating the model emitting EOS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique request id.
    pub id: u64,
    /// Arrival time in seconds (simulation clock).
    pub arrival_time: f64,
    /// Prompt (input) length in tokens.
    pub prompt_len: usize,
    /// Ground-truth output length in tokens (hidden from the scheduler).
    pub output_len: usize,
    /// Prompt tokens prefilled so far.
    pub prefilled: usize,
    /// Output tokens generated so far.
    pub generated: usize,
    /// Current lifecycle state.
    pub state: RequestState,
    /// Time the first output token was produced, if any.
    pub first_token_time: Option<f64>,
    /// Time the request finished, if it has.
    pub finish_time: Option<f64>,
    /// Prompt token identity as runs, for shared-prefix caching. Empty means the prompt
    /// is opaque (shares with nothing); when non-empty the run lengths sum to
    /// `prompt_len`.
    pub prompt_runs: Vec<TokenRun>,
}

impl Request {
    /// Creates a new request in the [`RequestState::Waiting`] state.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_len` or `output_len` is zero — the paper's workloads always have
    /// at least one input and one output token.
    pub fn new(id: u64, arrival_time: f64, prompt_len: usize, output_len: usize) -> Self {
        assert!(prompt_len > 0, "prompt length must be positive");
        assert!(output_len > 0, "output length must be positive");
        Self {
            id,
            arrival_time,
            prompt_len,
            output_len,
            prefilled: 0,
            generated: 0,
            state: RequestState::Waiting,
            first_token_time: None,
            finish_time: None,
            prompt_runs: Vec::new(),
        }
    }

    /// Creates a request whose prompt identity is given as token runs (for shared-prefix
    /// caching). An empty `runs` is equivalent to [`Request::new`].
    ///
    /// # Panics
    ///
    /// Panics if `prompt_len` or `output_len` is zero, or if non-empty `runs` do not sum
    /// to `prompt_len`.
    pub fn with_runs(
        id: u64,
        arrival_time: f64,
        prompt_len: usize,
        output_len: usize,
        runs: Vec<TokenRun>,
    ) -> Self {
        assert!(
            runs.is_empty() || runs.iter().map(|r| r.len).sum::<usize>() == prompt_len,
            "prompt runs must cover the prompt length exactly"
        );
        let mut r = Self::new(id, arrival_time, prompt_len, output_len);
        r.prompt_runs = runs;
        r
    }

    /// Prompt tokens not yet prefilled.
    pub fn remaining_prefill(&self) -> usize {
        self.prompt_len - self.prefilled
    }

    /// Whether the whole prompt has been prefilled.
    pub fn prefill_complete(&self) -> bool {
        self.prefilled == self.prompt_len
    }

    /// Tokens currently held in the KV cache (prefilled prompt + generated output).
    pub fn context_len(&self) -> usize {
        self.prefilled + self.generated
    }

    /// Whether the request has produced all of its output tokens.
    pub fn is_finished(&self) -> bool {
        self.generated >= self.output_len
    }

    /// Whether the request is in one of the decoding states.
    pub fn is_running(&self) -> bool {
        matches!(self.state, RequestState::RunningGpu | RequestState::RunningCpu)
    }

    /// Whether the request was cancelled by the serving layer.
    pub fn is_cancelled(&self) -> bool {
        self.state == RequestState::Cancelled
    }

    /// Total tokens (prompt + full output) this request will process when complete.
    pub fn total_tokens(&self) -> usize {
        self.prompt_len + self.output_len
    }

    /// Records the prefill of `n` more prompt tokens.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the remaining prefill.
    pub fn advance_prefill(&mut self, n: usize) {
        assert!(n <= self.remaining_prefill(), "prefilled past the end of the prompt");
        self.prefilled += n;
        self.state = RequestState::Prefilling;
    }

    /// Records the generation of one output token at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if called on a request that has not completed prefill or already finished.
    pub fn advance_decode(&mut self, now: f64) {
        assert!(self.prefill_complete(), "cannot decode before prefill completes");
        assert!(!self.is_finished(), "request already produced all output tokens");
        if self.generated == 0 {
            self.first_token_time = Some(now);
        }
        self.generated += 1;
        if self.is_finished() {
            self.state = RequestState::Finished;
            self.finish_time = Some(now);
        }
    }

    /// Preempts the request: its KV cache has been discarded, so the whole prompt must be
    /// recomputed. Already-generated output tokens are kept (recomputing them is folded
    /// into the prompt recomputation cost).
    ///
    /// # Panics
    ///
    /// Panics if the request already finished.
    pub fn preempt(&mut self) {
        assert!(!self.is_finished(), "cannot preempt a finished request");
        self.prefilled = 0;
        self.state = RequestState::Waiting;
    }

    /// End-to-end latency (finish − arrival), if finished.
    pub fn latency(&self) -> Option<f64> {
        self.finish_time.map(|t| t - self.arrival_time)
    }

    /// Average per-token latency: full latency divided by the number of output tokens,
    /// the metric Figure 6 and Figure 7 of the paper report.
    pub fn per_token_latency(&self) -> Option<f64> {
        self.latency().map(|l| l / self.output_len as f64)
    }

    /// Time to first output token (first token − arrival), if any token was produced.
    pub fn ttft(&self) -> Option<f64> {
        self.first_token_time.map(|t| t - self.arrival_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_progresses_through_states() {
        let mut r = Request::new(1, 0.5, 10, 3);
        assert_eq!(r.state, RequestState::Waiting);
        assert_eq!(r.remaining_prefill(), 10);

        r.advance_prefill(6);
        assert_eq!(r.state, RequestState::Prefilling);
        assert!(!r.prefill_complete());
        r.advance_prefill(4);
        assert!(r.prefill_complete());
        assert_eq!(r.context_len(), 10);

        r.state = RequestState::RunningGpu;
        r.advance_decode(1.0);
        assert_eq!(r.first_token_time, Some(1.0));
        r.advance_decode(1.5);
        r.advance_decode(2.0);
        assert!(r.is_finished());
        assert_eq!(r.state, RequestState::Finished);
        assert_eq!(r.finish_time, Some(2.0));
        assert_eq!(r.context_len(), 13);
    }

    #[test]
    fn latency_metrics_match_definition() {
        let mut r = Request::new(1, 2.0, 4, 2);
        r.advance_prefill(4);
        r.advance_decode(3.0);
        r.advance_decode(5.0);
        assert_eq!(r.latency(), Some(3.0));
        assert_eq!(r.per_token_latency(), Some(1.5));
        assert_eq!(r.ttft(), Some(1.0));
    }

    #[test]
    fn unfinished_request_has_no_latency() {
        let r = Request::new(1, 0.0, 4, 2);
        assert_eq!(r.latency(), None);
        assert_eq!(r.per_token_latency(), None);
        assert_eq!(r.ttft(), None);
        assert!(!r.is_running());
    }

    #[test]
    fn preemption_resets_prefill_but_keeps_output() {
        let mut r = Request::new(1, 0.0, 10, 5);
        r.advance_prefill(10);
        r.advance_decode(1.0);
        r.preempt();
        assert_eq!(r.prefilled, 0);
        assert_eq!(r.generated, 1);
        assert_eq!(r.state, RequestState::Waiting);
        assert_eq!(r.remaining_prefill(), 10);
        // Recomputation then continues decoding where it left off.
        r.advance_prefill(10);
        r.advance_decode(2.0);
        assert_eq!(r.generated, 2);
        assert_eq!(r.first_token_time, Some(1.0));
    }

    #[test]
    #[should_panic(expected = "finished")]
    fn preempting_finished_request_panics() {
        let mut r = Request::new(1, 0.0, 2, 1);
        r.advance_prefill(2);
        r.advance_decode(0.5);
        r.preempt();
    }

    #[test]
    fn cancelled_state_is_terminal_and_not_finished() {
        let mut r = Request::new(1, 0.0, 10, 5);
        r.advance_prefill(10);
        r.advance_decode(1.0);
        r.state = RequestState::Cancelled;
        assert!(r.is_cancelled());
        assert!(!r.is_running());
        assert!(!r.is_finished(), "cancelled requests never count as completed");
        assert_eq!(r.latency(), None);
        assert_eq!(r.ttft(), Some(1.0), "already-streamed tokens keep their TTFT");
    }

    #[test]
    fn total_tokens_counts_prompt_and_output() {
        let r = Request::new(1, 0.0, 100, 20);
        assert_eq!(r.total_tokens(), 120);
    }

    #[test]
    #[should_panic(expected = "past the end")]
    fn overshooting_prefill_panics() {
        let mut r = Request::new(1, 0.0, 3, 1);
        r.advance_prefill(4);
    }

    #[test]
    #[should_panic(expected = "before prefill")]
    fn decoding_before_prefill_panics() {
        let mut r = Request::new(1, 0.0, 3, 1);
        r.advance_decode(0.0);
    }

    #[test]
    #[should_panic(expected = "already produced")]
    fn decoding_past_the_end_panics() {
        let mut r = Request::new(1, 0.0, 1, 1);
        r.advance_prefill(1);
        r.advance_decode(0.0);
        r.advance_decode(0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_prompt_panics() {
        let _ = Request::new(1, 0.0, 0, 1);
    }

    #[test]
    fn runs_carry_the_prompt_identity() {
        let runs = vec![TokenRun { id: 7, len: 30 }, TokenRun { id: 9, len: 70 }];
        let r = Request::with_runs(1, 0.0, 100, 5, runs.clone());
        assert_eq!(r.prompt_runs, runs);
        assert_eq!(r.prompt_len, 100);
        // Empty runs degrade to a plain request.
        let plain = Request::with_runs(2, 0.0, 100, 5, Vec::new());
        assert!(plain.prompt_runs.is_empty());
    }

    #[test]
    #[should_panic(expected = "cover the prompt")]
    fn mismatched_runs_panic() {
        let _ = Request::with_runs(1, 0.0, 100, 5, vec![TokenRun { id: 7, len: 99 }]);
    }
}
