//! Event-ordered iteration-time estimation: the overlap machinery as components.
//!
//! [`crate::pipeline`] prices an iteration with closed forms — one formula per
//! [`ExecutionMode`] that *assumes* how compute and transfers overlap. This module
//! re-expresses the same machinery as a [`neo_sim::event::TaskGraph`] over four serial
//! resources — the GPU compute stream, the CPU attention pool, and the two directions
//! of each rank's PCIe link (d2h, h2d; per-rank wall-clock pricing per PR 5) — and lets
//! the overlap *fall out of event ordering* instead.
//!
//! The closed-form path stays the pinned reference (all figure drivers regenerate
//! bit-identically under it); the event-ordered path is the cross-check and the seam
//! finer pipelining builds on. The two agree exactly when swap traffic flows in a
//! single direction and the GPU is the per-layer critical resource, and within a small
//! pinned tolerance otherwise, because the event model is *finer* in two ways the
//! closed forms round up:
//!
//! * d2h and h2d traffic ride separate link directions concurrently, whereas the
//!   closed forms serialize them into one per-layer transfer term;
//! * a transfer-bound streamed pipeline drains in `L·t + c` rather than the
//!   steady-state cadence `t + L·t` charged by
//!   [`neo_sim::transfer::double_buffered_time`].
//!
//! Both refinements only ever make the event-ordered estimate *at most one stage time
//! faster* than the closed form, never slower — the tolerance the cross-check tests
//! pin.

use neo_sim::event::{EventRecord, JobId, ResourceId, TaskGraph, TieBreak};
use neo_sim::profiler::IterationCost;

use crate::batch::ScheduleDecision;
use crate::pipeline::{estimate_decision, stage_times, IterationEstimate};
use crate::ExecutionMode;

/// Resource index of the GPU compute stream.
pub const GPU: ResourceId = 0;
/// Resource index of the CPU attention pool.
pub const CPU: ResourceId = 1;
/// Resource index of the device-to-host direction of the rank's PCIe link.
pub const LINK_D2H: ResourceId = 2;
/// Resource index of the host-to-device direction of the rank's PCIe link.
pub const LINK_H2D: ResourceId = 3;
/// Number of serial resources in a decision graph.
pub const N_RESOURCES: usize = 4;
/// Trace names of the decision-graph resources, indexed by [`ResourceId`].
pub const RESOURCE_NAMES: [&str; N_RESOURCES] = ["gpu", "cpu", "link.d2h", "link.h2d"];

/// A decision lowered to a job DAG, plus the closed-form terms needed to convert its
/// makespan back into an [`IterationEstimate`].
struct DecisionGraph {
    graph: TaskGraph,
    /// `L ×` per-layer compute critical path — the part of the makespan that is not
    /// exposed swap time.
    base_compute: f64,
    /// Non-layer stages (embedding, LM head, sampling), outside the event graph.
    pre_post: f64,
}

/// Estimates a decision by event-ordered execution of its job graph.
///
/// Same signature and semantics as [`estimate_decision`], plus the same-tick
/// [`TieBreak`] mode; `total_time` and `exposed_swap_time` come from the simulated
/// makespan while the per-layer diagnostic fields (busy/bubble times, batch size) are
/// shared with the closed-form estimate, which they describe equally well.
pub fn estimate_decision_event(
    cost: &dyn IterationCost,
    decision: &ScheduleDecision,
    whole_swap_out_tokens: usize,
    whole_swap_in_tokens: usize,
    layerwise_overlap: bool,
    tie_break: TieBreak,
) -> IterationEstimate {
    simulate_decision(
        cost,
        decision,
        whole_swap_out_tokens,
        whole_swap_in_tokens,
        layerwise_overlap,
        tie_break,
        false,
    )
    .0
}

/// Like [`estimate_decision_event`], but also returns the exact
/// `(tick, component, event)` dispatch trace — the deterministic-replay surface the
/// golden-trace tests pin.
pub fn trace_decision_event(
    cost: &dyn IterationCost,
    decision: &ScheduleDecision,
    whole_swap_out_tokens: usize,
    whole_swap_in_tokens: usize,
    layerwise_overlap: bool,
    tie_break: TieBreak,
) -> (IterationEstimate, Vec<EventRecord>) {
    simulate_decision(
        cost,
        decision,
        whole_swap_out_tokens,
        whole_swap_in_tokens,
        layerwise_overlap,
        tie_break,
        true,
    )
}

fn simulate_decision(
    cost: &dyn IterationCost,
    decision: &ScheduleDecision,
    whole_swap_out_tokens: usize,
    whole_swap_in_tokens: usize,
    layerwise_overlap: bool,
    tie_break: TieBreak,
    trace: bool,
) -> (IterationEstimate, Vec<EventRecord>) {
    let closed = estimate_decision(
        cost,
        decision,
        whole_swap_out_tokens,
        whole_swap_in_tokens,
        layerwise_overlap,
    );
    let model = match decision.mode {
        ExecutionMode::Asymmetric => build_asymmetric(
            cost,
            decision,
            whole_swap_out_tokens,
            whole_swap_in_tokens,
            layerwise_overlap,
        ),
        ExecutionMode::GpuOnly => build_gpu_only(
            cost,
            decision,
            whole_swap_out_tokens,
            whole_swap_in_tokens,
            layerwise_overlap,
        ),
        ExecutionMode::Streamed => {
            build_streamed(cost, decision, whole_swap_out_tokens, whole_swap_in_tokens)
        }
    };
    let run = model.graph.simulate(tie_break, trace);
    let estimate = IterationEstimate {
        total_time: run.makespan + model.pre_post,
        exposed_swap_time: (run.makespan - model.base_compute).max(0.0),
        ..closed
    };
    (estimate, run.trace)
}

/// Appends one link-chunk job to a direction's FIFO chain (no-op for zero traffic).
fn push_link_job(
    graph: &mut TaskGraph,
    name: String,
    direction: ResourceId,
    duration: f64,
    compute_dep: JobId,
    chain: &mut Option<JobId>,
) {
    if duration <= 0.0 {
        return;
    }
    let mut deps = vec![compute_dep];
    if let Some(prev) = *chain {
        deps.push(prev);
    }
    *chain = Some(graph.push(name, direction, duration, &deps));
}

/// NEO's asymmetric pipelining as a job graph. Per layer, stage A runs batch-0's linear
/// stage against batch-1's CPU attention, stage B runs batch-1's linear stage plus
/// batch-0's GPU attention against batch-0's CPU attention; each stage is a barrier, so
/// the makespan reproduces `L × (max{Tl0, Tca1} + max{Tl1 + Tga0, Tca0})` exactly.
/// Layer-wise swap chunks ride each link direction as soon as the layer's GPU work is
/// done; deferred swaps run as one bulk transfer after the last layer.
fn build_asymmetric(
    cost: &dyn IterationCost,
    decision: &ScheduleDecision,
    whole_swap_out_tokens: usize,
    whole_swap_in_tokens: usize,
    layerwise_overlap: bool,
) -> DecisionGraph {
    let s0 = stage_times(cost, &decision.batch0);
    let s1 = stage_times(cost, &decision.batch1);
    let layers = cost.n_layers();
    let prefill_swap_tokens = decision.batch0.swap_out_tokens() + decision.batch1.swap_out_tokens();
    let out_t = cost.swap_out_time(prefill_swap_tokens) + cost.swap_out_time(whole_swap_out_tokens);
    let in_t = cost.swap_in_time(whole_swap_in_tokens);

    let mut graph = TaskGraph::named(&RESOURCE_NAMES);
    let mut prev: Vec<JobId> = Vec::new();
    let mut d2h: Option<JobId> = None;
    let mut h2d: Option<JobId> = None;
    for i in 0..layers {
        let a_gpu = graph.push(format!("layer{i}/gpu.linear0"), GPU, s0.tl, &prev);
        let a_cpu =
            (s1.tca > 0.0).then(|| graph.push(format!("layer{i}/cpu.attn1"), CPU, s1.tca, &prev));
        let stage_a: Vec<JobId> = std::iter::once(a_gpu).chain(a_cpu).collect();
        let b_gpu =
            graph.push(format!("layer{i}/gpu.linear1+attn0"), GPU, s1.tl + s0.tga, &stage_a);
        let b_cpu = (s0.tca > 0.0)
            .then(|| graph.push(format!("layer{i}/cpu.attn0"), CPU, s0.tca, &stage_a));
        prev = std::iter::once(b_gpu).chain(b_cpu).collect();
        if layerwise_overlap {
            push_link_job(&mut graph, format!("layer{i}/d2h"), LINK_D2H, out_t, b_gpu, &mut d2h);
            push_link_job(&mut graph, format!("layer{i}/h2d"), LINK_H2D, in_t, b_gpu, &mut h2d);
        }
    }
    if !layerwise_overlap {
        // neo-lint: allow(panic-hygiene) -- ModelSpec validation rejects layers == 0; a default node id would silently miswire the job graph
        let last = *prev.first().expect("layers > 0");
        let lf = layers as f64;
        push_link_job(&mut graph, "bulk/d2h".into(), LINK_D2H, lf * out_t, last, &mut d2h);
        push_link_job(&mut graph, "bulk/h2d".into(), LINK_H2D, lf * in_t, last, &mut h2d);
    }

    let per_layer = s0.tl.max(s1.tca) + (s1.tl + s0.tga).max(s0.tca);
    DecisionGraph {
        graph,
        base_compute: layers as f64 * per_layer,
        pre_post: cost.pre_post_time(decision.total_linear_tokens(), decision.batch_size()),
    }
}

/// GPU-only execution as a job graph: one fused compute job per layer on the GPU, with
/// the same swap chains as the asymmetric graph.
fn build_gpu_only(
    cost: &dyn IterationCost,
    decision: &ScheduleDecision,
    whole_swap_out_tokens: usize,
    whole_swap_in_tokens: usize,
    layerwise_overlap: bool,
) -> DecisionGraph {
    let batch0 = &decision.batch0;
    let s0 = stage_times(cost, batch0);
    let layers = cost.n_layers();
    let per_layer = s0.tl + s0.tga;
    let out_t =
        cost.swap_out_time(batch0.swap_out_tokens()) + cost.swap_out_time(whole_swap_out_tokens);
    let in_t = cost.swap_in_time(whole_swap_in_tokens);

    let mut graph = TaskGraph::named(&RESOURCE_NAMES);
    let mut prev: Option<JobId> = None;
    let mut d2h: Option<JobId> = None;
    let mut h2d: Option<JobId> = None;
    for i in 0..layers {
        let deps: Vec<JobId> = prev.into_iter().collect();
        let compute = graph.push(format!("layer{i}/gpu"), GPU, per_layer, &deps);
        prev = Some(compute);
        if layerwise_overlap {
            push_link_job(&mut graph, format!("layer{i}/d2h"), LINK_D2H, out_t, compute, &mut d2h);
            push_link_job(&mut graph, format!("layer{i}/h2d"), LINK_H2D, in_t, compute, &mut h2d);
        }
    }
    if !layerwise_overlap {
        // neo-lint: allow(panic-hygiene) -- ModelSpec validation rejects layers == 0; a default node id would silently miswire the job graph
        let last = prev.expect("layers > 0");
        let lf = layers as f64;
        push_link_job(&mut graph, "bulk/d2h".into(), LINK_D2H, lf * out_t, last, &mut d2h);
        push_link_job(&mut graph, "bulk/h2d".into(), LINK_H2D, lf * in_t, last, &mut h2d);
    }

    DecisionGraph {
        graph,
        base_compute: layers as f64 * per_layer,
        pre_post: cost.pre_post_time(batch0.linear_tokens(), batch0.sequences()),
    }
}

/// PIPO-style streamed execution as a job graph: per layer, the h2d direction streams
/// the layer's host-resident KV into one of two buffers (so stream `i` must wait for
/// compute `i − 2` to release its buffer), the GPU computes over it, and the d2h
/// direction writes the freshly produced KV back out.
fn build_streamed(
    cost: &dyn IterationCost,
    decision: &ScheduleDecision,
    whole_swap_out_tokens: usize,
    whole_swap_in_tokens: usize,
) -> DecisionGraph {
    let b0 = &decision.batch0;
    let b1 = &decision.batch1;
    let layers = cost.n_layers();

    let streamed_ctx = b0.cpu_decode_ctx() + b1.cpu_decode_ctx();
    let streamed_reqs = b0.cpu_decodes.len() + b1.cpu_decodes.len();
    let total_tokens = decision.total_linear_tokens();
    let mut prefill_chunks = b0.prefill_chunks();
    prefill_chunks.extend(b1.prefill_chunks());
    let compute_per_layer = cost.linear_time(total_tokens)
        + cost.gpu_attn_time(
            &prefill_chunks,
            b0.gpu_decode_ctx() + b1.gpu_decode_ctx() + streamed_ctx,
            b0.gpu_decodes.len() + b1.gpu_decodes.len() + streamed_reqs,
        );
    let in_t = cost.swap_in_time(streamed_ctx) + cost.swap_in_time(whole_swap_in_tokens);
    let prefill_swap_tokens = b0.swap_out_tokens() + b1.swap_out_tokens();
    let out_t = cost.swap_out_time(streamed_reqs)
        + cost.swap_out_time(prefill_swap_tokens)
        + cost.swap_out_time(whole_swap_out_tokens);

    let mut graph = TaskGraph::named(&RESOURCE_NAMES);
    let mut computes: Vec<JobId> = Vec::new();
    let mut d2h: Option<JobId> = None;
    for i in 0..layers {
        let stream = (in_t > 0.0).then(|| {
            // Double-buffer depth 2: the link serializes streams FIFO; stream i reuses
            // the buffer compute i − 2 ran out of.
            let deps: Vec<JobId> = (i >= 2).then(|| computes[i - 2]).into_iter().collect();
            graph.push(format!("layer{i}/h2d"), LINK_H2D, in_t, &deps)
        });
        let deps: Vec<JobId> = stream.into_iter().chain(computes.last().copied()).collect();
        let compute = graph.push(format!("layer{i}/gpu"), GPU, compute_per_layer, &deps);
        computes.push(compute);
        push_link_job(&mut graph, format!("layer{i}/d2h"), LINK_D2H, out_t, compute, &mut d2h);
    }

    DecisionGraph {
        graph,
        base_compute: layers as f64 * compute_per_layer,
        pre_post: cost.pre_post_time(total_tokens, decision.batch_size()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{PrefillItem, SubBatch};
    use neo_kvcache::Device;
    use neo_sim::{CostModel, ModelDesc, Testbed};

    fn cost() -> CostModel {
        CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1)
    }

    fn decode_batch(gpu: &[(u64, usize)], cpu: &[(u64, usize)]) -> SubBatch {
        SubBatch { prefills: vec![], gpu_decodes: gpu.to_vec(), cpu_decodes: cpu.to_vec() }
    }

    fn decision(mode: ExecutionMode, batch0: SubBatch, batch1: SubBatch) -> ScheduleDecision {
        ScheduleDecision {
            mode,
            batch0,
            batch1,
            swap_out: vec![],
            swap_in: vec![],
            preempt: vec![],
            demote_disk: vec![],
            promote_disk: vec![],
        }
    }

    #[test]
    fn gpu_only_without_swaps_matches_the_closed_form_exactly() {
        let cm = cost();
        let gpu: Vec<(u64, usize)> = (0..24).map(|i| (i, 700)).collect();
        let d = decision(ExecutionMode::GpuOnly, decode_batch(&gpu, &[]), SubBatch::new());
        let closed = estimate_decision(&cm, &d, 0, 0, true);
        let event = estimate_decision_event(&cm, &d, 0, 0, true, TieBreak::ById);
        assert!(
            (event.total_time - closed.total_time).abs() < 1e-12,
            "event {} closed {}",
            event.total_time,
            closed.total_time
        );
        assert_eq!(event.exposed_swap_time, 0.0);
        assert_eq!(event.batch_size, closed.batch_size);
    }

    #[test]
    fn gpu_only_single_direction_swap_matches_the_closed_form_exactly() {
        // Layer-wise swap-out only (no h2d traffic): the event graph reduces to the
        // layerwise_pipeline_time recurrence, which the closed form solves exactly.
        let cm = cost();
        let mut batch0 = decode_batch(&(0..24).map(|i| (i, 700)).collect::<Vec<_>>(), &[]);
        batch0.prefills.push(PrefillItem {
            req: 99,
            new_tokens: 512,
            ctx_after: 512,
            target: Device::Cpu,
        });
        for whole_out in [0usize, 4000] {
            let d = decision(ExecutionMode::GpuOnly, batch0.clone(), SubBatch::new());
            let closed = estimate_decision(&cm, &d, whole_out, 0, true);
            let event = estimate_decision_event(&cm, &d, whole_out, 0, true, TieBreak::ById);
            let rel = (event.total_time - closed.total_time).abs() / closed.total_time;
            assert!(rel < 1e-12, "whole_out {whole_out}: relative difference {rel}");
            assert!((event.exposed_swap_time - closed.exposed_swap_time).abs() < 1e-9);
        }
    }

    #[test]
    fn deferred_single_direction_swap_matches_the_closed_form_exactly() {
        let cm = cost();
        let gpu: Vec<(u64, usize)> = (0..16).map(|i| (i, 600)).collect();
        let d = decision(ExecutionMode::GpuOnly, decode_batch(&gpu, &[]), SubBatch::new());
        let closed = estimate_decision(&cm, &d, 3000, 0, false);
        let event = estimate_decision_event(&cm, &d, 3000, 0, false, TieBreak::ById);
        assert!((event.total_time - closed.total_time).abs() < 1e-9);
        assert!((event.exposed_swap_time - closed.exposed_swap_time).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_gpu_critical_matches_the_closed_form_exactly() {
        // A small CPU sub-batch hides entirely under the GPU shadow, so the GPU is the
        // critical resource of both stages and the barrier cadence equals the closed
        // form's per-layer term.
        let cm = cost();
        let gpu: Vec<(u64, usize)> = (0..48).map(|i| (i, 900)).collect();
        let cpu: Vec<(u64, usize)> = (100..108).map(|i| (i, 900)).collect();
        let d =
            decision(ExecutionMode::Asymmetric, decode_batch(&gpu, &[]), decode_batch(&[], &cpu));
        let closed = estimate_decision(&cm, &d, 0, 0, true);
        let event = estimate_decision_event(&cm, &d, 0, 0, true, TieBreak::ById);
        assert!(
            (event.total_time - closed.total_time).abs() / closed.total_time < 1e-12,
            "event {} closed {}",
            event.total_time,
            closed.total_time
        );
    }

    #[test]
    fn cpu_bound_asymmetric_still_reproduces_the_barrier_cadence() {
        // Oversized batch-1: the CPU attention dominates stage A. The barriers make the
        // compute makespan exactly L × per_layer either way.
        let cm = cost();
        let gpu: Vec<(u64, usize)> = (0..16).map(|i| (i, 500)).collect();
        let cpu: Vec<(u64, usize)> = (100..400).map(|i| (i, 800)).collect();
        let d =
            decision(ExecutionMode::Asymmetric, decode_batch(&gpu, &[]), decode_batch(&[], &cpu));
        let closed = estimate_decision(&cm, &d, 0, 0, true);
        let event = estimate_decision_event(&cm, &d, 0, 0, true, TieBreak::ById);
        assert!((event.total_time - closed.total_time).abs() / closed.total_time < 1e-12);
    }

    #[test]
    fn dual_direction_swaps_are_at_most_one_closed_form_but_never_slower() {
        // With both d2h and h2d traffic the closed form serializes the two directions
        // into one per-layer transfer term; the event model runs them on separate link
        // directions, so it can only be faster — and by no more than the serialized
        // transfer term itself.
        let cm = cost();
        let gpu: Vec<(u64, usize)> = (0..24).map(|i| (i, 700)).collect();
        let d = decision(ExecutionMode::GpuOnly, decode_batch(&gpu, &[]), SubBatch::new());
        let closed = estimate_decision(&cm, &d, 2000, 2000, true);
        let event = estimate_decision_event(&cm, &d, 2000, 2000, true, TieBreak::ById);
        assert!(event.total_time <= closed.total_time + 1e-12);
        let slack = cm.swap_out_time(2000) + cm.swap_in_time(2000);
        assert!(closed.total_time - event.total_time <= cm.n_layers() as f64 * slack + 1e-12);
    }

    #[test]
    fn streamed_agrees_with_the_closed_form_within_one_stage_time() {
        let cm = cost();
        for ctx in [100usize, 1000, 4000] {
            let streamed: Vec<(u64, usize)> = (0..16).map(|i| (i, ctx)).collect();
            let d =
                decision(ExecutionMode::Streamed, decode_batch(&[], &streamed), SubBatch::new());
            let closed = estimate_decision(&cm, &d, 0, 0, true);
            let event = estimate_decision_event(&cm, &d, 0, 0, true, TieBreak::ById);
            // The event pipeline drains in L·max(c,t) + min(c,t) instead of the
            // closed form's t + L·max(c,t): never slower, within one stage time.
            assert!(event.total_time <= closed.total_time + 1e-12, "ctx {ctx}");
            let stage = cm.swap_in_time(16 * ctx) + cm.swap_out_time(16);
            let compute_stage = closed.gpu_busy_per_layer;
            assert!(
                closed.total_time - event.total_time <= stage.max(compute_stage) + 1e-12,
                "ctx {ctx}: closed {} event {}",
                closed.total_time,
                event.total_time
            );
        }
    }

    #[test]
    fn streamed_exposure_is_transfer_bound_for_long_contexts() {
        let cm = cost();
        let long: Vec<(u64, usize)> = (0..16).map(|i| (i, 4000)).collect();
        let d = decision(ExecutionMode::Streamed, decode_batch(&[], &long), SubBatch::new());
        let event = estimate_decision_event(&cm, &d, 0, 0, true, TieBreak::ById);
        assert!(event.exposed_swap_time > 0.0, "long contexts must expose transfer time");
    }

    #[test]
    fn fuzzed_tie_break_leaves_the_estimate_bit_identical() {
        let cm = cost();
        let gpu: Vec<(u64, usize)> = (0..32).map(|i| (i, 800)).collect();
        let cpu: Vec<(u64, usize)> = (100..124).map(|i| (i, 800)).collect();
        let d =
            decision(ExecutionMode::Asymmetric, decode_batch(&gpu, &[]), decode_batch(&[], &cpu));
        let reference = estimate_decision_event(&cm, &d, 1500, 500, true, TieBreak::ById);
        for seed in [1u64, 7, 42, 0xFEED] {
            let fuzzed =
                estimate_decision_event(&cm, &d, 1500, 500, true, TieBreak::Fuzzed { seed });
            assert_eq!(reference, fuzzed, "seed {seed}");
        }
    }

    #[test]
    fn trace_is_deterministic_and_time_ordered() {
        let cm = cost();
        let gpu: Vec<(u64, usize)> = (0..8).map(|i| (i, 400)).collect();
        let d = decision(ExecutionMode::GpuOnly, decode_batch(&gpu, &[]), SubBatch::new());
        let (est, trace) = trace_decision_event(&cm, &d, 0, 0, true, TieBreak::ById);
        assert!(!trace.is_empty());
        assert!(trace.windows(2).all(|w| w[0].tick <= w[1].tick));
        assert_eq!(trace.last().unwrap().tick + cm.pre_post_time(8, 8), est.total_time);
        let (_, again) = trace_decision_event(&cm, &d, 0, 0, true, TieBreak::ById);
        assert_eq!(trace, again);
    }
}
