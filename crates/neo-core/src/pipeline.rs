//! Iteration-time estimation for asymmetric pipelining and GPU-only execution.
//!
//! This module turns a candidate [`ScheduleDecision`] into the iteration-time estimate the
//! paper's scheduler maximises throughput with (§3.2):
//!
//! ```text
//! T ≈ L × ( max{Tl0, Tca1} + max{Tl1 + Tga0, Tca0} )      (asymmetric, eq. in §3.2)
//! T ≈ L × ( Tl0 + Tga0 )                                   (GPU-only)
//! ```
//!
//! plus the non-layer stages (embedding, LM head, sampling) and the *exposed* part of any
//! KV swap traffic. Swap-out of newly prefilled KV is overlapped layer by layer with
//! compute when [`crate::EngineConfig::layerwise_swap_overlap`] is on; whole-sequence
//! swap-in/swap-out decided by the scheduler is charged through the PCIe model directly.
//!
//! All PCIe terms obtained from [`IterationCost`] are *per-rank wall-clock* times: under
//! tensor parallelism every rank moves only its `1/tp` KV shard over its own link, in
//! parallel with the other ranks, so the estimates below need no further `tp` scaling.
//! The collective costs of sharded execution (per-layer all-reduces, the LM-head
//! all-gather) are folded into the linear-stage and `pre_post_time` queries by the cost
//! model itself.

use neo_kvcache::SwapPlan;
use neo_sim::profiler::IterationCost;

use crate::batch::{ScheduleDecision, SubBatch};
use crate::ExecutionMode;

/// Breakdown of one iteration's estimated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationEstimate {
    /// Total wall-clock time of the iteration in seconds.
    pub total_time: f64,
    /// Number of sequences producing an output token (the paper's `x`).
    pub batch_size: usize,
    /// Per-layer GPU busy time (linear stages + GPU attention).
    pub gpu_busy_per_layer: f64,
    /// Per-layer CPU busy time (offloaded attention).
    pub cpu_busy_per_layer: f64,
    /// Per-layer pipeline bubble (idle time on the critical path).
    pub bubble_per_layer: f64,
    /// Seconds of swap traffic that could not be hidden behind compute.
    pub exposed_swap_time: f64,
}

impl IterationEstimate {
    /// Estimated decode throughput of the iteration, in sequences per second
    /// (`x / T`, the quantity the paper's greedy rule maximises).
    pub fn throughput(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        self.batch_size as f64 / self.total_time
    }

    /// An estimate representing an idle scheduling quantum of `dt` seconds.
    pub fn idle(dt: f64) -> Self {
        Self {
            total_time: dt,
            batch_size: 0,
            gpu_busy_per_layer: 0.0,
            cpu_busy_per_layer: 0.0,
            bubble_per_layer: 0.0,
            exposed_swap_time: 0.0,
        }
    }
}

/// Per-layer stage times of one sub-batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTimes {
    /// Linear-stage time `Tl = Tpr + Tpo` on the GPU.
    pub tl: f64,
    /// GPU attention time `Tga` (prefill attention + GPU decode attention).
    pub tga: f64,
    /// CPU attention time `Tca` (offloaded decode attention).
    pub tca: f64,
}

/// Computes the per-layer stage times of a sub-batch under a cost model.
pub fn stage_times(cost: &dyn IterationCost, batch: &SubBatch) -> StageTimes {
    let tl = cost.linear_time(batch.linear_tokens());
    let tga = cost.gpu_attn_time(
        &batch.prefill_chunks(),
        batch.gpu_decode_ctx(),
        batch.gpu_decodes.len(),
    );
    let tca = cost.cpu_attn_time(batch.cpu_decode_ctx(), batch.cpu_decodes.len());
    StageTimes { tl, tga, tca }
}

/// The paper's balancing inequalities (step 4 of §3.2), with relative slack: the CPU
/// attention of each sub-batch must hide under the other's GPU shadow,
/// `Tca1 ≤ Tl0` and `Tca0 ≤ Tl1 + Tga0`.
///
/// Shared by `NeoScheduler` (which enforces it while placing CPU decodes) and the
/// SpecOffload baseline (which checks it *after* speculatively over-placing them), so
/// the two policies always judge "hidden" by the same rule.
pub fn balanced(
    cost: &dyn IterationCost,
    batch0: &SubBatch,
    batch1: &SubBatch,
    slack: f64,
) -> bool {
    let s0 = stage_times(cost, batch0);
    let s1 = stage_times(cost, batch1);
    let tol = 1.0 + slack;
    s1.tca <= s0.tl * tol && s0.tca <= (s1.tl + s0.tga) * tol
}

/// Estimates one iteration of NEO's asymmetric pipelining.
///
/// `whole_swap_out_tokens` / `whole_swap_in_tokens` are the tokens of whole-sequence swaps
/// the scheduler decided on (step 2 of §3.2); newly prefilled KV headed for the CPU cache
/// is taken from the decision's batch-0 and overlapped layer-wise when
/// `layerwise_overlap` is true.
pub fn estimate_asymmetric(
    cost: &dyn IterationCost,
    decision: &ScheduleDecision,
    whole_swap_out_tokens: usize,
    whole_swap_in_tokens: usize,
    layerwise_overlap: bool,
) -> IterationEstimate {
    let s0 = stage_times(cost, &decision.batch0);
    let s1 = stage_times(cost, &decision.batch1);
    let layers = cost.n_layers() as f64;

    // The paper's iteration formula: the two sub-batches alternate long and short stages.
    let stage_a = s0.tl.max(s1.tca);
    let stage_b = (s1.tl + s0.tga).max(s0.tca);
    let per_layer = stage_a + stage_b;

    let gpu_busy = s0.tl + s1.tl + s0.tga;
    let cpu_busy = s0.tca + s1.tca;
    let bubble = (per_layer - gpu_busy).max(0.0);

    // Layer-wise swap-out of freshly prefilled KV destined for the CPU cache.
    let prefill_swap_tokens = decision.batch0.swap_out_tokens() + decision.batch1.swap_out_tokens();
    let per_layer_transfer = cost.swap_out_time(prefill_swap_tokens)
        + cost.swap_out_time(whole_swap_out_tokens)
        + cost.swap_in_time(whole_swap_in_tokens);
    let exposed_swap = if layerwise_overlap {
        SwapPlan::layerwise_exposed_time(cost.n_layers(), per_layer, per_layer_transfer)
    } else {
        SwapPlan::deferred_exposed_time(cost.n_layers(), per_layer_transfer)
    };

    let total_tokens = decision.total_linear_tokens();
    let batch_size = decision.batch_size();
    let pre_post = cost.pre_post_time(total_tokens, batch_size);

    IterationEstimate {
        total_time: layers * per_layer + exposed_swap + pre_post,
        batch_size,
        gpu_busy_per_layer: gpu_busy,
        cpu_busy_per_layer: cpu_busy,
        bubble_per_layer: bubble,
        exposed_swap_time: exposed_swap,
    }
}

/// Estimates one iteration of plain GPU-only execution of batch-0 (no offloaded attention,
/// no batch-1).
pub fn estimate_gpu_only(
    cost: &dyn IterationCost,
    batch0: &SubBatch,
    whole_swap_out_tokens: usize,
    whole_swap_in_tokens: usize,
    layerwise_overlap: bool,
) -> IterationEstimate {
    let s0 = stage_times(cost, batch0);
    debug_assert_eq!(s0.tca, 0.0, "GPU-only batches must not contain CPU decodes");
    let layers = cost.n_layers() as f64;
    let per_layer = s0.tl + s0.tga;

    let per_layer_transfer = cost.swap_out_time(batch0.swap_out_tokens())
        + cost.swap_out_time(whole_swap_out_tokens)
        + cost.swap_in_time(whole_swap_in_tokens);
    let exposed_swap = if layerwise_overlap {
        SwapPlan::layerwise_exposed_time(cost.n_layers(), per_layer, per_layer_transfer)
    } else {
        SwapPlan::deferred_exposed_time(cost.n_layers(), per_layer_transfer)
    };

    let batch_size = batch0.sequences();
    let pre_post = cost.pre_post_time(batch0.linear_tokens(), batch_size);

    IterationEstimate {
        total_time: layers * per_layer + exposed_swap + pre_post,
        batch_size,
        gpu_busy_per_layer: per_layer,
        cpu_busy_per_layer: 0.0,
        bubble_per_layer: 0.0,
        exposed_swap_time: exposed_swap,
    }
}

/// Estimates one iteration of PIPO-style pipelined KV streaming.
///
/// In [`ExecutionMode::Streamed`] the `cpu_decodes` of both sub-batches are *streamed*
/// decodes: their KV cache stays host-resident, but their attention runs on the **GPU**
/// over KV brought in layer by layer, double-buffered with compute (the PIPO design).
/// Per layer, the compute stage covers the linear stage plus GPU attention over all
/// decodes (GPU-resident and streamed alike); the transfer stage covers streaming the
/// cached KV in, writing the freshly generated KV token of each streamed request back
/// out, plus any whole-sequence swap traffic. The iteration time follows
/// [`neo_sim::transfer::double_buffered_time`]: transfers hide behind compute until the
/// PCIe stage becomes the bottleneck, after which the pipeline runs at the DMA engine's
/// pace — which is exactly how PIPO degrades as contexts grow.
pub fn estimate_streamed(
    cost: &dyn IterationCost,
    decision: &ScheduleDecision,
    whole_swap_out_tokens: usize,
    whole_swap_in_tokens: usize,
) -> IterationEstimate {
    let b0 = &decision.batch0;
    let b1 = &decision.batch1;
    let layers = cost.n_layers();

    let streamed_ctx = b0.cpu_decode_ctx() + b1.cpu_decode_ctx();
    let streamed_reqs = b0.cpu_decodes.len() + b1.cpu_decodes.len();
    let gpu_decode_ctx = b0.gpu_decode_ctx() + b1.gpu_decode_ctx();
    let gpu_decode_reqs = b0.gpu_decodes.len() + b1.gpu_decodes.len();

    let total_tokens = decision.total_linear_tokens();
    let mut prefill_chunks = b0.prefill_chunks();
    prefill_chunks.extend(b1.prefill_chunks());

    // Compute stage: one fused batch — streamed attention runs on the GPU.
    let tl = cost.linear_time(total_tokens);
    let tga = cost.gpu_attn_time(
        &prefill_chunks,
        gpu_decode_ctx + streamed_ctx,
        gpu_decode_reqs + streamed_reqs,
    );
    let compute_per_layer = tl + tga;

    // Transfer stage: stream cached KV in, write fresh streamed KV (one token per
    // streamed request) and CPU-targeted prefill KV out, plus whole-sequence swaps.
    let prefill_swap_tokens = b0.swap_out_tokens() + b1.swap_out_tokens();
    let transfer_per_layer = cost.swap_in_time(streamed_ctx)
        + cost.swap_in_time(whole_swap_in_tokens)
        + cost.swap_out_time(streamed_reqs)
        + cost.swap_out_time(prefill_swap_tokens)
        + cost.swap_out_time(whole_swap_out_tokens);

    let pipeline_time =
        neo_sim::transfer::double_buffered_time(layers, compute_per_layer, transfer_per_layer);
    let exposed_swap =
        neo_sim::transfer::double_buffered_exposed(layers, compute_per_layer, transfer_per_layer);

    let batch_size = decision.batch_size();
    let pre_post = cost.pre_post_time(total_tokens, batch_size);

    IterationEstimate {
        total_time: pipeline_time + pre_post,
        batch_size,
        gpu_busy_per_layer: compute_per_layer,
        cpu_busy_per_layer: 0.0,
        bubble_per_layer: (transfer_per_layer - compute_per_layer).max(0.0),
        exposed_swap_time: exposed_swap,
    }
}

/// Estimates a decision in whichever mode it selects.
pub fn estimate_decision(
    cost: &dyn IterationCost,
    decision: &ScheduleDecision,
    whole_swap_out_tokens: usize,
    whole_swap_in_tokens: usize,
    layerwise_overlap: bool,
) -> IterationEstimate {
    match decision.mode {
        ExecutionMode::Asymmetric => estimate_asymmetric(
            cost,
            decision,
            whole_swap_out_tokens,
            whole_swap_in_tokens,
            layerwise_overlap,
        ),
        ExecutionMode::GpuOnly => estimate_gpu_only(
            cost,
            &decision.batch0,
            whole_swap_out_tokens,
            whole_swap_in_tokens,
            layerwise_overlap,
        ),
        ExecutionMode::Streamed => {
            estimate_streamed(cost, decision, whole_swap_out_tokens, whole_swap_in_tokens)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::PrefillItem;
    use neo_kvcache::Device;
    use neo_sim::{CostModel, ModelDesc, Testbed};

    fn cost() -> CostModel {
        CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1)
    }

    fn decode_batch(gpu: &[(u64, usize)], cpu: &[(u64, usize)]) -> SubBatch {
        SubBatch { prefills: vec![], gpu_decodes: gpu.to_vec(), cpu_decodes: cpu.to_vec() }
    }

    #[test]
    fn small_cpu_sub_batch_hides_under_the_gpu_shadow() {
        // This is the core mechanism behind NEO's gains: when GPU memory caps the GPU
        // batch at 64 requests, a *small* extra batch-1 of CPU-resident requests adds
        // sequences to the iteration while its CPU attention hides under batch-0's linear
        // stage, so throughput (sequences per second) goes up versus GPU-only.
        let cm = cost();
        let gpu_batch: Vec<(u64, usize)> = (0..64).map(|i| (i, 1000)).collect();
        // Include a prefill chunk, as NEO's batch-0 normally does, to lengthen Tl0.
        let mut batch0 = decode_batch(&gpu_batch, &[]);
        batch0.prefills.push(PrefillItem {
            req: 999,
            new_tokens: 768,
            ctx_after: 768,
            target: Device::Gpu,
        });
        let gpu_only = estimate_gpu_only(&cm, &batch0, 0, 0, true);

        let cpu_extra: Vec<(u64, usize)> = (100..116).map(|i| (i, 1000)).collect();
        let decision = ScheduleDecision {
            mode: ExecutionMode::Asymmetric,
            batch0: batch0.clone(),
            batch1: decode_batch(&[], &cpu_extra),
            swap_out: vec![],
            swap_in: vec![],
            preempt: vec![],
            demote_disk: vec![],
            promote_disk: vec![],
        };
        let asym = estimate_asymmetric(&cm, &decision, 0, 0, true);
        assert_eq!(asym.batch_size, gpu_only.batch_size + 16);
        assert!(asym.cpu_busy_per_layer > 0.0);
        // The offloaded attention runs on the CPU, not the GPU (the only extra GPU work is
        // batch-1's small linear stage).
        assert!(asym.gpu_busy_per_layer <= gpu_only.gpu_busy_per_layer * 1.3);
        // More sequences per iteration at (nearly) the same iteration time => higher
        // estimated throughput — the quantity the greedy rule compares.
        assert!(
            asym.throughput() > gpu_only.throughput(),
            "asym {} vs gpu-only {}",
            asym.throughput(),
            gpu_only.throughput()
        );
    }

    #[test]
    fn asymmetric_with_empty_batch1_degenerates_towards_gpu_only() {
        let cm = cost();
        let gpu: Vec<(u64, usize)> = (0..16).map(|i| (i, 500)).collect();
        let decision = ScheduleDecision {
            mode: ExecutionMode::Asymmetric,
            batch0: decode_batch(&gpu, &[]),
            batch1: SubBatch::new(),
            swap_out: vec![],
            swap_in: vec![],
            preempt: vec![],
            demote_disk: vec![],
            promote_disk: vec![],
        };
        let asym = estimate_asymmetric(&cm, &decision, 0, 0, true);
        let gpu_only = estimate_gpu_only(&cm, &decision.batch0, 0, 0, true);
        let rel = (asym.total_time - gpu_only.total_time).abs() / gpu_only.total_time;
        assert!(rel < 0.05, "relative difference {rel}");
    }

    #[test]
    fn larger_cpu_batch_eventually_makes_cpu_the_bottleneck() {
        let cm = cost();
        let gpu: Vec<(u64, usize)> = (0..32).map(|i| (i, 800)).collect();
        let small_cpu: Vec<(u64, usize)> = (100..108).map(|i| (i, 800)).collect();
        let big_cpu: Vec<(u64, usize)> = (100..400).map(|i| (i, 800)).collect();

        let mk = |cpu: &[(u64, usize)]| ScheduleDecision {
            mode: ExecutionMode::Asymmetric,
            batch0: decode_batch(&gpu, &[]),
            batch1: decode_batch(&[], cpu),
            swap_out: vec![],
            swap_in: vec![],
            preempt: vec![],
            demote_disk: vec![],
            promote_disk: vec![],
        };
        let small = estimate_asymmetric(&cm, &mk(&small_cpu), 0, 0, true);
        let big = estimate_asymmetric(&cm, &mk(&big_cpu), 0, 0, true);
        // A small offload fits in the GPU shadow (little bubble); a huge one cannot.
        assert!(small.bubble_per_layer < big.bubble_per_layer);
        assert!(big.total_time > small.total_time);
    }

    #[test]
    fn layerwise_overlap_beats_deferred_swap() {
        let cm = cost();
        let batch0 = SubBatch {
            prefills: vec![PrefillItem {
                req: 1,
                new_tokens: 1024,
                ctx_after: 1024,
                target: Device::Cpu,
            }],
            gpu_decodes: (2..40).map(|i| (i, 600)).collect(),
            cpu_decodes: vec![],
        };
        let decision = ScheduleDecision {
            mode: ExecutionMode::Asymmetric,
            batch0,
            batch1: SubBatch::new(),
            swap_out: vec![],
            swap_in: vec![],
            preempt: vec![],
            demote_disk: vec![],
            promote_disk: vec![],
        };
        let overlapped = estimate_asymmetric(&cm, &decision, 0, 0, true);
        let deferred = estimate_asymmetric(&cm, &decision, 0, 0, false);
        assert!(overlapped.exposed_swap_time < deferred.exposed_swap_time);
        assert!(overlapped.total_time < deferred.total_time);
    }

    #[test]
    fn throughput_is_batch_over_time() {
        let est = IterationEstimate {
            total_time: 0.5,
            batch_size: 100,
            gpu_busy_per_layer: 0.0,
            cpu_busy_per_layer: 0.0,
            bubble_per_layer: 0.0,
            exposed_swap_time: 0.0,
        };
        assert!((est.throughput() - 200.0).abs() < 1e-9);
        assert_eq!(IterationEstimate::idle(0.1).throughput(), 0.0);
    }

    #[test]
    fn streamed_transfer_hides_until_the_pipeline_is_transfer_bound() {
        let cm = cost();
        // A short-context streamed batch: KV streaming hides behind the linear stage.
        let short: Vec<(u64, usize)> = (0..16).map(|i| (i, 100)).collect();
        let mk = |cpu: &[(u64, usize)]| ScheduleDecision {
            mode: ExecutionMode::Streamed,
            batch0: decode_batch(&[], cpu),
            batch1: SubBatch::new(),
            swap_out: vec![],
            swap_in: vec![],
            preempt: vec![],
            demote_disk: vec![],
            promote_disk: vec![],
        };
        let hidden = estimate_streamed(&cm, &mk(&short), 0, 0);
        // A long-context streamed batch: the PCIe link re-carries far more KV per layer
        // than the compute stage lasts, so exposure grows sharply.
        let long: Vec<(u64, usize)> = (0..16).map(|i| (i, 4000)).collect();
        let bound = estimate_streamed(&cm, &mk(&long), 0, 0);
        assert!(hidden.exposed_swap_time < bound.exposed_swap_time);
        assert!(bound.bubble_per_layer > 0.0, "long contexts must be transfer-bound");
        assert!(bound.total_time > hidden.total_time);
        // Streamed attention runs on the GPU: no CPU busy time in either estimate.
        assert_eq!(hidden.cpu_busy_per_layer, 0.0);
        assert_eq!(bound.cpu_busy_per_layer, 0.0);
    }

    #[test]
    fn streamed_estimate_counts_both_sub_batches() {
        let cm = cost();
        let d = ScheduleDecision {
            mode: ExecutionMode::Streamed,
            batch0: decode_batch(&[(1, 300)], &[(2, 500)]),
            batch1: decode_batch(&[], &[(3, 400)]),
            swap_out: vec![],
            swap_in: vec![],
            preempt: vec![],
            demote_disk: vec![],
            promote_disk: vec![],
        };
        let est = estimate_streamed(&cm, &d, 0, 0);
        assert_eq!(est.batch_size, 3);
        assert!(est.total_time > 0.0 && est.gpu_busy_per_layer > 0.0);
        // Whole-sequence swap traffic adds to the streamed pipeline's transfer stage.
        let with_swaps = estimate_streamed(&cm, &d, 2000, 2000);
        assert!(with_swaps.total_time > est.total_time);
    }

    #[test]
    fn estimate_decision_dispatches_on_mode() {
        let cm = cost();
        let gpu: Vec<(u64, usize)> = (0..8).map(|i| (i, 300)).collect();
        let mut d = ScheduleDecision {
            mode: ExecutionMode::GpuOnly,
            batch0: decode_batch(&gpu, &[]),
            batch1: SubBatch::new(),
            swap_out: vec![],
            swap_in: vec![],
            preempt: vec![],
            demote_disk: vec![],
            promote_disk: vec![],
        };
        let a = estimate_decision(&cm, &d, 0, 0, true);
        d.mode = ExecutionMode::Asymmetric;
        let b = estimate_decision(&cm, &d, 0, 0, true);
        d.mode = ExecutionMode::Streamed;
        let c = estimate_decision(&cm, &d, 0, 0, true);
        assert!(a.total_time > 0.0 && b.total_time > 0.0 && c.total_time > 0.0);
    }
}
