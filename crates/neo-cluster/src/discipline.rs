//! Queue disciplines: how the router binds frontend arrivals to engines.
//!
//! The taxonomy follows the multi-queue simulators used for NIC/core scheduling
//! (cFCFS vs dFCFS with an indirection table) extended with the offload-aware signal
//! this workspace is about: per-rank KV headroom.
//!
//! **Binding time** is the contract that separates them. `RoundRobin`, `DFcfs` and
//! `LeastKv` are *early binding*: the engine is chosen at the request's frontend
//! arrival and recorded then. `CFcfs` is *late binding*: arrivals queue centrally and
//! the engine is chosen at dispatch time, when an engine has room — its
//! [`crate::RouteRecord::time`] is the dispatch instant, not the arrival.

use serde::{Deserialize, Serialize};

/// A routing discipline for the cluster front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discipline {
    /// Null baseline: engine `k mod N` for the `k`-th arrival. Ignores load and
    /// capacity entirely — the control every smarter discipline must beat.
    RoundRobin,
    /// Centralized FCFS: one central FIFO; a request is dispatched (FIFO order) to the
    /// least-outstanding engine as soon as some engine's outstanding work (server
    /// queue depth + requests in flight on its link) is below the configured dispatch
    /// window. Late binding keeps the queue work-conserving, but the depth signal
    /// counts *requests*, not tokens — it cannot tell a T4 from an H100.
    CFcfs,
    /// Distributed FCFS: early binding through an indirection table — arrival `k`
    /// lands on `table[k mod E]`, the table initialized round-robin over engines.
    /// Every `rebalance_every` arrivals one table entry is remapped from the deepest
    /// to the shallowest engine, the RSS-style correction knob real distributed
    /// queues get.
    DFcfs,
    /// Least-KV-occupancy: early binding to the engine whose KV pressure —
    /// `(max per-rank used tokens + prompt tokens routed but not yet prefilled) /
    /// min per-rank KV capacity` from [`neo_core::Engine::rank_occupancy`] and
    /// [`neo_core::Engine::rank_budgets`] — is lowest. Capacity-aware, so a
    /// heterogeneous fleet loads its T4 proportionally to the T4's cache, not to its
    /// share of the request count.
    LeastKv,
}

impl Discipline {
    /// Every discipline, in evaluation order. This is the registry the figure-JSON
    /// schema tests check `results/fig_cluster_sweep.json` labels against.
    pub const ALL: [Discipline; 4] =
        [Discipline::RoundRobin, Discipline::CFcfs, Discipline::DFcfs, Discipline::LeastKv];

    /// Display label used in figure JSON and tables.
    pub fn label(self) -> &'static str {
        match self {
            Discipline::RoundRobin => "round-robin",
            Discipline::CFcfs => "cFCFS",
            Discipline::DFcfs => "dFCFS",
            Discipline::LeastKv => "least-kv",
        }
    }

    /// Looks a discipline up by its display label.
    pub fn from_label(label: &str) -> Option<Discipline> {
        Discipline::ALL.into_iter().find(|d| d.label() == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_resolvable() {
        let labels: Vec<&str> = Discipline::ALL.iter().map(|d| d.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        for d in Discipline::ALL {
            assert_eq!(Discipline::from_label(d.label()), Some(d));
        }
        assert_eq!(Discipline::from_label("fifo"), None);
    }

    #[test]
    fn serde_round_trip() {
        for d in Discipline::ALL {
            let json = serde_json::to_string(&d).unwrap();
            let back: Discipline = serde_json::from_str(&json).unwrap();
            assert_eq!(d, back);
        }
    }
}
