//! Cluster-scale serving: a routed fleet of NEO engines under one simulated clock.
//!
//! The single-engine story ([`neo_serve::Server`] over [`neo_core::Engine`]) serves one
//! GPU node. Millions of users mean a *fleet*: N servers — possibly heterogeneous
//! (T4 + A10G + H100, each paired with the model it serves in the paper's Table 1) —
//! fronted by a router that decides, per request, which engine gets it. This crate runs
//! that fleet as one discrete-event simulation on the [`neo_sim::event::EventEngine`]:
//!
//! * each engine/server pair is a [`neo_sim::event::Component`] woken at its
//!   [`neo_serve::Server::next_activity`] time and advanced with
//!   [`neo_serve::Server::poll`];
//! * each frontend→engine network hop is a serial FIFO link
//!   ([`neo_sim::event::SerialLine`]) with its own component;
//! * the router is a component woken at frontend arrival times, binding requests to
//!   engines under a pluggable [`Discipline`].
//!
//! # Order-invariance by construction
//!
//! The event engine's contract is that same-tick dispatch order never matters
//! ([`neo_sim::event::TieBreak::Fuzzed`] exists to prove it). Routing is the classic
//! way to violate that: a router reading engine queue depths at tick *t* sees different
//! depths depending on whether an engine's same-tick completion was dispatched first.
//! This crate sidesteps the race structurally: components are pure *alarm clocks*.
//! Every [`neo_sim::event::Component::tick`] funnels into one
//! `ClusterState::settle(now)` pass that processes **all** cluster events due at or
//! before `now` in a fixed global order — ascending time, then (within one instant)
//! link deliveries → engine steps → frontend arrivals → central dispatch. Whichever
//! alarm fires first settles the whole cluster identically, so every output (routing
//! trace included) is bit-identical across fuzzed tie-break seeds. The
//! `cluster_determinism` integration suite proptests this over ≥ 32 seeds and CI runs
//! a fixed `NEO_EVENT_FUZZ_SEED` matrix.
//!
//! # Failure model
//!
//! Faults are data, not chaos: a [`FaultPlan`] schedules engine fail-stops and
//! recoveries, link degradations, and per-request deadline expiries at exact
//! simulated instants, applied in the same fixed settle order as everything else —
//! so a fault scenario is as bit-reproducible as a faultless run (the
//! `fault_determinism` suite proves it across fuzzed seeds). When an engine dies the
//! router marks it down and, with failover enabled, re-dispatches its orphaned
//! requests to survivors under capped exponential backoff and a per-request retry
//! budget; requests that exhaust the budget, miss an [`neo_workload::SloPolicy`]
//! deadline, or fit no engine are shed with a typed [`neo_serve::DropReason`].
//! Every request ends in exactly one terminal state: completed, or dropped with a
//! recorded reason ([`ClusterReport::drops`]).
//!
//! # Example
//!
//! ```
//! use neo_cluster::{Cluster, ClusterConfig, Discipline};
//! use neo_core::{Engine, EngineConfig, NeoScheduler};
//! use neo_sim::{CostModel, ModelDesc, Testbed};
//! use neo_workload::{synthetic, ArrivalProcess};
//!
//! let engine = |_| {
//!     let cost = CostModel::new(ModelDesc::llama3_8b(), Testbed::g5_xlarge(4), 1);
//!     Engine::new(cost, EngineConfig::default(), Box::new(NeoScheduler::new()))
//! };
//! let fleet = vec![("a10g-0".to_string(), engine(0)), ("a10g-1".to_string(), engine(1))];
//! let trace = synthetic(8, 300, 16, ArrivalProcess::Uniform { rate: 4.0 }, 7);
//! let config = ClusterConfig { discipline: Discipline::LeastKv, ..ClusterConfig::default() };
//! let report = Cluster::new(fleet, &trace, config).run();
//! assert_eq!(report.completed, 8);
//! assert_eq!(report.routes.len(), 8);
//! ```

#![forbid(unsafe_code)]

pub mod cluster;
pub mod discipline;
pub mod fault;

pub use cluster::{Cluster, ClusterConfig, ClusterReport, DropRecord, EngineSummary, RouteRecord};
pub use discipline::Discipline;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
