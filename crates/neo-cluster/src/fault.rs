//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a list of timed [`FaultEvent`]s — engine fail-stop/recover,
//! link degradation, per-request deadline expiry — applied to the fleet at exact
//! simulated instants. The plan is data (serde-round-trippable), not callbacks, so a
//! fault scenario is reproducible byte-for-byte: the same plan on the same trace
//! yields the same [`crate::ClusterReport`] under every fuzzed tie-break seed, which
//! is exactly the contract `tests/fault_determinism.rs` pins.
//!
//! Plans are either hand-built (the builder methods) or sampled from a seed
//! ([`FaultPlan::seeded_outages`]) for sweep drivers that need *many* reproducible
//! fault patterns at a controlled rate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What a [`FaultEvent`] does to the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Fail-stop `engine`: its KV is lost, every queued and in-flight request it held
    /// is orphaned (failed over or shed), and it accepts nothing until recovery.
    EngineFail,
    /// Bring `engine` back into service, empty.
    EngineRecover,
    /// Degrade `engine`'s frontend link: multiply bandwidth by `bandwidth_factor`
    /// and add `added_latency_s` of propagation latency.
    LinkDegrade,
    /// Restore `engine`'s frontend link to its configured rates.
    LinkRestore,
    /// Expire the completion deadline of frontend request `request`: if it has not
    /// finished it is shed with a deadline drop, wherever it is.
    DeadlineExpire,
}

/// One timed fault. A flat record: `engine`, `request`, `bandwidth_factor` and
/// `added_latency_s` are read only by the kinds documented on [`FaultKind`] and
/// ignored (but still serialised) otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulated instant the fault fires.
    pub at: f64,
    /// What happens.
    pub kind: FaultKind,
    /// Target engine index (`EngineFail`/`EngineRecover`/`LinkDegrade`/`LinkRestore`).
    pub engine: usize,
    /// Target frontend request id (`DeadlineExpire`).
    pub request: u64,
    /// Bandwidth multiplier in `(0, 1]`-ish (`LinkDegrade`; 1.0 elsewhere).
    pub bandwidth_factor: f64,
    /// Added propagation latency in seconds (`LinkDegrade`; 0.0 elsewhere).
    pub added_latency_s: f64,
}

impl FaultEvent {
    fn new(at: f64, kind: FaultKind) -> Self {
        Self { at, kind, engine: 0, request: 0, bandwidth_factor: 1.0, added_latency_s: 0.0 }
    }
}

/// A deterministic schedule of faults, applied by [`crate::Cluster`] as timed events
/// on the cluster's event core. The default plan is empty: with it, the fault
/// machinery is inert and every cluster output is byte-identical to a faultless run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults, in insertion order (sorted by time when applied).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: no faults, byte-identical outputs to a faultless run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Schedules a fail-stop of `engine` at `at`.
    pub fn engine_fail(mut self, at: f64, engine: usize) -> Self {
        self.events.push(FaultEvent { engine, ..FaultEvent::new(at, FaultKind::EngineFail) });
        self
    }

    /// Schedules a recovery of `engine` at `at`.
    pub fn engine_recover(mut self, at: f64, engine: usize) -> Self {
        self.events.push(FaultEvent { engine, ..FaultEvent::new(at, FaultKind::EngineRecover) });
        self
    }

    /// Degrades `engine`'s link at `at`: bandwidth is multiplied by
    /// `bandwidth_factor` (must be positive) and `added_latency_s` is added to the
    /// propagation latency.
    pub fn link_degrade(
        mut self,
        at: f64,
        engine: usize,
        bandwidth_factor: f64,
        added_latency_s: f64,
    ) -> Self {
        self.events.push(FaultEvent {
            engine,
            bandwidth_factor,
            added_latency_s,
            ..FaultEvent::new(at, FaultKind::LinkDegrade)
        });
        self
    }

    /// Restores `engine`'s link to its configured rates at `at`.
    pub fn link_restore(mut self, at: f64, engine: usize) -> Self {
        self.events.push(FaultEvent { engine, ..FaultEvent::new(at, FaultKind::LinkRestore) });
        self
    }

    /// Expires frontend request `request`'s deadline at `at`.
    pub fn deadline_expire(mut self, at: f64, request: u64) -> Self {
        self.events.push(FaultEvent { request, ..FaultEvent::new(at, FaultKind::DeadlineExpire) });
        self
    }

    /// Samples `outages` fail-stop/recover pairs over `engines` engines: each outage
    /// fail-stops a uniformly chosen engine at a uniform instant in `[0, horizon)`
    /// and recovers it `outage_s` later. Fully determined by `seed` — the workhorse
    /// of fault-rate sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is zero or `horizon`/`outage_s` are not positive finite.
    pub fn seeded_outages(
        engines: usize,
        horizon: f64,
        outages: usize,
        outage_s: f64,
        seed: u64,
    ) -> Self {
        assert!(engines > 0, "need at least one engine to fail");
        assert!(horizon.is_finite() && horizon > 0.0, "horizon must be positive and finite");
        assert!(outage_s.is_finite() && outage_s > 0.0, "outage must be positive and finite");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Self::new();
        for _ in 0..outages {
            let at = rng.gen_range(0.0..horizon);
            let engine = rng.gen_range(0..engines);
            plan = plan.engine_fail(at, engine).engine_recover(at + outage_s, engine);
        }
        plan
    }

    /// The plan's events sorted by time (stable: same-instant events keep insertion
    /// order), the order the cluster applies them in.
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by(|a, b| a.at.total_cmp(&b.at));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_and_sorts_events() {
        let plan = FaultPlan::new()
            .engine_recover(8.0, 1)
            .engine_fail(2.0, 1)
            .link_degrade(2.0, 0, 0.1, 0.05)
            .deadline_expire(5.0, 7);
        assert_eq!(plan.events.len(), 4);
        let sorted = plan.sorted_events();
        assert_eq!(sorted[0].kind, FaultKind::EngineFail);
        assert_eq!(sorted[1].kind, FaultKind::LinkDegrade, "stable at same instant");
        assert_eq!(sorted[2].kind, FaultKind::DeadlineExpire);
        assert_eq!(sorted[2].request, 7);
        assert_eq!(sorted[3].kind, FaultKind::EngineRecover);
    }

    #[test]
    fn seeded_outages_are_reproducible_and_paired() {
        let a = FaultPlan::seeded_outages(3, 100.0, 5, 10.0, 42);
        let b = FaultPlan::seeded_outages(3, 100.0, 5, 10.0, 42);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded_outages(3, 100.0, 5, 10.0, 43));
        assert_eq!(a.events.len(), 10);
        for pair in a.events.chunks(2) {
            assert_eq!(pair[0].kind, FaultKind::EngineFail);
            assert_eq!(pair[1].kind, FaultKind::EngineRecover);
            assert_eq!(pair[0].engine, pair[1].engine);
            assert!((pair[1].at - pair[0].at - 10.0).abs() < 1e-12);
            assert!(pair[0].at >= 0.0 && pair[0].at < 100.0);
        }
    }

    #[test]
    fn round_trips_through_serde() {
        let plan = FaultPlan::new().engine_fail(1.5, 2).link_degrade(3.0, 0, 0.25, 0.01);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn empty_plan_is_default() {
        assert!(FaultPlan::default().is_empty());
        assert!(!FaultPlan::new().engine_fail(0.0, 0).is_empty());
    }
}
